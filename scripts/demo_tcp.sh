#!/usr/bin/env bash
# Cross-process smoke test: start a tango_logd daemon, drive it with
# tango_cli from separate processes, and verify the results.  Used both as a
# demo and as a ctest (tests/CMakeLists.txt wires it up with the built
# binary paths).
set -u

LOGD="${1:?usage: demo_tcp.sh <tango_logd> <tango_cli> [base_port]}"
CLI="${2:?usage: demo_tcp.sh <tango_logd> <tango_cli> [base_port]}"
PORT="${3:-$(( (RANDOM % 2000) + 21000 ))}"
FLAGS="--base-port=${PORT} --nodes=4 --repl=2"

fail() { echo "FAIL: $*" >&2; kill "${DAEMON_PID}" 2>/dev/null; exit 1; }

"${LOGD}" ${FLAGS} &
DAEMON_PID=$!
trap 'kill ${DAEMON_PID} 2>/dev/null' EXIT

# Wait for the daemon to come up.
for _ in $(seq 1 50); do
  if "${CLI}" ${FLAGS} tail >/dev/null 2>&1; then break; fi
  sleep 0.1
done
"${CLI}" ${FLAGS} tail >/dev/null || fail "daemon never became ready"

# Raw log operations.
OUT=$("${CLI}" ${FLAGS} append hello-tcp 7) || fail "append"
echo "${OUT}" | grep -q "offset 0" || fail "append offset: ${OUT}"
OUT=$("${CLI}" ${FLAGS} read 0) || fail "read"
echo "${OUT}" | grep -q "hello-tcp" || fail "read payload: ${OUT}"
OUT=$("${CLI}" ${FLAGS} tail) || fail "tail"
echo "${OUT}" | grep -q "tail: 1" || fail "tail value: ${OUT}"

# Stream replay.
"${CLI}" ${FLAGS} append second-entry 7 >/dev/null || fail "append 2"
OUT=$("${CLI}" ${FLAGS} stream-read 7) || fail "stream-read"
echo "${OUT}" | grep -q "2 entries in stream 7" || fail "stream count: ${OUT}"

# Object-level access from separate CLI processes (views rebuilt each run).
"${CLI}" ${FLAGS} map-put 3 color blue >/dev/null || fail "map-put"
OUT=$("${CLI}" ${FLAGS} map-get 3 color) || fail "map-get"
[ "${OUT}" = "blue" ] || fail "map-get value: ${OUT}"

# Recovery actions.
"${CLI}" ${FLAGS} checkpoint-seq >/dev/null || fail "checkpoint-seq"
OUT=$("${CLI}" ${FLAGS} recover) || fail "recover"
echo "${OUT}" | grep -q "epoch 1" || fail "recover epoch: ${OUT}"
OUT=$("${CLI}" ${FLAGS} map-get 3 color) || fail "map-get after recover"
[ "${OUT}" = "blue" ] || fail "map-get after recover: ${OUT}"

echo "demo_tcp: all checks passed"
exit 0
