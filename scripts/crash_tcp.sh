#!/usr/bin/env bash
# Cross-process crash-recovery test: run a durable tango_logd on the
# segment store, kill -9 it mid-deployment, restart it on the same data
# directory, and verify every acknowledged append is still readable with its
# exact payload.  Two kill/restart cycles; the second proves recovery itself
# produces a log that recovers.  Wired up as a ctest alongside demo_tcp.sh.
set -u

LOGD="${1:?usage: crash_tcp.sh <tango_logd> <tango_cli> [base_port]}"
CLI="${2:?usage: crash_tcp.sh <tango_logd> <tango_cli> [base_port]}"
PORT="${3:-$(( (RANDOM % 2000) + 23000 ))}"
DATA_DIR="$(mktemp -d /tmp/tango-crash-tcp.XXXXXX)"
FLAGS="--base-port=${PORT} --nodes=4 --repl=2"
DAEMON_FLAGS="${FLAGS} --data-dir=${DATA_DIR} --fsync-batch=8"
DAEMON_PID=""

cleanup() {
  [ -n "${DAEMON_PID}" ] && kill -9 "${DAEMON_PID}" 2>/dev/null
  rm -rf "${DATA_DIR}"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

start_daemon() {
  "${LOGD}" ${DAEMON_FLAGS} &
  DAEMON_PID=$!
  for _ in $(seq 1 50); do
    if "${CLI}" ${FLAGS} tail >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "daemon never became ready"
}

start_daemon

# Append entries, recording each acknowledged offset with its payload.
# `acked[i]` is the offset the daemon acknowledged for payload "crash-$cycle-$i".
declare -A PAYLOAD_AT
append_batch() {
  local cycle=$1 count=$2
  for i in $(seq 1 "${count}"); do
    OUT=$("${CLI}" ${FLAGS} append "crash-${cycle}-${i}" 7) \
      || fail "append ${cycle}/${i}"
    OFF=$(echo "${OUT}" | sed -n 's/appended at offset \([0-9]*\)/\1/p')
    [ -n "${OFF}" ] || fail "no offset in ack: ${OUT}"
    PAYLOAD_AT[${OFF}]="crash-${cycle}-${i}"
  done
}

verify_acked() {
  for OFF in "${!PAYLOAD_AT[@]}"; do
    OUT=$("${CLI}" ${FLAGS} read "${OFF}") || fail "read offset ${OFF}"
    echo "${OUT}" | grep -q "${PAYLOAD_AT[${OFF}]}" \
      || fail "acked append lost at offset ${OFF}: ${OUT}"
  done
}

for CYCLE in 1 2; do
  append_batch "${CYCLE}" 12

  kill -9 "${DAEMON_PID}" 2>/dev/null
  wait "${DAEMON_PID}" 2>/dev/null
  DAEMON_PID=""

  start_daemon
  OUT=$("${CLI}" ${FLAGS} recover) || fail "recover after kill ${CYCLE}"
  echo "${OUT}" | grep -q "epoch" || fail "recover output: ${OUT}"

  verify_acked
done

# The recovered log still accepts new appends at the correct tail.
append_batch 3 3
verify_acked

# Flight-recorder assertion: a *catchable* fatal signal (SEGV, not KILL)
# must make the daemon dump its flight rings to stderr before dying.  The
# daemon just recovered twice, so the rings hold recovery/seal events.
FLIGHT_LOG="${DATA_DIR}/flight-stderr.log"
kill -SEGV "${DAEMON_PID}" 2>/dev/null
wait "${DAEMON_PID}" 2>/dev/null
DAEMON_PID=""
# Restart with stderr captured and crash it again so the dump lands in a file
# we own regardless of how the harness wired the first daemon's stderr.
"${LOGD}" ${DAEMON_FLAGS} 2>"${FLIGHT_LOG}" &
DAEMON_PID=$!
for _ in $(seq 1 50); do
  if "${CLI}" ${FLAGS} tail >/dev/null 2>&1; then break; fi
  sleep 0.1
done
kill -SEGV "${DAEMON_PID}" 2>/dev/null
wait "${DAEMON_PID}" 2>/dev/null
DAEMON_PID=""
grep -q "=== tango flight recorder (signal 11) ===" "${FLIGHT_LOG}" \
  || fail "no flight-recorder dump on SIGSEGV (see ${FLIGHT_LOG})"
grep -q "kind=signal" "${FLIGHT_LOG}" \
  || fail "flight dump missing the fatal-signal event"
grep -q "kind=recovery" "${FLIGHT_LOG}" \
  || fail "flight dump missing the recovery events from startup"

echo "crash_tcp: all $(( ${#PAYLOAD_AT[@]} )) acked appends survived 2x kill -9; flight recorder dumped on SIGSEGV"
exit 0
