#!/usr/bin/env bash
# Tier-1 gate: configure + build + ctest, then the same suite under
# ASan/UBSan.  Run from anywhere; builds land in build/ and build-asan/.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: RelWithDebInfo build + ctest =="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"

echo "== tier-2: ASan/UBSan build + ctest =="
cmake -B "$ROOT/build-asan" -S "$ROOT" -DCMAKE_BUILD_TYPE=Asan
cmake --build "$ROOT/build-asan" -j "$JOBS"
ctest --test-dir "$ROOT/build-asan" --output-on-failure -j "$JOBS"

echo "check.sh: all green"
