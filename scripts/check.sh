#!/usr/bin/env bash
# Tier-1 gate: configure + build + ctest, then the same suite under
# ASan/UBSan.  Run from anywhere; builds land in build/ and build-asan/.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: RelWithDebInfo build + ctest =="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"

echo "== overload smoke: fig_overload tiny sweep + JSON sanity =="
cmake --build "$ROOT/build" -j "$JOBS" --target fig_overload
"$ROOT/build/bench/fig_overload" --duration-ms=150 --threads=8 \
  --capacity=2000 --storage-latency-us=200 \
  --json="$ROOT/build/bench-overload-smoke.json"
python3 - "$ROOT/build/bench-overload-smoke.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
a = d["acceptance"]
assert a["priority_probe_failures"] == 0, a
assert any(c["sheds"] > 0 for c in d["cells"]), "no cell ever shed"
EOF

echo "== transport smoke: fig_transport small sweep + JSON sanity =="
# The full 36/1k/10k sweep is a longer run (see BENCH_transport.json); the
# smoke keeps the child-fleet plumbing and the mux-vs-baseline comparison
# honest at small connection counts.  Raise the fd limit for the fleets.
cmake --build "$ROOT/build" -j "$JOBS" --target fig_transport
ulimit -n "$(ulimit -Hn)" || true
"$ROOT/build/bench/fig_transport" --conns=36,200 --baseline-conns=36 \
  --duration-ms=300 --json="$ROOT/build/bench-transport-smoke.json"
python3 - "$ROOT/build/bench-transport-smoke.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
a = d["acceptance"]
assert a["pass_sustain"], a
assert a["pass_threads"], a
for c in d["cells"]:
    assert c["connected"] == c["conns"], c
    assert c["good_per_sec"] > 0, c
EOF

echo "== tier-2: ASan/UBSan build + ctest =="
cmake -B "$ROOT/build-asan" -S "$ROOT" -DCMAKE_BUILD_TYPE=Asan
cmake --build "$ROOT/build-asan" -j "$JOBS"
ctest --test-dir "$ROOT/build-asan" --output-on-failure -j "$JOBS"

echo "== tier-3: TSan on the concurrency-heavy suites =="
# The full TSan ctest runs in its own CI job; locally we gate on the suites
# that exercise the parallel playback engine, the shared executor, and the
# per-thread trace/flight rings under concurrent multiplexed RPC.
cmake -B "$ROOT/build-tsan" -S "$ROOT" -DCMAKE_BUILD_TYPE=Tsan
cmake --build "$ROOT/build-tsan" -j "$JOBS" \
  --target playback_test util_test runtime_test txn_test obs_test \
  transport_test
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" ctest \
  --test-dir "$ROOT/build-tsan" --output-on-failure -j "$JOBS" \
  -R '^(playback_test|util_test|runtime_test|txn_test|obs_test|transport_test)$'

echo "check.sh: all green"
