#!/usr/bin/env python3
"""Validates a Prometheus text-exposition payload (the /metrics endpoint).

Usage: check_prom.py FILE [--require-metric NAME ...] [--require-prefix P ...]

Checks, line by line:
  * comment lines are `# HELP`, `# TYPE`, or exemplar-free chatter;
  * every `# TYPE` names a metric and one of counter/gauge/histogram/summary/
    untyped, and no metric is TYPEd twice;
  * every sample line parses as  name{labels} value [# {exemplar} value];
  * metric and label names match the Prometheus grammar;
  * histogram `le` buckets are cumulative (non-decreasing) and end with +Inf,
    and the +Inf bucket equals the histogram's `_count`;
  * sample values parse as floats (NaN/+Inf/-Inf allowed).

Exits nonzero with a line-numbered message on the first violation, so a CI
scrape failure says exactly what the daemon emitted wrong.
"""

import math
import re
import sys

METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name{labels} value [# {exemplar-labels} value [timestamp]]
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)"
    r"(?P<exemplar> # \{[^}]*\} \S+( \S+)?)?$"
)
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_value(raw):
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    return float(raw)  # raises on garbage; NaN parses


def parse_labels(raw):
    labels = {}
    if not raw:
        return labels
    for part in raw.split(","):
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"label without '=': {part!r}")
        key, val = part.split("=", 1)
        if not LABEL_RE.match(key):
            raise ValueError(f"bad label name: {key!r}")
        if len(val) < 2 or val[0] != '"' or val[-1] != '"':
            raise ValueError(f"unquoted label value: {val!r}")
        labels[key] = val[1:-1]
    return labels


def main():
    args = sys.argv[1:]
    if not args:
        sys.exit("usage: check_prom.py FILE [--require-metric NAME ...]")
    path = args[0]
    required = set()
    required_prefixes = set()
    i = 1
    while i < len(args):
        if args[i] == "--require-metric" and i + 1 < len(args):
            required.add(args[i + 1])
            i += 2
        elif args[i] == "--require-prefix" and i + 1 < len(args):
            required_prefixes.add(args[i + 1])
            i += 2
        else:
            sys.exit(f"unknown argument: {args[i]}")

    typed = {}
    seen = set()
    buckets = {}  # base name -> list of (le, cumulative)
    counts = {}  # base name -> _count value

    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue

            def die(msg):
                sys.exit(f"{path}:{lineno}: {msg}\n  {line}")

            if line.startswith("#"):
                parts = line.split(None, 3)
                if len(parts) >= 2 and parts[1] == "TYPE":
                    if len(parts) != 4:
                        die("malformed # TYPE line")
                    name, mtype = parts[2], parts[3]
                    if not METRIC_RE.match(name):
                        die(f"bad metric name in TYPE: {name!r}")
                    if mtype not in TYPES:
                        die(f"unknown metric type: {mtype!r}")
                    if name in typed:
                        die(f"duplicate TYPE for {name}")
                    typed[name] = mtype
                continue

            m = SAMPLE_RE.match(line)
            if not m:
                die("unparseable sample line")
            name = m.group("name")
            try:
                labels = parse_labels(m.group("labels"))
                value = parse_value(m.group("value"))
            except ValueError as e:
                die(str(e))
            seen.add(name)

            if name.endswith("_bucket"):
                base = name[: -len("_bucket")]
                if "le" not in labels:
                    die(f"histogram bucket without le label: {name}")
                le = math.inf if labels["le"] == "+Inf" else float(labels["le"])
                series = buckets.setdefault(base, [])
                if series and value < series[-1][1]:
                    die(
                        f"{base} buckets not cumulative: "
                        f"le={labels['le']} value {value} < {series[-1][1]}"
                    )
                series.append((le, value))
            elif name.endswith("_count"):
                counts[name[: -len("_count")]] = value

    for base, series in buckets.items():
        if series[-1][0] != math.inf:
            sys.exit(f"{path}: histogram {base} missing +Inf bucket")
        if base in counts and series[-1][1] != counts[base]:
            sys.exit(
                f"{path}: histogram {base} +Inf bucket {series[-1][1]} "
                f"!= _count {counts[base]}"
            )

    for name, mtype in typed.items():
        expected = (
            {name + "_bucket", name + "_sum", name + "_count"}
            if mtype == "histogram"
            else {name}
        )
        if not expected & seen:
            sys.exit(f"{path}: TYPE {name} declared but no samples emitted")

    missing = {r for r in required if r not in seen and r not in typed}
    if missing:
        sys.exit(f"{path}: required metrics absent: {sorted(missing)}")

    all_names = seen | set(typed)
    missing_prefixes = {
        p
        for p in required_prefixes
        if not any(name.startswith(p) for name in all_names)
    }
    if missing_prefixes:
        sys.exit(
            f"{path}: no metric matches required prefixes: "
            f"{sorted(missing_prefixes)}"
        )

    print(
        f"check_prom: {path} OK "
        f"({len(seen)} series, {len(typed)} typed, {len(buckets)} histograms)"
    )


if __name__ == "__main__":
    main()
