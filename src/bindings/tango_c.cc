#include "src/bindings/tango_c.h"

#include <cstring>
#include <memory>
#include <string>

#include "src/corfu/cluster.h"
#include "src/corfu/log_client.h"
#include "src/net/tcp_transport.h"
#include "src/objects/tango_map.h"
#include "src/runtime/runtime.h"

struct tango_client {
  std::unique_ptr<tango::TcpTransport> transport;
  std::unique_ptr<corfu::CorfuClient> log;
  std::unique_ptr<tango::TangoRuntime> runtime;
};

struct tango_map {
  tango_client* client;
  std::unique_ptr<tango::TangoMap> map;
};

namespace {

tango_status ToC(const tango::Status& status) {
  return static_cast<tango_status>(status.code());
}

}  // namespace

extern "C" {

tango_client* tango_connect(const char* host, uint16_t base_port,
                            int storage_nodes) {
  if (host == nullptr || storage_nodes <= 0) {
    return nullptr;
  }
  auto client = std::make_unique<tango_client>();
  client->transport = std::make_unique<tango::TcpTransport>();

  // Mirror the node layout of tools/node_layout.h.
  corfu::CorfuCluster::Options defaults;
  client->transport->AddRoute(defaults.projection_store_node, host,
                              base_port);
  client->transport->AddRoute(defaults.sequencer_node, host,
                              static_cast<uint16_t>(base_port + 1));
  for (int i = 0; i < storage_nodes; ++i) {
    client->transport->AddRoute(defaults.storage_base + i, host,
                                static_cast<uint16_t>(base_port + 2 + i));
  }

  // Probe the projection store before committing to the connection (the
  // CorfuClient constructor CHECK-fails on an unreachable deployment).
  if (!corfu::FetchProjection(client->transport.get(),
                              defaults.projection_store_node)
           .ok()) {
    return nullptr;
  }
  client->log = std::make_unique<corfu::CorfuClient>(
      client->transport.get(), defaults.projection_store_node);
  client->runtime = std::make_unique<tango::TangoRuntime>(client->log.get());
  return client.release();
}

void tango_disconnect(tango_client* client) { delete client; }

tango_status tango_log_append(tango_client* client, const uint8_t* data,
                              size_t len, uint64_t* offset_out) {
  auto offset = client->log->Append(std::span<const uint8_t>(data, len));
  if (!offset.ok()) {
    return ToC(offset.status());
  }
  if (offset_out != nullptr) {
    *offset_out = *offset;
  }
  return TANGO_OK;
}

tango_status tango_log_read(tango_client* client, uint64_t offset,
                            uint8_t* buf, size_t* len_inout) {
  auto entry = client->log->Read(offset);
  if (!entry.ok()) {
    return ToC(entry.status());
  }
  if (*len_inout < entry->payload.size()) {
    *len_inout = entry->payload.size();
    return static_cast<tango_status>(tango::StatusCode::kOutOfRange);
  }
  std::memcpy(buf, entry->payload.data(), entry->payload.size());
  *len_inout = entry->payload.size();
  return TANGO_OK;
}

tango_status tango_log_tail(tango_client* client, uint64_t* tail_out) {
  auto tail = client->log->CheckTail();
  if (!tail.ok()) {
    return ToC(tail.status());
  }
  *tail_out = *tail;
  return TANGO_OK;
}

tango_map* tango_map_open(tango_client* client, uint32_t oid) {
  auto map = std::make_unique<tango_map>();
  map->client = client;
  map->map = std::make_unique<tango::TangoMap>(client->runtime.get(), oid);
  return map.release();
}

void tango_map_close(tango_map* map) { delete map; }

tango_status tango_map_put(tango_map* map, const char* key,
                           const char* value) {
  return ToC(map->map->Put(key, value));
}

tango_status tango_map_get(tango_map* map, const char* key, char* buf,
                           size_t* len_inout) {
  auto value = map->map->Get(key);
  if (!value.ok()) {
    return ToC(value.status());
  }
  if (*len_inout < value->size() + 1) {
    *len_inout = value->size();
    return static_cast<tango_status>(tango::StatusCode::kOutOfRange);
  }
  std::memcpy(buf, value->c_str(), value->size() + 1);
  *len_inout = value->size();
  return TANGO_OK;
}

tango_status tango_map_remove(tango_map* map, const char* key) {
  return ToC(map->map->Remove(key));
}

tango_status tango_map_size(tango_map* map, size_t* size_out) {
  auto size = map->map->Size();
  if (!size.ok()) {
    return ToC(size.status());
  }
  *size_out = *size;
  return TANGO_OK;
}

tango_status tango_tx_begin(tango_client* client) {
  return ToC(client->runtime->BeginTx());
}

tango_status tango_tx_end(tango_client* client) {
  return ToC(client->runtime->EndTx());
}

void tango_tx_abort(tango_client* client) { client->runtime->AbortTx(); }

const char* tango_status_name(tango_status status) {
  static thread_local std::string name;
  name = std::string(
      tango::StatusCodeName(static_cast<tango::StatusCode>(status)));
  return name.c_str();
}

}  // extern "C"
