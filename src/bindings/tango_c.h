/* C bindings for the Tango client stack.
 *
 * The paper ships Java and C# bindings over its C++ core; this is the
 * equivalent foreign-function surface for this implementation — a flat C API
 * over TcpTransport + CorfuClient + TangoRuntime + TangoMap, sufficient to
 * write a Tango client in any language with a C FFI.
 *
 * All functions are thread-compatible (use one tango_client per thread, or
 * synchronize externally).  Strings are NUL-terminated UTF-8.  Status codes
 * mirror tango::StatusCode; 0 is success.
 *
 * The (host, base_port, storage_nodes) triple must match the tango_logd
 * deployment being joined (see tools/node_layout.h for the port scheme).
 */

#ifndef SRC_BINDINGS_TANGO_C_H_
#define SRC_BINDINGS_TANGO_C_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef int32_t tango_status;
#define TANGO_OK 0

typedef struct tango_client tango_client;
typedef struct tango_map tango_map;

/* --- connection ---------------------------------------------------------- */

/* Connects to a tango_logd deployment.  Returns NULL on failure. */
tango_client* tango_connect(const char* host, uint16_t base_port,
                            int storage_nodes);
void tango_disconnect(tango_client* client);

/* --- raw log ------------------------------------------------------------- */

tango_status tango_log_append(tango_client* client, const uint8_t* data,
                              size_t len, uint64_t* offset_out);
/* Reads the entry payload at `offset` into `buf`; *len_inout carries the
 * buffer capacity in and the payload length out (kOutOfRange if too small).
 */
tango_status tango_log_read(tango_client* client, uint64_t offset,
                            uint8_t* buf, size_t* len_inout);
tango_status tango_log_tail(tango_client* client, uint64_t* tail_out);

/* --- replicated map ------------------------------------------------------ */

/* Opens a view of the TangoMap on stream `oid` (rebuilt from the log). */
tango_map* tango_map_open(tango_client* client, uint32_t oid);
void tango_map_close(tango_map* map);

tango_status tango_map_put(tango_map* map, const char* key,
                           const char* value);
/* *len_inout: capacity in, value length out (excluding the NUL, which is
 * written when it fits). */
tango_status tango_map_get(tango_map* map, const char* key, char* buf,
                           size_t* len_inout);
tango_status tango_map_remove(tango_map* map, const char* key);
tango_status tango_map_size(tango_map* map, size_t* size_out);

/* --- transactions -------------------------------------------------------- */

/* Transactions are per-thread, bracketing map calls on the same client. */
tango_status tango_tx_begin(tango_client* client);
/* Returns TANGO_OK on commit; the kAborted code on a read-set conflict. */
tango_status tango_tx_end(tango_client* client);
void tango_tx_abort(tango_client* client);

/* --- misc ---------------------------------------------------------------- */

/* Stable name for a status code ("OK", "ABORTED", ...). */
const char* tango_status_name(tango_status status);

#ifdef __cplusplus
}  /* extern "C" */
#endif

#endif  /* SRC_BINDINGS_TANGO_C_H_ */
