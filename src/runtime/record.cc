#include "src/runtime/record.h"

namespace tango {

namespace {

void EncodeWriteOp(const WriteOp& w, ByteWriter& out) {
  out.PutU32(w.oid);
  out.PutU8(w.has_key ? 1 : 0);
  out.PutU64(w.key);
  out.PutBlob(w.data);
}

WriteOp DecodeWriteOp(ByteReader& r) {
  WriteOp w;
  w.oid = r.GetU32();
  w.has_key = r.GetU8() != 0;
  w.key = r.GetU64();
  w.data = r.GetBlob();
  return w;
}

void EncodeReadDep(const ReadDep& d, ByteWriter& out) {
  out.PutU32(d.oid);
  out.PutU8(d.has_key ? 1 : 0);
  out.PutU64(d.key);
  out.PutU64(d.version);
}

ReadDep DecodeReadDep(ByteReader& r) {
  ReadDep d;
  d.oid = r.GetU32();
  d.has_key = r.GetU8() != 0;
  d.key = r.GetU64();
  d.version = r.GetU64();
  return d;
}

void EncodeOne(const Record& record, ByteWriter& out) {
  out.PutU8(static_cast<uint8_t>(record.type));
  switch (record.type) {
    case RecordType::kUpdate:
      EncodeWriteOp(record.update.write, out);
      break;
    case RecordType::kCommit:
      out.PutU64(record.commit.txid);
      out.PutU32(static_cast<uint32_t>(record.commit.writes.size()));
      for (const WriteOp& w : record.commit.writes) {
        EncodeWriteOp(w, out);
      }
      out.PutU32(static_cast<uint32_t>(record.commit.reads.size()));
      for (const ReadDep& d : record.commit.reads) {
        EncodeReadDep(d, out);
      }
      break;
    case RecordType::kDecision:
      out.PutU64(record.decision.txid);
      out.PutU8(record.decision.commit ? 1 : 0);
      break;
    case RecordType::kCheckpoint:
      out.PutU32(record.checkpoint.oid);
      out.PutU64(record.checkpoint.covered);
      out.PutBlob(record.checkpoint.state);
      break;
  }
}

Result<Record> DecodeOne(ByteReader& r) {
  Record record;
  record.type = static_cast<RecordType>(r.GetU8());
  switch (record.type) {
    case RecordType::kUpdate:
      record.update.write = DecodeWriteOp(r);
      break;
    case RecordType::kCommit: {
      record.commit.txid = r.GetU64();
      uint32_t nwrites = r.GetU32();
      record.commit.writes.reserve(nwrites);
      for (uint32_t i = 0; i < nwrites && r.ok(); ++i) {
        record.commit.writes.push_back(DecodeWriteOp(r));
      }
      uint32_t nreads = r.GetU32();
      record.commit.reads.reserve(nreads);
      for (uint32_t i = 0; i < nreads && r.ok(); ++i) {
        record.commit.reads.push_back(DecodeReadDep(r));
      }
      break;
    }
    case RecordType::kDecision:
      record.decision.txid = r.GetU64();
      record.decision.commit = r.GetU8() != 0;
      break;
    case RecordType::kCheckpoint:
      record.checkpoint.oid = r.GetU32();
      record.checkpoint.covered = r.GetU64();
      record.checkpoint.state = r.GetBlob();
      break;
    default:
      return Status(StatusCode::kInvalidArgument, "unknown record type");
  }
  if (!r.ok()) {
    return Status(StatusCode::kInvalidArgument, "truncated record");
  }
  return record;
}

}  // namespace

std::vector<uint8_t> EncodeRecords(std::span<const Record> records) {
  ByteWriter w;
  w.PutU16(static_cast<uint16_t>(records.size()));
  for (const Record& record : records) {
    EncodeOne(record, w);
  }
  return w.Take();
}

std::vector<uint8_t> EncodeRecord(const Record& record) {
  return EncodeRecords(std::span<const Record>(&record, 1));
}

std::vector<uint8_t> EncodeRecordBody(const Record& record) {
  ByteWriter w;
  EncodeOne(record, w);
  return w.Take();
}

std::vector<uint8_t> AssembleRecordsPayload(
    std::span<const std::vector<uint8_t>> bodies) {
  size_t total = 2;
  for (const std::vector<uint8_t>& b : bodies) {
    total += b.size();
  }
  ByteWriter w(total);
  w.PutU16(static_cast<uint16_t>(bodies.size()));
  for (const std::vector<uint8_t>& b : bodies) {
    w.PutBytes(b.data(), b.size());
  }
  return w.Take();
}

Result<std::vector<Record>> DecodeRecords(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  uint16_t count = r.GetU16();
  std::vector<Record> records;
  records.reserve(count);
  for (int i = 0; i < count; ++i) {
    Result<Record> record = DecodeOne(r);
    if (!record.ok()) {
      return record.status();
    }
    records.push_back(std::move(record).value());
  }
  if (!r.ok()) {
    return Status(StatusCode::kInvalidArgument, "truncated record batch");
  }
  return records;
}

Record MakeUpdateRecord(ObjectId oid, std::span<const uint8_t> data,
                        std::optional<uint64_t> key) {
  Record record;
  record.type = RecordType::kUpdate;
  record.update.write.oid = oid;
  record.update.write.has_key = key.has_value();
  record.update.write.key = key.value_or(0);
  record.update.write.data.assign(data.begin(), data.end());
  return record;
}

Record MakeCommitRecord(TxId txid, std::vector<WriteOp> writes,
                        std::vector<ReadDep> reads) {
  Record record;
  record.type = RecordType::kCommit;
  record.commit.txid = txid;
  record.commit.writes = std::move(writes);
  record.commit.reads = std::move(reads);
  return record;
}

Record MakeDecisionRecord(TxId txid, bool commit) {
  Record record;
  record.type = RecordType::kDecision;
  record.decision.txid = txid;
  record.decision.commit = commit;
  return record;
}

Record MakeCheckpointRecord(ObjectId oid, corfu::LogOffset covered,
                            std::vector<uint8_t> state) {
  Record record;
  record.type = RecordType::kCheckpoint;
  record.checkpoint.oid = oid;
  record.checkpoint.covered = covered;
  record.checkpoint.state = std::move(state);
  return record;
}

}  // namespace tango
