#include "src/runtime/runtime.h"

#include <algorithm>
#include <queue>
#include <thread>
#include <utility>

#include "src/obs/slo.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"
#include "src/util/threading.h"

namespace tango {

using corfu::kInvalidOffset;
using corfu::LogOffset;
using corfu::StreamId;

namespace {

std::atomic<uint32_t> g_next_client_id{1};

// Runtime-level checkpoint envelope: the object snapshot plus the version
// bookkeeping needed for conflict detection after a restore.
std::vector<uint8_t> WrapCheckpoint(
    LogOffset version, LogOffset unkeyed_version,
    const std::unordered_map<uint64_t, LogOffset>& key_versions,
    std::vector<uint8_t> object_state) {
  ByteWriter w(64 + object_state.size());
  w.PutU64(version);
  w.PutU64(unkeyed_version);
  w.PutU32(static_cast<uint32_t>(key_versions.size()));
  for (const auto& [key, ver] : key_versions) {
    w.PutU64(key);
    w.PutU64(ver);
  }
  w.PutBlob(object_state);
  return w.Take();
}

}  // namespace

TangoRuntime::TangoRuntime(corfu::CorfuClient* log, Options options)
    : log_(log),
      options_(options),
      client_id_(g_next_client_id.fetch_add(1)),
      store_(log, options_.store) {
  if (options_.enable_batching) {
    batcher_ = std::make_unique<Batcher>(log_, options_.batch);
  }
  auto& reg = obs::MetricsRegistry::Default();
  txn_attempts_ = reg.GetCounter("runtime.txn.attempts");
  txn_commits_ = reg.GetCounter("runtime.txn.commits");
  txn_aborts_ = reg.GetCounter("runtime.txn.aborts");
  txn_timeouts_ = reg.GetCounter("runtime.txn.timeouts");
  txn_errors_ = reg.GetCounter("runtime.txn.errors");
  obs_entries_played_ = reg.GetCounter("runtime.entries_played");
  obs_updates_applied_ = reg.GetCounter("runtime.updates_applied");
  obs_parallel_entries_ = reg.GetCounter("runtime.playback.entries.parallel");
  obs_sequential_entries_ =
      reg.GetCounter("runtime.playback.entries.sequential");
  obs_barrier_quiesces_ = reg.GetCounter("runtime.playback.barrier.quiesces");
  playback_position_ = reg.GetGauge("runtime.playback.position");
  play_lag_ = reg.GetHistogram("runtime.play.lag_entries");
}

TangoRuntime::~TangoRuntime() = default;

TangoRuntime::TxContext& TangoRuntime::Tls() const {
  // Keyed by the runtime's unique client id, not its address: a recycled
  // heap address must not inherit another (dead) runtime's context.
  static thread_local std::unordered_map<uint32_t, TxContext> tls;
  return tls[client_id_];
}

TxId TangoRuntime::NextTxId() {
  return (static_cast<uint64_t>(client_id_) << 32) |
         tx_seq_.fetch_add(1, std::memory_order_relaxed);
}

// --- registration ------------------------------------------------------------

Status TangoRuntime::RegisterObject(ObjectId oid, TangoObject* object,
                                    ObjectConfig config) {
  if (object == nullptr) {
    return Status(StatusCode::kInvalidArgument, "null object");
  }
  if (oid >= corfu::kSequencerStateStream) {
    return Status(StatusCode::kInvalidArgument, "reserved stream id");
  }
  std::lock_guard<std::mutex> lock(playback_mu_);
  if (objects_.contains(oid)) {
    return Status(StatusCode::kAlreadyExists, "oid already registered");
  }
  ObjectState state;
  state.object = object;
  state.config = config;
  objects_.emplace(oid, std::move(state));
  store_.Open(oid);
  return Status::Ok();
}

Status TangoRuntime::UnregisterObject(ObjectId oid) {
  std::lock_guard<std::mutex> lock(playback_mu_);
  if (objects_.erase(oid) == 0) {
    return Status(StatusCode::kNotFound, "oid not registered");
  }
  return Status::Ok();
}

bool TangoRuntime::Hosts(ObjectId oid) const {
  std::lock_guard<std::mutex> lock(playback_mu_);
  return objects_.contains(oid);
}

// --- version bookkeeping ------------------------------------------------------

void TangoRuntime::BumpVersion(ObjectState& state, LogOffset offset,
                               bool has_key, uint64_t key) {
  std::lock_guard<std::mutex> lock(*state.version_mu);
  // Keyed writes to distinct keys may apply out of log order under parallel
  // playback, so the coarse version takes the max rather than the latest
  // assignment (identical to sequential playback, where offsets only grow).
  if (state.version == kInvalidOffset || offset > state.version) {
    state.version = offset;
  }
  if (has_key) {
    state.key_versions[key] = offset;
  } else {
    state.unkeyed_version = offset;
  }
}

LogOffset TangoRuntime::CurrentVersion(const ObjectState& state, bool has_key,
                                       uint64_t key) const {
  std::lock_guard<std::mutex> lock(*state.version_mu);
  if (!has_key) {
    return state.version;
  }
  // A keyed read conflicts with writes to the same key *and* with keyless
  // writes (which may have touched anything).
  LogOffset v = state.unkeyed_version;
  auto it = state.key_versions.find(key);
  if (it != state.key_versions.end() &&
      (v == kInvalidOffset || it->second > v)) {
    v = it->second;
  }
  return v;
}

LogOffset TangoRuntime::SnapshotVersionLocked(
    ObjectId oid, std::optional<uint64_t> key) const {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return kInvalidOffset;
  }
  return CurrentVersion(it->second, key.has_value(), key.value_or(0));
}

corfu::LogOffset TangoRuntime::VersionOf(ObjectId oid,
                                         std::optional<uint64_t> key) const {
  std::lock_guard<std::mutex> lock(playback_mu_);
  return SnapshotVersionLocked(oid, key);
}

// --- playback ----------------------------------------------------------------

int TangoRuntime::PlaybackWorkers() const {
  if (options_.playback_workers >= 0) {
    return options_.playback_workers;
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    hw = 2;  // unknown topology: assume a small machine
  }
  unsigned half = hw / 2;
  if (half < 1) {
    half = 1;
  }
  return static_cast<int>(std::min(4u, half));
}

Status TangoRuntime::PlayUntil(LogOffset limit) {
  obs::TraceScope span("runtime.play");
  std::vector<StreamId> streams;
  streams.reserve(objects_.size());
  for (const auto& [oid, state] : objects_) {
    streams.push_back(oid);
  }
  if (streams.empty()) {
    return Status::Ok();
  }
  // Entries this call replays to reach the barrier = how far behind the
  // local views were (the playback-lag distribution).
  uint64_t played_here = 0;
  Result<LogOffset> synced = store_.SyncAll(streams);
  if (!synced.ok()) {
    return synced.status();
  }

  // Bring up the parallel apply engine lazily (playback_workers == 0 keeps
  // the single-threaded reference path; no threads are ever created then).
  if (engine_ == nullptr && PlaybackWorkers() > 0) {
    PlaybackEngine::Options eopts;
    eopts.workers = PlaybackWorkers();
    eopts.window = std::max<size_t>(1, options_.playback_window);
    engine_ = std::make_unique<PlaybackEngine>(eopts);
  }

  // Min-heap over (next offset, stream) cursors: finding the globally next
  // entry is O(log S) per entry instead of a linear scan of every hosted
  // stream.  Co-located streams surface together at the top of the heap and
  // step through a multiappended entry in lockstep, as before.
  using Cursor = std::pair<LogOffset, StreamId>;
  std::priority_queue<Cursor, std::vector<Cursor>, std::greater<Cursor>> heap;
  for (StreamId s : streams) {
    LogOffset next = store_.NextOffset(s);
    if (next != kInvalidOffset) {
      heap.emplace(next, s);
    }
  }

  Status status;
  std::vector<ObjectId> fresh;
  std::vector<PlaybackAccess> accesses;
  const obs::TraceContext trace_ctx = obs::CurrentTrace();
  while (!heap.empty()) {
    const LogOffset best = heap.top().first;
    if (best >= limit) {
      break;
    }

    // Overlap the next window's fetch with this window's apply: kick off a
    // background batched read on the engine's pool before fetching `best`
    // (which is usually already cached by the previous round's batch).
    if (engine_ != nullptr) {
      store_.StartAsyncPrefetch(best, limit, engine_->executor());
    }

    Result<std::shared_ptr<const corfu::LogEntry>> entry =
        store_.FetchEntry(best);

    // Consume the position only once the fetch has resolved: a transient
    // read error (dropped RPC, unreachable replica) must leave every cursor
    // in place so the retry replays this entry instead of skipping it.
    // kTrimmed is a terminal resolution — forgotten history is consumed.
    if (!entry.ok() && entry.status() != StatusCode::kTrimmed) {
      status = entry.status();
      break;
    }

    // Step every co-located stream through this position in lockstep, so a
    // multiappended record is observed exactly once.
    fresh.clear();
    while (!heap.empty() && heap.top().first == best) {
      StreamId s = heap.top().second;
      heap.pop();
      store_.AdvanceCursor(s);
      objects_[s].last_consumed = best;
      fresh.push_back(s);
      LogOffset next = store_.NextOffset(s);
      if (next != kInvalidOffset) {
        heap.emplace(next, s);
      }
    }
    stats_.entries_played.fetch_add(1, std::memory_order_relaxed);
    obs_entries_played_->Add();
    ++played_here;
    // Report the offset actually consumed (not the requested limit, which
    // playback may never reach when the tail moved or an error hits).
    playback_position_->Set(static_cast<int64_t>(best));

    if (!entry.ok()) {
      continue;  // forgotten (trimmed) history
    }
    if ((*entry)->is_junk()) {
      continue;
    }
    Result<std::vector<Record>> records = DecodeRecords((*entry)->payload);
    if (!records.ok()) {
      status = records.status();
      break;
    }

    // Dependency-tracked dispatch: entries whose access sets the tracker can
    // compute go to the engine, ordered only against conflicting earlier
    // entries.  Barrier entries (decision records, commits that would arm
    // the §4.1 stall) — and everything while a stall is armed — quiesce the
    // engine and take the sequential reference path.
    accesses.clear();
    const bool parallel = engine_ != nullptr && !barrier_tx_.has_value() &&
                          CollectAccesses(*records, fresh, &accesses);
    if (parallel) {
      obs_parallel_entries_->Add();
      auto recs = std::make_shared<const std::vector<Record>>(
          std::move(*records));
      engine_->Schedule(
          best, std::move(accesses),
          [this, best, recs, fresh_copy = fresh, trace_ctx] {
            return ApplyEntryParallel(best, *recs, fresh_copy, trace_ctx);
          });
    } else {
      if (engine_ != nullptr) {
        obs_barrier_quiesces_->Add();
        status = engine_->Quiesce();
        if (!status.ok()) {
          break;
        }
      }
      obs_sequential_entries_->Add();
      for (const Record& record : *records) {
        status = ProcessRecord(best, record, fresh);
        if (!status.ok()) {
          break;
        }
      }
      if (!status.ok()) {
        break;
      }
    }
  }

  // Drain outstanding applies (and surface any worker error) before the
  // caller observes the views; fold or await the last async fetch batch so
  // no background read outlives this playback round unobserved.
  if (engine_ != nullptr) {
    Status drained = engine_->Quiesce();
    if (status.ok()) {
      status = drained;
    }
    store_.DrainAsyncPrefetch(true);
  }
  if (!status.ok()) {
    return status;
  }
  play_lag_->Record(played_here);
  CheckDecisionDeadlines();
  return Status::Ok();
}

bool TangoRuntime::CollectAccesses(const std::vector<Record>& records,
                                   const std::vector<ObjectId>& fresh,
                                   std::vector<PlaybackAccess>* accesses) const {
  auto is_fresh = [&fresh](ObjectId oid) {
    return std::find(fresh.begin(), fresh.end(), oid) != fresh.end();
  };
  for (const Record& record : records) {
    switch (record.type) {
      case RecordType::kUpdate: {
        const WriteOp& w = record.update.write;
        if (is_fresh(w.oid)) {
          accesses->push_back(
              PlaybackAccess{w.oid, w.has_key, w.key, /*write=*/true});
        }
        break;
      }
      case RecordType::kCommit: {
        const CommitRecord& c = record.commit;
        // An undecided commit with an unhosted read dep would arm the stall
        // barrier — a hard ordering point the engine must not reorder
        // around.  (Decided transactions skip validation entirely, so they
        // stay parallel even when unhosted reads are involved.)
        bool known;
        {
          std::lock_guard<std::mutex> lock(decision_mu_);
          known = decided_.contains(c.txid);
        }
        if (!known && !CanEvaluate(c)) {
          return false;
        }
        if (!known) {
          // Validation reads the version of every read dep; serialize
          // against earlier writes to those keys.
          for (const ReadDep& dep : c.reads) {
            accesses->push_back(
                PlaybackAccess{dep.oid, dep.has_key, dep.key, /*write=*/false});
          }
        }
        for (const WriteOp& w : c.writes) {
          if (is_fresh(w.oid)) {
            accesses->push_back(
                PlaybackAccess{w.oid, w.has_key, w.key, /*write=*/true});
          }
        }
        break;
      }
      case RecordType::kDecision:
        // Touches the dispatcher-only barrier machinery.
        return false;
      case RecordType::kCheckpoint:
        break;  // no live-playback effect
    }
  }
  return true;
}

Status TangoRuntime::ApplyEntryParallel(LogOffset offset,
                                        const std::vector<Record>& records,
                                        const std::vector<ObjectId>& fresh,
                                        obs::TraceContext trace_ctx) {
  // Parent this worker-side span under the dispatcher's runtime.play span.
  obs::TraceScope span("runtime.playback.task", trace_ctx, /*node=*/0);
  for (const Record& record : records) {
    switch (record.type) {
      case RecordType::kUpdate:
        ApplyUpdate(offset, record.update.write, fresh);
        break;
      case RecordType::kCommit: {
        TANGO_RETURN_IF_ERROR(ApplyCommit(offset, record.commit, fresh));
        break;
      }
      case RecordType::kDecision:
      case RecordType::kCheckpoint:
        break;  // never scheduled (decision) / no live effect (checkpoint)
    }
  }
  return Status::Ok();
}

Status TangoRuntime::ProcessRecord(LogOffset offset, const Record& record,
                                   const std::vector<ObjectId>& fresh) {
  // While a commit record awaits its decision, every other record queues
  // behind it so applies stay in strict log order (§4.1).
  if (barrier_tx_.has_value() && record.type != RecordType::kDecision) {
    stalled_.push_back(StalledRecord{offset, record, fresh});
    return Status::Ok();
  }

  switch (record.type) {
    case RecordType::kUpdate:
      ApplyUpdate(offset, record.update.write, fresh);
      return Status::Ok();
    case RecordType::kCommit:
      return ApplyCommit(offset, record.commit, fresh);
    case RecordType::kDecision: {
      TxId txid = record.decision.txid;
      {
        std::lock_guard<std::mutex> lock(decision_mu_);
        decided_.emplace(txid, record.decision.commit);
        awaited_decisions_.erase(txid);
      }
      if (barrier_tx_.has_value() && *barrier_tx_ == txid) {
        bool commit = record.decision.commit;
        if (commit) {
          ApplyWrites(barrier_offset_, barrier_commit_.writes, barrier_fresh_);
          stats_.commits.fetch_add(1, std::memory_order_relaxed);
        } else {
          stats_.aborts.fetch_add(1, std::memory_order_relaxed);
        }
        barrier_tx_.reset();
        // Drain the stalled pipeline; a queued commit may re-arm the barrier,
        // in which case the loop stops and the rest stays queued.
        while (!stalled_.empty() && !barrier_tx_.has_value()) {
          StalledRecord next = std::move(stalled_.front());
          stalled_.pop_front();
          TANGO_RETURN_IF_ERROR(
              ProcessRecord(next.offset, next.record, next.fresh));
        }
      }
      return Status::Ok();
    }
    case RecordType::kCheckpoint:
      // Redundant during live playback; consumed by LoadObject.
      return Status::Ok();
  }
  return Status(StatusCode::kInternal, "unknown record type");
}

bool TangoRuntime::CanEvaluate(const CommitRecord& commit) const {
  for (const ReadDep& dep : commit.reads) {
    if (!objects_.contains(dep.oid)) {
      return false;
    }
  }
  return true;
}

bool TangoRuntime::ValidateReads(const std::vector<ReadDep>& reads) const {
  for (const ReadDep& dep : reads) {
    auto it = objects_.find(dep.oid);
    if (it == objects_.end()) {
      return false;  // cannot vouch for an unhosted read
    }
    if (CurrentVersion(it->second, dep.has_key, dep.key) != dep.version) {
      return false;
    }
  }
  return true;
}

void TangoRuntime::ApplyUpdate(LogOffset offset, const WriteOp& w,
                               const std::vector<ObjectId>& fresh) {
  auto it = objects_.find(w.oid);
  if (it == objects_.end() ||
      std::find(fresh.begin(), fresh.end(), w.oid) == fresh.end()) {
    return;  // remote object, or this stream already played past here
  }
  obs::TraceScope span("runtime.apply");
  BumpVersion(it->second, offset, w.has_key, w.key);
  it->second.object->Apply(w.data, offset);
  stats_.updates_applied.fetch_add(1, std::memory_order_relaxed);
  obs_updates_applied_->Add();
}

void TangoRuntime::ApplyWrites(LogOffset offset,
                               const std::vector<WriteOp>& writes,
                               const std::vector<ObjectId>& fresh) {
  for (const WriteOp& w : writes) {
    ApplyUpdate(offset, w, fresh);
  }
}

Status TangoRuntime::ApplyCommit(LogOffset offset, const CommitRecord& commit,
                                 const std::vector<ObjectId>& fresh) {
  bool known;
  bool outcome;
  {
    std::lock_guard<std::mutex> lock(decision_mu_);
    auto decided = decided_.find(commit.txid);
    known = decided != decided_.end();
    outcome = known && decided->second;
  }

  if (!known) {
    if (!CanEvaluate(commit)) {
      // Some read-set object is not hosted here: stall until the decision
      // record arrives (Figure 6, App2).  Only the dispatcher reaches this
      // branch — CollectAccesses routes non-evaluable commits to the
      // sequential path, so a parallel worker never arms the barrier.
      barrier_tx_ = commit.txid;
      barrier_offset_ = offset;
      barrier_commit_ = commit;
      barrier_fresh_ = fresh;
      barrier_since_us_ = NowMicros();
      stats_.decision_stalls.fetch_add(1, std::memory_order_relaxed);
      return Status::Ok();
    }
    outcome = ValidateReads(commit.reads);
    {
      std::lock_guard<std::mutex> lock(decision_mu_);
      auto [it, inserted] = decided_.emplace(commit.txid, outcome);
      if (!inserted) {
        outcome = it->second;  // raced with EndTx recording its own outcome
      }
    }

    // If some other client might host a written object without hosting the
    // read set, it is waiting on a decision record.  The generator appends
    // it synchronously in EndTx; as a fallback, we (a read-set host) append
    // it after a timeout in case the generator crashed.
    bool is_ours = (commit.txid >> 32) == client_id_;
    if (!is_ours) {
      bool needs_decision = false;
      std::vector<StreamId> streams;
      for (const WriteOp& w : commit.writes) {
        auto it = objects_.find(w.oid);
        if (it == objects_.end() || it->second.config.needs_decision_records) {
          needs_decision = true;
        }
        if (std::find(streams.begin(), streams.end(), w.oid) ==
            streams.end()) {
          streams.push_back(w.oid);
        }
      }
      if (needs_decision) {
        AwaitedDecision awaited;
        awaited.commit = outcome;
        awaited.streams = std::move(streams);
        awaited.deadline_us =
            NowMicros() +
            static_cast<uint64_t>(options_.decision_timeout_ms) * 1000;
        std::lock_guard<std::mutex> lock(decision_mu_);
        awaited_decisions_.emplace(commit.txid, std::move(awaited));
      }
    }
  }

  if (outcome) {
    ApplyWrites(offset, commit.writes, fresh);
    stats_.commits.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.aborts.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::Ok();
}

void TangoRuntime::CheckDecisionDeadlines() {
  // Collect due decisions under the lock, append outside it (AppendDecision
  // does log RPCs).
  std::vector<std::pair<TxId, AwaitedDecision>> due;
  {
    std::lock_guard<std::mutex> lock(decision_mu_);
    if (awaited_decisions_.empty()) {
      return;
    }
    uint64_t now = NowMicros();
    for (auto it = awaited_decisions_.begin();
         it != awaited_decisions_.end();) {
      if (now >= it->second.deadline_us) {
        due.emplace_back(it->first, std::move(it->second));
        it = awaited_decisions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& [txid, awaited] : due) {
    // The generator appears to have crashed before publishing its decision;
    // we host the read set, so we publish it (§4.1, Failure Handling).
    Status st = AppendDecision(txid, awaited.commit, awaited.streams);
    if (st.ok()) {
      stats_.decisions_appended.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

Result<LogOffset> TangoRuntime::AppendRecord(Record record,
                                             std::vector<StreamId> streams) {
  if (batcher_ != nullptr) {
    return batcher_->Append(std::move(record), std::move(streams));
  }
  std::vector<uint8_t> payload = EncodeRecord(record);
  return log_->AppendToStreams(payload, streams);
}

Status TangoRuntime::AppendDecision(TxId txid, bool commit,
                                    const std::vector<StreamId>& streams) {
  Result<LogOffset> offset =
      AppendRecord(MakeDecisionRecord(txid, commit), streams);
  return offset.status();
}

// --- helpers -------------------------------------------------------------------

Status TangoRuntime::UpdateHelper(ObjectId oid, std::span<const uint8_t> data,
                                  std::optional<uint64_t> key) {
  TxContext& ctx = Tls();
  if (ctx.active) {
    WriteOp w;
    w.oid = oid;
    w.has_key = key.has_value();
    w.key = key.value_or(0);
    w.data.assign(data.begin(), data.end());
    ctx.writes.push_back(std::move(w));
    return Status::Ok();
  }
  Result<LogOffset> offset = AppendRecord(MakeUpdateRecord(oid, data, key),
                                          {oid});
  return offset.status();
}

Status TangoRuntime::QueryHelper(ObjectId oid, std::optional<uint64_t> key) {
  TxContext& ctx = Tls();
  if (ctx.active) {
    std::lock_guard<std::mutex> lock(playback_mu_);
    if (!objects_.contains(oid)) {
      // §4.1 D: transactions cannot read objects without a local view.
      return Status(StatusCode::kInvalidArgument,
                    "transactional read of unhosted object");
    }
    ReadDep dep;
    dep.oid = oid;
    dep.has_key = key.has_value();
    dep.key = key.value_or(0);
    dep.version = SnapshotVersionLocked(oid, key);
    for (const ReadDep& existing : ctx.reads) {
      if (existing.oid == dep.oid && existing.has_key == dep.has_key &&
          existing.key == dep.key) {
        return Status::Ok();  // first-read version already recorded
      }
    }
    ctx.reads.push_back(dep);
    return Status::Ok();
  }

  // Linearizable accessor: place a marker at the current tail and play all
  // hosted streams up to it (§3.1, Consistency).
  obs::TraceScope span("runtime.query");
  Result<LogOffset> tail = log_->CheckTail();
  if (!tail.ok()) {
    return tail.status();
  }
  std::lock_guard<std::mutex> lock(playback_mu_);
  return PlayUntil(*tail);
}

Status TangoRuntime::SyncTo(LogOffset limit) {
  std::lock_guard<std::mutex> lock(playback_mu_);
  return PlayUntil(limit);
}

// --- transactions ----------------------------------------------------------------

Status TangoRuntime::BeginTx() {
  TxContext& ctx = Tls();
  if (ctx.active) {
    return Status(StatusCode::kFailedPrecondition,
                  "nested transactions are not supported");
  }
  ctx.active = true;
  ctx.writes.clear();
  ctx.reads.clear();
  return Status::Ok();
}

void TangoRuntime::AbortTx() {
  TxContext& ctx = Tls();
  ctx.active = false;
  ctx.writes.clear();
  ctx.reads.clear();
}

bool TangoRuntime::InTx() const { return Tls().active; }

Status TangoRuntime::EndTx() {
  TxContext& ctx = Tls();
  // A non-empty commit lands in exactly one outcome counter, so
  // runtime.txn.attempts == commits + aborts + timeouts + errors.
  bool counted = ctx.active && (!ctx.writes.empty() || !ctx.reads.empty());
  obs::TraceScope span("txn.commit");
  if (counted) {
    txn_attempts_->Add();
  }
  uint64_t start_us =
      counted && obs::MetricsEnabled() ? NowMicros() : 0;
  Status st = EndTxImpl();
  if (start_us != 0 && (st.ok() || st == StatusCode::kAborted)) {
    // Aborts count against the objective too: a conflict retry is latency
    // the caller eats, not a free pass.
    obs::SloTracker::Default().Record(obs::SloOp::kTxnCommit,
                                      NowMicros() - start_us);
  }
  if (counted) {
    if (st.ok()) {
      txn_commits_->Add();
    } else if (st == StatusCode::kAborted) {
      txn_aborts_->Add();
    } else if (st == StatusCode::kTimeout) {
      txn_timeouts_->Add();
    } else {
      txn_errors_->Add();
    }
  }
  return st;
}

Status TangoRuntime::EndTxImpl() {
  TxContext& ctx = Tls();
  if (!ctx.active) {
    return Status(StatusCode::kFailedPrecondition, "no active transaction");
  }
  std::vector<WriteOp> writes = std::move(ctx.writes);
  std::vector<ReadDep> reads = std::move(ctx.reads);
  AbortTx();  // clear the context whatever happens below

  if (writes.empty() && reads.empty()) {
    return Status::Ok();
  }

  if (writes.empty()) {
    // Read-only transaction: no commit record; check the tail (one round
    // trip to the sequencer), play forward, validate locally (§3.2).
    Result<LogOffset> tail = log_->CheckTail();
    if (!tail.ok()) {
      return tail.status();
    }
    std::lock_guard<std::mutex> lock(playback_mu_);
    TANGO_RETURN_IF_ERROR(PlayUntil(*tail));
    return ValidateReads(reads)
               ? Status::Ok()
               : Status(StatusCode::kAborted, "read-only validation failed");
  }

  TxId txid = NextTxId();
  std::vector<StreamId> streams;
  for (const WriteOp& w : writes) {
    if (std::find(streams.begin(), streams.end(), w.oid) == streams.end()) {
      streams.push_back(w.oid);
    }
  }

  // Does any client potentially host a written object without the read set?
  // Hosted objects say so via their config; writes to objects we do not host
  // are conservatively assumed to need a decision record.
  bool needs_decision = false;
  bool in_hosted_stream = false;
  {
    std::lock_guard<std::mutex> lock(playback_mu_);
    for (StreamId oid : streams) {
      auto it = objects_.find(oid);
      if (it == objects_.end() || it->second.config.needs_decision_records) {
        needs_decision = true;
      }
      if (it != objects_.end()) {
        in_hosted_stream = true;
      }
    }
    if (!reads.empty()) {
      for (const ReadDep& dep : reads) {
        if (!objects_.contains(dep.oid)) {
          return Status(StatusCode::kInvalidArgument,
                        "transactional read of unhosted object");
        }
      }
    }
  }

  Record commit_record = MakeCommitRecord(txid, std::move(writes), reads);
  Result<LogOffset> position = AppendRecord(commit_record, streams);
  if (!position.ok()) {
    return position.status();
  }

  bool committed;
  if (reads.empty()) {
    // Write-only transaction: commits unconditionally; no playback needed
    // before returning to the caller (§3.2).
    committed = true;
  } else {
    // Play forward to the commit position.  Outcomes:
    //   * our commit was processed via a hosted stream: use its decision;
    //   * the pipeline drained past our position without meeting it (pure
    //     remote-write): every hosted view sits exactly at the commit
    //     position, so validate the read set directly;
    //   * the pipeline is stalled behind an *earlier* undecided commit:
    //     queue our commit in order if no hosted stream carries it, then
    //     keep playing to the advancing tail so the blocking decision
    //     record (which lands *after* our position) gets processed.  The
    //     chain always unwinds — the earliest undecided commit's generator
    //     hosts its own read set and never stalls on itself.
    uint64_t deadline_us =
        NowMicros() + 2000ull * options_.decision_timeout_ms;
    LogOffset play_limit = *position + 1;
    bool inserted_manually = false;
    while (true) {
      std::unique_lock<std::mutex> lock(playback_mu_);
      TANGO_RETURN_IF_ERROR(PlayUntil(play_limit));
      {
        std::lock_guard<std::mutex> decision_lock(decision_mu_);
        auto it = decided_.find(txid);
        if (it != decided_.end()) {
          committed = it->second;
          break;
        }
      }
      if (!in_hosted_stream && !inserted_manually) {
        if (!barrier_tx_.has_value() || barrier_offset_ > *position) {
          committed = ValidateReads(reads);
          std::lock_guard<std::mutex> decision_lock(decision_mu_);
          decided_.emplace(txid, committed);
          break;
        }
        // Stalled below our position and no stream will deliver our commit
        // to this pipeline: inject it at its log position so it validates
        // in order once the barrier clears.
        TANGO_RETURN_IF_ERROR(ProcessRecord(*position, commit_record, {}));
        inserted_manually = true;
        continue;  // the injection may already have resolved
      }
      lock.unlock();
      if (NowMicros() > deadline_us) {
        return Status(StatusCode::kTimeout,
                      "commit blocked behind an undecided transaction");
      }
      // The blocking decision record is usually one append behind; poll
      // tightly so the pipeline restarts as soon as it lands.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      Result<LogOffset> tail = log_->CheckTail();
      if (tail.ok() && *tail > play_limit) {
        play_limit = *tail;
      }
    }
  }

  if (needs_decision && !reads.empty()) {
    TANGO_RETURN_IF_ERROR(AppendDecision(txid, committed, streams));
  }
  return committed ? Status::Ok()
                   : Status(StatusCode::kAborted, "read-set conflict");
}

Status TangoRuntime::EndTxStale() {
  TxContext& ctx = Tls();
  if (!ctx.active) {
    return Status(StatusCode::kFailedPrecondition, "no active transaction");
  }
  if (!ctx.writes.empty()) {
    AbortTx();
    return Status(StatusCode::kInvalidArgument,
                  "stale-snapshot commit is read-only");
  }
  std::vector<ReadDep> reads = std::move(ctx.reads);
  AbortTx();
  std::lock_guard<std::mutex> lock(playback_mu_);
  return ValidateReads(reads)
             ? Status::Ok()
             : Status(StatusCode::kAborted, "stale snapshot conflicted");
}

// --- checkpoints & GC ---------------------------------------------------------------

Result<LogOffset> TangoRuntime::WriteCheckpoint(ObjectId oid) {
  Result<LogOffset> tail = log_->CheckTail();
  if (!tail.ok()) {
    return tail.status();
  }
  std::vector<uint8_t> wrapped;
  LogOffset covered;
  {
    std::lock_guard<std::mutex> lock(playback_mu_);
    auto it = objects_.find(oid);
    if (it == objects_.end()) {
      return Status(StatusCode::kNotFound, "oid not registered");
    }
    if (!it->second.object->SupportsCheckpoint()) {
      return Status(StatusCode::kInvalidArgument,
                    "object does not support checkpoints");
    }
    TANGO_RETURN_IF_ERROR(PlayUntil(*tail));
    covered = it->second.last_consumed;
    wrapped = WrapCheckpoint(it->second.version, it->second.unkeyed_version,
                             it->second.key_versions,
                             it->second.object->Checkpoint());
  }
  std::vector<uint8_t> payload =
      EncodeRecord(MakeCheckpointRecord(oid, covered, std::move(wrapped)));
  return log_->AppendToStreams(payload, {oid});
}

Status TangoRuntime::LoadObject(ObjectId oid) {
  std::lock_guard<std::mutex> lock(playback_mu_);
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status(StatusCode::kNotFound, "oid not registered");
  }
  Result<LogOffset> synced = store_.Sync(oid);
  if (!synced.ok()) {
    return synced.status();
  }
  const std::vector<LogOffset>& offsets = store_.KnownOffsets(oid);

  // Search newest-first for the latest checkpoint record, prefetching
  // backward so the scan batches its reads.
  bool history_trimmed = false;
  for (auto rit = offsets.rbegin(); rit != offsets.rend(); ++rit) {
    Result<std::shared_ptr<const corfu::LogEntry>> entry = store_.FetchEntry(
        *rit, corfu::StreamStore::PrefetchDirection::kBackward);
    if (!entry.ok()) {
      if (entry.status() == StatusCode::kTrimmed) {
        history_trimmed = true;
        break;  // nothing older survives
      }
      return entry.status();
    }
    if ((*entry)->is_junk()) {
      continue;
    }
    Result<std::vector<Record>> records = DecodeRecords((*entry)->payload);
    if (!records.ok()) {
      return records.status();
    }
    for (const Record& record : *records) {
      if (record.type != RecordType::kCheckpoint ||
          record.checkpoint.oid != oid) {
        continue;
      }
      // Restore the envelope: versions first, then the object snapshot.
      ByteReader r(record.checkpoint.state);
      ObjectState& state = it->second;
      state.version = r.GetU64();
      state.unkeyed_version = r.GetU64();
      uint32_t nkeys = r.GetU32();
      state.key_versions.clear();
      for (uint32_t i = 0; i < nkeys; ++i) {
        uint64_t key = r.GetU64();
        state.key_versions[key] = r.GetU64();
      }
      std::vector<uint8_t> snapshot = r.GetBlob();
      if (!r.ok()) {
        return Status(StatusCode::kInternal, "malformed checkpoint envelope");
      }
      state.object->Clear();
      state.object->Restore(snapshot);
      state.last_consumed = *rit;
      if (record.checkpoint.covered == kInvalidOffset) {
        store_.ResetCursor(oid);
      } else {
        store_.SeekCursorAfter(oid, record.checkpoint.covered);
      }
      return Status::Ok();
    }
  }

  if (history_trimmed) {
    return Status(StatusCode::kFailedPrecondition,
                  "stream history trimmed and no checkpoint found");
  }
  // No checkpoint: rebuild by full replay.
  ObjectState& state = it->second;
  state.object->Clear();
  state.version = kInvalidOffset;
  state.unkeyed_version = kInvalidOffset;
  state.key_versions.clear();
  state.last_consumed = kInvalidOffset;
  store_.ResetCursor(oid);
  return Status::Ok();
}

Status TangoRuntime::Forget(ObjectId oid, LogOffset offset) {
  std::lock_guard<std::mutex> lock(playback_mu_);
  if (!objects_.contains(oid)) {
    return Status(StatusCode::kNotFound, "oid not registered");
  }
  forget_offsets_[oid] = offset;
  LogOffset min_forget = kInvalidOffset;
  for (const auto& [id, state] : objects_) {
    auto it = forget_offsets_.find(id);
    LogOffset f = it == forget_offsets_.end() ? 0 : it->second;
    min_forget = std::min(min_forget, f);
  }
  if (min_forget == 0 || min_forget == kInvalidOffset) {
    return Status::Ok();
  }
  return log_->TrimPrefix(min_forget);
}

TangoRuntime::Stats TangoRuntime::stats() const {
  Stats s;
  s.commits = stats_.commits.load(std::memory_order_relaxed);
  s.aborts = stats_.aborts.load(std::memory_order_relaxed);
  s.updates_applied = stats_.updates_applied.load(std::memory_order_relaxed);
  s.entries_played = stats_.entries_played.load(std::memory_order_relaxed);
  s.decisions_appended =
      stats_.decisions_appended.load(std::memory_order_relaxed);
  s.decision_stalls = stats_.decision_stalls.load(std::memory_order_relaxed);
  return s;
}

}  // namespace tango
