#include "src/runtime/batcher.h"

#include <algorithm>
#include <chrono>

namespace tango {

using corfu::LogOffset;
using corfu::StreamId;

Result<LogOffset> Batcher::Append(Record record,
                                  std::vector<StreamId> streams) {
  auto result = std::make_shared<SlotResult>();
  std::unique_lock<std::mutex> lock(mu_);
  pending_.push_back(Slot{std::move(record), std::move(streams), result});
  ++records_batched_;
  if (pending_.size() >= options_.max_records) {
    cv_.notify_all();  // a waiting leader can flush immediately
  }

  // Until our slot resolves, either follow an active leader or — when the
  // leadership is free and our slot is still pending (e.g. we arrived while
  // the previous leader was already flushing its snapshot) — lead the next
  // batch ourselves.
  while (!result->done) {
    if (leader_active_) {
      cv_.wait(lock,
               [&] { return result->done || !leader_active_; });
      continue;
    }
    leader_active_ = true;
    // Give followers a short window to pile on, unless the batch fills.
    cv_.wait_for(lock, std::chrono::microseconds(options_.window_us),
                 [this] { return pending_.size() >= options_.max_records; });
    // Take at most max_records (the paper's fixed batch size); any overflow
    // stays queued for the next leader, which a remaining owner becomes as
    // soon as we release leadership.
    std::vector<Slot> slots;
    if (pending_.size() <= options_.max_records) {
      slots.swap(pending_);
    } else {
      slots.assign(std::make_move_iterator(pending_.begin()),
                   std::make_move_iterator(pending_.begin() +
                                           options_.max_records));
      pending_.erase(pending_.begin(), pending_.begin() + options_.max_records);
    }
    lock.unlock();
    Flush(std::move(slots));
    lock.lock();
    leader_active_ = false;
    cv_.notify_all();
  }

  lock.unlock();
  if (!result->status.ok()) {
    return result->status;
  }
  return result->offset;
}

void Batcher::Flush(std::vector<Slot> slots) {
  // Pack greedily under the page budget, leaving margin for the entry
  // header and per-stream backpointer headers.
  const size_t page_budget =
      log_->projection().page_size > 512 ? log_->projection().page_size - 512
                                         : log_->projection().page_size;

  size_t begin = 0;
  while (begin < slots.size()) {
    std::vector<Record> records;
    std::vector<StreamId> streams;
    size_t end = begin;
    size_t encoded_size = 2;  // record-count prefix
    while (end < slots.size()) {
      std::vector<uint8_t> one = EncodeRecord(slots[end].record);
      size_t record_size = one.size() - 2;
      if (end > begin && encoded_size + record_size > page_budget) {
        break;
      }
      encoded_size += record_size;
      records.push_back(slots[end].record);
      for (StreamId s : slots[end].streams) {
        if (std::find(streams.begin(), streams.end(), s) == streams.end()) {
          streams.push_back(s);
        }
      }
      ++end;
    }

    std::vector<uint8_t> payload = EncodeRecords(records);
    Result<LogOffset> offset = log_->AppendToStreams(payload, streams);
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = begin; i < end; ++i) {
        slots[i].result->status = offset.status();
        slots[i].result->offset = offset.ok() ? *offset : corfu::kInvalidOffset;
        slots[i].result->done = true;
      }
      ++batches_flushed_;
    }
    cv_.notify_all();
    begin = end;
  }
}

}  // namespace tango
