#include "src/runtime/batcher.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/corfu/entry.h"

namespace tango {

using corfu::LogOffset;
using corfu::StreamId;

Result<LogOffset> Batcher::Append(Record record,
                                  std::vector<StreamId> streams) {
  // Size the record against an entry that would carry it alone.  Rejecting
  // here — before the slot is enqueued — is what keeps an impossible record
  // from burning a sequencer token and leaving a junk hole behind.
  corfu::Projection p = log_->projection();
  std::vector<uint8_t> body = EncodeRecordBody(record);
  if (corfu::EntryOverheadBound(streams.size(), p.backpointer_count) + 2 +
          body.size() >
      p.page_size) {
    return Status(StatusCode::kOutOfRange, "record exceeds page size");
  }

  auto result = std::make_shared<SlotResult>();
  Shared& s = *shared_;
  std::unique_lock<std::mutex> lock(s.mu);
  s.pending.push_back(Slot{std::move(body), std::move(streams), result});
  ++s.records_batched;
  if (s.pending.size() >= options_.max_records) {
    s.cv.notify_all();  // a waiting leader can flush immediately
  }

  // Until our slot resolves, either follow an active leader or — when the
  // leadership is free and records are pending — lead the next batch
  // ourselves.  Because flushes are asynchronous, our own slot may already
  // be in flight while pending is empty; then we just wait for completion.
  while (!result->done) {
    if (s.leader_active) {
      s.cv.wait(lock, [&] { return result->done || !s.leader_active; });
      continue;
    }
    if (s.pending.empty()) {
      s.cv.wait(lock, [&] {
        return result->done || (!s.pending.empty() && !s.leader_active);
      });
      continue;
    }
    s.leader_active = true;
    // Give followers a short window to pile on, unless the batch fills.
    s.cv.wait_for(lock, std::chrono::microseconds(options_.window_us),
                  [&] { return s.pending.size() >= options_.max_records; });
    // Take at most max_records (the paper's fixed batch size); any overflow
    // stays queued for the next leader, which a remaining owner becomes as
    // soon as we release leadership.
    std::vector<Slot> slots;
    if (s.pending.size() <= options_.max_records) {
      slots.swap(s.pending);
    } else {
      slots.assign(std::make_move_iterator(s.pending.begin()),
                   std::make_move_iterator(s.pending.begin() +
                                           options_.max_records));
      s.pending.erase(s.pending.begin(),
                      s.pending.begin() + options_.max_records);
    }
    lock.unlock();
    Flush(std::move(slots));
    lock.lock();
    s.leader_active = false;
    s.cv.notify_all();
  }

  lock.unlock();
  if (!result->status.ok()) {
    return result->status;
  }
  return result->offset;
}

void Batcher::Flush(std::vector<Slot> slots) {
  const corfu::Projection p = log_->projection();
  const size_t header_cost = corfu::StreamHeaderBound(p.backpointer_count);

  size_t begin = 0;
  while (begin < slots.size()) {
    // Pack greedily but exactly: an entry costs its fixed framing, one
    // header per distinct stream, the 2-byte record-count prefix, and the
    // record bodies.  Every term is known up front, so a packed batch can
    // fill the page to the last byte and never exceeds it at the append.
    std::vector<std::vector<uint8_t>> bodies;
    std::vector<StreamId> streams;
    size_t end = begin;
    size_t size = corfu::EntryOverheadBound(0, p.backpointer_count) + 2;
    while (end < slots.size()) {
      size_t new_streams = 0;
      for (size_t i = 0; i < slots[end].streams.size(); ++i) {
        StreamId s = slots[end].streams[i];
        bool seen =
            std::find(streams.begin(), streams.end(), s) != streams.end() ||
            std::find(slots[end].streams.begin(), slots[end].streams.begin() + i,
                      s) != slots[end].streams.begin() + i;
        if (!seen) {
          ++new_streams;
        }
      }
      size_t projected =
          size + slots[end].body.size() + new_streams * header_cost;
      if (end > begin && projected > p.page_size) {
        break;
      }
      size = projected;
      for (StreamId s : slots[end].streams) {
        if (std::find(streams.begin(), streams.end(), s) == streams.end()) {
          streams.push_back(s);
        }
      }
      bodies.push_back(std::move(slots[end].body));
      ++end;
    }

    std::vector<uint8_t> payload = AssembleRecordsPayload(bodies);
    // One completion resolves every record of the entry — success or
    // failure — so no follower can be left waiting on a dropped Status.
    // The callback captures the shared state (not the Batcher), keeping the
    // mutex and cv alive even if the Batcher is destroyed the instant its
    // last waiter wakes.
    auto results = std::make_shared<std::vector<std::shared_ptr<SlotResult>>>();
    results->reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      results->push_back(slots[i].result);
    }
    std::shared_ptr<Shared> shared = shared_;
    log_->pipeline().Submit(
        payload, std::move(streams),
        [shared, results](const Status& st, LogOffset offset) {
          {
            std::lock_guard<std::mutex> lock(shared->mu);
            for (const std::shared_ptr<SlotResult>& r : *results) {
              r->status = st;
              r->offset = st.ok() ? offset : corfu::kInvalidOffset;
              r->done = true;
            }
            ++shared->batches_flushed;
          }
          shared->cv.notify_all();
        });
    begin = end;
  }
}

}  // namespace tango
