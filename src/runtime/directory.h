// TangoDirectory: the naming service mapping human-readable object names to
// OIDs (§3.2, Naming).  The directory is itself a Tango object stored on a
// hard-coded stream (kDirectoryOid), so every client converges on the same
// name->OID assignment through ordinary playback.
//
// OID allocation is deterministic: a create record carries only the name;
// each view assigns the next free OID in log order, so two clients racing to
// create the same name agree on one OID, and races on different names agree
// on disjoint OIDs.
//
// The directory also tracks per-object forget offsets for safe garbage
// collection: the shared log may only be trimmed below the minimum forget
// offset across all named objects, because a multiappended commit record is
// reclaimed only when every involved object has forgotten it.

#ifndef SRC_RUNTIME_DIRECTORY_H_
#define SRC_RUNTIME_DIRECTORY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/runtime/object.h"
#include "src/runtime/record.h"
#include "src/runtime/runtime.h"
#include "src/util/status.h"

namespace tango {

class TangoDirectory : public TangoObject {
 public:
  // Registers itself on `runtime` under kDirectoryOid.
  explicit TangoDirectory(TangoRuntime* runtime);
  ~TangoDirectory() override;

  TangoDirectory(const TangoDirectory&) = delete;
  TangoDirectory& operator=(const TangoDirectory&) = delete;

  // Returns the OID for `name`, creating the binding if absent.
  Result<ObjectId> Open(const std::string& name);

  // Returns the OID for `name` or kNotFound (linearizable).
  Result<ObjectId> Lookup(const std::string& name);

  // All current bindings (for inspection / tooling).
  std::map<std::string, ObjectId> List();

  // Records that `oid` will never be examined below `offset`, then trims the
  // log below the minimum forget offset across all named objects.
  Status Forget(ObjectId oid, corfu::LogOffset offset);

  // The current trim horizon (minimum forget offset across named objects).
  Result<corfu::LogOffset> TrimHorizon();

  // --- TangoObject ---
  void Apply(std::span<const uint8_t> update, corfu::LogOffset offset) override;
  void Clear() override;
  bool SupportsCheckpoint() const override { return true; }
  std::vector<uint8_t> Checkpoint() const override;
  void Restore(std::span<const uint8_t> state) override;

 private:
  enum Op : uint8_t { kCreate = 1, kForget = 2 };

  TangoRuntime* runtime_;

  mutable std::mutex mu_;
  std::map<std::string, ObjectId> names_;
  std::unordered_map<ObjectId, corfu::LogOffset> forgets_;
  ObjectId next_oid_ = kDirectoryOid + 1;
};

}  // namespace tango

#endif  // SRC_RUNTIME_DIRECTORY_H_
