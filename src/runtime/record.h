// Runtime record formats (§3, §4).
//
// Every log entry appended by the Tango runtime carries a batch of records
// (the paper batches up to 4 commit records per 4KB entry).  Record kinds:
//
//   kUpdate     — a mutation produced by update_helper outside a transaction.
//   kCommit     — a speculative transaction commit record: the buffered write
//                 set (with payloads inline) plus the read set with the
//                 versions observed at read time.
//   kDecision   — the commit/abort outcome of an earlier commit record,
//                 appended by the generating client (or, after a timeout, by
//                 any client hosting the read set) so that clients lacking
//                 the read set can learn the outcome (§4.1, Figure 6).
//   kCheckpoint — a serialized object snapshot plus the stream position it
//                 covers, enabling forget/trim and fast view instantiation.
//
// Versions are log offsets: an object's (or key's) version is the offset of
// the last entry that modified it, exactly as the paper defines.

#ifndef SRC_RUNTIME_RECORD_H_
#define SRC_RUNTIME_RECORD_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/corfu/types.h"
#include "src/util/serialize.h"
#include "src/util/status.h"

namespace tango {

// An object id doubles as the id of the stream the object lives on.
using ObjectId = corfu::StreamId;
inline constexpr ObjectId kDirectoryOid = 0;

// Transaction id: unique per (runtime instance, transaction).
using TxId = uint64_t;

enum class RecordType : uint8_t {
  kUpdate = 1,
  kCommit = 2,
  kDecision = 3,
  kCheckpoint = 4,
};

// A single write: target object, optional fine-grained key, opaque payload.
struct WriteOp {
  ObjectId oid = 0;
  bool has_key = false;
  uint64_t key = 0;
  std::vector<uint8_t> data;
};

// A read-set element: what was read and the version observed.
struct ReadDep {
  ObjectId oid = 0;
  bool has_key = false;
  uint64_t key = 0;
  corfu::LogOffset version = corfu::kInvalidOffset;
};

struct UpdateRecord {
  WriteOp write;
};

struct CommitRecord {
  TxId txid = 0;
  std::vector<WriteOp> writes;
  std::vector<ReadDep> reads;
};

struct DecisionRecord {
  TxId txid = 0;
  bool commit = false;
};

struct CheckpointRecord {
  ObjectId oid = 0;
  // The checkpoint reflects every entry of the object's stream at offsets
  // <= covered; replay resumes strictly after it.
  corfu::LogOffset covered = corfu::kInvalidOffset;
  std::vector<uint8_t> state;
};

struct Record {
  RecordType type = RecordType::kUpdate;
  UpdateRecord update;
  CommitRecord commit;
  DecisionRecord decision;
  CheckpointRecord checkpoint;
};

// Encodes a batch of records into one entry payload.
std::vector<uint8_t> EncodeRecords(std::span<const Record> records);
Result<std::vector<Record>> DecodeRecords(std::span<const uint8_t> payload);

// Convenience single-record wrappers.
std::vector<uint8_t> EncodeRecord(const Record& record);

// One record's wire body without the batch count prefix.  The group-commit
// packer sizes batches with these: AssembleRecordsPayload(bodies) is
// byte-identical to EncodeRecords of the same records, so the packed size is
// exactly 2 + sum(body sizes).
std::vector<uint8_t> EncodeRecordBody(const Record& record);
std::vector<uint8_t> AssembleRecordsPayload(
    std::span<const std::vector<uint8_t>> bodies);

Record MakeUpdateRecord(ObjectId oid, std::span<const uint8_t> data,
                        std::optional<uint64_t> key);
Record MakeCommitRecord(TxId txid, std::vector<WriteOp> writes,
                        std::vector<ReadDep> reads);
Record MakeDecisionRecord(TxId txid, bool commit);
Record MakeCheckpointRecord(ObjectId oid, corfu::LogOffset covered,
                            std::vector<uint8_t> state);

}  // namespace tango

#endif  // SRC_RUNTIME_RECORD_H_
