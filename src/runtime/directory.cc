#include "src/runtime/directory.h"

#include <algorithm>

#include "src/util/logging.h"

namespace tango {

TangoDirectory::TangoDirectory(TangoRuntime* runtime) : runtime_(runtime) {
  Status st = runtime_->RegisterObject(kDirectoryOid, this);
  TANGO_CHECK(st.ok()) << "directory registration failed: " << st.ToString();
  // Instantiate from the latest checkpoint if the directory's early history
  // has already been trimmed (fresh client joining a long-lived deployment).
  (void)runtime_->LoadObject(kDirectoryOid);
}

TangoDirectory::~TangoDirectory() {
  (void)runtime_->UnregisterObject(kDirectoryOid);
}

void TangoDirectory::Apply(std::span<const uint8_t> update,
                           corfu::LogOffset /*offset*/) {
  ByteReader r(update);
  Op op = static_cast<Op>(r.GetU8());
  std::lock_guard<std::mutex> lock(mu_);
  switch (op) {
    case kCreate: {
      std::string name = r.GetString();
      if (!r.ok() || names_.contains(name)) {
        return;  // duplicate create: first one in log order won
      }
      ObjectId oid = next_oid_++;
      names_.emplace(std::move(name), oid);
      forgets_.emplace(oid, 0);
      return;
    }
    case kForget: {
      ObjectId oid = r.GetU32();
      corfu::LogOffset offset = r.GetU64();
      if (!r.ok()) {
        return;
      }
      auto it = forgets_.find(oid);
      if (it != forgets_.end() && offset > it->second) {
        it->second = offset;
      }
      return;
    }
  }
}

void TangoDirectory::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  names_.clear();
  forgets_.clear();
  next_oid_ = kDirectoryOid + 1;
}

std::vector<uint8_t> TangoDirectory::Checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  ByteWriter w;
  w.PutU32(next_oid_);
  w.PutU32(static_cast<uint32_t>(names_.size()));
  for (const auto& [name, oid] : names_) {
    w.PutString(name);
    w.PutU32(oid);
    auto it = forgets_.find(oid);
    w.PutU64(it == forgets_.end() ? 0 : it->second);
  }
  return w.Take();
}

void TangoDirectory::Restore(std::span<const uint8_t> state) {
  ByteReader r(state);
  std::lock_guard<std::mutex> lock(mu_);
  names_.clear();
  forgets_.clear();
  next_oid_ = r.GetU32();
  uint32_t count = r.GetU32();
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    std::string name = r.GetString();
    ObjectId oid = r.GetU32();
    corfu::LogOffset forget = r.GetU64();
    names_.emplace(std::move(name), oid);
    forgets_.emplace(oid, forget);
  }
}

Result<ObjectId> TangoDirectory::Lookup(const std::string& name) {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(kDirectoryOid));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = names_.find(name);
  if (it == names_.end()) {
    return Status(StatusCode::kNotFound, "no such object name");
  }
  return it->second;
}

Result<ObjectId> TangoDirectory::Open(const std::string& name) {
  Result<ObjectId> existing = Lookup(name);
  if (existing.ok() || existing.status() != StatusCode::kNotFound) {
    return existing;
  }
  ByteWriter w;
  w.PutU8(kCreate);
  w.PutString(name);
  TANGO_RETURN_IF_ERROR(runtime_->UpdateHelper(kDirectoryOid, w.bytes()));
  // Racing creates converge: the first create record in log order assigns
  // the OID; re-reading after playback yields the winner.
  return Lookup(name);
}

std::map<std::string, ObjectId> TangoDirectory::List() {
  (void)runtime_->QueryHelper(kDirectoryOid);
  std::lock_guard<std::mutex> lock(mu_);
  return names_;
}

Status TangoDirectory::Forget(ObjectId oid, corfu::LogOffset offset) {
  ByteWriter w;
  w.PutU8(kForget);
  w.PutU32(oid);
  w.PutU64(offset);
  TANGO_RETURN_IF_ERROR(runtime_->UpdateHelper(kDirectoryOid, w.bytes()));
  Result<corfu::LogOffset> horizon = TrimHorizon();
  if (!horizon.ok()) {
    return horizon.status();
  }
  if (*horizon > 0) {
    // The trim also reclaims the directory's own early records; checkpoint
    // ourselves first so fresh clients can still instantiate the directory.
    Result<corfu::LogOffset> checkpoint =
        runtime_->WriteCheckpoint(kDirectoryOid);
    if (!checkpoint.ok()) {
      return checkpoint.status();
    }
    return runtime_->log()->TrimPrefix(*horizon);
  }
  return Status::Ok();
}

Result<corfu::LogOffset> TangoDirectory::TrimHorizon() {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(kDirectoryOid));
  std::lock_guard<std::mutex> lock(mu_);
  corfu::LogOffset horizon = corfu::kInvalidOffset;
  for (const auto& [oid, forget] : forgets_) {
    horizon = std::min(horizon, forget);
  }
  if (horizon == corfu::kInvalidOffset) {
    horizon = 0;  // no named objects yet: nothing is trimmable
  }
  return horizon;
}

}  // namespace tango
