// TangoRuntime: the client-side runtime that turns a shared log into
// replicated in-memory data structures (§3) with cross-object transactions
// (§4) over layered partitions.
//
// Each registered object is bound to a stream (its ObjectId doubles as the
// StreamId).  The runtime plays all hosted streams in a single global-offset
// order, so a multiappended commit record is observed exactly once with
// every involved local view synced to the same position — this is what makes
// the deterministic commit/abort evaluation identical on every client.
//
// Concurrency model: any number of application threads may call the helpers
// concurrently.  Appends go straight to the log (CorfuClient is thread
// safe); playback and the version tables are guarded by one playback mutex.
// Transaction contexts live in thread-local storage, as in the paper.
//
// Decision records (§4.1): a commit record whose read set includes objects
// not hosted locally cannot be evaluated; the runtime stalls its apply
// pipeline (scanning continues) until the generating client's decision
// record arrives.  Clients that *can* evaluate such a transaction append the
// decision record themselves after a timeout if the generator crashed.

#ifndef SRC_RUNTIME_RUNTIME_H_
#define SRC_RUNTIME_RUNTIME_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/corfu/log_client.h"
#include "src/corfu/stream.h"
#include "src/runtime/batcher.h"
#include "src/runtime/object.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/playback.h"
#include "src/runtime/record.h"
#include "src/util/status.h"

namespace tango {

class TangoRuntime {
 public:
  struct Options {
    // After this long without a decision record for a pending transaction,
    // a client hosting the read set appends the decision itself.
    uint32_t decision_timeout_ms = 1000;
    // Group commit (§6): batch up to batch.max_records records per log
    // entry, as in the paper's evaluation setup ("a batch of 4 commit
    // records in each log entry").  Off by default: batching trades append
    // latency for bandwidth.
    bool enable_batching = false;
    Batcher::Options batch;
    // Read path: entry-cache sizing and read-ahead depth for playback.  The
    // default prefetches 32 known offsets per batched read, so PlayUntil and
    // LoadObject amortize the per-RPC transport cost; set readahead to 0 for
    // the one-round-trip-per-entry path.
    corfu::StreamStore::Options store{.cache_capacity = 8192, .readahead = 32};
    // Parallel playback (src/runtime/playback.h): entries with disjoint
    // object/key access sets apply concurrently on a worker pool while the
    // next window's fetch overlaps the current window's apply.  -1 = auto
    // (min(4, cores/2) workers), 0 = the single-threaded reference path,
    // N > 0 = exactly N workers.  The engine (and its threads) is created
    // lazily on the first playback that can use it.
    int playback_workers = -1;
    // Max entries in flight inside the parallel apply window.
    size_t playback_window = 64;
  };

  struct Stats {
    uint64_t commits = 0;
    uint64_t aborts = 0;
    uint64_t updates_applied = 0;
    uint64_t entries_played = 0;
    uint64_t decisions_appended = 0;
    uint64_t decision_stalls = 0;
  };

  explicit TangoRuntime(corfu::CorfuClient* log)
      : TangoRuntime(log, Options{}) {}
  TangoRuntime(corfu::CorfuClient* log, Options options);
  ~TangoRuntime();

  TangoRuntime(const TangoRuntime&) = delete;
  TangoRuntime& operator=(const TangoRuntime&) = delete;

  // --- Object registration ------------------------------------------------

  // Binds `object` (owned by the caller, outliving the runtime) to `oid`.
  // The runtime starts hosting the object's view; call QueryHelper (or any
  // accessor) to bring it up to date.
  Status RegisterObject(ObjectId oid, TangoObject* object,
                        ObjectConfig config = ObjectConfig{});
  Status UnregisterObject(ObjectId oid);
  bool Hosts(ObjectId oid) const;

  // Rebuilds the view of a registered object from the log, restoring from
  // the latest checkpoint if the stream's history has been trimmed (or just
  // to skip replay).  Without a checkpoint this is equivalent to playback
  // from the beginning.
  Status LoadObject(ObjectId oid);

  // --- The object-facing helpers (§3.1) ------------------------------------

  // Outside a transaction: appends an update record to the object's stream
  // and returns immediately.  Inside a transaction: buffers the write.
  // `key` opts into fine-grained versioning for large objects (§3.2).
  Status UpdateHelper(ObjectId oid, std::span<const uint8_t> data,
                      std::optional<uint64_t> key = std::nullopt);

  // Outside a transaction: plays all hosted streams forward to the current
  // log tail (the linearizable read barrier).  Inside a transaction: records
  // (oid, key, observed version) in the read set without playing.
  Status QueryHelper(ObjectId oid, std::optional<uint64_t> key = std::nullopt);

  // Plays hosted streams forward only up to `limit` (exclusive).  With a
  // freshly registered object this instantiates a historical view (§3.1,
  // History: time travel / coordinated rollback).
  Status SyncTo(corfu::LogOffset limit);

  // --- Transactions (§3.2, §4) ---------------------------------------------

  // Starts a transaction in this thread's context.  Nesting is not
  // supported.
  Status BeginTx();

  // Commits: returns OK on commit, kAborted on a read-set conflict.
  // Read-only transactions skip the commit record (tail check + local
  // validation); write-only transactions commit immediately after append.
  // Every non-empty EndTx lands in exactly one registry outcome counter:
  // runtime.txn.attempts == commits + aborts + timeouts + errors.
  Status EndTx();

  // Read-only commit against the local (possibly stale) snapshot: validates
  // without any log interaction (§3.2, Read-only transactions).
  Status EndTxStale();

  // Discards the transaction context without touching the log.
  void AbortTx();

  bool InTx() const;

  // --- Checkpoints and garbage collection (§3.1) ----------------------------

  // Syncs the object, serializes its state (plus the runtime's version
  // bookkeeping) and appends a checkpoint record to its stream.  Returns the
  // checkpoint's log offset.
  Result<corfu::LogOffset> WriteCheckpoint(ObjectId oid);

  // Declares that this object will never be rolled back below `offset`.
  // The log prefix below the *minimum* forget offset across registered
  // objects becomes trimmable; Forget performs the prefix trim when the
  // minimum advances.  (The Tango directory coordinates this across clients;
  // see src/runtime/directory.h.)
  Status Forget(ObjectId oid, corfu::LogOffset offset);

  Stats stats() const;
  corfu::CorfuClient* log() const { return log_; }
  // Read-path counters (cache hits/misses, prefetch batches) for benches and
  // tests; read it only while playback is quiescent.
  const corfu::StreamStore& store() const { return store_; }

  // Exposed for tests: the current version of (oid) or (oid, key).
  corfu::LogOffset VersionOf(ObjectId oid,
                             std::optional<uint64_t> key = std::nullopt) const;

 private:
  struct ObjectState {
    TangoObject* object = nullptr;
    ObjectConfig config;
    // Guards the version fields below: parallel playback bumps versions of
    // the same object from several workers (distinct keys commute, but the
    // bookkeeping itself must be serialized).  Heap-allocated so ObjectState
    // stays movable.
    std::unique_ptr<std::mutex> version_mu = std::make_unique<std::mutex>();
    // Version = last log offset whose entry modified the object (§3.2).
    corfu::LogOffset version = corfu::kInvalidOffset;
    // Fine-grained versions; a keyless write also invalidates every key.
    corfu::LogOffset unkeyed_version = corfu::kInvalidOffset;
    std::unordered_map<uint64_t, corfu::LogOffset> key_versions;
    // Last stream position consumed by playback (checkpoint coverage).
    // Dispatcher-only; not covered by version_mu.
    corfu::LogOffset last_consumed = corfu::kInvalidOffset;
  };

  struct TxContext {
    bool active = false;
    std::vector<WriteOp> writes;
    std::vector<ReadDep> reads;
    std::unordered_set<uint64_t> read_keys;  // dedupe (oid,key) pairs
  };

  // A transaction decided locally whose decision record hasn't been seen in
  // the log yet; appended by us if the generator fails to.
  struct AwaitedDecision {
    bool commit = false;
    std::vector<corfu::StreamId> streams;
    uint64_t deadline_us = 0;
  };

  TxContext& Tls() const;

  // --- playback core (playback_mu_ held by the dispatcher) -----------------
  // `fresh` lists the hosted objects whose stream cursor sat exactly at this
  // entry — only those views may apply its effects (an object registered
  // late replays old log positions that other objects already consumed).
  Status PlayUntil(corfu::LogOffset limit);
  Status ProcessRecord(corfu::LogOffset offset, const Record& record,
                       const std::vector<ObjectId>& fresh);
  // The apply helpers below are worker-safe: they touch version tables only
  // under the per-object version_mu and the decision maps only under
  // decision_mu_, so the playback engine may run them concurrently for
  // entries with disjoint access sets.
  Status ApplyCommit(corfu::LogOffset offset, const CommitRecord& commit,
                     const std::vector<ObjectId>& fresh);
  void ApplyUpdate(corfu::LogOffset offset, const WriteOp& write,
                   const std::vector<ObjectId>& fresh);
  Status ApplyEntryParallel(corfu::LogOffset offset,
                            const std::vector<Record>& records,
                            const std::vector<ObjectId>& fresh,
                            obs::TraceContext trace_ctx);
  bool CanEvaluate(const CommitRecord& commit) const;
  bool ValidateReads(const std::vector<ReadDep>& reads) const;
  void ApplyWrites(corfu::LogOffset offset, const std::vector<WriteOp>& writes,
                   const std::vector<ObjectId>& fresh);
  void BumpVersion(ObjectState& state, corfu::LogOffset offset, bool has_key,
                   uint64_t key);
  corfu::LogOffset CurrentVersion(const ObjectState& state, bool has_key,
                                  uint64_t key) const;
  void CheckDecisionDeadlines();

  // Dependency tracker: folds the entry's records into object/key-granular
  // accesses for the engine.  Returns false when the entry must take the
  // sequential path instead — it carries a decision record, or a commit
  // record this runtime cannot evaluate (the §4.1 stall barrier).
  bool CollectAccesses(const std::vector<Record>& records,
                       const std::vector<ObjectId>& fresh,
                       std::vector<PlaybackAccess>* accesses) const;
  // Resolved worker count (>=0) for this runtime's options.
  int PlaybackWorkers() const;

  corfu::LogOffset SnapshotVersionLocked(ObjectId oid,
                                         std::optional<uint64_t> key) const;

  Status EndTxImpl();

  TxId NextTxId();
  Status AppendDecision(TxId txid, bool commit,
                        const std::vector<corfu::StreamId>& streams);
  // Routes through the group-commit batcher when enabled.
  Result<corfu::LogOffset> AppendRecord(Record record,
                                        std::vector<corfu::StreamId> streams);

  corfu::CorfuClient* log_;
  Options options_;
  uint32_t client_id_;
  std::atomic<uint32_t> tx_seq_{1};
  std::unique_ptr<Batcher> batcher_;  // null unless enable_batching

  mutable std::mutex playback_mu_;
  corfu::StreamStore store_;
  std::unordered_map<ObjectId, ObjectState> objects_;

  // Decision machinery.  `decided_` and `awaited_decisions_` are read and
  // written by parallel apply workers (ApplyCommit) as well as the
  // dispatcher, so they get their own leaf lock: decision_mu_ is only ever
  // taken with no other runtime lock held, or under playback_mu_ — never the
  // other way around.  The barrier_*/stalled_ fields remain dispatcher-only
  // (the engine is quiesced whenever they are touched).
  struct StalledRecord {
    corfu::LogOffset offset;
    Record record;
    std::vector<ObjectId> fresh;
  };
  mutable std::mutex decision_mu_;
  std::unordered_map<TxId, bool> decided_;
  std::optional<TxId> barrier_tx_;
  corfu::LogOffset barrier_offset_ = corfu::kInvalidOffset;
  CommitRecord barrier_commit_;
  std::vector<ObjectId> barrier_fresh_;
  uint64_t barrier_since_us_ = 0;
  std::deque<StalledRecord> stalled_;
  std::unordered_map<TxId, AwaitedDecision> awaited_decisions_;

  // GC bookkeeping: per-object forget offsets (§3.2, Naming).
  std::unordered_map<ObjectId, corfu::LogOffset> forget_offsets_;

  // Atomic mirror of the public Stats struct: updates_applied and
  // commit/abort tallies are bumped from apply workers.
  struct AtomicStats {
    std::atomic<uint64_t> commits{0};
    std::atomic<uint64_t> aborts{0};
    std::atomic<uint64_t> updates_applied{0};
    std::atomic<uint64_t> entries_played{0};
    std::atomic<uint64_t> decisions_appended{0};
    std::atomic<uint64_t> decision_stalls{0};
  };
  AtomicStats stats_;

  // Registry instruments (see DESIGN.md "Observability").
  obs::Counter* txn_attempts_;
  obs::Counter* txn_commits_;
  obs::Counter* txn_aborts_;
  obs::Counter* txn_timeouts_;
  obs::Counter* txn_errors_;
  obs::Counter* obs_entries_played_;
  obs::Counter* obs_updates_applied_;
  obs::Counter* obs_parallel_entries_;
  obs::Counter* obs_sequential_entries_;
  obs::Counter* obs_barrier_quiesces_;
  obs::Gauge* playback_position_;
  obs::Histogram* play_lag_;

  // Created lazily by the first PlayUntil when PlaybackWorkers() > 0.
  // Declared last: its destructor joins the worker pool (and with it any
  // async prefetch task holding a StreamStore pointer) before store_ and the
  // version tables above are torn down.
  std::unique_ptr<PlaybackEngine> engine_;
};

}  // namespace tango

#endif  // SRC_RUNTIME_RUNTIME_H_
