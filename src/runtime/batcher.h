// Group commit: batching runtime records into shared log entries (§6).
//
// The paper's evaluation runs "with a batch size of 4 at each client (i.e.,
// the Tango runtime stores a batch of 4 commit records in each log entry)".
// The Batcher implements that: concurrent appenders (EndTx commits, plain
// updates, decisions) enqueue their records; the thread that opens a fresh
// batch becomes its leader, waits up to a short window for followers to pile
// on, and flushes the accumulated records as log entries — each entry
// multiappended to the union of its records' streams.  Records in one entry
// share the entry's offset, which is exactly the semantics the playback path
// implements for multi-record entries (records apply in order).
//
// Oversized batches split: the leader packs records greedily but exactly
// under the log's page size (counting the entry framing and one backpointer
// header per distinct stream), so a batch never fails just because its
// neighbors were large — and never exceeds the page at the append either.
// Records too large for any entry are rejected in Append, before they burn a
// sequencer token and leave a junk hole.
//
// Entries flush through the client's asynchronous append pipeline: the
// leader submits every packed entry and releases leadership immediately, so
// one Batcher keeps several batches in flight instead of serializing on each
// chain write.  Completion callbacks resolve the slots — on success and on
// failure alike, so a follower whose leader's flush failed mid-batch still
// observes its status instead of waiting forever.
//
// Trade-off (also the paper's): batching multiplies append bandwidth per
// sequencer grant and per storage IOP, at the cost of added append latency.

#ifndef SRC_RUNTIME_BATCHER_H_
#define SRC_RUNTIME_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/corfu/log_client.h"
#include "src/runtime/record.h"
#include "src/util/status.h"

namespace tango {

class Batcher {
 public:
  struct Options {
    // Flush when this many records have accumulated...
    uint32_t max_records = 4;
    // ...or when the batch leader has waited this long.
    uint32_t window_us = 200;
  };

  Batcher(corfu::CorfuClient* log, Options options)
      : log_(log), options_(options) {}

  // Appends `record` to `streams` as part of a batch; blocks until the batch
  // containing it is durable and returns the record's log offset.  A record
  // that cannot fit in any entry (even alone) fails immediately with
  // kOutOfRange, without consuming a batch slot or a sequencer token.
  Result<corfu::LogOffset> Append(Record record,
                                  std::vector<corfu::StreamId> streams);

  uint64_t batches_flushed() const {
    std::lock_guard<std::mutex> lock(shared_->mu);
    return shared_->batches_flushed;
  }
  uint64_t records_batched() const {
    std::lock_guard<std::mutex> lock(shared_->mu);
    return shared_->records_batched;
  }

 private:
  struct SlotResult {
    bool done = false;
    Status status;
    corfu::LogOffset offset = corfu::kInvalidOffset;
  };
  struct Slot {
    // Wire body of the record (no count prefix), encoded once in Append —
    // both the oversize check and the packer size with the same bytes.
    std::vector<uint8_t> body;
    std::vector<corfu::StreamId> streams;
    std::shared_ptr<SlotResult> result;
  };
  // The batching state lives behind a shared_ptr so that pipeline completion
  // callbacks (which resolve slots and signal waiters from a pipeline worker
  // thread) never touch a Batcher that was destroyed right after its last
  // waiter woke up.
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Slot> pending;
    bool leader_active = false;
    uint64_t batches_flushed = 0;
    uint64_t records_batched = 0;
  };

  // Leader-only: packs `slots` into one or more entries and submits them to
  // the append pipeline (shared_->mu released); slots resolve via
  // completions.
  void Flush(std::vector<Slot> slots);

  corfu::CorfuClient* log_;
  Options options_;
  std::shared_ptr<Shared> shared_ = std::make_shared<Shared>();
};

}  // namespace tango

#endif  // SRC_RUNTIME_BATCHER_H_
