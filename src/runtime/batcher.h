// Group commit: batching runtime records into shared log entries (§6).
//
// The paper's evaluation runs "with a batch size of 4 at each client (i.e.,
// the Tango runtime stores a batch of 4 commit records in each log entry)".
// The Batcher implements that: concurrent appenders (EndTx commits, plain
// updates, decisions) enqueue their records; the thread that opens a fresh
// batch becomes its leader, waits up to a short window for followers to pile
// on, and flushes the accumulated records as log entries — each entry
// multiappended to the union of its records' streams.  Records in one entry
// share the entry's offset, which is exactly the semantics the playback path
// implements for multi-record entries (records apply in order).
//
// Oversized batches split: the leader packs records greedily under the log's
// page size, so a batch never fails just because its neighbors were large.
//
// Trade-off (also the paper's): batching multiplies append bandwidth per
// sequencer grant and per storage IOP, at the cost of added append latency.

#ifndef SRC_RUNTIME_BATCHER_H_
#define SRC_RUNTIME_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/corfu/log_client.h"
#include "src/runtime/record.h"
#include "src/util/status.h"

namespace tango {

class Batcher {
 public:
  struct Options {
    // Flush when this many records have accumulated...
    uint32_t max_records = 4;
    // ...or when the batch leader has waited this long.
    uint32_t window_us = 200;
  };

  Batcher(corfu::CorfuClient* log, Options options)
      : log_(log), options_(options) {}

  // Appends `record` to `streams` as part of a batch; blocks until the batch
  // containing it is durable and returns the record's log offset.
  Result<corfu::LogOffset> Append(Record record,
                                  std::vector<corfu::StreamId> streams);

  uint64_t batches_flushed() const { return batches_flushed_; }
  uint64_t records_batched() const { return records_batched_; }

 private:
  struct SlotResult {
    bool done = false;
    Status status;
    corfu::LogOffset offset = corfu::kInvalidOffset;
  };
  struct Slot {
    Record record;
    std::vector<corfu::StreamId> streams;
    std::shared_ptr<SlotResult> result;
  };

  // Leader-only: flushes `slots` as one or more entries (mu_ released).
  void Flush(std::vector<Slot> slots);

  corfu::CorfuClient* log_;
  Options options_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Slot> pending_;
  bool leader_active_ = false;
  uint64_t batches_flushed_ = 0;
  uint64_t records_batched_ = 0;
};

}  // namespace tango

#endif  // SRC_RUNTIME_BATCHER_H_
