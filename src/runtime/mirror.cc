#include "src/runtime/mirror.h"

#include <vector>

#include "src/corfu/entry.h"

namespace tango {

Status LogMirror::SyncTo(corfu::LogOffset limit) {
  if (limit == corfu::kInvalidOffset) {
    Result<corfu::LogOffset> tail = source_->CheckTail();
    if (!tail.ok()) {
      return tail.status();
    }
    limit = *tail;
  }
  while (cursor_ < limit) {
    Result<corfu::LogEntry> entry = source_->ReadRepair(cursor_);
    if (!entry.ok()) {
      if (entry.status() == StatusCode::kTrimmed) {
        // Forgotten history: the mirror can only start from the trim
        // horizon.  (Checkpoints above it carry the state.)
        ++cursor_;
        continue;
      }
      return entry.status();
    }
    if (entry->is_junk()) {
      ++junk_skipped_;
      ++cursor_;
      continue;
    }
    std::vector<corfu::StreamId> streams;
    streams.reserve(entry->headers.size());
    for (const corfu::StreamHeader& header : entry->headers) {
      streams.push_back(header.stream);
    }
    Result<corfu::LogOffset> appended =
        destination_->AppendToStreams(entry->payload, streams);
    if (!appended.ok()) {
      return appended.status();
    }
    ++entries_copied_;
    ++cursor_;
  }
  return Status::Ok();
}

}  // namespace tango
