#include "src/runtime/playback.h"

#include <algorithm>

namespace tango {

bool PlaybackAccessesConflict(const PlaybackAccess& a,
                              const PlaybackAccess& b) {
  if (a.oid != b.oid) {
    return false;
  }
  if (!a.write && !b.write) {
    return false;  // reads never conflict with reads
  }
  if (a.has_key && b.has_key && a.key != b.key) {
    return false;  // fine-grained accesses to distinct keys commute
  }
  return true;
}

namespace {

bool TasksConflict(const std::vector<PlaybackAccess>& a,
                   const std::vector<PlaybackAccess>& b) {
  for (const PlaybackAccess& x : a) {
    for (const PlaybackAccess& y : b) {
      if (PlaybackAccessesConflict(x, y)) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

PlaybackEngine::PlaybackEngine(Options options)
    : options_(options),
      executor_(std::make_unique<Executor>(std::max(1, options.workers))) {
  auto& reg = obs::MetricsRegistry::Default();
  tasks_ = reg.GetCounter("runtime.playback.tasks");
  dep_edges_ = reg.GetCounter("runtime.playback.dep_edges");
  depth_ = reg.GetGauge("runtime.playback.window.depth");
  busy_ = reg.GetGauge("runtime.playback.workers.busy");
  task_us_ = reg.GetHistogram("runtime.playback.task_us");
}

PlaybackEngine::~PlaybackEngine() {
  (void)Quiesce();
  // Join the workers before mu_/cv_ are destroyed (members die in reverse
  // declaration order, which would tear down the condvar first).
  executor_.reset();
}

void PlaybackEngine::Schedule(corfu::LogOffset offset,
                              std::vector<PlaybackAccess> accesses,
                              ApplyFn fn) {
  Task* runnable = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return window_.size() < options_.window; });

    auto task = std::make_unique<Task>();
    task->offset = offset;
    task->accesses = std::move(accesses);
    task->fn = std::move(fn);
    for (const std::unique_ptr<Task>& earlier : window_) {
      if (TasksConflict(earlier->accesses, task->accesses)) {
        earlier->dependents.push_back(task.get());
        ++task->pending_deps;
        dep_edges_->Add();
      }
    }
    if (task->pending_deps == 0) {
      runnable = task.get();
    }
    window_.push_back(std::move(task));
    tasks_->Add();
    depth_->Set(static_cast<int64_t>(window_.size()));
  }
  if (runnable != nullptr) {
    executor_->Submit([this, runnable] { RunTask(runnable); });
  }
}

void PlaybackEngine::RunTask(Task* task) {
  busy_->Add(1);
  Status status;
  {
    obs::ScopedTimer timer(task_us_);
    status = task->fn();
  }
  busy_->Add(-1);

  std::vector<Task*> released;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!status.ok() && error_.ok()) {
      error_ = status;
    }
    for (Task* dep : task->dependents) {
      if (--dep->pending_deps == 0) {
        released.push_back(dep);
      }
    }
    FinishLocked(task);
    // Broadcast under the lock: once the window drains, Quiesce's caller may
    // destroy the engine, which must not race the broadcast itself.
    cv_.notify_all();
  }
  for (Task* dep : released) {
    executor_->Submit([this, dep] { RunTask(dep); });
  }
}

void PlaybackEngine::FinishLocked(Task* task) {
  for (auto it = window_.begin(); it != window_.end(); ++it) {
    if (it->get() == task) {
      window_.erase(it);
      break;
    }
  }
  depth_->Set(static_cast<int64_t>(window_.size()));
}

Status PlaybackEngine::Quiesce() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return window_.empty(); });
  Status result = std::move(error_);
  error_ = Status::Ok();
  return result;
}

}  // namespace tango
