// Parallel dependency-tracked playback (see DESIGN.md "Parallel playback").
//
// The shared log serializes every update, but most entries touch disjoint
// objects (or disjoint keys of fine-grained objects) and therefore commute.
// PlaybackEngine recovers that parallelism: the runtime's dispatcher walks
// the log in global-offset order, computes each entry's read/write access
// set from its decoded records, and schedules an apply task whose only
// ordering constraint is "run after every earlier scheduled task whose
// access set conflicts with mine".  Independent entries apply concurrently
// on a worker pool; conflicting entries apply in exact log order — so the
// final view state, version tables and commit/abort outcomes are identical
// to the single-threaded reference (the sequential-equivalence property the
// tests enforce).
//
// Conflict rules (per access pair on the same object):
//   * a whole-object (unkeyed) write conflicts with everything,
//   * a keyed write conflicts with any access to the same key and with any
//     unkeyed access,
//   * reads never conflict with reads.
// These mirror the runtime's version bookkeeping exactly: a keyed read
// validates against the key's version and the unkeyed version; an unkeyed
// read validates against the coarse object version, which every write bumps.
//
// Records the engine cannot reorder around — decision records, and commit
// records whose read set is not hosted locally (they arm the §4.1 stall
// barrier) — never reach the engine: the dispatcher quiesces it and falls
// back to the sequential ProcessRecord path, which preserves the
// barrier_tx_/stalled_ semantics verbatim.

#ifndef SRC_RUNTIME_PLAYBACK_H_
#define SRC_RUNTIME_PLAYBACK_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/corfu/types.h"
#include "src/obs/metrics.h"
#include "src/runtime/record.h"
#include "src/util/status.h"
#include "src/util/threading.h"

namespace tango {

// One object- or key-granular access performed by a log entry.
struct PlaybackAccess {
  ObjectId oid = 0;
  bool has_key = false;  // false = whole-object access
  uint64_t key = 0;
  bool write = true;
};

bool PlaybackAccessesConflict(const PlaybackAccess& a, const PlaybackAccess& b);

class PlaybackEngine {
 public:
  struct Options {
    // Worker threads applying entries.
    int workers = 2;
    // Max entries in flight (scheduled, not yet completed).  Bounds both
    // memory and the O(window * accesses) conflict scan per Schedule call.
    size_t window = 64;
  };

  using ApplyFn = std::function<Status()>;

  explicit PlaybackEngine(Options options);
  ~PlaybackEngine();  // quiesces

  PlaybackEngine(const PlaybackEngine&) = delete;
  PlaybackEngine& operator=(const PlaybackEngine&) = delete;

  // Schedules `fn` to run once every earlier scheduled task with a
  // conflicting access set has completed.  `offset` must be nondecreasing
  // across calls (log order).  Blocks while the window is full.  Tasks with
  // empty access sets depend on nothing and nothing depends on them.
  void Schedule(corfu::LogOffset offset, std::vector<PlaybackAccess> accesses,
                ApplyFn fn);

  // Waits for every scheduled task to complete and returns the first error
  // any task produced (sticky until returned; subsequent calls start clean).
  Status Quiesce();

  int workers() const { return executor_->size(); }
  Executor* executor() const { return executor_.get(); }

 private:
  struct Task {
    corfu::LogOffset offset = corfu::kInvalidOffset;
    std::vector<PlaybackAccess> accesses;
    ApplyFn fn;
    size_t pending_deps = 0;        // unfinished earlier conflicting tasks
    std::vector<Task*> dependents;  // later tasks waiting on this one
  };

  void RunTask(Task* task);
  // Removes `task` from the window and releases its dependents (mu_ held).
  void FinishLocked(Task* task);

  Options options_;
  std::unique_ptr<Executor> executor_;

  std::mutex mu_;
  std::condition_variable cv_;
  // Unfinished tasks in log order; new tasks scan it for conflicts.
  std::deque<std::unique_ptr<Task>> window_;
  Status error_;

  // Registry instruments (see DESIGN.md "Observability").
  obs::Counter* tasks_;
  obs::Counter* dep_edges_;
  obs::Gauge* depth_;
  obs::Gauge* busy_;
  obs::Histogram* task_us_;
};

}  // namespace tango

#endif  // SRC_RUNTIME_PLAYBACK_H_
