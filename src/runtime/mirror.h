// Remote mirroring (§3.2): "application state can be asynchronously mirrored
// to remote data centers by having a process at the remote site play the log
// and copy its contents.  Since log order is maintained, the mirror is
// guaranteed to represent a consistent, system-wide snapshot of the primary
// at some point in the past."
//
// LogMirror copies the primary log's entries — data payloads with their
// stream memberships — onto a destination log in order.  Junk entries are
// skipped (they carry no state); every data entry, including commit and
// decision records, is re-appended with the same stream set, so replaying
// the mirror reproduces exactly the primary's object states and transaction
// outcomes as of the mirrored prefix.

#ifndef SRC_RUNTIME_MIRROR_H_
#define SRC_RUNTIME_MIRROR_H_

#include <cstdint>

#include "src/corfu/log_client.h"
#include "src/util/status.h"

namespace tango {

class LogMirror {
 public:
  // Mirrors from `source` to `destination`; both clients outlive the mirror.
  LogMirror(corfu::CorfuClient* source, corfu::CorfuClient* destination)
      : source_(source), destination_(destination) {}

  // Copies all source entries in [cursor, limit) to the destination, in
  // order.  Holes are repaired (filled) before copying; junk is skipped.
  // Pass corfu::kInvalidOffset to mirror up to the current source tail.
  Status SyncTo(corfu::LogOffset limit = corfu::kInvalidOffset);

  // The next source offset to be mirrored (entries below are copied).
  corfu::LogOffset cursor() const { return cursor_; }
  uint64_t entries_copied() const { return entries_copied_; }
  uint64_t junk_skipped() const { return junk_skipped_; }

 private:
  corfu::CorfuClient* source_;
  corfu::CorfuClient* destination_;
  corfu::LogOffset cursor_ = 0;
  uint64_t entries_copied_ = 0;
  uint64_t junk_skipped_ = 0;
};

}  // namespace tango

#endif  // SRC_RUNTIME_MIRROR_H_
