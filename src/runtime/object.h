// TangoObject: the interface every replicated data structure implements (§3.1).
//
// An object holds a view (its in-memory representation) and implements the
// mandatory apply upcall.  The view must be modified *only* through Apply,
// which the runtime invokes while playing the shared history forward; the
// object's mutators call TangoRuntime::UpdateHelper and its accessors call
// TangoRuntime::QueryHelper, never touching the view directly on the write
// path.
//
// Thread safety contract: the runtime may invoke Apply from whichever
// application thread happens to drive playback — and, under parallel
// playback (src/runtime/playback.h), from several worker threads at once —
// concurrently with accessor methods on other threads.  Objects therefore
// guard their view with an internal lock (see src/objects/* for the
// pattern).  Concurrent Apply calls only ever carry updates with disjoint
// access sets: different keys of this object (when updates use the keyed
// UpdateHelper form), whose applies must commute.  Conflicting updates —
// same key, or any unkeyed update — are always delivered in log order.

#ifndef SRC_RUNTIME_OBJECT_H_
#define SRC_RUNTIME_OBJECT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/corfu/types.h"

namespace tango {

class TangoObject {
 public:
  virtual ~TangoObject() = default;

  // Applies one update record to the view.  `offset` is the log position of
  // the entry carrying the update (for a transactional write, the commit
  // record's position) — objects may store it instead of the value to act as
  // an index over log-structured storage (§3.1, Durability).
  virtual void Apply(std::span<const uint8_t> update,
                     corfu::LogOffset offset) = 0;

  // Resets the view to its initial (empty) state.  Used when rebuilding a
  // view from history or restoring from a checkpoint.
  virtual void Clear() = 0;

  // Checkpoint support (§3.1, History).  Objects that opt in can have their
  // history trimmed below the checkpoint via TangoRuntime::Forget.
  virtual bool SupportsCheckpoint() const { return false; }
  virtual std::vector<uint8_t> Checkpoint() const { return {}; }
  virtual void Restore(std::span<const uint8_t> /*state*/) {}
};

// Per-object registration options.
struct ObjectConfig {
  // When true, transactions that *write* this object append a decision
  // record after committing, because some client may host this object
  // without hosting the transaction's read set (§4.1 C).  The paper has
  // developers mark such objects explicitly; so do we.
  bool needs_decision_records = false;
};

}  // namespace tango

#endif  // SRC_RUNTIME_OBJECT_H_
