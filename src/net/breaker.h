// CircuitBreakerTransport: a per-node circuit breaker decorating a Transport.
//
// A node that stops answering (kUnavailable / kTimeout) costs every caller a
// full transport timeout per attempt; under load those stalled calls pile up
// in worker threads and RPC queues and turn one dead node into cluster-wide
// latency.  The breaker converts that into a fast local failure: after
// `failure_threshold` consecutive transport failures to a node the breaker
// *opens* and subsequent calls fail immediately with kBusy and a retry-after
// hint of the remaining open window.  When the window elapses the breaker is
// *half-open*: exactly one probe call is let through; success closes the
// breaker, failure re-opens it with a doubled window (capped at max_open_ms).
//
// Only data-plane calls trip or consult the breaker.  Methods matched by the
// `bypass` predicate (typically corfu::IsControlPlaneRpc: seals, projection
// fetches, health probes) always pass through — reconfiguration and failure
// detection must keep working exactly when the breaker is open.
//
// Protocol-level errors (kWritten, kSealedEpoch, kBusy, ...) prove the node
// is alive and therefore *close* the breaker; only transport-level failures
// count toward opening it.

#ifndef SRC_NET_BREAKER_H_
#define SRC_NET_BREAKER_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/util/status.h"

namespace tango {

class CircuitBreakerTransport : public Transport {
 public:
  struct Options {
    // Consecutive transport failures (kUnavailable/kTimeout) that open the
    // breaker for a node.
    uint32_t failure_threshold = 4;
    // Initial open window; doubles on each failed half-open probe.
    uint32_t open_ms = 100;
    uint32_t max_open_ms = 5'000;
    // Methods that never consult the breaker (control plane).  Unset = every
    // method is data plane.
    std::function<bool(uint16_t)> bypass;
  };

  CircuitBreakerTransport(Transport* inner, Options options);

  Status Call(NodeId dest, uint16_t method, std::span<const uint8_t> request,
              std::vector<uint8_t>* response) override;
  void RegisterNode(NodeId node, RpcHandler handler) override {
    inner_->RegisterNode(node, std::move(handler));
  }
  void UnregisterNode(NodeId node) override { inner_->UnregisterNode(node); }

  // Whether `node`'s breaker is currently open (or half-open), for tests.
  bool IsOpen(NodeId node) const;

  Transport* inner() const { return inner_; }

 private:
  struct NodeState {
    uint32_t consecutive_failures = 0;
    // Nonzero while tripped (open or half-open); cleared on success.
    uint32_t open_ms = 0;
    uint64_t open_until_us = 0;
    bool probing = false;  // a half-open probe is in flight
  };

  // Trips `s` (guarded by mu_), doubling the window on re-trips.
  void TripLocked(NodeState& s, uint64_t now_us);

  Transport* inner_;
  Options options_;

  mutable std::mutex mu_;
  std::unordered_map<NodeId, NodeState> states_;

  obs::Counter* opens_;
  obs::Counter* fast_fails_;
  obs::Gauge* open_gauge_;  // nodes currently tripped
};

}  // namespace tango

#endif  // SRC_NET_BREAKER_H_
