#include "src/net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/obs/rpc_metrics.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"
#include "src/util/threading.h"

namespace tango {

namespace {

// Outcome of a full-buffer I/O loop.  Partial transfers are retried inside
// the loop; what escapes is either success, a peer that went away, or a
// socket deadline (SO_RCVTIMEO/SO_SNDTIMEO) expiring mid-call.
enum class IoResult { kOk, kClosed, kTimeout };

// Reads exactly `len` bytes, riding out short reads and EINTR.
IoResult ReadFull(int fd, void* buf, size_t len) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  while (len > 0) {
    ssize_t n = ::recv(fd, p, len, 0);
    if (n == 0) {
      return IoResult::kClosed;
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return IoResult::kTimeout;
      }
      return IoResult::kClosed;
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return IoResult::kOk;
}

// Writes exactly `len` bytes, riding out short writes and EINTR.
IoResult WriteFull(int fd, const void* buf, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  while (len > 0) {
    ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return IoResult::kTimeout;
      }
      return IoResult::kClosed;
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return IoResult::kOk;
}

// Applies (or clears, with ms == 0) the per-call send/recv deadlines.
void SetSocketTimeouts(int fd, uint32_t ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// connect(2) bounded by `ms` milliseconds (0 = blocking connect).
bool ConnectWithTimeout(int fd, const sockaddr* addr, socklen_t addr_len,
                        uint32_t ms) {
  if (ms == 0) {
    return ::connect(fd, addr, addr_len) == 0;
  }
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, addr, addr_len);
  bool connected = rc == 0;
  if (!connected && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, static_cast<int>(ms)) == 1) {
      int err = 0;
      socklen_t err_len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
      connected = err == 0;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return connected;
}

void PutU32Le(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

void PutU64Le(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

uint64_t GetU64Le(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

uint32_t GetU32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

constexpr uint32_t kMaxFrame = 64u << 20;  // 64 MiB sanity cap

// u16 method + u64 trace_id + u64 parent_span ahead of the payload.
constexpr uint32_t kReqHeaderBytes = 2 + 8 + 8;

// u8 status + u32 retry_after_us ahead of the (possibly empty) payload.  The
// retry-after field carries the server's backoff hint on shed (kBusy)
// responses; it is zero for every status the server did not hint.
constexpr uint32_t kRespHeaderBytes = 1 + 4;

// Queue-depth / occupancy gauges shared across all TcpTransport instances in
// the process: overload shows up here (piled-up connections, in-flight
// handlers) before it shows up as latency.
struct TcpGauges {
  obs::Gauge* connections;      // accepted server-side connections alive
  obs::Gauge* server_inflight;  // requests currently inside a handler
  obs::Gauge* client_inflight;  // Call()s currently waiting on a response
};

TcpGauges& TheTcpGauges() {
  static TcpGauges g = [] {
    auto& reg = obs::MetricsRegistry::Default();
    return TcpGauges{reg.GetGauge("net.tcp.connections"),
                     reg.GetGauge("net.tcp.server_inflight"),
                     reg.GetGauge("net.tcp.client_inflight")};
  }();
  return g;
}

}  // namespace

struct TcpTransport::Listener {
  int listen_fd = -1;
  uint16_t port = 0;
  NodeId node = kInvalidNodeId;
  RpcHandler handler;
  std::thread accept_thread;
  std::atomic<bool> stopping{false};
  std::mutex conns_mu;
  // Live connections, keyed by a serial so an exiting connection can hand
  // its thread to the reap list.  A connection that ends (peer close, bad
  // frame) closes its own fd, removes itself from `conns`, and parks its
  // serial on `finished`; the accept loop joins finished threads before
  // every accept, so connection churn never accumulates exited threads or
  // their fds.
  uint64_t next_serial = 0;
  std::unordered_map<uint64_t, int> conn_fds;
  std::unordered_map<uint64_t, std::thread> conn_threads;
  std::vector<uint64_t> finished;

  ~Listener() {
    stopping.store(true);
    if (listen_fd >= 0) {
      ::shutdown(listen_fd, SHUT_RDWR);
      ::close(listen_fd);
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      for (auto& [serial, fd] : conn_fds) {
        ::shutdown(fd, SHUT_RDWR);
      }
    }
    if (accept_thread.joinable()) {
      accept_thread.join();
    }
    std::unordered_map<uint64_t, std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      threads.swap(conn_threads);
    }
    for (auto& [serial, t] : threads) {
      t.join();
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      for (auto& [serial, fd] : conn_fds) {
        ::close(fd);
      }
      conn_fds.clear();
    }
  }

  // Joins connection threads that have already exited.  Called off the
  // accept loop; joining a finished thread does not block.
  void ReapFinished() {
    std::vector<std::thread> done;
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      done.reserve(finished.size());
      for (uint64_t serial : finished) {
        auto it = conn_threads.find(serial);
        if (it != conn_threads.end()) {
          done.push_back(std::move(it->second));
          conn_threads.erase(it);
        }
      }
      finished.clear();
    }
    for (std::thread& t : done) {
      t.join();
    }
  }

  void ServeConnection(int fd, uint64_t serial) {
    TheTcpGauges().connections->Add(1);
    std::vector<uint8_t> frame;
    while (!stopping.load()) {
      uint8_t len_buf[4];
      if (ReadFull(fd, len_buf, sizeof(len_buf)) != IoResult::kOk) {
        break;
      }
      uint32_t len = GetU32Le(len_buf);
      if (len < kReqHeaderBytes || len > kMaxFrame) {
        TANGO_LOG(kWarning) << "tcp: dropping malformed frame of " << len
                            << " bytes";
        break;
      }
      frame.resize(len);
      if (ReadFull(fd, frame.data(), len) != IoResult::kOk) {
        break;
      }
      uint16_t method =
          static_cast<uint16_t>(frame[0] | (static_cast<uint16_t>(frame[1]) << 8));
      obs::TraceContext incoming{GetU64Le(frame.data() + 2),
                                 GetU64Le(frame.data() + 10)};
      obs::RpcMethodStats& rpc = obs::RpcStatsFor(method);
      ByteWriter writer;
      Status st;
      {
        // Close the span before the response goes out, so a traced caller
        // sees the server-side span as soon as its Call returns.
        obs::TraceScope span(rpc.span_name, incoming, node);
        ByteReader reader(frame.data() + kReqHeaderBytes,
                          len - kReqHeaderBytes);
        TheTcpGauges().server_inflight->Add(1);
        st = handler(method, reader, writer);
        TheTcpGauges().server_inflight->Add(-1);
      }

      const std::vector<uint8_t>& payload = writer.bytes();
      uint32_t resp_len =
          kRespHeaderBytes + static_cast<uint32_t>(payload.size());
      std::vector<uint8_t> resp(4 + resp_len);
      PutU32Le(resp.data(), resp_len);
      resp[4] = static_cast<uint8_t>(st.code());
      PutU32Le(resp.data() + 5, st.retry_after_us());
      std::memcpy(resp.data() + 4 + kRespHeaderBytes, payload.data(),
                  payload.size());
      if (WriteFull(fd, resp.data(), resp.size()) != IoResult::kOk) {
        break;
      }
    }
    TheTcpGauges().connections->Add(-1);
    // Close and deregister our fd, then queue the thread for reaping.  The
    // destructor may be concurrently shutting every fd down: the map erase
    // under conns_mu decides who closes (exactly one side sees the entry).
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      auto it = conn_fds.find(serial);
      if (it != conn_fds.end()) {
        ::close(it->second);
        conn_fds.erase(it);
      }
      finished.push_back(serial);
    }
  }

  void AcceptLoop() {
    while (!stopping.load()) {
      ReapFinished();
      int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (stopping.load()) {
          return;
        }
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      std::lock_guard<std::mutex> lock(conns_mu);
      uint64_t serial = next_serial++;
      conn_fds.emplace(serial, fd);
      conn_threads.emplace(
          serial, std::thread([this, fd, serial] { ServeConnection(fd, serial); }));
    }
  }
};

struct TcpTransport::Connection {
  int fd = -1;
  std::mutex mu;  // serializes request/response pairs on this socket

  ~Connection() {
    if (fd >= 0) {
      ::close(fd);
    }
  }
};

TcpTransport::TcpTransport(Options options)
    : call_timeout_ms_(options.call_timeout_ms) {}

TcpTransport::~TcpTransport() {
  std::unordered_map<NodeId, std::unique_ptr<Listener>> listeners;
  std::unordered_map<NodeId, std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    listeners.swap(listeners_);
    connections.swap(connections_);
  }
  // Destructors close sockets and join threads.
}

void TcpTransport::RegisterNode(NodeId node, RpcHandler handler) {
  uint16_t requested_port = 0;
  std::string address;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = listen_ports_.find(node);
    if (it != listen_ports_.end()) {
      requested_port = it->second;
    }
    address = listen_address_;
  }

  auto listener = std::make_unique<Listener>();
  listener->node = node;
  listener->handler = std::move(handler);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  TANGO_CHECK(fd >= 0) << "socket() failed";
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  }
  addr.sin_port = htons(requested_port);
  TANGO_CHECK(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      << "bind() failed for node " << node << " port " << requested_port;
  TANGO_CHECK(::listen(fd, 128) == 0) << "listen() failed";

  socklen_t addr_len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  listener->listen_fd = fd;
  listener->port = ntohs(addr.sin_port);
  Listener* raw = listener.get();
  listener->accept_thread = std::thread([raw] { raw->AcceptLoop(); });

  std::lock_guard<std::mutex> lock(mu_);
  routes_[node] = {"127.0.0.1", listener->port};
  listeners_[node] = std::move(listener);
}

void TcpTransport::SetListenPort(NodeId node, uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  if (port == 0) {
    listen_ports_.erase(node);
  } else {
    listen_ports_[node] = port;
  }
}

void TcpTransport::SetListenAddress(const std::string& address) {
  std::lock_guard<std::mutex> lock(mu_);
  listen_address_ = address;
}

void TcpTransport::UnregisterNode(NodeId node) {
  std::unique_ptr<Listener> listener;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = listeners_.find(node);
    if (it != listeners_.end()) {
      listener = std::move(it->second);
      listeners_.erase(it);
    }
    routes_.erase(node);
    connections_.erase(node);
  }
  // Listener destructor runs outside the lock (joins threads).
}

void TcpTransport::AddRoute(NodeId node, const std::string& host,
                            uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  routes_[node] = {host, port};
}

uint16_t TcpTransport::LocalPort(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = listeners_.find(node);
  return it == listeners_.end() ? 0 : it->second->port;
}

Result<std::shared_ptr<TcpTransport::Connection>> TcpTransport::GetConnection(
    NodeId dest) {
  std::string host;
  uint16_t port = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = connections_.find(dest);
    if (it != connections_.end()) {
      return it->second;
    }
    auto route = routes_.find(dest);
    if (route == routes_.end()) {
      return Status(StatusCode::kUnavailable, "no route to node");
    }
    host = route->second.first;
    port = route->second.second;
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status(StatusCode::kUnavailable, "socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status(StatusCode::kInvalidArgument, "bad host address");
  }
  if (!ConnectWithTimeout(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr),
                          call_timeout_ms_.load(std::memory_order_relaxed))) {
    ::close(fd);
    return Status(StatusCode::kUnavailable, "connect() failed");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto conn = std::make_shared<Connection>();
  conn->fd = fd;
  std::lock_guard<std::mutex> lock(mu_);
  // Another thread may have raced us; keep the first one in.  The losing
  // racer's socket must not leak: `conn` drops its last reference on return
  // and ~Connection closes the fd (regression-tested by
  // ConcurrentFirstCallsDontLeakFds).
  auto [it, inserted] = connections_.emplace(dest, conn);
  return it->second;
}

void TcpTransport::DropConnection(NodeId dest) {
  std::lock_guard<std::mutex> lock(mu_);
  connections_.erase(dest);
}

Status TcpTransport::Call(NodeId dest, uint16_t method,
                          std::span<const uint8_t> request,
                          std::vector<uint8_t>* response) {
  obs::RpcMethodStats& rpc = obs::RpcStatsFor(method);
  rpc.calls->Add();
  // Opened before the context is serialized so the server's span parents
  // under this round-trip span.
  obs::TraceScope span(rpc.span_name, dest);
  obs::TraceContext ctx = obs::CurrentTrace();

  TANGO_ASSIGN_OR_RETURN(std::shared_ptr<Connection> conn,
                         GetConnection(dest));

  TheTcpGauges().client_inflight->Add(1);
  struct InflightGuard {
    ~InflightGuard() { TheTcpGauges().client_inflight->Add(-1); }
  } inflight_guard;
  std::lock_guard<std::mutex> lock(conn->mu);
  uint32_t timeout_ms = call_timeout_ms_.load(std::memory_order_relaxed);
  SetSocketTimeouts(conn->fd, timeout_ms);
  // Maps an I/O failure to the caller-visible status: a deadline expiring is
  // kTimeout (the peer may be hung, not gone); a closed socket is
  // kUnavailable.  Either way the cached connection is poisoned mid-frame
  // and must be dropped.
  auto io_error = [&](IoResult r, const char* what) {
    DropConnection(dest);
    rpc.drops->Add();
    TANGO_LOG(kWarning) << "tcp: " << what << " node " << dest << " ("
                        << obs::RpcMethodName(method) << ") "
                        << (r == IoResult::kTimeout ? "timed out"
                                                    : "failed")
                        << "; dropping connection";
    return r == IoResult::kTimeout
               ? Status(StatusCode::kTimeout, "call timed out")
               : Status(StatusCode::kUnavailable, "peer closed connection");
  };
  uint64_t start_us = obs::MetricsEnabled() ? NowMicros() : 0;
  uint32_t req_len = kReqHeaderBytes + static_cast<uint32_t>(request.size());
  std::vector<uint8_t> frame(4 + req_len);
  PutU32Le(frame.data(), req_len);
  frame[4] = static_cast<uint8_t>(method);
  frame[5] = static_cast<uint8_t>(method >> 8);
  PutU64Le(frame.data() + 6, ctx.trace_id);
  PutU64Le(frame.data() + 14, ctx.span_id);
  std::memcpy(frame.data() + 4 + kReqHeaderBytes, request.data(),
              request.size());
  if (IoResult w = WriteFull(conn->fd, frame.data(), frame.size());
      w != IoResult::kOk) {
    return io_error(w, "send to");
  }

  uint8_t len_buf[4];
  if (IoResult r = ReadFull(conn->fd, len_buf, sizeof(len_buf));
      r != IoResult::kOk) {
    return io_error(r, "recv from");
  }
  uint32_t resp_len = GetU32Le(len_buf);
  if (resp_len < kRespHeaderBytes || resp_len > kMaxFrame) {
    DropConnection(dest);
    rpc.failures->Add();
    TANGO_LOG(kWarning) << "tcp: malformed response frame from node " << dest;
    return Status(StatusCode::kInternal, "bad response frame");
  }
  std::vector<uint8_t> resp(resp_len);
  if (IoResult r = ReadFull(conn->fd, resp.data(), resp_len);
      r != IoResult::kOk) {
    return io_error(r, "recv from");
  }
  if (start_us != 0) {
    rpc.latency_us->Record(NowMicros() - start_us);
  }
  StatusCode code = static_cast<StatusCode>(resp[0]);
  uint32_t retry_after_us = GetU32Le(resp.data() + 1);
  if (code != StatusCode::kOk) {
    rpc.failures->Add();
    Status st(code);
    st.set_retry_after_us(retry_after_us);
    return st;
  }
  if (response != nullptr) {
    response->assign(resp.begin() + kRespHeaderBytes, resp.end());
  }
  return Status::Ok();
}

}  // namespace tango
