#include "src/net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <thread>

#include "src/net/event_loop.h"
#include "src/obs/rpc_metrics.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"
#include "src/util/threading.h"

namespace tango {

namespace {

void PutU32Le(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

void PutU64Le(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

uint64_t GetU64Le(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

uint32_t GetU32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint16_t GetU16Le(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (static_cast<uint16_t>(p[1]) << 8));
}

constexpr uint32_t kMaxFrame = 64u << 20;  // 64 MiB sanity cap

// u64 corr_id + u16 method + u64 trace_id + u64 parent_span ahead of the
// request payload.
constexpr uint32_t kReqHeaderBytes = 8 + 2 + 8 + 8;

// u64 corr_id + u8 status + u32 retry_after_us ahead of the (possibly empty)
// response payload.  The retry-after field carries the server's backoff hint
// on shed (kBusy) responses; it is zero for every status the server did not
// hint.
constexpr uint32_t kRespHeaderBytes = 8 + 1 + 4;

// Per-event read cap: level-triggered epoll re-fires if more remains, so a
// firehose connection cannot starve its siblings on the loop.
constexpr size_t kReadChunk = 64 * 1024;
constexpr size_t kMaxReadPerEvent = 256 * 1024;

// When a server connection's write queue backs up past the high watermark we
// stop reading new requests from it (natural per-connection backpressure) and
// resume once the queue drains below the low watermark.
constexpr size_t kWriteHighWatermark = 8u << 20;
constexpr size_t kWriteLowWatermark = 1u << 20;

// Queue-depth / occupancy gauges shared across all TcpTransport instances in
// the process: overload shows up here (piled-up connections, in-flight
// handlers, backed-up write queues) before it shows up as latency.
struct TcpGauges {
  obs::Gauge* connections;      // accepted server-side connections alive
  obs::Gauge* server_inflight;  // requests currently inside a handler
  obs::Gauge* client_inflight;  // Call()s currently waiting on a response
  obs::Gauge* write_queue;      // bytes parked in loop-side write queues
};

TcpGauges& TheTcpGauges() {
  static TcpGauges g = [] {
    auto& reg = obs::MetricsRegistry::Default();
    return TcpGauges{reg.GetGauge("net.tcp.connections"),
                     reg.GetGauge("net.tcp.server_inflight"),
                     reg.GetGauge("net.tcp.client_inflight"),
                     reg.GetGauge("net.tcp.write_queue_bytes")};
  }();
  return g;
}

// Flat byte queue with a consumed-prefix offset: appends go at the tail,
// parses and writes consume from the head without memmove.  The buffer
// compacts when the dead prefix dominates.
struct ByteQueue {
  std::vector<uint8_t> data;
  size_t start = 0;

  bool empty() const { return start == data.size(); }
  size_t size() const { return data.size() - start; }
  const uint8_t* ptr() const { return data.data() + start; }

  void Consume(size_t n) {
    start += n;
    if (start == data.size()) {
      data.clear();
      start = 0;
    }
  }

  void Append(const uint8_t* p, size_t n) {
    if (start > (1u << 20) && start > data.size() - start) {
      data.erase(data.begin(), data.begin() + static_cast<ptrdiff_t>(start));
      start = 0;
    }
    data.insert(data.end(), p, p + n);
  }

  void Clear() {
    data.clear();
    start = 0;
  }
};

enum class ReadStatus { kMore, kEof, kError };

// Drains the socket into `buf` until EAGAIN, EOF, error, or the per-event
// fairness cap.
ReadStatus ReadSome(int fd, ByteQueue* buf) {
  uint8_t chunk[kReadChunk];
  size_t total = 0;
  while (total < kMaxReadPerEvent) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return ReadStatus::kEof;
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return ReadStatus::kMore;
      }
      return ReadStatus::kError;
    }
    buf->Append(chunk, static_cast<size_t>(n));
    total += static_cast<size_t>(n);
  }
  return ReadStatus::kMore;  // cap hit; level-triggered epoll re-fires
}

// Keeps the shared write-queue gauge in sync with a connection's out queue.
void SyncQueueGauge(size_t* gauged, size_t now) {
  if (now != *gauged) {
    TheTcpGauges().write_queue->Add(static_cast<int64_t>(now) -
                                    static_cast<int64_t>(*gauged));
    *gauged = now;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Server side: Listener owns the accept socket and the in-flight barrier;
// each accepted socket becomes a ServerConn whose buffers and framing state
// live on the loop thread, with a mutex-guarded staging area where handler
// threads park completed responses.
// ---------------------------------------------------------------------------

struct TcpTransport::Listener
    : std::enable_shared_from_this<TcpTransport::Listener> {
  EventLoop* loop = nullptr;
  Executor* handlers = nullptr;
  int listen_fd = -1;
  uint16_t port = 0;
  NodeId node = kInvalidNodeId;
  RpcHandler handler;

  // Set (before closing sockets) by UnregisterNode: no handler is invoked
  // once this is observed true.
  std::atomic<bool> closed{false};

  // Counts dispatched handler tasks; UnregisterNode waits for zero so the
  // handler (and whatever it captures) is provably quiescent on return.
  std::mutex inflight_mu;
  std::condition_variable inflight_cv;
  uint64_t inflight = 0;

  // Loop-thread state.
  std::unordered_map<int, std::shared_ptr<ServerConn>> conns;

  // Connections holding staged responses.  The first handler to dirty a conn
  // posts one FlushDirty to the loop, which then flushes every dirty conn in
  // the batch — one loop wakeup per burst of responses across the whole
  // listener, not one per response.
  std::mutex dirty_mu;
  std::vector<std::shared_ptr<ServerConn>> dirty;
  bool flush_posted = false;

  void OnAcceptable();
  void Dispatch(const std::shared_ptr<ServerConn>& conn, uint64_t corr,
                uint16_t method, obs::TraceContext ctx,
                std::vector<uint8_t> payload);
  void FlushDirty();
  void HandlerDone();
  void WaitIdle();
};

struct TcpTransport::ServerConn
    : std::enable_shared_from_this<TcpTransport::ServerConn> {
  EventLoop* loop = nullptr;
  std::shared_ptr<Listener> listener;
  int fd = -1;

  // Loop-thread state: incremental framing buffers and epoll interest.
  ByteQueue in;
  ByteQueue out;
  uint32_t interest = EPOLLIN;
  bool read_paused = false;
  bool closed = false;
  size_t gauged = 0;

  // Handler threads append completed response frames here; the first
  // appender registers the conn on the listener's dirty list (which posts
  // one batched flush for all dirty conns).
  std::mutex staged_mu;
  std::vector<uint8_t> staged;
  bool flush_posted = false;

  void OnEvent(uint32_t events);
  void OnReadable();
  void DrainWrites();
  void UpdateInterest();
  void StageResponse(uint64_t corr, const Status& st,
                     const std::vector<uint8_t>& payload);
  void FlushStaged();
  void CloseOnLoop();
};

void TcpTransport::Listener::OnAcceptable() {
  while (true) {
    int cfd = ::accept4(listen_fd, nullptr, nullptr,
                        SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      TANGO_LOG(kWarning) << "tcp: accept on node " << node
                          << " failed: " << strerror(errno);
      return;
    }
    int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<ServerConn>();
    conn->loop = loop;
    conn->listener = shared_from_this();
    conn->fd = cfd;
    conns[cfd] = conn;
    TheTcpGauges().connections->Add(1);
    loop->Add(cfd, EPOLLIN, [conn](uint32_t ev) { conn->OnEvent(ev); });
  }
}

void TcpTransport::Listener::Dispatch(const std::shared_ptr<ServerConn>& conn,
                                      uint64_t corr, uint16_t method,
                                      obs::TraceContext ctx,
                                      std::vector<uint8_t> payload) {
  if (closed.load(std::memory_order_acquire)) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mu);
    ++inflight;
  }
  auto self = shared_from_this();
  auto work = [self, conn, corr, method, ctx,
               payload = std::move(payload)]() {
    // A task that raced UnregisterNode runs but must not invoke the handler.
    if (!self->closed.load(std::memory_order_acquire)) {
      obs::RpcMethodStats& rpc = obs::RpcStatsFor(method);
      ByteWriter writer;
      Status st;
      {
        // Close the span before the response is staged, so a traced caller
        // sees the server-side span as soon as its Call returns.
        obs::TraceScope span(rpc.span_name, ctx, self->node);
        ByteReader reader(payload.data(), payload.size());
        TheTcpGauges().server_inflight->Add(1);
        st = self->handler(method, reader, writer);
        TheTcpGauges().server_inflight->Add(-1);
      }
      conn->StageResponse(corr, st, writer.bytes());
    }
    self->HandlerDone();
  };
  if (handlers != nullptr) {
    handlers->Submit(std::move(work));
  } else {
    // Inline mode: the handler runs on the loop thread itself — zero
    // cross-thread handoffs per request.  Only safe because the owner
    // promised (Options::handler_threads = -1) the handler never blocks.
    work();
  }
}

void TcpTransport::Listener::HandlerDone() {
  std::lock_guard<std::mutex> lock(inflight_mu);
  if (--inflight == 0) {
    inflight_cv.notify_all();
  }
}

void TcpTransport::Listener::WaitIdle() {
  std::unique_lock<std::mutex> lock(inflight_mu);
  inflight_cv.wait(lock, [this] { return inflight == 0; });
}

void TcpTransport::Listener::FlushDirty() {
  std::vector<std::shared_ptr<ServerConn>> batch;
  {
    std::lock_guard<std::mutex> lock(dirty_mu);
    batch.swap(dirty);
    flush_posted = false;
  }
  for (const auto& conn : batch) {
    conn->FlushStaged();
  }
}

void TcpTransport::ServerConn::OnEvent(uint32_t events) {
  if (closed) {
    return;
  }
  if (events & EPOLLIN) {
    OnReadable();
    if (closed) {
      return;
    }
  }
  if (events & EPOLLOUT) {
    DrainWrites();
    if (closed) {
      return;
    }
  }
  if (events & (EPOLLERR | EPOLLHUP)) {
    CloseOnLoop();
  }
}

void TcpTransport::ServerConn::OnReadable() {
  ReadStatus rs = ReadSome(fd, &in);
  // Parse every complete frame buffered so far (pipelined requests arrive
  // back to back), then handle EOF/error.
  while (true) {
    if (in.size() < 4) {
      break;
    }
    uint32_t len = GetU32Le(in.ptr());
    if (len < kReqHeaderBytes || len > kMaxFrame) {
      TANGO_LOG(kWarning) << "tcp: dropping malformed frame of " << len
                          << " bytes";
      CloseOnLoop();
      return;
    }
    if (in.size() < 4 + static_cast<size_t>(len)) {
      break;
    }
    const uint8_t* p = in.ptr() + 4;
    uint64_t corr = GetU64Le(p);
    uint16_t method = GetU16Le(p + 8);
    obs::TraceContext ctx{GetU64Le(p + 10), GetU64Le(p + 18)};
    std::vector<uint8_t> payload(p + kReqHeaderBytes, p + len);
    listener->Dispatch(shared_from_this(), corr, method, ctx,
                       std::move(payload));
    in.Consume(4 + len);
  }
  if (rs != ReadStatus::kMore) {
    CloseOnLoop();
  }
}

void TcpTransport::ServerConn::DrainWrites() {
  while (!out.empty()) {
    ssize_t n = ::send(fd, out.ptr(), out.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      CloseOnLoop();
      return;
    }
    out.Consume(static_cast<size_t>(n));
  }
  SyncQueueGauge(&gauged, out.size());
  UpdateInterest();
}

void TcpTransport::ServerConn::UpdateInterest() {
  if (!read_paused && out.size() >= kWriteHighWatermark) {
    read_paused = true;
  } else if (read_paused && out.size() <= kWriteLowWatermark) {
    read_paused = false;
  }
  uint32_t want = (read_paused ? 0u : EPOLLIN) | (out.empty() ? 0u : EPOLLOUT);
  if (want != interest) {
    interest = want;
    loop->Update(fd, want);
  }
}

void TcpTransport::ServerConn::StageResponse(
    uint64_t corr, const Status& st, const std::vector<uint8_t>& payload) {
  uint32_t resp_len = kRespHeaderBytes + static_cast<uint32_t>(payload.size());
  bool newly_dirty = false;
  {
    // The response frame is serialized straight into the staging buffer —
    // no intermediate frame allocation on the per-response hot path.
    std::lock_guard<std::mutex> lock(staged_mu);
    size_t off = staged.size();
    staged.resize(off + 4 + resp_len);
    PutU32Le(staged.data() + off, resp_len);
    PutU64Le(staged.data() + off + 4, corr);
    staged[off + 12] = static_cast<uint8_t>(st.code());
    PutU32Le(staged.data() + off + 13, st.retry_after_us());
    if (!payload.empty()) {
      std::memcpy(staged.data() + off + 4 + kRespHeaderBytes, payload.data(),
                  payload.size());
    }
    if (!flush_posted) {
      flush_posted = true;
      newly_dirty = true;
    }
  }
  if (!newly_dirty) {
    return;  // an earlier response already queued this conn for flushing
  }
  bool need_post = false;
  {
    std::lock_guard<std::mutex> lock(listener->dirty_mu);
    listener->dirty.push_back(shared_from_this());
    if (!listener->flush_posted) {
      listener->flush_posted = true;
      need_post = true;
    }
  }
  if (need_post) {
    auto l = listener;
    // A false return means the loop is gone — the transport is being torn
    // down and the connection with it; the response is moot.
    (void)loop->Post([l] { l->FlushDirty(); });
  }
}

void TcpTransport::ServerConn::FlushStaged() {
  std::vector<uint8_t> bytes;
  {
    std::lock_guard<std::mutex> lock(staged_mu);
    bytes.swap(staged);
    flush_posted = false;
  }
  if (closed || bytes.empty()) {
    return;
  }
  out.Append(bytes.data(), bytes.size());
  DrainWrites();
}

void TcpTransport::ServerConn::CloseOnLoop() {
  if (closed) {
    return;
  }
  closed = true;
  auto self = shared_from_this();  // conns.erase below may drop the last ref
  TheTcpGauges().connections->Add(-1);
  SyncQueueGauge(&gauged, 0);
  out.Clear();
  in.Clear();
  loop->Remove(fd);
  ::close(fd);
  listener->conns.erase(fd);
  fd = -1;
}

// ---------------------------------------------------------------------------
// Client side: one shared ClientConn per destination carries every caller's
// frames, correlated by id.  Callers enqueue under `mu` and park on a
// per-call notification; the loop thread writes queued frames and demuxes
// responses back to their waiters.
// ---------------------------------------------------------------------------

struct TcpTransport::ClientConn
    : std::enable_shared_from_this<TcpTransport::ClientConn> {
  TcpTransport* transport = nullptr;
  EventLoop* loop = nullptr;
  NodeId dest = kInvalidNodeId;
  int fd = -1;

  struct PendingCall {
    Notification done;
    Status status = Status::Ok();
    std::vector<uint8_t> payload;
    // True when the status was synthesized by the transport (socket death,
    // shutdown) rather than returned by the remote handler.
    bool transport_failure = false;
  };

  enum class State { kConnecting, kReady, kDead };

  // Cross-thread state: callers enqueue, the loop thread demuxes.  The loop
  // fills and notifies a PendingCall while holding `mu` and removes it from
  // `pending` in the same critical section, so a timed-out caller that fails
  // to erase its id knows the notification has already fired.
  std::mutex mu;
  State state = State::kConnecting;
  uint64_t next_corr = 1;
  std::unordered_map<uint64_t, PendingCall*> pending;
  std::vector<uint8_t> staged;  // frames not yet handed to the loop
  bool flush_posted = false;

  // Loop-thread state.
  ByteQueue in;
  ByteQueue out;
  uint32_t interest = EPOLLIN | EPOLLOUT;  // EPOLLOUT resolves the connect
  bool closed = false;
  size_t gauged = 0;

  void OnEvent(uint32_t events);
  void OnReadable();
  void DrainWrites();
  void UpdateInterest();
  void FlushStaged();
  void Die(const char* why);
};

void TcpTransport::ClientConn::OnEvent(uint32_t events) {
  if (closed) {
    return;
  }
  bool connecting;
  {
    std::lock_guard<std::mutex> lock(mu);
    connecting = state == State::kConnecting;
  }
  if (connecting) {
    // First event on a nonblocking connect: SO_ERROR tells us whether the
    // handshake succeeded.
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
      err = errno;
    }
    if (err != 0 || (events & (EPOLLERR | EPOLLHUP))) {
      Die("connect failed");
      return;
    }
    std::vector<uint8_t> bytes;
    {
      std::lock_guard<std::mutex> lock(mu);
      state = State::kReady;
      bytes.swap(staged);
    }
    if (!bytes.empty()) {
      out.Append(bytes.data(), bytes.size());
    }
    DrainWrites();  // also narrows interest to EPOLLIN once drained
    return;
  }
  if (events & EPOLLIN) {
    OnReadable();
    if (closed) {
      return;
    }
  }
  if (events & EPOLLOUT) {
    DrainWrites();
    if (closed) {
      return;
    }
  }
  if (events & (EPOLLERR | EPOLLHUP)) {
    Die("socket error");
  }
}

void TcpTransport::ClientConn::OnReadable() {
  ReadStatus rs = ReadSome(fd, &in);
  while (true) {
    if (in.size() < 4) {
      break;
    }
    uint32_t len = GetU32Le(in.ptr());
    if (len < kRespHeaderBytes || len > kMaxFrame) {
      TANGO_LOG(kWarning) << "tcp: malformed response frame from node "
                          << dest;
      Die("malformed response frame");
      return;
    }
    if (in.size() < 4 + static_cast<size_t>(len)) {
      break;
    }
    const uint8_t* p = in.ptr() + 4;
    uint64_t corr = GetU64Le(p);
    StatusCode code = static_cast<StatusCode>(p[8]);
    uint32_t retry_after_us = GetU32Le(p + 9);
    {
      std::lock_guard<std::mutex> lock(mu);
      auto it = pending.find(corr);
      if (it != pending.end()) {
        PendingCall* pc = it->second;
        pending.erase(it);
        pc->status = Status(code);
        pc->status.set_retry_after_us(retry_after_us);
        pc->payload.assign(p + kRespHeaderBytes, p + len);
        pc->done.Notify();
      }
      // Unknown id: the caller timed out and abandoned it — drop.
    }
    in.Consume(4 + len);
  }
  if (rs != ReadStatus::kMore) {
    Die("peer closed connection");
  }
}

void TcpTransport::ClientConn::DrainWrites() {
  while (!out.empty()) {
    ssize_t n = ::send(fd, out.ptr(), out.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      Die("send failed");
      return;
    }
    out.Consume(static_cast<size_t>(n));
  }
  SyncQueueGauge(&gauged, out.size());
  UpdateInterest();
}

void TcpTransport::ClientConn::UpdateInterest() {
  uint32_t want = EPOLLIN | (out.empty() ? 0u : EPOLLOUT);
  if (want != interest) {
    interest = want;
    loop->Update(fd, want);
  }
}

void TcpTransport::ClientConn::FlushStaged() {
  std::vector<uint8_t> bytes;
  {
    std::lock_guard<std::mutex> lock(mu);
    flush_posted = false;
    if (state != State::kReady) {
      // Still connecting: the ready transition drains `staged` itself.
      // Dead: the frames are moot (their calls were already failed).
      return;
    }
    bytes.swap(staged);
  }
  if (closed || bytes.empty()) {
    return;
  }
  out.Append(bytes.data(), bytes.size());
  DrainWrites();
}

void TcpTransport::ClientConn::Die(const char* why) {
  if (closed) {
    return;
  }
  closed = true;
  auto self = shared_from_this();
  SyncQueueGauge(&gauged, 0);
  out.Clear();
  in.Clear();
  loop->Remove(fd);
  ::close(fd);
  fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu);
    state = State::kDead;
    staged.clear();
    for (auto& [corr, pc] : pending) {
      pc->status = Status(StatusCode::kUnavailable, why);
      pc->transport_failure = true;
      pc->done.Notify();
    }
    pending.clear();
  }
  transport->DropConnectionIfSame(dest, this);
}

// ---------------------------------------------------------------------------
// TcpTransport
// ---------------------------------------------------------------------------

TcpTransport::TcpTransport(Options options)
    : handler_threads_opt_(options.handler_threads),
      call_timeout_ms_(options.call_timeout_ms),
      loop_(std::make_unique<EventLoop>()) {}

TcpTransport::~TcpTransport() {
  std::vector<std::shared_ptr<Listener>> listeners;
  std::vector<std::shared_ptr<ClientConn>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [node, l] : listeners_) {
      listeners.push_back(l);
    }
    listeners_.clear();
    for (auto& [node, c] : connections_) {
      conns.push_back(c);
    }
    connections_.clear();
    routes_.clear();
  }
  for (auto& l : listeners) {
    ShutdownListener(l);
  }
  if (!conns.empty()) {
    loop_->PostAndWait([&conns] {
      for (auto& c : conns) {
        c->Die("transport shutting down");
      }
    });
  }
  // Handler tasks have all finished (WaitIdle above); destroying the
  // executor before the loop keeps the "tasks may post to a live loop"
  // invariant for anything still draining.
  handlers_.reset();
  loop_.reset();
}

void TcpTransport::ShutdownListener(const std::shared_ptr<Listener>& listener) {
  listener->closed.store(true, std::memory_order_release);
  loop_->PostAndWait([listener] {
    if (listener->listen_fd >= 0) {
      listener->loop->Remove(listener->listen_fd);
      ::close(listener->listen_fd);
      listener->listen_fd = -1;
    }
    auto conns = std::move(listener->conns);
    listener->conns.clear();
    for (auto& [fd, conn] : conns) {
      conn->CloseOnLoop();
    }
  });
  // After this, no dispatched handler task is running and none will start.
  listener->WaitIdle();
}

void TcpTransport::RegisterNode(NodeId node, RpcHandler handler) {
  UnregisterNode(node);  // replace semantics: tear down any previous listener

  uint16_t requested_port = 0;
  std::string address;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = listen_ports_.find(node);
    if (it != listen_ports_.end()) {
      requested_port = it->second;
    }
    address = listen_address_;
    // handler_threads < 0 selects inline dispatch (no pool at all); the
    // listener's null `handlers` pointer is the marker.
    if (!handlers_ && handler_threads_opt_ >= 0) {
      unsigned hw = std::thread::hardware_concurrency();
      int n = handler_threads_opt_ > 0
                  ? handler_threads_opt_
                  : static_cast<int>(hw < 4 ? 4 : hw);
      handlers_ = std::make_unique<Executor>(n);
    }
  }

  auto listener = std::make_shared<Listener>();
  listener->loop = loop_.get();
  listener->handlers = handlers_.get();
  listener->node = node;
  listener->handler = std::move(handler);

  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  TANGO_CHECK(fd >= 0) << "socket() failed";
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  }
  addr.sin_port = htons(requested_port);
  TANGO_CHECK(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      << "bind() failed for node " << node << " port " << requested_port;
  TANGO_CHECK(::listen(fd, 1024) == 0) << "listen() failed";

  socklen_t addr_len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  listener->listen_fd = fd;
  listener->port = ntohs(addr.sin_port);

  loop_->PostAndWait([listener] {
    listener->loop->Add(listener->listen_fd, EPOLLIN,
                        [listener](uint32_t) { listener->OnAcceptable(); });
  });

  std::lock_guard<std::mutex> lock(mu_);
  routes_[node] = {"127.0.0.1", listener->port};
  listeners_[node] = std::move(listener);
}

void TcpTransport::SetListenPort(NodeId node, uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  if (port == 0) {
    listen_ports_.erase(node);
  } else {
    listen_ports_[node] = port;
  }
}

void TcpTransport::SetListenAddress(const std::string& address) {
  std::lock_guard<std::mutex> lock(mu_);
  listen_address_ = address;
}

void TcpTransport::UnregisterNode(NodeId node) {
  std::shared_ptr<Listener> listener;
  std::shared_ptr<ClientConn> conn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = listeners_.find(node);
    if (it != listeners_.end()) {
      listener = it->second;
      listeners_.erase(it);
    }
    routes_.erase(node);
    auto cit = connections_.find(node);
    if (cit != connections_.end()) {
      conn = cit->second;
      connections_.erase(cit);
    }
  }
  if (conn) {
    loop_->PostAndWait([conn] { conn->Die("node unregistered"); });
  }
  if (listener) {
    ShutdownListener(listener);
  }
}

void TcpTransport::AddRoute(NodeId node, const std::string& host,
                            uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  routes_[node] = {host, port};
}

uint16_t TcpTransport::LocalPort(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = listeners_.find(node);
  return it == listeners_.end() ? 0 : it->second->port;
}

Result<std::shared_ptr<TcpTransport::ClientConn>> TcpTransport::GetConnection(
    NodeId dest) {
  std::string host;
  uint16_t port = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = connections_.find(dest);
    if (it != connections_.end()) {
      return it->second;
    }
    auto route = routes_.find(dest);
    if (route == routes_.end()) {
      return Status(StatusCode::kUnavailable, "no route to node");
    }
    host = route->second.first;
    port = route->second.second;
  }

  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status(StatusCode::kUnavailable, "socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status(StatusCode::kInvalidArgument, "bad host address");
  }
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return Status(StatusCode::kUnavailable, "connect() failed");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto conn = std::make_shared<ClientConn>();
  conn->transport = this;
  conn->loop = loop_.get();
  conn->dest = dest;
  conn->fd = fd;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = connections_.emplace(dest, conn);
    if (!inserted) {
      // Another thread raced us; keep the first one in.  The losing racer's
      // socket must not leak — it was never registered with the loop, so
      // closing it here is the whole cleanup (regression-tested by
      // ConcurrentFirstCallsDontLeakFds).
      ::close(fd);
      return it->second;
    }
  }
  if (!loop_->Post([conn] {
        conn->loop->Add(conn->fd, EPOLLIN | EPOLLOUT,
                        [conn](uint32_t ev) { conn->OnEvent(ev); });
      })) {
    DropConnectionIfSame(dest, conn.get());
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->state = ClientConn::State::kDead;
    ::close(conn->fd);
    conn->fd = -1;
    return Status(StatusCode::kUnavailable, "transport shutting down");
  }
  return conn;
}

void TcpTransport::DropConnectionIfSame(NodeId dest, const ClientConn* conn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = connections_.find(dest);
  if (it != connections_.end() && it->second.get() == conn) {
    connections_.erase(it);
  }
}

Status TcpTransport::Call(NodeId dest, uint16_t method,
                          std::span<const uint8_t> request,
                          std::vector<uint8_t>* response) {
  obs::RpcMethodStats& rpc = obs::RpcStatsFor(method);
  rpc.calls->Add();
  // Opened before the context is serialized so the server's span parents
  // under this round-trip span.
  obs::TraceScope span(rpc.span_name, dest);
  obs::TraceContext ctx = obs::CurrentTrace();
  uint64_t start_us = obs::MetricsEnabled() ? NowMicros() : 0;
  uint32_t timeout_ms = call_timeout_ms_.load(std::memory_order_relaxed);

  // Build the frame once; the correlation id at offset 4 is patched when the
  // call is enqueued on a live connection.
  uint32_t req_len = kReqHeaderBytes + static_cast<uint32_t>(request.size());
  std::vector<uint8_t> frame(4 + req_len);
  PutU32Le(frame.data(), req_len);
  frame[12] = static_cast<uint8_t>(method);
  frame[13] = static_cast<uint8_t>(method >> 8);
  PutU64Le(frame.data() + 14, ctx.trace_id);
  PutU64Le(frame.data() + 22, ctx.span_id);
  if (!request.empty()) {
    std::memcpy(frame.data() + 4 + kReqHeaderBytes, request.data(),
                request.size());
  }

  ClientConn::PendingCall pc;
  std::shared_ptr<ClientConn> conn;
  uint64_t corr = 0;
  bool enqueued = false;
  // Two attempts: a cached connection that died since its last use is
  // evicted and replaced with a fresh socket.  A call that was already
  // enqueued is never retried here — the server may have executed it.
  for (int attempt = 0; attempt < 2 && !enqueued; ++attempt) {
    auto got = GetConnection(dest);
    if (!got.ok()) {
      rpc.drops->Add();
      TANGO_LOG(kWarning) << "tcp: call to node " << dest << " ("
                          << obs::RpcMethodName(method)
                          << ") failed: " << got.status().message();
      return got.status();
    }
    conn = *got;
    bool need_post = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->state != ClientConn::State::kDead) {
        corr = conn->next_corr++;
        PutU64Le(frame.data() + 4, corr);
        conn->pending.emplace(corr, &pc);
        conn->staged.insert(conn->staged.end(), frame.begin(), frame.end());
        if (!conn->flush_posted) {
          conn->flush_posted = true;
          need_post = true;
        }
        enqueued = true;
      }
    }
    if (!enqueued) {
      DropConnectionIfSame(dest, conn.get());
      continue;
    }
    if (need_post) {
      auto c = conn;
      if (!loop_->Post([c] { c->FlushStaged(); })) {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->pending.erase(corr);
        rpc.drops->Add();
        return Status(StatusCode::kUnavailable, "transport shutting down");
      }
    }
  }
  if (!enqueued) {
    rpc.drops->Add();
    TANGO_LOG(kWarning) << "tcp: connection to node " << dest
                        << " repeatedly unavailable";
    return Status(StatusCode::kUnavailable, "connection unavailable");
  }

  TheTcpGauges().client_inflight->Add(1);
  bool done = true;
  if (timeout_ms == 0) {
    pc.done.WaitForNotification();
  } else {
    done = pc.done.WaitForNotificationWithTimeout(
        std::chrono::milliseconds(timeout_ms));
  }
  if (!done) {
    bool erased;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      erased = conn->pending.erase(corr) > 0;
    }
    if (erased) {
      // Abandon the call but keep the connection: with multiplexed framing a
      // slow response no longer poisons the stream.  Repeated timeouts are
      // the circuit breaker's business.
      TheTcpGauges().client_inflight->Add(-1);
      rpc.drops->Add();
      TANGO_LOG(kWarning) << "tcp: call to node " << dest << " ("
                          << obs::RpcMethodName(method) << ") timed out after "
                          << timeout_ms << " ms";
      return Status(StatusCode::kTimeout, "call timed out");
    }
    // The response raced in: the loop filled and notified `pc` under
    // conn->mu before removing the id, so this wait returns immediately.
    pc.done.WaitForNotification();
  }
  TheTcpGauges().client_inflight->Add(-1);

  if (pc.transport_failure) {
    rpc.drops->Add();
    TANGO_LOG(kWarning) << "tcp: call to node " << dest << " ("
                        << obs::RpcMethodName(method)
                        << ") failed: " << pc.status.message()
                        << "; connection dropped";
    return pc.status;
  }
  if (start_us != 0) {
    rpc.latency_us->Record(NowMicros() - start_us);
  }
  if (!pc.status.ok()) {
    rpc.failures->Add();
    return pc.status;
  }
  if (response != nullptr) {
    *response = std::move(pc.payload);
  }
  return Status::Ok();
}

}  // namespace tango

