#include "src/net/inproc_transport.h"

#include <chrono>
#include <mutex>
#include <thread>

namespace tango {

InProcTransport::InProcTransport(Options options)
    : options_(options),
      link_latency_us_(options.link_latency_us),
      drop_probability_(options.drop_probability) {}

Status InProcTransport::Call(NodeId dest, uint16_t method,
                             std::span<const uint8_t> request,
                             std::vector<uint8_t>* response) {
  double drop_probability = drop_probability_.load(std::memory_order_relaxed);
  if (drop_probability > 0.0) {
    // A cheap per-call hash keeps drops deterministic given the seed without
    // a shared RNG lock.
    uint64_t seq = drop_seq_.fetch_add(1, std::memory_order_relaxed);
    Rng rng(options_.seed ^ (seq * 0x9e3779b97f4a7c15ULL));
    if (rng.NextBool(drop_probability)) {
      return Status(StatusCode::kUnavailable, "injected drop");
    }
  }
  uint32_t link_latency_us = link_latency_us_.load(std::memory_order_relaxed);
  if (link_latency_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(2 * link_latency_us));
  }

  RpcHandler handler;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (killed_.contains(dest)) {
      return Status(StatusCode::kUnavailable, "node killed");
    }
    auto it = handlers_.find(dest);
    if (it == handlers_.end()) {
      return Status(StatusCode::kUnavailable, "no such node");
    }
    handler = it->second;  // copy so the handler can outlive the lock
  }

  ByteReader reader(request);
  ByteWriter writer;
  Status st = handler(method, reader, writer);
  if (st.ok() && response != nullptr) {
    *response = writer.Take();
  }
  call_count_.fetch_add(1, std::memory_order_relaxed);
  return st;
}

void InProcTransport::RegisterNode(NodeId node, RpcHandler handler) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  handlers_[node] = std::move(handler);
}

void InProcTransport::UnregisterNode(NodeId node) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  handlers_.erase(node);
}

void InProcTransport::KillNode(NodeId node) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  killed_.insert(node);
}

void InProcTransport::ReviveNode(NodeId node) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  killed_.erase(node);
}

bool InProcTransport::IsKilled(NodeId node) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return killed_.contains(node);
}

}  // namespace tango
