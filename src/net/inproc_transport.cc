#include "src/net/inproc_transport.h"

#include <chrono>
#include <mutex>
#include <thread>

#include "src/obs/rpc_metrics.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"
#include "src/util/threading.h"

namespace tango {

InProcTransport::InProcTransport(Options options)
    : options_(options),
      link_latency_us_(options.link_latency_us),
      drop_probability_(options.drop_probability) {}

Status InProcTransport::Call(NodeId dest, uint16_t method,
                             std::span<const uint8_t> request,
                             std::vector<uint8_t>* response) {
  obs::RpcMethodStats& rpc = obs::RpcStatsFor(method);
  rpc.calls->Add();
  double drop_probability = drop_probability_.load(std::memory_order_relaxed);
  if (drop_probability > 0.0) {
    // A cheap per-call hash keeps drops deterministic given the seed without
    // a shared RNG lock.
    uint64_t seq = drop_seq_.fetch_add(1, std::memory_order_relaxed);
    Rng rng(options_.seed ^ (seq * 0x9e3779b97f4a7c15ULL));
    if (rng.NextBool(drop_probability)) {
      rpc.drops->Add();
      TANGO_LOG(kWarning) << "inproc: injected drop of "
                          << obs::RpcMethodName(method) << " to node " << dest;
      return Status(StatusCode::kUnavailable, "injected drop");
    }
  }
  uint32_t link_latency_us = link_latency_us_.load(std::memory_order_relaxed);
  uint32_t link_jitter_us = link_jitter_us_.load(std::memory_order_relaxed);
  if (link_latency_us > 0 || link_jitter_us > 0) {
    uint64_t extra = 0;
    if (link_jitter_us > 0) {
      uint64_t seq = drop_seq_.fetch_add(1, std::memory_order_relaxed);
      Rng rng(options_.seed ^ (seq * 0xda942042e4dd58b5ULL));
      extra = rng.NextBelow(static_cast<uint64_t>(link_jitter_us) + 1);
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(2 * link_latency_us + extra));
  }

  NodeId src = CurrentNetworkIdentity();
  std::shared_ptr<NodeEntry> entry;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (partitioned_links_.contains(LinkKey(src, dest))) {
      rpc.drops->Add();
      return Status(StatusCode::kUnavailable, "partitioned link");
    }
    if (killed_.contains(dest)) {
      rpc.drops->Add();
      return Status(StatusCode::kUnavailable, "node killed");
    }
    auto it = handlers_.find(dest);
    if (it == handlers_.end()) {
      rpc.failures->Add();
      return Status(StatusCode::kUnavailable, "no such node");
    }
    entry = it->second;
    // Incremented under the lock, so UnregisterNode (which erases under the
    // exclusive lock, then drains) cannot miss this call.
    entry->in_flight.fetch_add(1, std::memory_order_acquire);
  }

  // The handler runs inline on this thread, so the caller's trace context
  // flows into it through the thread-local; this scope is both the client's
  // round trip and the server-side execution span.
  uint64_t start_us = obs::MetricsEnabled() ? NowMicros() : 0;
  // Occupancy gauge shared by every InProcTransport: dispatches currently
  // executing a handler.  Sustained high values mean callers are piling into
  // slow handlers — the in-process analogue of a deep server queue.
  static obs::Gauge* inflight_gauge =
      obs::MetricsRegistry::Default().GetGauge("net.inproc.inflight");
  ByteReader reader(request);
  ByteWriter writer;
  Status st;
  {
    obs::TraceScope span(rpc.span_name, dest);
    // While the handler runs, this thread *is* the serving node, so calls it
    // issues in turn are attributed to `dest` for partition purposes.
    ScopedNetworkIdentity serving_as(dest);
    inflight_gauge->Add(1);
    st = entry->handler(method, reader, writer);
    inflight_gauge->Add(-1);
  }
  if (entry->in_flight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Notify under the drain lock so a concurrent UnregisterNode between
    // its predicate check and its wait cannot miss the wakeup.
    std::lock_guard<std::mutex> drain_lock(drain_mu_);
    drain_cv_.notify_all();
  }
  if (start_us != 0) {
    rpc.latency_us->Record(NowMicros() - start_us);
  }
  if (!st.ok()) {
    rpc.failures->Add();
  }
  if (st.ok() && response != nullptr) {
    *response = writer.Take();
  }
  call_count_.fetch_add(1, std::memory_order_relaxed);
  return st;
}

void InProcTransport::RegisterNode(NodeId node, RpcHandler handler) {
  auto entry = std::make_shared<NodeEntry>();
  entry->handler = std::move(handler);
  std::unique_lock<std::shared_mutex> lock(mu_);
  handlers_[node] = std::move(entry);
}

void InProcTransport::UnregisterNode(NodeId node) {
  std::shared_ptr<NodeEntry> entry;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = handlers_.find(node);
    if (it == handlers_.end()) {
      return;
    }
    entry = std::move(it->second);
    handlers_.erase(it);
  }
  // Drain calls that copied the entry before the erase: the caller is about
  // to destroy the service object the handler closes over (e.g. a crashed
  // sequencer's dispatcher), which is only safe once they have returned.
  std::unique_lock<std::mutex> drain_lock(drain_mu_);
  drain_cv_.wait(drain_lock, [&entry] {
    return entry->in_flight.load(std::memory_order_acquire) == 0;
  });
}

void InProcTransport::KillNode(NodeId node) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  killed_.insert(node);
}

void InProcTransport::ReviveNode(NodeId node) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  killed_.erase(node);
}

bool InProcTransport::IsKilled(NodeId node) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return killed_.contains(node);
}

void InProcTransport::PartitionLink(NodeId from, NodeId to) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  partitioned_links_.insert(LinkKey(from, to));
}

void InProcTransport::HealLink(NodeId from, NodeId to) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  partitioned_links_.erase(LinkKey(from, to));
}

void InProcTransport::HealAllLinks() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  partitioned_links_.clear();
}

bool InProcTransport::IsPartitioned(NodeId from, NodeId to) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return partitioned_links_.contains(LinkKey(from, to));
}

}  // namespace tango
