#include "src/net/breaker.h"

#include <algorithm>

#include "src/util/threading.h"

namespace tango {

CircuitBreakerTransport::CircuitBreakerTransport(Transport* inner,
                                                 Options options)
    : inner_(inner), options_(options) {
  options_.failure_threshold = std::max(options_.failure_threshold, 1u);
  options_.open_ms = std::max(options_.open_ms, 1u);
  options_.max_open_ms = std::max(options_.max_open_ms, options_.open_ms);
  auto& reg = obs::MetricsRegistry::Default();
  opens_ = reg.GetCounter("overload.breaker.opens");
  fast_fails_ = reg.GetCounter("overload.breaker.fast_fails");
  open_gauge_ = reg.GetGauge("overload.breaker.open_nodes");
}

void CircuitBreakerTransport::TripLocked(NodeState& s, uint64_t now_us) {
  if (s.open_ms == 0) {
    s.open_ms = options_.open_ms;
    open_gauge_->Add(1);
  } else {
    s.open_ms = std::min(s.open_ms * 2, options_.max_open_ms);
  }
  s.open_until_us = now_us + static_cast<uint64_t>(s.open_ms) * 1000;
  opens_->Add();
}

bool CircuitBreakerTransport::IsOpen(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = states_.find(node);
  return it != states_.end() && it->second.open_ms != 0;
}

Status CircuitBreakerTransport::Call(NodeId dest, uint16_t method,
                                     std::span<const uint8_t> request,
                                     std::vector<uint8_t>* response) {
  if (options_.bypass && options_.bypass(method)) {
    return inner_->Call(dest, method, request, response);
  }
  bool probe = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    NodeState& s = states_[dest];
    uint64_t now = NowMicros();
    if (s.open_ms != 0) {
      if (now < s.open_until_us || s.probing) {
        // Open, or half-open with the single probe slot taken: fail fast
        // with the remaining window as the retry-after hint.
        fast_fails_->Add();
        uint64_t remaining =
            s.open_until_us > now ? s.open_until_us - now
                                  : static_cast<uint64_t>(s.open_ms) * 1000;
        return Status::Busy(
            static_cast<uint32_t>(std::clamp<uint64_t>(remaining, 200,
                                                       5'000'000)),
            "circuit open");
      }
      // Half-open: this caller becomes the probe.
      s.probing = true;
      probe = true;
    }
  }

  Status st = inner_->Call(dest, method, request, response);

  bool transport_failure =
      st == StatusCode::kUnavailable || st == StatusCode::kTimeout;
  {
    std::lock_guard<std::mutex> lock(mu_);
    NodeState& s = states_[dest];
    if (probe) {
      s.probing = false;
    }
    if (transport_failure) {
      ++s.consecutive_failures;
      if (probe || s.consecutive_failures >= options_.failure_threshold) {
        TripLocked(s, NowMicros());
      }
    } else {
      // Any answer — success or a protocol error — proves the node is alive.
      s.consecutive_failures = 0;
      if (s.open_ms != 0) {
        s.open_ms = 0;
        s.open_until_us = 0;
        open_gauge_->Add(-1);
      }
    }
  }
  return st;
}

}  // namespace tango
