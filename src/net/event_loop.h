// EventLoop: a single-threaded epoll reactor.
//
// One thread owns an epoll instance and every file descriptor registered
// with it.  All fd operations (Add/Update/Remove) and all fd callbacks run
// on that thread, so per-fd state needs no locks; other threads communicate
// with the loop exclusively through Post(), which enqueues a closure and
// wakes the loop via an eventfd.
//
// This is the I/O substrate of the multiplexed TcpTransport (every listener,
// server connection and client connection of a transport shares one loop)
// and of the raw-socket client fleets in bench/fig_transport.  The loop
// must never block: callbacks do nonblocking I/O and hand anything slow
// (RPC handlers, fsync) to an Executor.
//
// Level-triggered semantics: a callback receives the epoll event mask and is
// re-invoked while the condition holds, so partial reads/writes are safe.

#ifndef SRC_NET_EVENT_LOOP_H_
#define SRC_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace tango {

class EventLoop {
 public:
  // Invoked on the loop thread with the ready epoll event mask
  // (EPOLLIN/EPOLLOUT/EPOLLHUP/EPOLLERR...).
  using FdHandler = std::function<void(uint32_t events)>;

  EventLoop();
  ~EventLoop();  // Stop() + join; pending posted tasks are discarded

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Enqueues `fn` to run on the loop thread and wakes it.  Thread-safe.
  // Returns false (dropping `fn`) if the loop has been stopped.
  bool Post(std::function<void()> fn);

  // Runs `fn` on the loop thread and blocks until it completes.  Returns
  // false if the loop is stopped (fn did not run).  Must not be called from
  // the loop thread (Post or call directly instead).
  bool PostAndWait(std::function<void()> fn);

  // True when the calling thread is the loop thread.
  bool InLoop() const {
    return std::this_thread::get_id() ==
           loop_tid_.load(std::memory_order_relaxed);
  }

  // fd registration.  Loop-thread only (Post from outside).  `events` is the
  // initial epoll interest mask; the handler must outlive the registration.
  void Add(int fd, uint32_t events, FdHandler handler);
  void Update(int fd, uint32_t events);  // replaces the interest mask
  void Remove(int fd);  // deregisters; the caller still owns (and closes) fd

  // Stops the loop (idempotent, thread-safe).  After Stop, Post returns
  // false.  The destructor joins the thread.
  void Stop();

  // Registered fd count, for tests/introspection.  Loop-thread only.
  size_t fd_count() const { return fds_.size(); }

 private:
  struct FdState {
    int fd = -1;
    uint32_t events = 0;
    FdHandler handler;
    bool dead = false;  // removed mid-batch; skip any already-reaped events
  };

  void Run();
  void Wake();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<std::thread::id> loop_tid_{};

  std::mutex tasks_mu_;
  std::deque<std::function<void()>> tasks_;
  bool wake_pending_ = false;  // a wake byte is already in flight
  bool finished_ = false;      // final drain done; Post rejects from now on

  // Loop-thread state.
  std::unordered_map<int, std::shared_ptr<FdState>> fds_;
  // States removed during the current dispatch batch, kept alive until the
  // batch ends (epoll may have returned further events pointing at them).
  std::vector<std::shared_ptr<FdState>> dying_;

  std::thread thread_;
};

}  // namespace tango

#endif  // SRC_NET_EVENT_LOOP_H_
