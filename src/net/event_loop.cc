#include "src/net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/util/logging.h"
#include "src/util/threading.h"

namespace tango {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  TANGO_CHECK(epoll_fd_ >= 0) << "epoll_create1 failed: " << strerror(errno);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  TANGO_CHECK(wake_fd_ >= 0) << "eventfd failed: " << strerror(errno);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // nullptr marks the wake fd
  TANGO_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);
  thread_ = std::thread([this] { Run(); });
}

EventLoop::~EventLoop() {
  Stop();
  if (thread_.joinable()) {
    thread_.join();
  }
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void EventLoop::Stop() {
  bool expected = false;
  if (stopping_.compare_exchange_strong(expected, true)) {
    Wake();
  }
}

void EventLoop::Wake() {
  uint64_t one = 1;
  ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  (void)n;  // EAGAIN means a wake is already pending — equally good
}

bool EventLoop::Post(std::function<void()> fn) {
  bool need_wake;
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    // `finished_` (not `stopping_`) is the accept/reject line: a task that
    // makes it into the queue before the loop's final drain is guaranteed
    // to run, so PostAndWait can never strand its waiter.
    if (finished_) {
      return false;
    }
    tasks_.push_back(std::move(fn));
    need_wake = !wake_pending_;
    wake_pending_ = true;
  }
  if (need_wake) {
    Wake();
  }
  return true;
}

bool EventLoop::PostAndWait(std::function<void()> fn) {
  TANGO_CHECK(!InLoop()) << "PostAndWait from the loop thread would deadlock";
  Notification done;
  if (!Post([&fn, &done] {
        fn();
        done.Notify();
      })) {
    return false;
  }
  done.WaitForNotification();
  return true;
}

void EventLoop::Add(int fd, uint32_t events, FdHandler handler) {
  auto state = std::make_shared<FdState>();
  state->fd = fd;
  state->events = events;
  state->handler = std::move(handler);
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = state.get();
  TANGO_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0)
      << "epoll add fd " << fd << ": " << strerror(errno);
  fds_[fd] = std::move(state);
}

void EventLoop::Update(int fd, uint32_t events) {
  auto it = fds_.find(fd);
  if (it == fds_.end() || it->second->events == events) {
    return;
  }
  it->second->events = events;
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = it->second.get();
  TANGO_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0)
      << "epoll mod fd " << fd << ": " << strerror(errno);
}

void EventLoop::Remove(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return;
  }
  it->second->dead = true;
  // Park the state until the current dispatch batch finishes: epoll_wait may
  // already have handed us more events whose data.ptr points at it.
  dying_.push_back(std::move(it->second));
  fds_.erase(it);
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::Run() {
  SetCurrentThreadName("tgo-loop");
  loop_tid_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  constexpr int kMaxEvents = 256;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      TANGO_LOG(kError) << "epoll_wait failed: " << strerror(errno);
      break;
    }
    bool woken = false;
    for (int i = 0; i < n; ++i) {
      auto* state = static_cast<FdState*>(events[i].data.ptr);
      if (state == nullptr) {
        woken = true;
        uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (!state->dead) {
        state->handler(events[i].events);
      }
    }
    (void)woken;
    dying_.clear();
    // Drain posted tasks.  Tasks posted *by* tasks run in the same drain,
    // so a post-from-loop never waits for another epoll wakeup.
    std::deque<std::function<void()>> batch;
    while (true) {
      {
        std::lock_guard<std::mutex> lock(tasks_mu_);
        if (tasks_.empty()) {
          wake_pending_ = false;
          break;
        }
        batch.swap(tasks_);
      }
      for (auto& task : batch) {
        task();
      }
      batch.clear();
      dying_.clear();
    }
  }
  // Final drain, after which Post rejects: releases PostAndWait callers that
  // raced Stop().
  while (true) {
    std::deque<std::function<void()>> batch;
    {
      std::lock_guard<std::mutex> lock(tasks_mu_);
      if (tasks_.empty()) {
        finished_ = true;
        break;
      }
      batch.swap(tasks_);
    }
    for (auto& task : batch) {
      task();
    }
    dying_.clear();
  }
}

}  // namespace tango
