// Transport abstraction.
//
// All Tango/CORFU protocol participants (storage nodes, the sequencer, the
// 2PL baseline's lock managers) are services addressed by a NodeId and
// reached exclusively through synchronous RPC on a Transport.  Tango runtimes
// never talk to each other directly — exactly as in the paper, where all
// inter-client coordination flows through the shared log.
//
// Two implementations exist:
//   * InProcTransport — direct dispatch inside one process, with optional
//     simulated latency, drop probability and per-node kill switches.  This
//     is the substrate for tests and benches (substituting for the paper's
//     36-machine cluster).
//   * TcpTransport — real POSIX sockets with length-prefixed frames, showing
//     the same protocol code running over an actual network.

#ifndef SRC_NET_TRANSPORT_H_
#define SRC_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/util/serialize.h"
#include "src/util/status.h"

namespace tango {

using NodeId = uint32_t;

inline constexpr NodeId kInvalidNodeId = 0xffffffffu;

// A service handler: decodes the request from `req`, encodes the reply into
// `resp`, and returns the RPC-level status.  The returned status travels back
// to the caller verbatim; `resp` contents are delivered only when OK.
using RpcHandler =
    std::function<Status(uint16_t method, ByteReader& req, ByteWriter& resp)>;

class Transport {
 public:
  virtual ~Transport() = default;

  // Synchronous request/response.  On success, `*response` holds the reply
  // payload.  Non-OK statuses produced by the remote handler are returned
  // as-is; transport failures surface as kUnavailable or kTimeout.
  virtual Status Call(NodeId dest, uint16_t method,
                      std::span<const uint8_t> request,
                      std::vector<uint8_t>* response) = 0;

  // Registers (or replaces) the handler serving `node`.
  virtual void RegisterNode(NodeId node, RpcHandler handler) = 0;

  // Removes the handler; subsequent calls to `node` fail with kUnavailable.
  virtual void UnregisterNode(NodeId node) = 0;
};

// A convenience dispatch table mapping method ids to typed handlers, so a
// service implements one small function per RPC verb.
class RpcDispatcher {
 public:
  using Method =
      std::function<Status(ByteReader& req, ByteWriter& resp)>;

  void Register(uint16_t method, Method fn) { methods_[method] = std::move(fn); }

  // Adapts this table to the Transport's RpcHandler signature.
  RpcHandler AsHandler() {
    return [this](uint16_t method, ByteReader& req, ByteWriter& resp) {
      return Dispatch(method, req, resp);
    };
  }

  Status Dispatch(uint16_t method, ByteReader& req, ByteWriter& resp) {
    auto it = methods_.find(method);
    if (it == methods_.end()) {
      return Status(StatusCode::kInvalidArgument, "unknown rpc method");
    }
    return it->second(req, resp);
  }

 private:
  std::unordered_map<uint16_t, Method> methods_;
};

}  // namespace tango

#endif  // SRC_NET_TRANSPORT_H_
