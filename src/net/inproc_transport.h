// In-process transport: direct-call RPC with fault and latency injection.
//
// This is the testbed substitute for the paper's cluster network.  Every
// protocol byte still goes through encode/decode, so the wire formats are
// exercised identically to the TCP transport; only the copy across the
// network is elided.

#ifndef SRC_NET_INPROC_TRANSPORT_H_
#define SRC_NET_INPROC_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>

#include "src/net/transport.h"
#include "src/util/random.h"

namespace tango {

class InProcTransport : public Transport {
 public:
  struct Options {
    // Simulated one-way latency applied twice per call (request + response),
    // in microseconds.  0 disables the sleep entirely.
    uint32_t link_latency_us = 0;
    // Probability that a call is dropped (returns kUnavailable).
    double drop_probability = 0.0;
    uint64_t seed = 1;
  };

  InProcTransport() : InProcTransport(Options{}) {}
  explicit InProcTransport(Options options);

  Status Call(NodeId dest, uint16_t method, std::span<const uint8_t> request,
              std::vector<uint8_t>* response) override;

  void RegisterNode(NodeId node, RpcHandler handler) override;

  // Blocks until calls already executing the node's handler have returned,
  // so the service object behind the handler can be destroyed as soon as
  // this returns.  Must not be called from inside that node's own handler.
  void UnregisterNode(NodeId node) override;

  // Fault injection: a killed node rejects all calls with kUnavailable until
  // revived.  (The handler stays registered — a "crash", not a deregister.)
  void KillNode(NodeId node);
  void ReviveNode(NodeId node);
  bool IsKilled(NodeId node) const;

  // Runtime knobs: adjust the injected link latency / drop rate mid-test
  // (e.g. fast setup, then a lossy or slow measurement phase).
  void set_link_latency_us(uint32_t us) {
    link_latency_us_.store(us, std::memory_order_relaxed);
  }
  void set_drop_probability(double p) {
    drop_probability_.store(p, std::memory_order_relaxed);
  }

  // Total number of successful RPC round trips (for protocol-cost tests).
  uint64_t call_count() const {
    return call_count_.load(std::memory_order_relaxed);
  }

 private:
  // A registered handler plus the number of calls currently inside it.
  // Calls hold a shared_ptr so the handler object survives a concurrent
  // unregister; the unregistering thread then waits out in_flight.
  struct NodeEntry {
    RpcHandler handler;
    std::atomic<int> in_flight{0};
  };

  Options options_;
  std::atomic<uint32_t> link_latency_us_;
  std::atomic<double> drop_probability_;
  mutable std::shared_mutex mu_;
  std::unordered_map<NodeId, std::shared_ptr<NodeEntry>> handlers_;
  std::unordered_set<NodeId> killed_;
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::atomic<uint64_t> call_count_{0};
  std::atomic<uint64_t> drop_seq_{0};
};

}  // namespace tango

#endif  // SRC_NET_INPROC_TRANSPORT_H_
