// In-process transport: direct-call RPC with fault and latency injection.
//
// This is the testbed substitute for the paper's cluster network.  Every
// protocol byte still goes through encode/decode, so the wire formats are
// exercised identically to the TCP transport; only the copy across the
// network is elided.

#ifndef SRC_NET_INPROC_TRANSPORT_H_
#define SRC_NET_INPROC_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>

#include "src/net/transport.h"
#include "src/util/random.h"

namespace tango {

namespace internal {
// Thread-local caller identity for partition attribution (see
// ScopedNetworkIdentity below).  kInvalidNodeId = anonymous client.
inline thread_local NodeId tl_network_identity = kInvalidNodeId;
}  // namespace internal

// Declares the network identity of the calling thread for the duration of
// the scope.  InProcTransport uses it to attribute calls to a source node so
// asymmetric partitions (A can't reach B, B can reach A) are expressible;
// while a handler runs, the identity is the serving node, so chained
// node-to-node calls attribute correctly.  Threads with no scope in effect
// are anonymous clients (kInvalidNodeId).
class ScopedNetworkIdentity {
 public:
  explicit ScopedNetworkIdentity(NodeId id)
      : prev_(internal::tl_network_identity) {
    internal::tl_network_identity = id;
  }
  ~ScopedNetworkIdentity() { internal::tl_network_identity = prev_; }

  ScopedNetworkIdentity(const ScopedNetworkIdentity&) = delete;
  ScopedNetworkIdentity& operator=(const ScopedNetworkIdentity&) = delete;

 private:
  NodeId prev_;
};

inline NodeId CurrentNetworkIdentity() {
  return internal::tl_network_identity;
}

class InProcTransport : public Transport {
 public:
  struct Options {
    // Simulated one-way latency applied twice per call (request + response),
    // in microseconds.  0 disables the sleep entirely.
    uint32_t link_latency_us = 0;
    // Probability that a call is dropped (returns kUnavailable).
    double drop_probability = 0.0;
    uint64_t seed = 1;
  };

  InProcTransport() : InProcTransport(Options{}) {}
  explicit InProcTransport(Options options);

  Status Call(NodeId dest, uint16_t method, std::span<const uint8_t> request,
              std::vector<uint8_t>* response) override;

  void RegisterNode(NodeId node, RpcHandler handler) override;

  // Blocks until calls already executing the node's handler have returned,
  // so the service object behind the handler can be destroyed as soon as
  // this returns.  Must not be called from inside that node's own handler.
  void UnregisterNode(NodeId node) override;

  // Fault injection: a killed node rejects all calls with kUnavailable until
  // revived.  (The handler stays registered — a "crash", not a deregister.)
  void KillNode(NodeId node);
  void ReviveNode(NodeId node);
  bool IsKilled(NodeId node) const;

  // Asymmetric partition injection: calls whose thread-local identity (see
  // ScopedNetworkIdentity) is `from` and whose destination is `to` fail with
  // kUnavailable; the reverse direction is untouched.  A partition is a
  // *network* fault: both endpoints stay registered and healthy.
  void PartitionLink(NodeId from, NodeId to);
  void HealLink(NodeId from, NodeId to);
  void HealAllLinks();
  bool IsPartitioned(NodeId from, NodeId to) const;

  // Runtime knobs: adjust the injected link latency / drop rate mid-test
  // (e.g. fast setup, then a lossy or slow measurement phase).
  void set_link_latency_us(uint32_t us) {
    link_latency_us_.store(us, std::memory_order_relaxed);
  }
  void set_drop_probability(double p) {
    drop_probability_.store(p, std::memory_order_relaxed);
  }
  // Extra per-call latency, uniform in [0, max_jitter_us] (deterministic
  // given the seed).  Models variable queueing delay on top of the fixed
  // link latency.
  void set_link_jitter_us(uint32_t max_jitter_us) {
    link_jitter_us_.store(max_jitter_us, std::memory_order_relaxed);
  }

  // Total number of successful RPC round trips (for protocol-cost tests).
  uint64_t call_count() const {
    return call_count_.load(std::memory_order_relaxed);
  }

 private:
  // A registered handler plus the number of calls currently inside it.
  // Calls hold a shared_ptr so the handler object survives a concurrent
  // unregister; the unregistering thread then waits out in_flight.
  struct NodeEntry {
    RpcHandler handler;
    std::atomic<int> in_flight{0};
  };

  // (from << 32) | to — a directed link key for the partition set.
  static uint64_t LinkKey(NodeId from, NodeId to) {
    return (static_cast<uint64_t>(from) << 32) | to;
  }

  Options options_;
  std::atomic<uint32_t> link_latency_us_;
  std::atomic<uint32_t> link_jitter_us_{0};
  std::atomic<double> drop_probability_;
  mutable std::shared_mutex mu_;
  std::unordered_map<NodeId, std::shared_ptr<NodeEntry>> handlers_;
  std::unordered_set<NodeId> killed_;
  std::unordered_set<uint64_t> partitioned_links_;
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::atomic<uint64_t> call_count_{0};
  std::atomic<uint64_t> drop_seq_{0};
};

}  // namespace tango

#endif  // SRC_NET_INPROC_TRANSPORT_H_
