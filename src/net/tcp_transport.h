// TCP transport: the same RPC contract as InProcTransport, over real POSIX
// sockets on localhost or a LAN.
//
// Wire format (all little-endian):
//   request frame:  u32 length | u16 method | u64 trace_id | u64 parent_span
//                   | payload...
//   response frame: u32 length | u8 status | u32 retry_after_us | payload...
// `length` counts the bytes after the length field itself.  retry_after_us
// carries the server's backoff hint for kBusy sheds (0 otherwise), so
// admission control survives the wire.  The 16-byte
// trace envelope propagates the caller's trace context (src/obs/trace.h)
// across the wire; trace_id 0 means the call is untraced and the server
// records no spans for it.
//
// Each registered node owns a listening socket and an accept thread; each
// accepted connection is served by a dedicated thread running a simple
// read-dispatch-write loop.  Client-side, one cached connection per
// (transport, destination) pair is used, serialized by a per-connection
// mutex — CORFU clients issue strictly sequential RPCs per chain hop, so this
// matches the access pattern.

#ifndef SRC_NET_TCP_TRANSPORT_H_
#define SRC_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/net/transport.h"

namespace tango {

class TcpTransport : public Transport {
 public:
  struct Options {
    // Per-call I/O deadline in milliseconds: connect, send and recv are each
    // bounded by this, so a hung or unreachable peer surfaces as kTimeout
    // instead of blocking the caller forever.  0 = block indefinitely.
    uint32_t call_timeout_ms = 0;
  };

  TcpTransport() : TcpTransport(Options{}) {}
  explicit TcpTransport(Options options);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Status Call(NodeId dest, uint16_t method, std::span<const uint8_t> request,
              std::vector<uint8_t>* response) override;

  // Starts a listener on 127.0.0.1 with an OS-assigned port and serves
  // `handler` on it.  The chosen address is registered so Call() on this
  // transport can reach it; remote processes would use AddRoute().
  void RegisterNode(NodeId node, RpcHandler handler) override;
  void UnregisterNode(NodeId node) override;

  // Maps a node id to an explicit host:port (for cross-process setups).
  void AddRoute(NodeId node, const std::string& host, uint16_t port);

  // Pre-assigns the listening port RegisterNode will bind for `node` (0
  // restores OS assignment).  Lets daemons serve at well-known addresses.
  void SetListenPort(NodeId node, uint16_t port);

  // Binds listeners to this address (default 127.0.0.1; use "0.0.0.0" for
  // cross-machine deployments).
  void SetListenAddress(const std::string& address);

  // Port the given locally served node is listening on (0 if not local).
  uint16_t LocalPort(NodeId node) const;

  // Adjusts the per-call deadline at runtime (applies to subsequent calls).
  void set_call_timeout_ms(uint32_t ms) {
    call_timeout_ms_.store(ms, std::memory_order_relaxed);
  }

 private:
  struct Listener;
  struct Connection;

  Result<std::shared_ptr<Connection>> GetConnection(NodeId dest);
  void DropConnection(NodeId dest);

  std::atomic<uint32_t> call_timeout_ms_{0};
  mutable std::mutex mu_;
  std::unordered_map<NodeId, std::unique_ptr<Listener>> listeners_;
  std::unordered_map<NodeId, std::pair<std::string, uint16_t>> routes_;
  std::unordered_map<NodeId, std::shared_ptr<Connection>> connections_;
  std::unordered_map<NodeId, uint16_t> listen_ports_;
  std::string listen_address_ = "127.0.0.1";
};

}  // namespace tango

#endif  // SRC_NET_TCP_TRANSPORT_H_
