// TCP transport: the same RPC contract as InProcTransport, over real POSIX
// sockets — multiplexed over a nonblocking epoll event loop (EventLoop).
//
// Wire format v2 (all little-endian):
//   request frame:  u32 length | u64 corr_id | u16 method | u64 trace_id
//                   | u64 parent_span | payload...
//   response frame: u32 length | u64 corr_id | u8 status | u32 retry_after_us
//                   | payload...
// `length` counts the bytes after the length field itself.  corr_id pairs a
// response with its request, so many RPCs can be in flight on one connection
// and responses may return in any order.  retry_after_us carries the server's
// backoff hint for kBusy sheds (0 otherwise), so admission control survives
// the wire.  The 16-byte trace envelope propagates the caller's trace context
// (src/obs/trace.h); trace_id 0 means the call is untraced.
//
// Architecture: one EventLoop thread per transport owns every socket —
// listeners, accepted server connections, and cached client connections.
// All socket I/O is nonblocking with per-connection read/write buffers and
// incremental framing; nothing on the loop ever blocks.  Decoded requests
// are dispatched to a fixed-size handler Executor (handlers may block on
// fsync etc.), and completed responses are staged back to the loop for
// writing.  Client-side, Call() assigns a correlation id, enqueues its frame
// on the shared per-destination connection, and parks on a notification until
// the loop demuxes the matching response — so 10k concurrent callers cost
// 10k sockets, not 10k threads.
//
// Timeouts: Options::call_timeout_ms bounds each Call end to end (connect
// included).  A timed-out call abandons its correlation id but leaves the
// connection intact — later responses for abandoned ids are dropped.  Only a
// socket-level failure kills a connection (failing every pending call on it
// with kUnavailable).

#ifndef SRC_NET_TCP_TRANSPORT_H_
#define SRC_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/transport.h"

namespace tango {

class EventLoop;
class Executor;

class TcpTransport : public Transport {
 public:
  struct Options {
    // Per-call deadline in milliseconds, covering connect, queueing and the
    // server round trip: a hung or unreachable peer surfaces as kTimeout
    // instead of blocking the caller forever.  0 = block indefinitely.
    uint32_t call_timeout_ms = 0;

    // Worker threads executing RPC handlers (handlers may block, so they
    // never run on the event loop).  0 = max(4, hardware_concurrency).
    // -1 = inline mode: handlers run directly on the loop thread, removing
    // the per-request executor handoff.  Only for handlers that NEVER block
    // (e.g. a pure in-memory sequencer); a blocking inline handler stalls
    // every connection on the transport.
    int handler_threads = 0;
  };

  TcpTransport() : TcpTransport(Options{}) {}
  explicit TcpTransport(Options options);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Status Call(NodeId dest, uint16_t method, std::span<const uint8_t> request,
              std::vector<uint8_t>* response) override;

  // Starts a listener on 127.0.0.1 with an OS-assigned port and serves
  // `handler` on it.  The chosen address is registered so Call() on this
  // transport can reach it; remote processes would use AddRoute().
  // Re-registering a node replaces its listener (new port unless pinned).
  void RegisterNode(NodeId node, RpcHandler handler) override;

  // Stops the listener and waits for in-flight handlers: once this returns,
  // `handler` is not executing and will never be invoked again.
  void UnregisterNode(NodeId node) override;

  // Maps a node id to an explicit host:port (for cross-process setups).
  void AddRoute(NodeId node, const std::string& host, uint16_t port);

  // Pre-assigns the listening port RegisterNode will bind for `node` (0
  // restores OS assignment).  Lets daemons serve at well-known addresses.
  void SetListenPort(NodeId node, uint16_t port);

  // Binds listeners to this address (default 127.0.0.1; use "0.0.0.0" for
  // cross-machine deployments).
  void SetListenAddress(const std::string& address);

  // Port the given locally served node is listening on (0 if not local).
  uint16_t LocalPort(NodeId node) const;

  // Adjusts the per-call deadline at runtime (applies to subsequent calls).
  void set_call_timeout_ms(uint32_t ms) {
    call_timeout_ms_.store(ms, std::memory_order_relaxed);
  }

 private:
  struct Listener;
  struct ServerConn;
  struct ClientConn;

  Result<std::shared_ptr<ClientConn>> GetConnection(NodeId dest);
  // Evicts `conn` from the cache iff it is still the cached entry for
  // `dest` — a dying connection must not evict its replacement.
  void DropConnectionIfSame(NodeId dest, const ClientConn* conn);
  void ShutdownListener(const std::shared_ptr<Listener>& listener);

  const int handler_threads_opt_;
  std::atomic<uint32_t> call_timeout_ms_{0};
  // Declared before handlers_ so it is destroyed after: draining handler
  // tasks may still post response flushes to the loop.
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<Executor> handlers_;  // created at first RegisterNode

  mutable std::mutex mu_;
  std::unordered_map<NodeId, std::shared_ptr<Listener>> listeners_;
  std::unordered_map<NodeId, std::pair<std::string, uint16_t>> routes_;
  std::unordered_map<NodeId, std::shared_ptr<ClientConn>> connections_;
  std::unordered_map<NodeId, uint16_t> listen_ports_;
  std::string listen_address_ = "127.0.0.1";
};

}  // namespace tango

#endif  // SRC_NET_TCP_TRANSPORT_H_
