#include "src/util/crc32c.h"

namespace tango {
namespace {

// Four 256-entry tables for slicing-by-4, generated once at startup from the
// reflected Castagnoli polynomial.
struct Crc32cTables {
  uint32_t t[4][256];

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int b = 0; b < 8; ++b) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len) {
  const Crc32cTables& tb = Tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (len > 0 && (reinterpret_cast<uintptr_t>(p) & 3) != 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xff];
    --len;
  }
  while (len >= 4) {
    uint32_t w;
    __builtin_memcpy(&w, p, 4);
    crc ^= w;  // little-endian assumed, as everywhere in this codebase
    crc = tb.t[3][crc & 0xff] ^ tb.t[2][(crc >> 8) & 0xff] ^
          tb.t[1][(crc >> 16) & 0xff] ^ tb.t[0][(crc >> 24) & 0xff];
    p += 4;
    len -= 4;
  }
  while (len > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xff];
    --len;
  }
  return ~crc;
}

}  // namespace tango
