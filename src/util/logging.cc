#include "src/util/logging.h"

#include <atomic>
#include <mutex>

namespace tango {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};
std::mutex g_log_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  const char* basename = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') {
      basename = p + 1;
    }
  }
  std::lock_guard<std::mutex> lock(g_log_mu);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), basename, line,
               message.c_str());
}

}  // namespace tango
