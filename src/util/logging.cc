#include "src/util/logging.h"

#include <atomic>
#include <mutex>

namespace tango {

namespace {

int InitialLevel() {
  LogLevel level = LogLevel::kWarning;
  LogLevelFromString(std::getenv("TANGO_LOG_LEVEL"), &level);
  return static_cast<int>(level);
}

std::atomic<int> g_level{InitialLevel()};
std::mutex g_log_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

}  // namespace

bool LogLevelFromString(const char* s, LogLevel* level) {
  if (s == nullptr || *s == '\0') {
    return false;
  }
  switch (s[0]) {
    case 'd':
    case 'D':
    case '0':
      *level = LogLevel::kDebug;
      return true;
    case 'i':
    case 'I':
    case '1':
      *level = LogLevel::kInfo;
      return true;
    case 'w':
    case 'W':
    case '2':
      *level = LogLevel::kWarning;
      return true;
    case 'e':
    case 'E':
    case '3':
      *level = LogLevel::kError;
      return true;
    case 'n':
    case 'N':
    case '4':
      *level = LogLevel::kNone;
      return true;
    default:
      return false;
  }
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  const char* basename = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') {
      basename = p + 1;
    }
  }
  std::lock_guard<std::mutex> lock(g_log_mu);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), basename, line,
               message.c_str());
}

}  // namespace tango
