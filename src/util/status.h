// Lightweight status / result types used throughout the Tango codebase.
//
// We deliberately avoid exceptions on hot paths: every fallible operation in
// the log and runtime layers returns a Status or a Result<T>.  Status codes
// mirror the error surface of the CORFU protocol (write-once violations,
// trimmed addresses, sealed epochs, ...) plus generic transport failures.

#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace tango {

enum class StatusCode : uint8_t {
  kOk = 0,
  // The address was already written; write-once semantics reject overwrite.
  kWritten,
  // The address has not been written yet.
  kUnwritten,
  // The address was trimmed (garbage collected).
  kTrimmed,
  // The address holds a junk (fill) entry.
  kJunk,
  // The request carried a stale epoch; caller must refresh its projection.
  kSealedEpoch,
  // The target is not reachable / the node is down.
  kUnavailable,
  // The request is malformed or violates an invariant.
  kInvalidArgument,
  // The named entity does not exist.
  kNotFound,
  // The named entity already exists.
  kAlreadyExists,
  // A transaction aborted due to a read-set conflict.
  kAborted,
  // A precondition (e.g. znode version check) failed.
  kFailedPrecondition,
  // The operation ran out of retries or time.
  kTimeout,
  // Resource capacity exceeded (log full, too many streams per entry, ...).
  kOutOfRange,
  // Internal invariant violation; indicates a bug.
  kInternal,
  // The server shed the request under overload.  Carries a server-computed
  // retry-after hint (Status::retry_after_us) telling the client how long to
  // back off before retrying; retrying sooner just feeds the storm.
  kBusy,
};

// Returns a stable human-readable name for a status code.
std::string_view StatusCodeName(StatusCode code);

// A status word: a code plus an optional context message.  Copyable, cheap
// when OK (no allocation unless a message is attached).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  explicit Status(StatusCode code) : code_(code) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  // A kBusy status carrying the server's backoff hint.
  static Status Busy(uint32_t retry_after_us, std::string message = "") {
    Status st(StatusCode::kBusy, std::move(message));
    st.retry_after_us_ = retry_after_us;
    return st;
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Server-computed backoff hint in microseconds; 0 when the server did not
  // provide one.  Meaningful on kBusy (load shed) but transports preserve it
  // for any non-OK code.
  uint32_t retry_after_us() const { return retry_after_us_; }
  Status& set_retry_after_us(uint32_t us) {
    retry_after_us_ = us;
    return *this;
  }

  // Renders "CODE: message" (or just "CODE").
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }
  bool operator==(StatusCode code) const { return code_ == code; }

 private:
  StatusCode code_;
  uint32_t retry_after_us_ = 0;
  std::string message_;
};

// Result<T>: either a value or a non-OK status.  Modeled after
// absl::StatusOr; we roll our own because the build is dependency-free.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : status_(), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }
  Result(StatusCode code) : status_(code) {
    assert(code != StatusCode::kOk);
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status out of the enclosing function.
#define TANGO_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::tango::Status _st = (expr);            \
    if (!_st.ok()) {                         \
      return _st;                            \
    }                                        \
  } while (0)

// Assigns the value of a Result expression or propagates its status.
#define TANGO_ASSIGN_OR_RETURN(lhs, expr)    \
  auto TANGO_CONCAT_(res_, __LINE__) = (expr);             \
  if (!TANGO_CONCAT_(res_, __LINE__).ok()) {               \
    return TANGO_CONCAT_(res_, __LINE__).status();         \
  }                                                        \
  lhs = std::move(TANGO_CONCAT_(res_, __LINE__)).value()

#define TANGO_CONCAT_(a, b) TANGO_CONCAT_IMPL_(a, b)
#define TANGO_CONCAT_IMPL_(a, b) a##b

}  // namespace tango

#endif  // SRC_UTIL_STATUS_H_
