// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// Used by the segment store to checksum on-disk records: CRC32C is the
// checksum of choice for storage formats (ext4, btrfs, iSCSI, leveldb)
// because its error-detection properties are strong for short records and
// hardware acceleration exists everywhere.  This is the portable
// slicing-by-4 software implementation — fast enough that it never shows up
// next to an fsync.

#ifndef SRC_UTIL_CRC32C_H_
#define SRC_UTIL_CRC32C_H_

#include <cstdint>
#include <cstddef>
#include <span>

namespace tango {

// Extends `crc` (state from a previous call, 0 for a fresh checksum) over
// `data`.  Returns the raw CRC32C value.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len);

inline uint32_t Crc32c(const void* data, size_t len) {
  return Crc32cExtend(0, data, len);
}

inline uint32_t Crc32c(std::span<const uint8_t> data) {
  return Crc32cExtend(0, data.data(), data.size());
}

}  // namespace tango

#endif  // SRC_UTIL_CRC32C_H_
