#include "src/util/status.h"

namespace tango {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kWritten:
      return "WRITTEN";
    case StatusCode::kUnwritten:
      return "UNWRITTEN";
    case StatusCode::kTrimmed:
      return "TRIMMED";
    case StatusCode::kJunk:
      return "JUNK";
    case StatusCode::kSealedEpoch:
      return "SEALED_EPOCH";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kBusy:
      return "BUSY";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace tango
