// Minimal leveled logging.  Off by default above WARNING so benches stay
// quiet; tests can raise the level to debug failures.

#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tango {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

// Global log threshold; messages below it are dropped.  The initial value is
// taken from the TANGO_LOG_LEVEL environment variable when set (accepted
// forms: debug/info/warning/error/none, first letters d/i/w/e/n, or the
// numeric level), defaulting to warning.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Parses a TANGO_LOG_LEVEL-style spelling; returns false (leaving *level
// untouched) when `s` is null or unrecognized.
bool LogLevelFromString(const char* s, LogLevel* level);

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

#define TANGO_LOG(level)                                                  \
  if (::tango::LogLevel::level < ::tango::GetLogLevel()) {                \
  } else                                                                  \
    ::tango::LogStream(::tango::LogLevel::level, __FILE__, __LINE__)

#define TANGO_CHECK(cond)                                                 \
  if (cond) {                                                             \
  } else                                                                  \
    ::tango::FatalStream(__FILE__, __LINE__, #cond)

class FatalStream {
 public:
  FatalStream(const char* file, int line, const char* cond)
      : file_(file), line_(line) {
    stream_ << "CHECK failed: " << cond << " ";
  }
  [[noreturn]] ~FatalStream() {
    std::fprintf(stderr, "%s:%d: %s\n", file_, line_, stream_.str().c_str());
    std::abort();
  }

  template <typename T>
  FatalStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace tango

#endif  // SRC_UTIL_LOGGING_H_
