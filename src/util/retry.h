// Unified client-side retry policy: exponential backoff with jitter, an
// attempt budget, and an optional per-operation deadline.
//
// Fixed `1 << attempt` sleeps synchronize every client that hit the same
// sealed epoch: they all wake at the same instant and stampede the projection
// store (and the freshly bootstrapped sequencer) together.  Jitter
// decorrelates the herd; the deadline turns "retry forever against a dead
// node" into a bounded kTimeout the caller can act on.  One policy object is
// shared by all of a client's operations; per-operation state lives in the
// stack-allocated Attempt.

#ifndef SRC_UTIL_RETRY_H_
#define SRC_UTIL_RETRY_H_

#include <cstdint>

namespace tango {

class RetryPolicy {
 public:
  struct Options {
    // First backoff, before any growth.
    uint32_t initial_backoff_us = 1000;
    // Backoff ceiling; growth saturates here.
    uint32_t max_backoff_us = 64000;
    // Exponential growth factor between consecutive backoffs.
    double multiplier = 2.0;
    // Fraction of the nominal delay randomized away: each sleep is uniform
    // in [d*(1-jitter), d*(1+jitter)].  0 disables jitter.
    double jitter = 0.5;
    // Retry budget (number of *retries*, not counting the initial try).
    int max_attempts = 8;
    // Total wall-clock budget for the operation, measured from Begin().
    // Sleeps are capped so they never overshoot it.  0 = attempts only.
    uint32_t deadline_ms = 0;
  };

  RetryPolicy() : RetryPolicy(Options{}) {}
  explicit RetryPolicy(Options options) : options_(options) {}

  const Options& options() const { return options_; }

  // Per-operation retry state; cheap to construct on the stack.
  class Attempt {
   public:
    explicit Attempt(const RetryPolicy* policy);

    // Whether the budget (attempts and deadline) allows another try.
    bool ShouldRetry() const;

    // True once the deadline (if any) has passed.
    bool DeadlineExceeded() const;

    // The next jittered delay in microseconds; advances the attempt count.
    // Returns 0 when the deadline has already passed.
    uint64_t NextDelayMicros();

    // Like NextDelayMicros() but cooperates with a server-computed
    // retry-after hint (from a kBusy shed): the delay is at least the hint,
    // stretched by up to +50% jitter so hinted clients do not re-arrive in
    // one synchronized wave.  hint_us == 0 degrades to NextDelayMicros().
    // The exponential schedule still advances underneath, so a client whose
    // hints keep coming backs off further on its own.
    uint64_t NextDelayMicros(uint32_t hint_us);

    // Consumes one attempt from the budget without sleeping (for retries
    // that need a fresh resource, not a cooled-down one — e.g. an append
    // that lost its offset to a hole-filler and just wants a new token).
    void CountAttempt() { ++attempt_; }

    // NextDelayMicros() followed by a sleep of that long.
    void BackoffSleep();

    // Hint-honoring variant: sleeps for NextDelayMicros(hint_us).
    void BackoffSleep(uint32_t hint_us);

    int attempts() const { return attempt_; }

   private:
    const RetryPolicy* policy_;
    int attempt_ = 0;
    uint64_t start_us_ = 0;
    uint64_t rng_state_ = 0;
  };

  Attempt Begin() const { return Attempt(this); }

 private:
  Options options_;
};

}  // namespace tango

#endif  // SRC_UTIL_RETRY_H_
