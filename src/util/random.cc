#include "src/util/random.h"

#include <cmath>
#include <numeric>

namespace tango {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : s_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Lemire's multiply-shift rejection-free-ish reduction; bias is negligible
  // for bound << 2^64, which holds for all workload sizes we generate.
  return static_cast<uint64_t>(
      (static_cast<__uint128_t>(Next()) * bound) >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double ZipfGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  // Exact zeta for small n; the standard asymptotic approximation otherwise
  // (computing zeta(10M) exactly at construction would dominate bench setup).
  if (n_ <= 1'000'000) {
    zetan_ = Zeta(n_, theta_);
  } else {
    double zeta_m = Zeta(1'000'000, theta_);
    zetan_ = zeta_m + (std::pow(static_cast<double>(n_), 1 - theta_) -
                       std::pow(1e6, 1 - theta_)) /
                          (1 - theta_);
  }
  alpha_ = 1.0 / (1.0 - theta_);
  double zeta2 = Zeta(2, theta_);
  eta_ = (1 - std::pow(2.0 / static_cast<double>(n_), 1 - theta_)) /
         (1 - zeta2 / zetan_);
}

uint64_t ZipfGenerator::Next() {
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  return static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

std::vector<uint64_t> RandomPermutation(uint64_t n, uint64_t seed) {
  std::vector<uint64_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(seed);
  for (uint64_t i = n; i > 1; --i) {
    uint64_t j = rng.NextBelow(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace tango
