#include "src/util/threading.h"

#include <algorithm>

namespace tango {

Executor::Executor(int num_threads) {
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void Executor::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void Executor::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and queue drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

Executor& Executor::Shared() {
  static Executor pool(std::max(4u, std::thread::hardware_concurrency()));
  return pool;
}

void TaskGroup::Launch(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
  }
  executor_->Submit([this, fn = std::move(fn)] {
    fn();
    std::lock_guard<std::mutex> lock(mu_);
    if (--outstanding_ == 0) {
      cv_.notify_all();
    }
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void ParallelDispatch(Executor& pool, size_t n,
                      const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (n == 1) {
    fn(0);
    return;
  }
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining = n - 1;
  for (size_t i = 0; i + 1 < n; ++i) {
    pool.Submit([&, i] {
      fn(i);
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) {
        cv.notify_one();
      }
    });
  }
  fn(n - 1);
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return remaining == 0; });
}

void RunParallel(int n, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&fn, i] { fn(i); });
  }
  for (std::thread& t : threads) {
    t.join();
  }
}

void RunParallelFor(int n, std::chrono::milliseconds duration,
                    const std::function<void(int, std::atomic<bool>*)>& fn) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&fn, &stop, i] { fn(i, &stop); });
  }
  std::this_thread::sleep_for(duration);
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) {
    t.join();
  }
}

}  // namespace tango
