#include "src/util/threading.h"

#include <pthread.h>

#include <algorithm>

#include "src/obs/metrics.h"

namespace tango {

void SetCurrentThreadName(const char* name) {
#if defined(__linux__)
  pthread_setname_np(pthread_self(), name);
#else
  (void)name;
#endif
}

namespace {

// Aggregate occupancy gauges across every Executor in the process (the
// shared pool plus any private ones): tasks waiting in queues and tasks
// currently running.  A queue depth that stays above zero means the pools
// are saturated — overload is visible here before completion latency blows
// up.  Updated with +/- deltas so concurrent executors compose.
struct ExecutorGauges {
  obs::Gauge* queue_depth;
  obs::Gauge* active;
};

ExecutorGauges& TheExecutorGauges() {
  static ExecutorGauges g = [] {
    auto& reg = obs::MetricsRegistry::Default();
    return ExecutorGauges{reg.GetGauge("util.executor.queue_depth"),
                          reg.GetGauge("util.executor.active")};
  }();
  return g;
}

obs::Gauge* DeadlineStrayGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Default().GetGauge("util.deadline_runner.strays");
  return g;
}

}  // namespace

Executor::Executor(int num_threads) {
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void Executor::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  TheExecutorGauges().queue_depth->Add(1);
  cv_.notify_one();
}

void Executor::WorkerLoop() {
  SetCurrentThreadName("tgo-exec");
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and queue drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    ExecutorGauges& gauges = TheExecutorGauges();
    gauges.queue_depth->Add(-1);
    gauges.active->Add(1);
    task();
    gauges.active->Add(-1);
  }
}

Executor& Executor::Shared() {
  static Executor pool(std::max(4u, std::thread::hardware_concurrency()));
  return pool;
}

// Completion handshake between a Run() caller and the helper thread.  Heap
// allocated and shared: the caller may abandon it on timeout while the
// helper is still running the callable.
struct DeadlineRunner::TaskState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool abandoned = false;  // caller timed out and walked away
};

struct DeadlineRunner::Worker {
  std::mutex mu;
  std::condition_variable cv;
  std::function<void()> fn;  // set by Run(), consumed by WorkerLoop()
  std::shared_ptr<TaskState> state;
  bool exit = false;
  std::thread thread;
};

DeadlineRunner::DeadlineRunner() = default;

DeadlineRunner::~DeadlineRunner() {
  std::vector<std::shared_ptr<Worker>> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    workers = all_;
    idle_.clear();
  }
  for (auto& w : workers) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->exit = true;
    }
    w->cv.notify_all();
  }
  // Joining waits for busy helpers to finish their callables — including
  // strays whose caller timed out — so anything those callables reference
  // outlives them.
  for (auto& w : workers) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
  }
}

int DeadlineRunner::thread_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(all_.size());
}

bool DeadlineRunner::Run(std::function<void()> fn, uint64_t deadline_us) {
  if (deadline_us == 0) {
    fn();
    return true;
  }
  auto state = std::make_shared<TaskState>();
  std::shared_ptr<Worker> worker;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      worker = std::move(idle_.back());
      idle_.pop_back();
    } else {
      worker = std::make_shared<Worker>();
      all_.push_back(worker);
      worker->thread =
          std::thread([this, worker] { WorkerLoop(worker); });
    }
  }
  {
    std::lock_guard<std::mutex> lock(worker->mu);
    worker->fn = std::move(fn);
    worker->state = state;
  }
  worker->cv.notify_one();

  std::unique_lock<std::mutex> lock(state->mu);
  if (state->cv.wait_for(lock, std::chrono::microseconds(deadline_us),
                         [&] { return state->done; })) {
    return true;
  }
  state->abandoned = true;
  DeadlineStrayGauge()->Add(1);
  return false;
}

void DeadlineRunner::WorkerLoop(std::shared_ptr<Worker> worker) {
  SetCurrentThreadName("tgo-deadline");
  for (;;) {
    std::function<void()> fn;
    std::shared_ptr<TaskState> state;
    {
      std::unique_lock<std::mutex> lock(worker->mu);
      worker->cv.wait(lock,
                      [&] { return worker->exit || worker->fn != nullptr; });
      if (worker->fn == nullptr) {
        return;  // exit requested while idle
      }
      fn = std::move(worker->fn);
      worker->fn = nullptr;
      state = std::move(worker->state);
    }
    fn();
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->done = true;
      if (state->abandoned) {
        DeadlineStrayGauge()->Add(-1);
      }
      state->cv.notify_all();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        return;  // destructor owns the join; don't re-park
      }
      idle_.push_back(worker);
    }
  }
}

void TaskGroup::Launch(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
  }
  executor_->Submit([this, fn = std::move(fn)] {
    fn();
    std::lock_guard<std::mutex> lock(mu_);
    if (--outstanding_ == 0) {
      cv_.notify_all();
    }
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void ParallelDispatch(Executor& pool, size_t n,
                      const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (n == 1) {
    fn(0);
    return;
  }
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining = n - 1;
  for (size_t i = 0; i + 1 < n; ++i) {
    pool.Submit([&, i] {
      fn(i);
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) {
        cv.notify_one();
      }
    });
  }
  fn(n - 1);
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return remaining == 0; });
}

void RunParallel(int n, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&fn, i] { fn(i); });
  }
  for (std::thread& t : threads) {
    t.join();
  }
}

void RunParallelFor(int n, std::chrono::milliseconds duration,
                    const std::function<void(int, std::atomic<bool>*)>& fn) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&fn, &stop, i] { fn(i, &stop); });
  }
  std::this_thread::sleep_for(duration);
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) {
    t.join();
  }
}

}  // namespace tango
