#include "src/util/threading.h"

namespace tango {

void RunParallel(int n, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&fn, i] { fn(i); });
  }
  for (std::thread& t : threads) {
    t.join();
  }
}

void RunParallelFor(int n, std::chrono::milliseconds duration,
                    const std::function<void(int, std::atomic<bool>*)>& fn) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&fn, &stop, i] { fn(i, &stop); });
  }
  std::this_thread::sleep_for(duration);
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) {
    t.join();
  }
}

}  // namespace tango
