// Small threading utilities shared by the cluster harness, tests and benches.

#ifndef SRC_UTIL_THREADING_H_
#define SRC_UTIL_THREADING_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tango {

// One-shot event: threads block in WaitForNotification() until Notify().
class Notification {
 public:
  void Notify() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      notified_ = true;
    }
    cv_.notify_all();
  }

  bool HasBeenNotified() const {
    std::lock_guard<std::mutex> lock(mu_);
    return notified_;
  }

  void WaitForNotification() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return notified_; });
  }

  template <typename Rep, typename Period>
  bool WaitForNotificationWithTimeout(
      std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [this] { return notified_; });
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool notified_ = false;
};

// Reusable barrier for starting N workers simultaneously.
class StartBarrier {
 public:
  explicit StartBarrier(int parties) : remaining_(parties) {}

  void ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mu_);
    if (--remaining_ == 0) {
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int remaining_;
};

// Runs `fn(worker_index)` on `n` threads and joins them all.
void RunParallel(int n, const std::function<void(int)>& fn);

// Runs `fn(worker_index, stop_flag)` on `n` threads for `duration`, then sets
// the stop flag and joins.  Used by the open-loop bench drivers.
void RunParallelFor(int n, std::chrono::milliseconds duration,
                    const std::function<void(int, std::atomic<bool>*)>& fn);

// Monotonic clock helpers.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline uint64_t NowMicros() { return NowNanos() / 1000; }

}  // namespace tango

#endif  // SRC_UTIL_THREADING_H_
