// Small threading utilities shared by the cluster harness, tests and benches.

#ifndef SRC_UTIL_THREADING_H_
#define SRC_UTIL_THREADING_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tango {

// One-shot event: threads block in WaitForNotification() until Notify().
class Notification {
 public:
  void Notify() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      notified_ = true;
    }
    cv_.notify_all();
  }

  bool HasBeenNotified() const {
    std::lock_guard<std::mutex> lock(mu_);
    return notified_;
  }

  void WaitForNotification() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return notified_; });
  }

  template <typename Rep, typename Period>
  bool WaitForNotificationWithTimeout(
      std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [this] { return notified_; });
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool notified_ = false;
};

// Reusable barrier for starting N workers simultaneously.
class StartBarrier {
 public:
  explicit StartBarrier(int parties) : remaining_(parties) {}

  void ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mu_);
    if (--remaining_ == 0) {
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int remaining_;
};

// A fixed-size worker pool for fanning out blocking I/O (e.g. vectored chain
// reads dispatched per replica set).  Tasks are independent: a submitted task
// must never block on another queued task, or the pool can stall.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);
  int size() const { return static_cast<int>(threads_.size()); }

  // Process-wide pool shared by all log clients; sized to the machine.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

// Runs `fn(0..n-1)` with tasks 0..n-2 on the pool and task n-1 inline on the
// caller; returns when all n complete.  Safe to call from many threads at
// once — tasks from concurrent callers interleave on the shared workers.
void ParallelDispatch(ThreadPool& pool, size_t n,
                      const std::function<void(size_t)>& fn);

// Runs `fn(worker_index)` on `n` threads and joins them all.
void RunParallel(int n, const std::function<void(int)>& fn);

// Runs `fn(worker_index, stop_flag)` on `n` threads for `duration`, then sets
// the stop flag and joins.  Used by the open-loop bench drivers.
void RunParallelFor(int n, std::chrono::milliseconds duration,
                    const std::function<void(int, std::atomic<bool>*)>& fn);

// Monotonic clock helpers.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline uint64_t NowMicros() { return NowNanos() / 1000; }

}  // namespace tango

#endif  // SRC_UTIL_THREADING_H_
