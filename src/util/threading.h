// Small threading utilities shared by the cluster harness, tests and benches.

#ifndef SRC_UTIL_THREADING_H_
#define SRC_UTIL_THREADING_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tango {

// Names the calling thread for /proc/<pid>/task/<tid>/comm, debuggers and
// profilers (15-char limit on Linux; silently truncated).  Every long-lived
// background thread in the codebase names itself so a thread listing of a
// wedged process reads as a component inventory.
void SetCurrentThreadName(const char* name);

// One-shot event: threads block in WaitForNotification() until Notify().
class Notification {
 public:
  void Notify() {
    // Broadcast under the lock: a waiter may destroy this object the moment
    // it observes notified_, which must not race the broadcast itself.
    std::lock_guard<std::mutex> lock(mu_);
    notified_ = true;
    cv_.notify_all();
  }

  bool HasBeenNotified() const {
    std::lock_guard<std::mutex> lock(mu_);
    return notified_;
  }

  void WaitForNotification() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return notified_; });
  }

  template <typename Rep, typename Period>
  bool WaitForNotificationWithTimeout(
      std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [this] { return notified_; });
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool notified_ = false;
};

// Reusable barrier for starting N workers simultaneously.
class StartBarrier {
 public:
  explicit StartBarrier(int parties) : remaining_(parties) {}

  void ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mu_);
    if (--remaining_ == 0) {
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int remaining_;
};

// A fixed-size worker-pool executor, the concurrency substrate shared by the
// log client's vectored chain reads, the runtime's parallel playback engine,
// and (eventually) the event-driven transport.  Tasks are independent: a
// submitted task must never block on another *queued* task, or the pool can
// stall — ordering between tasks belongs to a scheduler layered on top (see
// src/runtime/playback.h).  The destructor drains the queue (every submitted
// task runs) before joining the workers.
class Executor {
 public:
  explicit Executor(int num_threads);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  void Submit(std::function<void()> task);
  int size() const { return static_cast<int>(threads_.size()); }

  // Process-wide pool shared by all log clients; sized to the machine.
  static Executor& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

// Legacy name, kept for the call sites that predate the executor refactor.
using ThreadPool = Executor;

// Runs blocking callables under a deadline without wedging the caller: the
// callable executes on a cached helper thread while the caller waits up to
// `deadline_us` for it to finish.  On timeout the caller unblocks immediately
// and the helper keeps running the (possibly wedged) callable in the
// background, re-parking into the idle cache once it completes.  Steady state
// is one condvar handoff per Run; threads are spawned only on first use or
// when a timeout has stranded every cached helper.
//
// Because a timed-out callable is still executing, it must own everything it
// touches (capture by value / shared_ptr) — never by reference to the
// caller's stack.  The destructor blocks until every outstanding callable
// (including timed-out strays) has finished, so objects owned by the
// DeadlineRunner's owner stay valid for stragglers.
class DeadlineRunner {
 public:
  DeadlineRunner();
  ~DeadlineRunner();

  DeadlineRunner(const DeadlineRunner&) = delete;
  DeadlineRunner& operator=(const DeadlineRunner&) = delete;

  // Returns true if `fn` completed within the deadline, false if it is still
  // running when the deadline expires (it continues in the background).
  // deadline_us == 0 runs `fn` inline with no deadline.
  bool Run(std::function<void()> fn, uint64_t deadline_us);

  // Helper threads currently alive (idle + busy).  Test/introspection hook.
  int thread_count() const;

 private:
  struct TaskState;
  struct Worker;

  void WorkerLoop(std::shared_ptr<Worker> worker);

  mutable std::mutex mu_;
  bool stopping_ = false;
  std::vector<std::shared_ptr<Worker>> idle_;
  std::vector<std::shared_ptr<Worker>> all_;
};

// Tracks completion of tasks fanned out to an executor: Launch() submits the
// task and Wait() blocks until every launched task has finished.  The group
// must outlive its tasks — the destructor waits for stragglers.
class TaskGroup {
 public:
  explicit TaskGroup(Executor* executor) : executor_(executor) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Launch(std::function<void()> fn);
  void Wait();

 private:
  Executor* executor_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t outstanding_ = 0;
};

// Runs `fn(0..n-1)` with tasks 0..n-2 on the pool and task n-1 inline on the
// caller; returns when all n complete.  Safe to call from many threads at
// once — tasks from concurrent callers interleave on the shared workers.
void ParallelDispatch(Executor& pool, size_t n,
                      const std::function<void(size_t)>& fn);

// Runs `fn(worker_index)` on `n` threads and joins them all.
void RunParallel(int n, const std::function<void(int)>& fn);

// Runs `fn(worker_index, stop_flag)` on `n` threads for `duration`, then sets
// the stop flag and joins.  Used by the open-loop bench drivers.
void RunParallelFor(int n, std::chrono::milliseconds duration,
                    const std::function<void(int, std::atomic<bool>*)>& fn);

// Monotonic clock helpers.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline uint64_t NowMicros() { return NowNanos() / 1000; }

}  // namespace tango

#endif  // SRC_UTIL_THREADING_H_
