#include "src/util/retry.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "src/util/threading.h"

namespace tango {

namespace {

// Each Attempt gets an independent jitter stream seeded from a process-wide
// counter, so concurrent clients that start retrying at the same moment still
// draw uncorrelated delays (the whole point of jitter).
std::atomic<uint64_t> g_attempt_seq{1};

uint64_t SplitMix(uint64_t& s) {
  s += 0x9e3779b97f4a7c15ULL;
  uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

RetryPolicy::Attempt::Attempt(const RetryPolicy* policy)
    : policy_(policy),
      start_us_(NowMicros()),
      rng_state_(g_attempt_seq.fetch_add(1, std::memory_order_relaxed) *
                 0x9e3779b97f4a7c15ULL) {}

bool RetryPolicy::Attempt::DeadlineExceeded() const {
  const Options& o = policy_->options();
  return o.deadline_ms != 0 &&
         NowMicros() - start_us_ >= static_cast<uint64_t>(o.deadline_ms) * 1000;
}

bool RetryPolicy::Attempt::ShouldRetry() const {
  return attempt_ < policy_->options().max_attempts && !DeadlineExceeded();
}

uint64_t RetryPolicy::Attempt::NextDelayMicros() {
  const Options& o = policy_->options();
  double nominal = static_cast<double>(o.initial_backoff_us);
  for (int i = 0; i < attempt_ && nominal < o.max_backoff_us; ++i) {
    nominal *= o.multiplier;
  }
  nominal = std::min(nominal, static_cast<double>(o.max_backoff_us));
  ++attempt_;

  double spread = std::clamp(o.jitter, 0.0, 1.0);
  double u = static_cast<double>(SplitMix(rng_state_) >> 11) *
             (1.0 / 9007199254740992.0);  // uniform in [0, 1)
  double jittered = nominal * (1.0 - spread + 2.0 * spread * u);
  uint64_t delay = jittered < 1.0 ? 1 : static_cast<uint64_t>(jittered);

  if (o.deadline_ms != 0) {
    uint64_t deadline = start_us_ + static_cast<uint64_t>(o.deadline_ms) * 1000;
    uint64_t now = NowMicros();
    delay = now >= deadline ? 0 : std::min(delay, deadline - now);
  }
  return delay;
}

uint64_t RetryPolicy::Attempt::NextDelayMicros(uint32_t hint_us) {
  uint64_t nominal = NextDelayMicros();  // advances the schedule + attempt
  if (hint_us == 0) {
    return nominal;
  }
  // The hint is a floor, not a target: sleeping less than it just re-feeds
  // the shedding server.  Jitter only upward so hinted clients fan out
  // *after* the server expects capacity back.
  double u = static_cast<double>(SplitMix(rng_state_) >> 11) *
             (1.0 / 9007199254740992.0);  // uniform in [0, 1)
  uint64_t hinted =
      static_cast<uint64_t>(static_cast<double>(hint_us) * (1.0 + 0.5 * u));
  uint64_t delay = std::max(nominal, hinted);
  const Options& o = policy_->options();
  if (o.deadline_ms != 0) {
    uint64_t deadline = start_us_ + static_cast<uint64_t>(o.deadline_ms) * 1000;
    uint64_t now = NowMicros();
    delay = now >= deadline ? 0 : std::min(delay, deadline - now);
  }
  return delay;
}

void RetryPolicy::Attempt::BackoffSleep() {
  uint64_t delay = NextDelayMicros();
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
  }
}

void RetryPolicy::Attempt::BackoffSleep(uint32_t hint_us) {
  uint64_t delay = NextDelayMicros(hint_us);
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
  }
}

}  // namespace tango
