// Deterministic pseudo-random utilities for workload generation.
//
// Benches and property tests need reproducible randomness, so everything here
// is seeded explicitly.  The zipf generator implements the standard rejection
// -free inverse-CDF approximation used by YCSB (Gray et al., "Quickly
// generating billion-record synthetic databases"), matching the paper's use
// of YCSB workload 'a' key selection in Figure 9.

#ifndef SRC_UTIL_RANDOM_H_
#define SRC_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace tango {

// xoshiro256** — fast, high-quality, 64-bit PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();

  // Uniform in [0, bound).  bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p.
  bool NextBool(double p);

 private:
  uint64_t s_[4];
};

// Zipf-distributed values over [0, n) with skew theta (YCSB uses 0.99).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng rng_;
};

// Fisher-Yates shuffled identity permutation; used to scatter zipf ranks so
// that "hot" keys are not clustered at the low end of the key space.
std::vector<uint64_t> RandomPermutation(uint64_t n, uint64_t seed);

}  // namespace tango

#endif  // SRC_UTIL_RANDOM_H_
