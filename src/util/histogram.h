// Latency histogram and throughput metering for the benchmark harness.
//
// The histogram uses logarithmically spaced buckets (HdrHistogram-style, but
// much simpler): values are bucketed by their base-2 magnitude plus a linear
// sub-bucket, giving ~1.6% relative error, enough to report the percentile
// curves the paper's figures show.
//
// Thread-safety contract: Record() is single-writer.  The supported
// concurrent pattern is one Histogram per worker thread, merged on the
// collector thread with Merge() after the workers quiesce (bench/bench_common.h
// does exactly this).  Debug builds enforce the contract: the first Record()
// pins the histogram to the calling thread and any Record() from another
// thread aborts; Reset() releases the pin, so sequential ownership handoff is
// allowed.  For truly concurrent recording use tango::obs::Histogram
// (src/obs/metrics.h), which shares this class's bucket layout.

#ifndef SRC_UTIL_HISTOGRAM_H_
#define SRC_UTIL_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace tango {

class Histogram {
 public:
  // Bucket layout, shared with the lock-free registry histogram so its
  // snapshots can be materialized as plain Histograms via FromParts().
  static constexpr int kSubBucketBits = 5;  // 32 linear sub-buckets per octave
  static constexpr int kNumBuckets = 64 << kSubBucketBits;

  static int BucketFor(uint64_t value);
  static uint64_t BucketUpperBound(int bucket);

  Histogram();

  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  // Rebuilds a histogram from externally accumulated state: `buckets` must
  // hold kNumBuckets per-bucket counts laid out by BucketFor().  `count` is
  // derived from the buckets; `sum`/`min`/`max` are taken as given (clamped to
  // the empty-histogram sentinels when the buckets are all zero).
  static Histogram FromParts(const std::vector<uint64_t>& buckets,
                             uint64_t sum, uint64_t min, uint64_t max);

  void Record(uint64_t value);
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;
  // q in [0, 1]; returns an upper bound for the q-quantile.  Percentile(1.0)
  // returns exactly max(); an empty histogram returns 0 for any q.
  uint64_t Percentile(double q) const;

  void Reset();

  // Raw per-bucket counts, laid out by BucketFor() — the Prometheus
  // exposition renderer folds these into cumulative le-buckets.
  const std::vector<uint64_t>& bucket_counts() const { return buckets_; }

  // e.g. "p50=812us p99=2.3ms mean=901us n=18234" (values are raw units).
  std::string Summary() const;

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ULL;
  uint64_t max_ = 0;
  // Debug-only single-writer enforcement (see the contract above).  0 means
  // unpinned; otherwise the id of the only thread allowed to Record().
  std::atomic<uint64_t> writer_tid_{0};
};

// A thread-safe event counter used to meter throughput from many workers.
class Meter {
 public:
  void Add(uint64_t n = 1) { count_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Read() const { return count_.load(std::memory_order_relaxed); }
  void Reset() { count_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> count_{0};
};

}  // namespace tango

#endif  // SRC_UTIL_HISTOGRAM_H_
