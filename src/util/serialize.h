// Byte-level serialization helpers.
//
// All wire formats in this codebase (log entries, stream headers, RPC frames,
// update records, commit records) are little-endian and fixed-width.  The
// writer grows a flat byte vector; the reader is a bounds-checked cursor over
// a span of bytes.  Readers never throw: running off the end marks the reader
// as failed and subsequent reads return zero values, so callers check ok()
// once at the end of decoding.

#ifndef SRC_UTIL_SERIALIZE_H_
#define SRC_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tango {

class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(size_t reserve) { buf_.reserve(reserve); }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutLittleEndian(v); }
  void PutU32(uint32_t v) { PutLittleEndian(v); }
  void PutU64(uint64_t v) { PutLittleEndian(v); }
  void PutI64(int64_t v) { PutLittleEndian(static_cast<uint64_t>(v)); }

  void PutBytes(const void* data, size_t len) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  // Length-prefixed (u32) byte string.
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutBytes(s.data(), s.size());
  }

  void PutBlob(std::span<const uint8_t> b) {
    PutU32(static_cast<uint32_t>(b.size()));
    PutBytes(b.data(), b.size());
  }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

  // Overwrites previously written bytes (e.g. to back-patch a length field).
  void PatchU32(size_t pos, uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_[pos + i] = static_cast<uint8_t>(v >> (8 * i));
    }
  }

 private:
  template <typename T>
  void PutLittleEndian(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}
  ByteReader(const void* data, size_t len)
      : data_(static_cast<const uint8_t*>(data), len) {}

  uint8_t GetU8() { return GetLittleEndian<uint8_t>(); }
  uint16_t GetU16() { return GetLittleEndian<uint16_t>(); }
  uint32_t GetU32() { return GetLittleEndian<uint32_t>(); }
  uint64_t GetU64() { return GetLittleEndian<uint64_t>(); }
  int64_t GetI64() { return static_cast<int64_t>(GetLittleEndian<uint64_t>()); }

  std::string GetString() {
    uint32_t len = GetU32();
    if (!CheckAvailable(len)) {
      return {};
    }
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return out;
  }

  std::vector<uint8_t> GetBlob() {
    uint32_t len = GetU32();
    if (!CheckAvailable(len)) {
      return {};
    }
    std::vector<uint8_t> out(data_.begin() + pos_, data_.begin() + pos_ + len);
    pos_ += len;
    return out;
  }

  // Returns a view into the underlying buffer without copying.
  std::span<const uint8_t> GetBlobView() {
    uint32_t len = GetU32();
    if (!CheckAvailable(len)) {
      return {};
    }
    std::span<const uint8_t> out = data_.subspan(pos_, len);
    pos_ += len;
    return out;
  }

  bool Skip(size_t n) {
    if (!CheckAvailable(n)) {
      return false;
    }
    pos_ += n;
    return true;
  }

  size_t remaining() const { return failed_ ? 0 : data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool ok() const { return !failed_; }

 private:
  template <typename T>
  T GetLittleEndian() {
    if (!CheckAvailable(sizeof(T))) {
      return T{};
    }
    T v{};
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  bool CheckAvailable(size_t n) {
    if (failed_ || data_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

// Convenience: copies a trivially copyable struct into/out of a byte vector.
template <typename T>
std::vector<uint8_t> ToBytes(const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<uint8_t> out(sizeof(T));
  std::memcpy(out.data(), &v, sizeof(T));
  return out;
}

template <typename T>
bool FromBytes(std::span<const uint8_t> bytes, T* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (bytes.size() < sizeof(T)) {
    return false;
  }
  std::memcpy(out, bytes.data(), sizeof(T));
  return true;
}

}  // namespace tango

#endif  // SRC_UTIL_SERIALIZE_H_
