#include "src/util/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <thread>

#include "src/util/logging.h"

namespace tango {

namespace {

#ifndef NDEBUG
uint64_t ThisThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1;
}
#endif

}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

Histogram::Histogram(const Histogram& other)
    : buckets_(other.buckets_),
      count_(other.count_),
      sum_(other.sum_),
      min_(other.min_),
      max_(other.max_) {
  // The copy starts unpinned: it belongs to whoever copies it.
}

Histogram& Histogram::operator=(const Histogram& other) {
  if (this != &other) {
    buckets_ = other.buckets_;
    count_ = other.count_;
    sum_ = other.sum_;
    min_ = other.min_;
    max_ = other.max_;
    writer_tid_.store(0, std::memory_order_relaxed);
  }
  return *this;
}

int Histogram::BucketFor(uint64_t value) {
  if (value < (1ULL << kSubBucketBits)) {
    return static_cast<int>(value);
  }
  int octave = 63 - std::countl_zero(value);
  int shift = octave - kSubBucketBits;
  uint64_t sub = (value >> shift) & ((1ULL << kSubBucketBits) - 1);
  int bucket = ((octave - kSubBucketBits + 1) << kSubBucketBits) +
               static_cast<int>(sub);
  return std::min(bucket, kNumBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < (1 << kSubBucketBits)) {
    return static_cast<uint64_t>(bucket);
  }
  int octave_index = bucket >> kSubBucketBits;  // >= 1
  int sub = bucket & ((1 << kSubBucketBits) - 1);
  int shift = octave_index - 1;
  if (kSubBucketBits + shift >= 64) {
    return ~0ULL;  // past the top of the 64-bit range: saturate
  }
  uint64_t base = 1ULL << (kSubBucketBits + shift);
  return base + ((static_cast<uint64_t>(sub) + 1) << shift) - 1;
}

Histogram Histogram::FromParts(const std::vector<uint64_t>& buckets,
                               uint64_t sum, uint64_t min, uint64_t max) {
  TANGO_CHECK(buckets.size() == static_cast<size_t>(kNumBuckets))
      << "FromParts needs exactly " << kNumBuckets << " buckets, got "
      << buckets.size();
  Histogram h;
  h.buckets_ = buckets;
  for (uint64_t c : buckets) {
    h.count_ += c;
  }
  if (h.count_ == 0) {
    h.sum_ = 0;
    h.min_ = ~0ULL;
    h.max_ = 0;
  } else {
    h.sum_ = sum;
    h.min_ = min;
    h.max_ = max;
  }
  return h;
}

void Histogram::Record(uint64_t value) {
#ifndef NDEBUG
  uint64_t me = ThisThreadId();
  uint64_t owner = 0;
  if (!writer_tid_.compare_exchange_strong(owner, me,
                                           std::memory_order_relaxed)) {
    TANGO_CHECK(owner == me)
        << "Histogram::Record from a second thread; use one histogram per "
           "thread and Merge() on the collector (or tango::obs::Histogram "
           "for concurrent recording)";
  }
#endif
  buckets_[BucketFor(value)]++;
  count_++;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen > target) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
  writer_tid_.store(0, std::memory_order_relaxed);
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f p50=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(Percentile(0.50)),
                static_cast<unsigned long long>(Percentile(0.99)),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace tango
