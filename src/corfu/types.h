// Core identifiers and protocol constants for the CORFU shared log.

#ifndef SRC_CORFU_TYPES_H_
#define SRC_CORFU_TYPES_H_

#include <cstdint>

namespace corfu {

// Global offset in the shared log's 64-bit address space.
using LogOffset = uint64_t;
inline constexpr LogOffset kInvalidOffset = ~0ULL;

// Configuration epoch.  Every RPC carries the caller's epoch; sealed servers
// reject stale epochs, forcing clients to refresh their projection.
using Epoch = uint32_t;

// Stream identifier.  31 bits are significant (the paper reserves the last
// bit of the on-wire id for the backpointer format indicator).
using StreamId = uint32_t;
inline constexpr StreamId kMaxStreamId = 0x7fffffffu;
inline constexpr StreamId kInvalidStreamId = 0xffffffffu;

// Reserved stream carrying sequencer-state checkpoints (§5 names this as
// future work: "having the sequencer store periodic checkpoints in the
// log").  Applications must not use this id.
inline constexpr StreamId kSequencerStateStream = kMaxStreamId;

// Redundancy factor for stream backpointers ("K" in the paper, default 4).
inline constexpr int kDefaultBackpointerCount = 4;

// Upper bound on offsets per kStorageReadBatch request; a backstop against
// malformed frames, far above any readahead depth clients actually use.
inline constexpr uint32_t kMaxReadBatch = 65536;

// Upper bound on tokens per kSequencerNext range grant; bounds the per-token
// backpointer payload of a single response.
inline constexpr uint32_t kMaxGrantBatch = 4096;

// RPC method ids, grouped by service.
enum RpcMethod : uint16_t {
  // StorageNode
  kStorageWrite = 0x0100,
  kStorageRead = 0x0101,
  kStorageSeal = 0x0102,
  kStorageTrim = 0x0103,
  kStorageTrimPrefix = 0x0104,
  kStorageLocalTail = 0x0105,
  // Vectored read: N local offsets in, N per-offset (status, page) out, one
  // round trip.  A stale epoch fails the whole batch with kSealedEpoch;
  // per-offset failures (unwritten, trimmed) never do.
  kStorageReadBatch = 0x0106,
  // Epoch discovery: returns the node's current sealed epoch (no epoch
  // check — this is how a reconfiguring client with a stale or reset
  // projection learns what epoch it must seal above, e.g. after a restart
  // on a durable store whose seal records outlive the projection store).
  kStorageSealedEpoch = 0x0107,

  // Sequencer
  kSequencerNext = 0x0200,
  kSequencerTail = 0x0201,
  kSequencerBootstrap = 0x0202,
  kSequencerDump = 0x0203,

  // ProjectionStore
  kProjectionGet = 0x0300,
  kProjectionPropose = 0x0301,

  // Baseline 2PL lock managers (src/baseline)
  kLockAcquire = 0x0400,
  kLockCommit = 0x0401,
  kLockAbort = 0x0402,
  kTimestampNext = 0x0403,

  // Observability (src/obs): dump the process-wide metrics registry /
  // trace buffer of the serving process.
  kStatsDump = 0x0500,
};

// Control-plane and health RPCs form a priority class that bypasses load
// shedding and circuit breaking: starving them under overload converts
// congestion into unavailability (missed heartbeats trigger spurious
// failover, seals never land, reconfiguration cannot make progress).  They
// are low-rate and cheap, so admitting them unconditionally cannot sustain
// an overload on its own.  Data-plane RPCs (writes, reads, token grants)
// are the ones that shed.
constexpr bool IsControlPlaneRpc(uint16_t method) {
  switch (method) {
    case kStorageSeal:
    case kStorageSealedEpoch:
    case kStorageLocalTail:
    case kSequencerTail:
    case kSequencerBootstrap:
    case kSequencerDump:
    case kProjectionGet:
    case kProjectionPropose:
    case kStatsDump:
      return true;
    default:
      return false;
  }
}

}  // namespace corfu

#endif  // SRC_CORFU_TYPES_H_
