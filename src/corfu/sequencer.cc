#include "src/corfu/sequencer.h"

#include <algorithm>

namespace corfu {

using tango::ByteReader;
using tango::ByteWriter;
using tango::NodeId;
using tango::Result;
using tango::Status;
using tango::StatusCode;

namespace {

void EncodeStreamTails(const std::vector<StreamTail>& tails, ByteWriter& w) {
  w.PutU16(static_cast<uint16_t>(tails.size()));
  for (const StreamTail& t : tails) {
    w.PutU8(static_cast<uint8_t>(t.size()));
    for (LogOffset o : t) {
      w.PutU64(o);
    }
  }
}

std::vector<StreamTail> DecodeStreamTails(ByteReader& r) {
  uint16_t n = r.GetU16();
  std::vector<StreamTail> tails;
  tails.reserve(n);
  for (int i = 0; i < n; ++i) {
    uint8_t count = r.GetU8();
    StreamTail t;
    t.reserve(count);
    for (int j = 0; j < count; ++j) {
      t.push_back(r.GetU64());
    }
    tails.push_back(std::move(t));
  }
  return tails;
}

}  // namespace

Sequencer::Sequencer(tango::Transport* transport, NodeId node, Epoch epoch,
                     uint32_t backpointer_count)
    : transport_(transport),
      node_(node),
      backpointer_count_(backpointer_count),
      epoch_(epoch) {
  auto& reg = tango::obs::MetricsRegistry::Default();
  tokens_ = reg.GetCounter("sequencer.tokens");
  tail_checks_ = reg.GetCounter("sequencer.tail_checks");
  sealed_rejects_ = reg.GetCounter("sequencer.sealed_rejects");
  tail_gauge_ = reg.GetGauge("sequencer.tail");
  stream_gauge_ = reg.GetGauge("sequencer.streams");
  dispatcher_.Register(kSequencerNext, [this](ByteReader& q, ByteWriter& p) {
    return HandleNext(q, p);
  });
  dispatcher_.Register(kSequencerTail, [this](ByteReader& q, ByteWriter& p) {
    return HandleTail(q, p);
  });
  dispatcher_.Register(kSequencerBootstrap,
                       [this](ByteReader& q, ByteWriter& p) {
                         return HandleBootstrap(q, p);
                       });
  dispatcher_.Register(kSequencerDump, [this](ByteReader& q, ByteWriter& p) {
    return HandleDump(q, p);
  });
  transport_->RegisterNode(node_, dispatcher_.AsHandler());
}

Sequencer::~Sequencer() { transport_->UnregisterNode(node_); }

Result<SequencerGrant> Sequencer::Next(Epoch epoch, uint32_t count,
                                       const std::vector<StreamId>& streams) {
  if (count == 0 || count > kMaxGrantBatch) {
    return Status(StatusCode::kInvalidArgument, "grant count out of range");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch != epoch_) {
    sealed_rejects_->Add();
    return Status(StatusCode::kSealedEpoch, "sequencer epoch mismatch");
  }
  SequencerGrant grant;
  grant.start = tail_;
  grant.count = count;
  tail_ += count;
  tokens_->Add(count);
  tail_gauge_->Set(static_cast<int64_t>(tail_));
  if (!streams.empty()) {
    grant.token_backpointers.resize(count);
    for (uint32_t token = 0; token < count; ++token) {
      std::vector<StreamTail>& bps = grant.token_backpointers[token];
      bps.reserve(streams.size());
      for (StreamId s : streams) {
        StreamTail& t = streams_[s];
        bps.push_back(t);
        // Record the token as this stream's most recent entry, so the next
        // token of the same grant chains to it.
        t.insert(t.begin(), grant.start + token);
        if (t.size() > backpointer_count_) {
          t.resize(backpointer_count_);
        }
      }
    }
  }
  stream_gauge_->Set(static_cast<int64_t>(streams_.size()));
  return grant;
}

Result<SequencerTailInfo> Sequencer::Tail(
    Epoch epoch, const std::vector<StreamId>& streams) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch != epoch_) {
    sealed_rejects_->Add();
    return Status(StatusCode::kSealedEpoch, "sequencer epoch mismatch");
  }
  tail_checks_->Add();
  SequencerTailInfo info;
  info.tail = tail_;
  info.backpointers.reserve(streams.size());
  for (StreamId s : streams) {
    auto it = streams_.find(s);
    info.backpointers.push_back(it == streams_.end() ? StreamTail{}
                                                     : it->second);
  }
  return info;
}

Status Sequencer::Bootstrap(Epoch epoch, LogOffset tail,
                            std::unordered_map<StreamId, StreamTail> state) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch < epoch_) {
    return Status(StatusCode::kSealedEpoch, "bootstrap epoch too old");
  }
  epoch_ = epoch;
  tail_ = std::max(tail_, tail);
  for (auto& [stream, offsets] : state) {
    StreamTail& t = streams_[stream];
    if (t.empty()) {
      t = std::move(offsets);
    }
  }
  return Status::Ok();
}

Result<Sequencer::DumpedState> Sequencer::Dump(Epoch epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch != epoch_) {
    return Status(StatusCode::kSealedEpoch, "sequencer epoch mismatch");
  }
  DumpedState dump;
  dump.tail = tail_;
  dump.streams = streams_;
  return dump;
}

size_t Sequencer::StreamCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return streams_.size();
}

Status Sequencer::HandleNext(ByteReader& req, ByteWriter& resp) {
  Epoch epoch = req.GetU32();
  uint32_t count = req.GetU32();
  uint16_t num_streams = req.GetU16();
  std::vector<StreamId> streams;
  streams.reserve(num_streams);
  for (int i = 0; i < num_streams; ++i) {
    streams.push_back(req.GetU32());
  }
  if (!req.ok()) {
    return Status(StatusCode::kInvalidArgument, "malformed next request");
  }
  Result<SequencerGrant> grant = Next(epoch, count, streams);
  if (!grant.ok()) {
    return grant.status();
  }
  resp.PutU64(grant->start);
  // Number of per-token backpointer groups: 0 for streamless (raw offset
  // batching) grants, `count` otherwise.
  resp.PutU16(static_cast<uint16_t>(grant->token_backpointers.size()));
  for (const std::vector<StreamTail>& bps : grant->token_backpointers) {
    EncodeStreamTails(bps, resp);
  }
  return Status::Ok();
}

Status Sequencer::HandleTail(ByteReader& req, ByteWriter& resp) {
  Epoch epoch = req.GetU32();
  uint16_t num_streams = req.GetU16();
  std::vector<StreamId> streams;
  streams.reserve(num_streams);
  for (int i = 0; i < num_streams; ++i) {
    streams.push_back(req.GetU32());
  }
  if (!req.ok()) {
    return Status(StatusCode::kInvalidArgument, "malformed tail request");
  }
  Result<SequencerTailInfo> info = Tail(epoch, streams);
  if (!info.ok()) {
    return info.status();
  }
  resp.PutU64(info->tail);
  EncodeStreamTails(info->backpointers, resp);
  return Status::Ok();
}

Status Sequencer::HandleBootstrap(ByteReader& req, ByteWriter& /*resp*/) {
  Epoch epoch = req.GetU32();
  LogOffset tail = req.GetU64();
  uint32_t num_streams = req.GetU32();
  std::unordered_map<StreamId, StreamTail> state;
  state.reserve(num_streams);
  for (uint32_t i = 0; i < num_streams; ++i) {
    StreamId id = req.GetU32();
    uint8_t count = req.GetU8();
    StreamTail t;
    t.reserve(count);
    for (int j = 0; j < count; ++j) {
      t.push_back(req.GetU64());
    }
    state[id] = std::move(t);
  }
  if (!req.ok()) {
    return Status(StatusCode::kInvalidArgument, "malformed bootstrap");
  }
  return Bootstrap(epoch, tail, std::move(state));
}

Status Sequencer::HandleDump(ByteReader& req, ByteWriter& resp) {
  Epoch epoch = req.GetU32();
  Result<DumpedState> dump = Dump(epoch);
  if (!dump.ok()) {
    return dump.status();
  }
  EncodeSequencerState(dump->tail, dump->streams, resp);
  return Status::Ok();
}

void EncodeSequencerState(LogOffset tail,
                          const std::unordered_map<StreamId, StreamTail>& state,
                          ByteWriter& w) {
  w.PutU64(tail);
  w.PutU32(static_cast<uint32_t>(state.size()));
  for (const auto& [stream, offsets] : state) {
    w.PutU32(stream);
    w.PutU8(static_cast<uint8_t>(offsets.size()));
    for (LogOffset o : offsets) {
      w.PutU64(o);
    }
  }
}

Result<Sequencer::DumpedState> DecodeSequencerState(ByteReader& r) {
  Sequencer::DumpedState dump;
  dump.tail = r.GetU64();
  uint32_t count = r.GetU32();
  dump.streams.reserve(count);
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    StreamId stream = r.GetU32();
    uint8_t n = r.GetU8();
    StreamTail t;
    t.reserve(n);
    for (int j = 0; j < n; ++j) {
      t.push_back(r.GetU64());
    }
    dump.streams.emplace(stream, std::move(t));
  }
  if (!r.ok()) {
    return Status(StatusCode::kInvalidArgument, "malformed sequencer state");
  }
  return dump;
}

Result<Sequencer::DumpedState> SequencerDump(tango::Transport* transport,
                                             NodeId sequencer, Epoch epoch) {
  ByteWriter w;
  w.PutU32(epoch);
  std::vector<uint8_t> resp;
  Status st = transport->Call(sequencer, kSequencerDump, w.bytes(), &resp);
  if (!st.ok()) {
    return st;
  }
  ByteReader r(resp);
  return DecodeSequencerState(r);
}

Result<SequencerGrant> SequencerNext(tango::Transport* transport,
                                     NodeId sequencer, Epoch epoch,
                                     uint32_t count,
                                     const std::vector<StreamId>& streams) {
  ByteWriter w;
  w.PutU32(epoch);
  w.PutU32(count);
  w.PutU16(static_cast<uint16_t>(streams.size()));
  for (StreamId s : streams) {
    w.PutU32(s);
  }
  std::vector<uint8_t> resp;
  Status st = transport->Call(sequencer, kSequencerNext, w.bytes(), &resp);
  if (!st.ok()) {
    return st;
  }
  ByteReader r(resp);
  SequencerGrant grant;
  grant.start = r.GetU64();
  grant.count = count;
  uint16_t groups = r.GetU16();
  grant.token_backpointers.reserve(groups);
  for (uint16_t i = 0; i < groups && r.ok(); ++i) {
    grant.token_backpointers.push_back(DecodeStreamTails(r));
  }
  if (!r.ok()) {
    return Status(StatusCode::kInternal, "malformed grant response");
  }
  return grant;
}

Result<SequencerTailInfo> SequencerTail(tango::Transport* transport,
                                        NodeId sequencer, Epoch epoch,
                                        const std::vector<StreamId>& streams) {
  ByteWriter w;
  w.PutU32(epoch);
  w.PutU16(static_cast<uint16_t>(streams.size()));
  for (StreamId s : streams) {
    w.PutU32(s);
  }
  std::vector<uint8_t> resp;
  Status st = transport->Call(sequencer, kSequencerTail, w.bytes(), &resp);
  if (!st.ok()) {
    return st;
  }
  ByteReader r(resp);
  SequencerTailInfo info;
  info.tail = r.GetU64();
  info.backpointers = DecodeStreamTails(r);
  if (!r.ok()) {
    return Status(StatusCode::kInternal, "malformed tail response");
  }
  return info;
}

Status SequencerBootstrap(
    tango::Transport* transport, NodeId sequencer, Epoch epoch, LogOffset tail,
    const std::unordered_map<StreamId, StreamTail>& state) {
  ByteWriter w;
  w.PutU32(epoch);
  w.PutU64(tail);
  w.PutU32(static_cast<uint32_t>(state.size()));
  for (const auto& [stream, offsets] : state) {
    w.PutU32(stream);
    w.PutU8(static_cast<uint8_t>(offsets.size()));
    for (LogOffset o : offsets) {
      w.PutU64(o);
    }
  }
  return transport->Call(sequencer, kSequencerBootstrap, w.bytes(), nullptr);
}

}  // namespace corfu
