#include "src/corfu/sequencer.h"

#include <algorithm>

#include "src/obs/slo.h"
#include "src/util/threading.h"

namespace corfu {

using tango::ByteReader;
using tango::ByteWriter;
using tango::NodeId;
using tango::Result;
using tango::Status;
using tango::StatusCode;

namespace {

void EncodeStreamTails(const std::vector<StreamTail>& tails, ByteWriter& w) {
  w.PutU16(static_cast<uint16_t>(tails.size()));
  for (const StreamTail& t : tails) {
    w.PutU8(static_cast<uint8_t>(t.size()));
    for (LogOffset o : t) {
      w.PutU64(o);
    }
  }
}

std::vector<StreamTail> DecodeStreamTails(ByteReader& r) {
  uint16_t n = r.GetU16();
  std::vector<StreamTail> tails;
  tails.reserve(n);
  for (int i = 0; i < n; ++i) {
    uint8_t count = r.GetU8();
    StreamTail t;
    t.reserve(count);
    for (int j = 0; j < count; ++j) {
      t.push_back(r.GetU64());
    }
    tails.push_back(std::move(t));
  }
  return tails;
}

}  // namespace

Sequencer::Sequencer(tango::Transport* transport, NodeId node, Epoch epoch,
                     uint32_t backpointer_count, SequencerAdmission admission)
    : transport_(transport),
      node_(node),
      backpointer_count_(backpointer_count),
      epoch_(epoch),
      admission_(admission) {
  auto& reg = tango::obs::MetricsRegistry::Default();
  tokens_ = reg.GetCounter("sequencer.tokens");
  tail_checks_ = reg.GetCounter("sequencer.tail_checks");
  sealed_rejects_ = reg.GetCounter("sequencer.sealed_rejects");
  tail_gauge_ = reg.GetGauge("sequencer.tail");
  stream_gauge_ = reg.GetGauge("sequencer.streams");
  shed_ = reg.GetCounter("overload.sequencer.shed");
  shed_client_quota_ = reg.GetCounter("overload.sequencer.shed_client_quota");
  admitted_tokens_ = reg.GetCounter("overload.sequencer.admitted_tokens");
  retry_after_us_ = reg.GetHistogram("overload.sequencer.retry_after_us");
  inflight_gauge_ = reg.GetGauge("overload.sequencer.inflight");
  // A fresh bucket starts full so startup bursts are absorbed.
  global_bucket_.tokens = static_cast<double>(
      admission_.burst_tokens != 0 ? admission_.burst_tokens
                                   : admission_.capacity_tokens_per_sec / 8);
  global_bucket_.last_refill_us = tango::NowMicros();
  dispatcher_.Register(kSequencerNext, [this](ByteReader& q, ByteWriter& p) {
    return HandleNext(q, p);
  });
  dispatcher_.Register(kSequencerTail, [this](ByteReader& q, ByteWriter& p) {
    return HandleTail(q, p);
  });
  dispatcher_.Register(kSequencerBootstrap,
                       [this](ByteReader& q, ByteWriter& p) {
                         return HandleBootstrap(q, p);
                       });
  dispatcher_.Register(kSequencerDump, [this](ByteReader& q, ByteWriter& p) {
    return HandleDump(q, p);
  });
  transport_->RegisterNode(node_, dispatcher_.AsHandler());
}

Sequencer::~Sequencer() { transport_->UnregisterNode(node_); }

void Sequencer::set_admission(SequencerAdmission admission) {
  std::lock_guard<std::mutex> lock(mu_);
  admission_ = admission;
  uint64_t burst = admission_.burst_tokens != 0
                       ? admission_.burst_tokens
                       : admission_.capacity_tokens_per_sec / 8;
  global_bucket_.tokens = static_cast<double>(burst);
  global_bucket_.last_refill_us = tango::NowMicros();
  client_buckets_.clear();
}

uint64_t Sequencer::TakeOrHint(Bucket& b, double rate, double burst,
                               uint32_t count, uint64_t now_us) {
  if (now_us > b.last_refill_us) {
    b.tokens = std::min(
        burst, b.tokens + rate * static_cast<double>(now_us -
                                                     b.last_refill_us) * 1e-6);
  }
  b.last_refill_us = now_us;
  double need = static_cast<double>(count);
  if (b.tokens >= need) {
    b.tokens -= need;
    return 0;
  }
  // Retry-after = time for the deficit to refill.  Clamped: a floor so the
  // client's sleep is worth the syscall, a ceiling so one huge batch cannot
  // park a client for minutes.
  double deficit = need - b.tokens;
  uint64_t hint = static_cast<uint64_t>(deficit / rate * 1e6);
  return std::clamp<uint64_t>(hint, 200, 1'000'000);
}

Status Sequencer::Admit(uint32_t count, uint64_t client_id, uint64_t now_us) {
  if (admission_.capacity_tokens_per_sec == 0) {
    return Status::Ok();
  }
  double rate = static_cast<double>(admission_.capacity_tokens_per_sec);
  double burst = static_cast<double>(admission_.burst_tokens != 0
                                         ? admission_.burst_tokens
                                         : admission_.capacity_tokens_per_sec /
                                               8);
  burst = std::max(burst, static_cast<double>(count));

  // Per-client fair-share bucket first: a client over its quota is shed
  // without draining the global bucket, so it cannot crowd out the others.
  if (admission_.per_client_share > 0.0) {
    // Crude occupancy bound: the map resets wholesale rather than tracking
    // LRU.  Fresh buckets start full, so the transient is over-admission of
    // returning clients, never starvation.
    if (client_buckets_.size() > 4096 &&
        !client_buckets_.contains(client_id)) {
      client_buckets_.clear();
    }
    double client_rate = rate * admission_.per_client_share;
    double client_burst = std::max(burst * admission_.per_client_share,
                                   static_cast<double>(count));
    auto [it, inserted] = client_buckets_.try_emplace(client_id);
    if (inserted) {
      it->second.tokens = client_burst;
      it->second.last_refill_us = now_us;
    }
    uint64_t hint =
        TakeOrHint(it->second, client_rate, client_burst, count, now_us);
    if (hint != 0) {
      shed_->Add();
      shed_client_quota_->Add();
      retry_after_us_->Record(hint);
      tango::obs::SloTracker::Default().Record(tango::obs::SloOp::kAdmission,
                                               hint);
      return Status::Busy(static_cast<uint32_t>(hint),
                          "client over grant quota");
    }
  }

  uint64_t hint = TakeOrHint(global_bucket_, rate, burst, count, now_us);
  if (hint != 0) {
    // Refund the per-client deduction: the request was not admitted.
    if (admission_.per_client_share > 0.0) {
      auto it = client_buckets_.find(client_id);
      if (it != client_buckets_.end()) {
        it->second.tokens += static_cast<double>(count);
      }
    }
    shed_->Add();
    retry_after_us_->Record(hint);
    tango::obs::SloTracker::Default().Record(tango::obs::SloOp::kAdmission,
                                             hint);
    return Status::Busy(static_cast<uint32_t>(hint), "sequencer overloaded");
  }
  admitted_tokens_->Add(count);
  tango::obs::SloTracker::Default().Record(tango::obs::SloOp::kAdmission, 0);
  return Status::Ok();
}

Result<SequencerGrant> Sequencer::Next(Epoch epoch, uint32_t count,
                                       const std::vector<StreamId>& streams,
                                       uint64_t client_id) {
  if (count == 0 || count > kMaxGrantBatch) {
    return Status(StatusCode::kInvalidArgument, "grant count out of range");
  }
  // Bounded grant queue: beyond max_inflight concurrent Next calls the
  // request is shed before it can convoy on mu_.  Tracked with an atomic so
  // the check itself never queues.
  struct InflightGuard {
    std::atomic<uint32_t>* counter;
    tango::obs::Gauge* gauge;
    ~InflightGuard() {
      counter->fetch_sub(1, std::memory_order_relaxed);
      gauge->Add(-1);
    }
  };
  uint32_t inflight = next_inflight_.fetch_add(1, std::memory_order_relaxed) +
                      1;
  inflight_gauge_->Add(1);
  InflightGuard inflight_guard{&next_inflight_, inflight_gauge_};
  uint32_t max_inflight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    max_inflight = admission_.max_inflight;
  }
  if (max_inflight != 0 && inflight > max_inflight) {
    shed_->Add();
    // Hint proportional to the excess: each queued-ahead request is roughly
    // one grant's worth of work.
    uint64_t hint = std::clamp<uint64_t>(
        static_cast<uint64_t>(inflight - max_inflight) * 100, 200, 100'000);
    retry_after_us_->Record(hint);
    tango::obs::SloTracker::Default().Record(tango::obs::SloOp::kAdmission,
                                             hint);
    return Status::Busy(static_cast<uint32_t>(hint), "grant queue full");
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (epoch != epoch_) {
    sealed_rejects_->Add();
    return Status(StatusCode::kSealedEpoch, "sequencer epoch mismatch");
  }
  TANGO_RETURN_IF_ERROR(Admit(count, client_id, tango::NowMicros()));
  SequencerGrant grant;
  grant.start = tail_;
  grant.count = count;
  tail_ += count;
  tokens_->Add(count);
  tail_gauge_->Set(static_cast<int64_t>(tail_));
  if (!streams.empty()) {
    grant.token_backpointers.resize(count);
    for (uint32_t token = 0; token < count; ++token) {
      std::vector<StreamTail>& bps = grant.token_backpointers[token];
      bps.reserve(streams.size());
      for (StreamId s : streams) {
        StreamTail& t = streams_[s];
        bps.push_back(t);
        // Record the token as this stream's most recent entry, so the next
        // token of the same grant chains to it.
        t.insert(t.begin(), grant.start + token);
        if (t.size() > backpointer_count_) {
          t.resize(backpointer_count_);
        }
      }
    }
  }
  stream_gauge_->Set(static_cast<int64_t>(streams_.size()));
  return grant;
}

Result<SequencerTailInfo> Sequencer::Tail(
    Epoch epoch, const std::vector<StreamId>& streams) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch != epoch_) {
    sealed_rejects_->Add();
    return Status(StatusCode::kSealedEpoch, "sequencer epoch mismatch");
  }
  tail_checks_->Add();
  SequencerTailInfo info;
  info.tail = tail_;
  info.backpointers.reserve(streams.size());
  for (StreamId s : streams) {
    auto it = streams_.find(s);
    info.backpointers.push_back(it == streams_.end() ? StreamTail{}
                                                     : it->second);
  }
  return info;
}

Status Sequencer::Bootstrap(Epoch epoch, LogOffset tail,
                            std::unordered_map<StreamId, StreamTail> state) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch < epoch_) {
    return Status(StatusCode::kSealedEpoch, "bootstrap epoch too old");
  }
  epoch_ = epoch;
  tail_ = std::max(tail_, tail);
  for (auto& [stream, offsets] : state) {
    StreamTail& t = streams_[stream];
    if (t.empty()) {
      t = std::move(offsets);
    }
  }
  return Status::Ok();
}

Result<Sequencer::DumpedState> Sequencer::Dump(Epoch epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch != epoch_) {
    return Status(StatusCode::kSealedEpoch, "sequencer epoch mismatch");
  }
  DumpedState dump;
  dump.tail = tail_;
  dump.streams = streams_;
  return dump;
}

size_t Sequencer::StreamCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return streams_.size();
}

Status Sequencer::HandleNext(ByteReader& req, ByteWriter& resp) {
  Epoch epoch = req.GetU32();
  uint32_t count = req.GetU32();
  uint16_t num_streams = req.GetU16();
  std::vector<StreamId> streams;
  streams.reserve(num_streams);
  for (int i = 0; i < num_streams; ++i) {
    streams.push_back(req.GetU32());
  }
  // Optional trailing client id (absent in pre-admission encoders -> 0,
  // the anonymous bucket).
  uint64_t client_id = req.remaining() >= 8 ? req.GetU64() : 0;
  if (!req.ok()) {
    return Status(StatusCode::kInvalidArgument, "malformed next request");
  }
  Result<SequencerGrant> grant = Next(epoch, count, streams, client_id);
  if (!grant.ok()) {
    return grant.status();
  }
  resp.PutU64(grant->start);
  // Number of per-token backpointer groups: 0 for streamless (raw offset
  // batching) grants, `count` otherwise.
  resp.PutU16(static_cast<uint16_t>(grant->token_backpointers.size()));
  for (const std::vector<StreamTail>& bps : grant->token_backpointers) {
    EncodeStreamTails(bps, resp);
  }
  return Status::Ok();
}

Status Sequencer::HandleTail(ByteReader& req, ByteWriter& resp) {
  Epoch epoch = req.GetU32();
  uint16_t num_streams = req.GetU16();
  std::vector<StreamId> streams;
  streams.reserve(num_streams);
  for (int i = 0; i < num_streams; ++i) {
    streams.push_back(req.GetU32());
  }
  if (!req.ok()) {
    return Status(StatusCode::kInvalidArgument, "malformed tail request");
  }
  Result<SequencerTailInfo> info = Tail(epoch, streams);
  if (!info.ok()) {
    return info.status();
  }
  resp.PutU64(info->tail);
  EncodeStreamTails(info->backpointers, resp);
  return Status::Ok();
}

Status Sequencer::HandleBootstrap(ByteReader& req, ByteWriter& /*resp*/) {
  Epoch epoch = req.GetU32();
  LogOffset tail = req.GetU64();
  uint32_t num_streams = req.GetU32();
  std::unordered_map<StreamId, StreamTail> state;
  state.reserve(num_streams);
  for (uint32_t i = 0; i < num_streams; ++i) {
    StreamId id = req.GetU32();
    uint8_t count = req.GetU8();
    StreamTail t;
    t.reserve(count);
    for (int j = 0; j < count; ++j) {
      t.push_back(req.GetU64());
    }
    state[id] = std::move(t);
  }
  if (!req.ok()) {
    return Status(StatusCode::kInvalidArgument, "malformed bootstrap");
  }
  return Bootstrap(epoch, tail, std::move(state));
}

Status Sequencer::HandleDump(ByteReader& req, ByteWriter& resp) {
  Epoch epoch = req.GetU32();
  Result<DumpedState> dump = Dump(epoch);
  if (!dump.ok()) {
    return dump.status();
  }
  EncodeSequencerState(dump->tail, dump->streams, resp);
  return Status::Ok();
}

void EncodeSequencerState(LogOffset tail,
                          const std::unordered_map<StreamId, StreamTail>& state,
                          ByteWriter& w) {
  w.PutU64(tail);
  w.PutU32(static_cast<uint32_t>(state.size()));
  for (const auto& [stream, offsets] : state) {
    w.PutU32(stream);
    w.PutU8(static_cast<uint8_t>(offsets.size()));
    for (LogOffset o : offsets) {
      w.PutU64(o);
    }
  }
}

Result<Sequencer::DumpedState> DecodeSequencerState(ByteReader& r) {
  Sequencer::DumpedState dump;
  dump.tail = r.GetU64();
  uint32_t count = r.GetU32();
  dump.streams.reserve(count);
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    StreamId stream = r.GetU32();
    uint8_t n = r.GetU8();
    StreamTail t;
    t.reserve(n);
    for (int j = 0; j < n; ++j) {
      t.push_back(r.GetU64());
    }
    dump.streams.emplace(stream, std::move(t));
  }
  if (!r.ok()) {
    return Status(StatusCode::kInvalidArgument, "malformed sequencer state");
  }
  return dump;
}

Result<Sequencer::DumpedState> SequencerDump(tango::Transport* transport,
                                             NodeId sequencer, Epoch epoch) {
  ByteWriter w;
  w.PutU32(epoch);
  std::vector<uint8_t> resp;
  Status st = transport->Call(sequencer, kSequencerDump, w.bytes(), &resp);
  if (!st.ok()) {
    return st;
  }
  ByteReader r(resp);
  return DecodeSequencerState(r);
}

Result<SequencerGrant> SequencerNext(tango::Transport* transport,
                                     NodeId sequencer, Epoch epoch,
                                     uint32_t count,
                                     const std::vector<StreamId>& streams,
                                     uint64_t client_id) {
  ByteWriter w;
  w.PutU32(epoch);
  w.PutU32(count);
  w.PutU16(static_cast<uint16_t>(streams.size()));
  for (StreamId s : streams) {
    w.PutU32(s);
  }
  w.PutU64(client_id);
  std::vector<uint8_t> resp;
  Status st = transport->Call(sequencer, kSequencerNext, w.bytes(), &resp);
  if (!st.ok()) {
    return st;
  }
  ByteReader r(resp);
  SequencerGrant grant;
  grant.start = r.GetU64();
  grant.count = count;
  uint16_t groups = r.GetU16();
  grant.token_backpointers.reserve(groups);
  for (uint16_t i = 0; i < groups && r.ok(); ++i) {
    grant.token_backpointers.push_back(DecodeStreamTails(r));
  }
  if (!r.ok()) {
    return Status(StatusCode::kInternal, "malformed grant response");
  }
  return grant;
}

Result<SequencerTailInfo> SequencerTail(tango::Transport* transport,
                                        NodeId sequencer, Epoch epoch,
                                        const std::vector<StreamId>& streams) {
  ByteWriter w;
  w.PutU32(epoch);
  w.PutU16(static_cast<uint16_t>(streams.size()));
  for (StreamId s : streams) {
    w.PutU32(s);
  }
  std::vector<uint8_t> resp;
  Status st = transport->Call(sequencer, kSequencerTail, w.bytes(), &resp);
  if (!st.ok()) {
    return st;
  }
  ByteReader r(resp);
  SequencerTailInfo info;
  info.tail = r.GetU64();
  info.backpointers = DecodeStreamTails(r);
  if (!r.ok()) {
    return Status(StatusCode::kInternal, "malformed tail response");
  }
  return info;
}

Status SequencerBootstrap(
    tango::Transport* transport, NodeId sequencer, Epoch epoch, LogOffset tail,
    const std::unordered_map<StreamId, StreamTail>& state) {
  ByteWriter w;
  w.PutU32(epoch);
  w.PutU64(tail);
  w.PutU32(static_cast<uint32_t>(state.size()));
  for (const auto& [stream, offsets] : state) {
    w.PutU32(stream);
    w.PutU8(static_cast<uint8_t>(offsets.size()));
    for (LogOffset o : offsets) {
      w.PutU64(o);
    }
  }
  return transport->Call(sequencer, kSequencerBootstrap, w.bytes(), nullptr);
}

}  // namespace corfu
