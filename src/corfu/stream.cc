#include "src/corfu/stream.h"

#include <algorithm>

#include "src/util/logging.h"

namespace corfu {

using tango::Result;
using tango::Status;
using tango::StatusCode;

StreamStore::StreamStore(CorfuClient* log, Options options)
    : log_(log), options_(options) {}

void StreamStore::Open(StreamId stream) { (void)StateFor(stream); }

StreamStore::StreamState& StreamStore::StateFor(StreamId stream) {
  return streams_[stream];
}

Result<LogOffset> StreamStore::Append(StreamId stream,
                                      std::span<const uint8_t> payload) {
  return log_->AppendToStreams(payload, {stream});
}

Result<LogOffset> StreamStore::MultiAppend(
    std::span<const uint8_t> payload, const std::vector<StreamId>& streams) {
  return log_->AppendToStreams(payload, streams);
}

Result<std::shared_ptr<const LogEntry>> StreamStore::FetchEntry(
    LogOffset offset) {
  auto it = cache_.find(offset);
  if (it != cache_.end()) {
    return it->second;
  }
  Result<LogEntry> entry = log_->ReadRepair(offset);
  if (!entry.ok()) {
    return entry.status();
  }
  auto shared = std::make_shared<const LogEntry>(std::move(entry).value());
  cache_.emplace(offset, shared);
  cache_fifo_.push_back(offset);
  while (cache_fifo_.size() > options_.cache_capacity) {
    cache_.erase(cache_fifo_.front());
    cache_fifo_.pop_front();
  }
  return shared;
}

Status StreamStore::Backfill(StreamId stream, StreamState& state,
                             const StreamTail& latest) {
  const bool have_floor = !state.offsets.empty();
  const LogOffset floor = have_floor ? state.offsets.back() : 0;

  auto is_new = [&](LogOffset o) {
    return o != kInvalidOffset && (!have_floor || o > floor);
  };

  std::vector<LogOffset> discovered;
  std::vector<LogOffset> chain(latest.begin(), latest.end());
  while (true) {
    LogOffset oldest = kInvalidOffset;
    bool any = false;
    for (LogOffset o : chain) {
      if (!is_new(o)) {
        continue;
      }
      discovered.push_back(o);
      any = true;
      if (oldest == kInvalidOffset || o < oldest) {
        oldest = o;
      }
    }
    if (!any) {
      break;  // reached known territory or the start of the stream
    }

    // Stride: one read yields the next K backpointers.
    ++reconstruction_reads_;
    Result<std::shared_ptr<const LogEntry>> entry = FetchEntry(oldest);
    if (!entry.ok()) {
      if (entry.status() == StatusCode::kTrimmed) {
        break;  // history below this point was forgotten
      }
      return entry.status();
    }
    const StreamHeader* header = (*entry)->FindHeader(stream);
    if (header != nullptr) {
      chain.assign(header->backpointers.begin(), header->backpointers.end());
      continue;
    }

    // Dead end: the frontier entry is junk (a filled hole carries no
    // backpointers).  Fall back to scanning the log backward until we
    // reconnect with known territory (§5, Failure Handling).
    LogOffset scan = oldest;
    while (scan > 0) {
      --scan;
      if (have_floor && scan <= floor) {
        break;
      }
      ++reconstruction_reads_;
      Result<std::shared_ptr<const LogEntry>> e = FetchEntry(scan);
      if (!e.ok()) {
        if (e.status() == StatusCode::kTrimmed) {
          break;
        }
        return e.status();
      }
      if ((*e)->FindHeader(stream) != nullptr) {
        discovered.push_back(scan);
      }
    }
    break;
  }

  if (!discovered.empty()) {
    std::sort(discovered.begin(), discovered.end());
    discovered.erase(std::unique(discovered.begin(), discovered.end()),
                     discovered.end());
    state.offsets.insert(state.offsets.end(), discovered.begin(),
                         discovered.end());
  }
  return Status::Ok();
}

Result<LogOffset> StreamStore::Sync(StreamId stream) {
  StreamState& state = StateFor(stream);
  Result<SequencerTailInfo> info = log_->StreamTails({stream});
  if (!info.ok()) {
    return info.status();
  }
  TANGO_RETURN_IF_ERROR(Backfill(stream, state, info->backpointers[0]));
  state.synced_tail = info->tail;
  return info->tail;
}

Result<StreamEntry> StreamStore::ReadNext(StreamId stream) {
  StreamState& state = StateFor(stream);
  while (state.cursor < state.offsets.size()) {
    LogOffset offset = state.offsets[state.cursor];
    Result<std::shared_ptr<const LogEntry>> entry = FetchEntry(offset);
    if (!entry.ok()) {
      if (entry.status() == StatusCode::kTrimmed) {
        ++state.cursor;  // trimmed history: nothing to deliver
        continue;
      }
      return entry.status();
    }
    ++state.cursor;
    if ((*entry)->is_junk()) {
      continue;  // filled hole: position consumed, nothing to deliver
    }
    StreamEntry out;
    out.offset = offset;
    out.entry = std::move(entry).value();
    return out;
  }
  return Status(StatusCode::kUnwritten, "stream cursor at synced end");
}

Result<StreamEntry> StreamStore::PeekNext(StreamId stream) {
  StreamState& state = StateFor(stream);
  size_t saved = state.cursor;
  Result<StreamEntry> entry = ReadNext(stream);
  state.cursor = saved;
  return entry;
}

LogOffset StreamStore::NextOffset(StreamId stream) const {
  auto it = streams_.find(stream);
  if (it == streams_.end() || it->second.cursor >= it->second.offsets.size()) {
    return kInvalidOffset;
  }
  return it->second.offsets[it->second.cursor];
}

const std::vector<LogOffset>& StreamStore::KnownOffsets(
    StreamId stream) const {
  static const std::vector<LogOffset> kEmpty;
  auto it = streams_.find(stream);
  return it == streams_.end() ? kEmpty : it->second.offsets;
}

void StreamStore::ResetCursor(StreamId stream) { StateFor(stream).cursor = 0; }

Result<LogOffset> StreamStore::SyncAll(const std::vector<StreamId>& streams) {
  if (streams.empty()) {
    return log_->CheckTail();
  }
  Result<SequencerTailInfo> info = log_->StreamTails(streams);
  if (!info.ok()) {
    return info.status();
  }
  for (size_t i = 0; i < streams.size(); ++i) {
    StreamState& state = StateFor(streams[i]);
    TANGO_RETURN_IF_ERROR(
        Backfill(streams[i], state, info->backpointers[i]));
    state.synced_tail = info->tail;
  }
  return info->tail;
}

void StreamStore::AdvanceCursor(StreamId stream) {
  StreamState& state = StateFor(stream);
  if (state.cursor < state.offsets.size()) {
    ++state.cursor;
  }
}

void StreamStore::SeekCursorAfter(StreamId stream, LogOffset offset) {
  StreamState& state = StateFor(stream);
  state.cursor = static_cast<size_t>(
      std::upper_bound(state.offsets.begin(), state.offsets.end(), offset) -
      state.offsets.begin());
}

}  // namespace corfu
