#include "src/corfu/stream.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/threading.h"

namespace corfu {

using tango::Result;
using tango::Status;
using tango::StatusCode;

StreamStore::StreamStore(CorfuClient* log, Options options)
    : log_(log), options_(options) {
  auto& reg = tango::obs::MetricsRegistry::Default();
  obs_hits_ = reg.GetCounter("store.cache.hits");
  obs_misses_ = reg.GetCounter("store.cache.misses");
  obs_prefetch_batches_ = reg.GetCounter("store.prefetch.batches");
  obs_async_batches_ = reg.GetCounter("store.prefetch.async_batches");
  obs_backfill_reads_ = reg.GetCounter("store.backfill.reads");
  fetch_miss_ok_ = reg.GetCounter("store.fetch.miss_ok");
  fetch_trimmed_ = reg.GetCounter("store.fetch.trimmed");
  fetch_errors_ = reg.GetCounter("store.fetch.errors");
  stale_syncs_ = reg.GetCounter("overload.stream.stale_syncs");
  stale_streams_ = reg.GetGauge("overload.stream.stale");
}

StreamStore::~StreamStore() { DrainAsyncPrefetch(/*wait=*/true); }

void StreamStore::Open(StreamId stream) { (void)StateFor(stream); }

StreamStore::StreamState& StreamStore::StateFor(StreamId stream) {
  return streams_[stream];
}

Result<LogOffset> StreamStore::Append(StreamId stream,
                                      std::span<const uint8_t> payload) {
  return log_->AppendToStreams(payload, {stream});
}

Result<LogOffset> StreamStore::MultiAppend(
    std::span<const uint8_t> payload, const std::vector<StreamId>& streams) {
  return log_->AppendToStreams(payload, streams);
}

std::shared_ptr<const LogEntry> StreamStore::CacheLookup(LogOffset offset) {
  auto it = cache_.find(offset);
  if (it == cache_.end()) {
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // promote on hit
  return it->second.entry;
}

void StreamStore::CacheInsert(LogOffset offset,
                              std::shared_ptr<const LogEntry> entry) {
  auto it = cache_.find(offset);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;  // entries are immutable; keep the existing copy
  }
  lru_.push_front(offset);
  cache_.emplace(offset, CachedEntry{std::move(entry), lru_.begin()});
  while (cache_.size() > options_.cache_capacity) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
}

void StreamStore::ClearEntryCache() {
  cache_.clear();
  lru_.clear();
}

void StreamStore::PrefetchOffsets(const std::vector<LogOffset>& offsets) {
  if (offsets.empty()) {
    return;
  }
  ++prefetch_batches_;
  obs_prefetch_batches_->Add();
  Result<std::vector<CorfuClient::BatchedRead>> batch =
      log_->ReadBatch(offsets);
  if (!batch.ok()) {
    return;  // best effort: demand reads repair or surface the error
  }
  for (size_t i = 0; i < offsets.size(); ++i) {
    CorfuClient::BatchedRead& slot = (*batch)[i];
    if (slot.status.ok()) {
      CacheInsert(offsets[i],
                  std::make_shared<const LogEntry>(std::move(slot.entry)));
    }
  }
}

void StreamStore::Prefetch(LogOffset offset, PrefetchDirection direction) {
  std::vector<LogOffset> wanted;
  wanted.reserve(options_.readahead);
  if (direction == PrefetchDirection::kForward) {
    for (auto it = known_offsets_.lower_bound(offset);
         it != known_offsets_.end() && wanted.size() < options_.readahead;
         ++it) {
      if (!cache_.contains(*it)) {
        wanted.push_back(*it);
      }
    }
  } else {
    auto it = known_offsets_.upper_bound(offset);
    while (it != known_offsets_.begin() &&
           wanted.size() < options_.readahead) {
      --it;
      if (!cache_.contains(*it)) {
        wanted.push_back(*it);
      }
    }
  }
  PrefetchOffsets(wanted);
}

void StreamStore::StartAsyncPrefetch(LogOffset from, LogOffset limit,
                                     tango::Executor* executor) {
  if (options_.readahead == 0 || executor == nullptr) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(apf_.mu);
    if (apf_.inflight) {
      return;
    }
  }
  DrainAsyncPrefetch(/*wait=*/false);  // fold in a landed batch first

  std::vector<LogOffset> wanted;
  wanted.reserve(options_.readahead);
  for (auto it = known_offsets_.lower_bound(from);
       it != known_offsets_.end() && *it < limit &&
       wanted.size() < options_.readahead;
       ++it) {
    if (!cache_.contains(*it)) {
      wanted.push_back(*it);
    }
  }
  if (wanted.empty()) {
    return;
  }
  apf_offsets_ = wanted;
  {
    std::lock_guard<std::mutex> lock(apf_.mu);
    apf_.inflight = true;
    apf_.has_results = false;
    apf_.results.clear();
  }
  ++async_prefetch_batches_;
  obs_async_batches_->Add();
  executor->Submit([this, wanted = std::move(wanted)] {
    Result<std::vector<CorfuClient::BatchedRead>> batch =
        log_->ReadBatch(wanted);
    std::lock_guard<std::mutex> lock(apf_.mu);
    if (batch.ok()) {
      apf_.results = std::move(*batch);
      apf_.has_results = true;
    }
    apf_.inflight = false;
    apf_.cv.notify_all();
  });
}

void StreamStore::DrainAsyncPrefetch(bool wait) {
  std::vector<CorfuClient::BatchedRead> results;
  {
    std::unique_lock<std::mutex> lock(apf_.mu);
    if (wait) {
      apf_.cv.wait(lock, [this] { return !apf_.inflight; });
    } else if (apf_.inflight) {
      return;
    }
    if (!apf_.has_results) {
      return;
    }
    results = std::move(apf_.results);
    apf_.has_results = false;
  }
  for (size_t i = 0; i < results.size() && i < apf_offsets_.size(); ++i) {
    if (results[i].status.ok()) {
      CacheInsert(apf_offsets_[i], std::make_shared<const LogEntry>(
                                       std::move(results[i].entry)));
    }
  }
  apf_offsets_.clear();
}

Result<std::shared_ptr<const LogEntry>> StreamStore::FetchEntry(
    LogOffset offset, PrefetchDirection direction) {
  DrainAsyncPrefetch(/*wait=*/false);
  // The cache-hit fast path pays for exactly one counter update; demanded
  // reads are derived as hits + misses, and the full outcome accounting
  // (miss_ok/trimmed/errors) happens only on the slow miss path.
  if (std::shared_ptr<const LogEntry> hit = CacheLookup(offset)) {
    ++cache_hits_;
    obs_hits_->Add();
    return hit;
  }
  ++cache_misses_;
  obs_misses_->Add();
  // A miss on an offset the in-flight background batch already covers: wait
  // for that batch rather than issuing a duplicate read.
  if (std::binary_search(apf_offsets_.begin(), apf_offsets_.end(), offset)) {
    DrainAsyncPrefetch(/*wait=*/true);
    if (std::shared_ptr<const LogEntry> hit = CacheLookup(offset)) {
      fetch_miss_ok_->Add();
      return hit;
    }
  }
  if (options_.readahead > 0) {
    Prefetch(offset, direction);
    if (std::shared_ptr<const LogEntry> hit = CacheLookup(offset)) {
      fetch_miss_ok_->Add();
      return hit;
    }
    // The batch reported a hole, a trim, or an error for this offset; fall
    // through to the single-read path, which waits out and repairs holes.
  }
  Result<LogEntry> entry = log_->ReadRepair(offset);
  if (!entry.ok()) {
    if (entry.status() == StatusCode::kTrimmed) {
      fetch_trimmed_->Add();
    } else {
      fetch_errors_->Add();
    }
    return entry.status();
  }
  fetch_miss_ok_->Add();
  auto shared = std::make_shared<const LogEntry>(std::move(entry).value());
  CacheInsert(offset, shared);
  return shared;
}

Status StreamStore::Backfill(StreamId stream, StreamState& state,
                             const StreamTail& latest) {
  const bool have_floor = !state.offsets.empty();
  const LogOffset floor = have_floor ? state.offsets.back() : 0;

  auto is_new = [&](LogOffset o) {
    return o != kInvalidOffset && (!have_floor || o > floor);
  };

  std::vector<LogOffset> discovered;
  std::vector<LogOffset> chain(latest.begin(), latest.end());
  while (true) {
    LogOffset oldest = kInvalidOffset;
    bool any = false;
    for (LogOffset o : chain) {
      if (!is_new(o)) {
        continue;
      }
      discovered.push_back(o);
      any = true;
      if (oldest == kInvalidOffset || o < oldest) {
        oldest = o;
      }
    }
    if (!any) {
      break;  // reached known territory or the start of the stream
    }

    // Stride: one read yields the next K backpointers.
    if (options_.readahead > 1) {
      // Vectored stride: every new frontier offset is a stream member the
      // replay will need anyway, so fetch the whole frontier in one round
      // trip and let the stride read below hit the cache.
      std::vector<LogOffset> frontier;
      for (LogOffset o : chain) {
        if (is_new(o) && !cache_.contains(o)) {
          frontier.push_back(o);
        }
      }
      if (frontier.size() > 1) {
        PrefetchOffsets(frontier);
      }
    }
    ++reconstruction_reads_;
    obs_backfill_reads_->Add();
    Result<std::shared_ptr<const LogEntry>> entry = FetchEntry(oldest);
    if (!entry.ok()) {
      if (entry.status() == StatusCode::kTrimmed) {
        break;  // history below this point was forgotten
      }
      return entry.status();
    }
    const StreamHeader* header = (*entry)->FindHeader(stream);
    if (header != nullptr) {
      chain.assign(header->backpointers.begin(), header->backpointers.end());
      continue;
    }

    // Dead end: the frontier entry is junk (a filled hole carries no
    // backpointers).  Fall back to scanning the log backward until we
    // reconnect with known territory (§5, Failure Handling).  The scan
    // walks raw log offsets, so it prefetches fixed-size descending chunks
    // rather than known-offset runs.
    LogOffset scan = oldest;
    LogOffset batched_floor = oldest;  // offsets in [batched_floor, oldest)
                                       // were already batch-read
    while (scan > 0) {
      --scan;
      if (have_floor && scan <= floor) {
        break;
      }
      if (options_.readahead > 1 && scan < batched_floor) {
        LogOffset lo =
            scan + 1 > options_.readahead ? scan + 1 - options_.readahead : 0;
        if (have_floor && lo <= floor) {
          lo = floor + 1;
        }
        std::vector<LogOffset> chunk;
        for (LogOffset o = scan + 1; o-- > lo;) {
          if (!cache_.contains(o)) {
            chunk.push_back(o);
          }
        }
        PrefetchOffsets(chunk);
        batched_floor = lo;
      }
      ++reconstruction_reads_;
      obs_backfill_reads_->Add();
      Result<std::shared_ptr<const LogEntry>> e = FetchEntry(scan);
      if (!e.ok()) {
        if (e.status() == StatusCode::kTrimmed) {
          break;
        }
        return e.status();
      }
      if ((*e)->FindHeader(stream) != nullptr) {
        discovered.push_back(scan);
      }
    }
    break;
  }

  if (!discovered.empty()) {
    std::sort(discovered.begin(), discovered.end());
    discovered.erase(std::unique(discovered.begin(), discovered.end()),
                     discovered.end());
    state.offsets.insert(state.offsets.end(), discovered.begin(),
                         discovered.end());
    known_offsets_.insert(discovered.begin(), discovered.end());
  }
  return Status::Ok();
}

namespace {

// Sync failures that mean "the cluster is shedding or partially out", where
// a stale answer beats no answer.  kSealedEpoch and hard errors are not
// brown-out material: the former already retried inside the client, and the
// latter would hide real bugs.
bool BrownoutStatus(const Status& st) {
  return st == StatusCode::kBusy || st == StatusCode::kUnavailable ||
         st == StatusCode::kTimeout;
}

}  // namespace

LogOffset StreamStore::ServeStaleTail(StreamState& state) {
  stale_syncs_->Add();
  if (!state.stale) {
    state.stale = true;
    stale_streams_->Add(1);
  }
  return state.synced_tail;
}

void StreamStore::MarkFresh(StreamState& state) {
  if (state.stale) {
    state.stale = false;
    stale_streams_->Add(-1);
  }
}

bool StreamStore::IsStale(StreamId stream) const {
  auto it = streams_.find(stream);
  return it != streams_.end() && it->second.stale;
}

Result<LogOffset> StreamStore::Sync(StreamId stream) {
  StreamState& state = StateFor(stream);
  Result<SequencerTailInfo> info = log_->StreamTails({stream});
  if (!info.ok()) {
    if (options_.brownout_stale_reads && BrownoutStatus(info.status())) {
      // Brown-out: the sequencer (or the path to it) is shedding.  Readers
      // keep consuming everything already discovered — entries are
      // immutable, so the list is correct, just possibly behind.
      return ServeStaleTail(state);
    }
    return info.status();
  }
  TANGO_RETURN_IF_ERROR(Backfill(stream, state, info->backpointers[0]));
  state.synced_tail = info->tail;
  MarkFresh(state);
  return info->tail;
}

Result<StreamEntry> StreamStore::ReadNext(StreamId stream) {
  StreamState& state = StateFor(stream);
  while (state.cursor < state.offsets.size()) {
    LogOffset offset = state.offsets[state.cursor];
    Result<std::shared_ptr<const LogEntry>> entry = FetchEntry(offset);
    if (!entry.ok()) {
      if (entry.status() == StatusCode::kTrimmed) {
        ++state.cursor;  // trimmed history: nothing to deliver
        continue;
      }
      return entry.status();
    }
    ++state.cursor;
    if ((*entry)->is_junk()) {
      continue;  // filled hole: position consumed, nothing to deliver
    }
    StreamEntry out;
    out.offset = offset;
    out.entry = std::move(entry).value();
    return out;
  }
  return Status(StatusCode::kUnwritten, "stream cursor at synced end");
}

Result<StreamEntry> StreamStore::PeekNext(StreamId stream) {
  StreamState& state = StateFor(stream);
  size_t saved = state.cursor;
  Result<StreamEntry> entry = ReadNext(stream);
  state.cursor = saved;
  return entry;
}

LogOffset StreamStore::NextOffset(StreamId stream) const {
  auto it = streams_.find(stream);
  if (it == streams_.end() || it->second.cursor >= it->second.offsets.size()) {
    return kInvalidOffset;
  }
  return it->second.offsets[it->second.cursor];
}

const std::vector<LogOffset>& StreamStore::KnownOffsets(
    StreamId stream) const {
  static const std::vector<LogOffset> kEmpty;
  auto it = streams_.find(stream);
  return it == streams_.end() ? kEmpty : it->second.offsets;
}

void StreamStore::ResetCursor(StreamId stream) { StateFor(stream).cursor = 0; }

Result<LogOffset> StreamStore::SyncAll(const std::vector<StreamId>& streams) {
  if (streams.empty()) {
    return log_->CheckTail();
  }
  Result<SequencerTailInfo> info = log_->StreamTails(streams);
  if (!info.ok()) {
    if (options_.brownout_stale_reads && BrownoutStatus(info.status())) {
      // Brown-out: every requested stream serves its last synced list; the
      // returned tail is the most conservative one (all lists are complete
      // up to the minimum).
      LogOffset tail = kInvalidOffset;
      for (StreamId stream : streams) {
        tail = std::min(tail, ServeStaleTail(StateFor(stream)));
      }
      return tail;
    }
    return info.status();
  }
  for (size_t i = 0; i < streams.size(); ++i) {
    StreamState& state = StateFor(streams[i]);
    TANGO_RETURN_IF_ERROR(
        Backfill(streams[i], state, info->backpointers[i]));
    state.synced_tail = info->tail;
    MarkFresh(state);
  }
  return info->tail;
}

void StreamStore::AdvanceCursor(StreamId stream) {
  StreamState& state = StateFor(stream);
  if (state.cursor < state.offsets.size()) {
    ++state.cursor;
  }
}

void StreamStore::SeekCursorAfter(StreamId stream, LogOffset offset) {
  StreamState& state = StateFor(stream);
  state.cursor = static_cast<size_t>(
      std::upper_bound(state.offsets.begin(), state.offsets.end(), offset) -
      state.offsets.begin());
}

}  // namespace corfu
