// CorfuCluster: an in-process CORFU deployment for tests, benches and
// examples.
//
// Stands in for the paper's testbed (e.g. 18 storage nodes in a 9x2
// configuration plus a dedicated sequencer).  All services are registered on
// one Transport; clients created with MakeClient() speak the full protocol
// to them.

#ifndef SRC_CORFU_CLUSTER_H_
#define SRC_CORFU_CLUSTER_H_

#include <memory>
#include <mutex>
#include <vector>

#include "src/corfu/health.h"
#include "src/corfu/log_client.h"
#include "src/corfu/projection.h"
#include "src/corfu/sequencer.h"
#include "src/corfu/storage_node.h"
#include "src/net/transport.h"
#include "src/util/status.h"

namespace corfu {

class CorfuCluster {
 public:
  struct Options {
    // Total storage nodes and chain length; nodes/replication = replica sets.
    // The paper's default deployment is 18 nodes in a 9x2 configuration.
    int num_storage_nodes = 18;
    int replication_factor = 2;
    uint32_t page_size = 4096;
    uint32_t backpointer_count = kDefaultBackpointerCount;
    StorageNode::Options storage;
    // When non-empty, each storage node journals to
    // <journal_dir>/node-<id>.journal and reloads it on construction, so the
    // whole log survives a full cluster restart.
    std::string journal_dir;
    // When non-empty, each storage node runs on the durable segment store
    // rooted at <data_dir>/node-<id> (and journal_dir is ignored).  Tuning
    // knobs (fsync_batch, segment_bytes, ...) come from `storage`.
    std::string data_dir;
    // Node-id layout (storage nodes occupy [base, base+n)).
    tango::NodeId storage_base = 100;
    tango::NodeId sequencer_node = 10;
    tango::NodeId projection_store_node = 11;
    // Admission-control policy for the sequencer (and any replacement
    // spawned by failover).  Defaults to off.
    SequencerAdmission admission;
  };

  CorfuCluster(tango::Transport* transport, Options options);
  ~CorfuCluster();

  CorfuCluster(const CorfuCluster&) = delete;
  CorfuCluster& operator=(const CorfuCluster&) = delete;

  std::unique_ptr<CorfuClient> MakeClient(
      CorfuClient::Options options = CorfuClient::Options{}) const;

  // Simulates a sequencer crash (drops its RPC registration) and installs a
  // replacement at a fresh node id via reconfiguration, driven by `client`.
  tango::Status ReplaceSequencer(CorfuClient* client);

  // Spawns an empty storage node at `node` (for ReplaceStorageNode tests and
  // capacity expansion).  The node serves RPCs but carries no data until a
  // reconfiguration copies a chain onto it.
  void SpawnStorageNode(tango::NodeId node);

  // Spawns an empty storage node at a fresh id (storage_base + 10000 up) and
  // returns it — the cluster-side SpareProvider for HealthMonitor.
  tango::NodeId SpawnSpareStorageNode();

  // Spawns a fresh epoch-0 sequencer at a new id and returns it.  The old
  // Sequencer object stays alive (its registration may already be killed on
  // the transport); the replacement takes over once a reconfiguration
  // bootstraps it.
  tango::NodeId SpawnReplacementSequencer();

  // Creates, wires (spare + sequencer providers) and starts a HealthMonitor
  // for this cluster.  The monitor is owned by the cluster and stopped in
  // its destructor.  Returns the monitor for test introspection.
  HealthMonitor* StartHealthMonitor(
      HealthMonitor::Options options = HealthMonitor::Options{});
  HealthMonitor* health_monitor() const { return monitor_.get(); }

  tango::Transport* transport() const { return transport_; }
  tango::NodeId projection_store_node() const {
    return options_.projection_store_node;
  }
  Sequencer* sequencer() const { return sequencer_.get(); }
  const std::vector<std::unique_ptr<StorageNode>>& storage_nodes() const {
    return storage_nodes_;
  }
  const Options& options() const { return options_; }

 private:
  // Per-node storage options: shared tuning plus the node's journal path or
  // segment-store directory.
  StorageNode::Options NodeStorageOptions(tango::NodeId node) const;

  tango::Transport* transport_;
  Options options_;
  // Guards node spawns: the HealthMonitor's thread spawns spares and
  // replacement sequencers concurrently with test-driven spawns.
  std::mutex spawn_mu_;
  std::vector<std::unique_ptr<StorageNode>> storage_nodes_;
  std::unique_ptr<Sequencer> sequencer_;
  // Replacement sequencers spawned for failover; the superseded objects stay
  // alive so stale registrations never dangle.
  std::vector<std::unique_ptr<Sequencer>> replacement_sequencers_;
  std::unique_ptr<ProjectionStore> projection_store_;
  tango::NodeId next_sequencer_node_;
  tango::NodeId next_spare_node_;
  // Declared last so it is destroyed first: the monitor's thread probes the
  // services owned above.
  std::unique_ptr<HealthMonitor> monitor_;
};

}  // namespace corfu

#endif  // SRC_CORFU_CLUSTER_H_
