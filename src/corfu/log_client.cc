#include "src/corfu/log_client.h"

#include "src/obs/slo.h"
#include "src/obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "src/util/logging.h"
#include "src/util/threading.h"

namespace corfu {

using tango::ByteReader;
using tango::ByteWriter;
using tango::NodeId;
using tango::Result;
using tango::Status;
using tango::StatusCode;

namespace {

Status StorageWrite(tango::Transport* t, NodeId node, Epoch epoch,
                    LogOffset local, const std::vector<uint8_t>& bytes) {
  ByteWriter w(16 + bytes.size());
  w.PutU32(epoch);
  w.PutU64(local);
  w.PutBlob(bytes);
  return t->Call(node, kStorageWrite, w.bytes(), nullptr);
}

Result<std::vector<uint8_t>> StorageRead(tango::Transport* t, NodeId node,
                                         Epoch epoch, LogOffset local) {
  ByteWriter w(12);
  w.PutU32(epoch);
  w.PutU64(local);
  std::vector<uint8_t> resp;
  Status st = t->Call(node, kStorageRead, w.bytes(), &resp);
  if (!st.ok()) {
    return st;
  }
  ByteReader r(resp);
  std::vector<uint8_t> page = r.GetBlob();
  if (!r.ok()) {
    return Status(StatusCode::kInternal, "malformed read response");
  }
  return page;
}

}  // namespace

namespace {

tango::RetryPolicy MakeRetryPolicy(const CorfuClient::Options& options) {
  tango::RetryPolicy::Options retry = options.retry;
  retry.max_attempts = options.max_epoch_retries;
  return tango::RetryPolicy(retry);
}

// Process-unique client identity for the sequencer's per-client quotas;
// the pid high bits keep ids distinct across processes sharing a sequencer.
uint64_t NextClientId() {
  static std::atomic<uint64_t> next{1};
  return (static_cast<uint64_t>(::getpid()) << 40) |
         next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

CorfuClient::CorfuClient(tango::Transport* transport, NodeId projection_store,
                         Options options)
    : transport_(transport),
      projection_store_(projection_store),
      options_(options),
      retry_(MakeRetryPolicy(options)),
      client_id_(NextClientId()) {
  if (options_.enable_circuit_breaker) {
    tango::CircuitBreakerTransport::Options b = options_.breaker;
    if (!b.bypass) {
      b.bypass = [](uint16_t method) { return IsControlPlaneRpc(method); };
    }
    breaker_ = std::make_unique<tango::CircuitBreakerTransport>(transport, b);
    transport_ = breaker_.get();
  }
  auto& reg = tango::obs::MetricsRegistry::Default();
  appends_ = reg.GetCounter("log.appends");
  append_retries_ = reg.GetCounter("log.append_retries");
  fills_ = reg.GetCounter("log.fills");
  epoch_refreshes_ = reg.GetCounter("log.epoch_refreshes");
  hole_timeouts_ = reg.GetCounter("log.hole_timeouts");
  busy_backoffs_ = reg.GetCounter("overload.client.busy_backoffs");
  append_latency_ = reg.GetHistogram("log.append.latency_us");
  Status st = RefreshProjection();
  TANGO_CHECK(st.ok()) << "initial projection fetch failed: " << st.ToString();
}

CorfuClient::~CorfuClient() { pipeline_.reset(); }

AppendPipeline& CorfuClient::pipeline() {
  std::call_once(pipeline_once_, [&] {
    pipeline_ = std::make_unique<AppendPipeline>(this, options_.pipeline);
  });
  return *pipeline_;
}

AppendPipeline::Handle CorfuClient::AppendAsync(
    std::span<const uint8_t> payload, std::vector<StreamId> streams,
    AppendPipeline::Completion completion) {
  return pipeline().Submit(payload, std::move(streams), std::move(completion));
}

Projection CorfuClient::Snapshot() const {
  std::shared_lock<std::shared_mutex> lock(projection_mu_);
  return projection_;
}

Projection CorfuClient::projection() const { return Snapshot(); }

Status CorfuClient::RefreshProjection() {
  Result<Projection> p = FetchProjection(transport_, projection_store_);
  if (!p.ok()) {
    return p.status();
  }
  std::unique_lock<std::shared_mutex> lock(projection_mu_);
  if (p->epoch >= projection_.epoch) {
    projection_ = std::move(p).value();
  }
  return Status::Ok();
}

Status CorfuClient::WithEpochRetry(
    const std::function<Status(const Projection&)>& op) {
  // kSealedEpoch means our projection is stale; kUnavailable may mean the
  // node we are calling was replaced by a reconfiguration we have not seen
  // yet.  Both refresh and retry with backoff.  kBusy means the node is
  // alive but shedding load: no refresh, just the hinted cooperative pause.
  auto retryable = [](const Status& st) {
    return st == StatusCode::kSealedEpoch || st == StatusCode::kUnavailable ||
           st == StatusCode::kTimeout || st == StatusCode::kBusy;
  };
  tango::RetryPolicy::Attempt attempt = retry_.Begin();
  Status st = op(Snapshot());
  while (retryable(st) && attempt.ShouldRetry()) {
    if (st == StatusCode::kBusy) {
      busy_backoffs_->Add();
      attempt.BackoffSleep(st.retry_after_us());
    } else {
      epoch_refreshes_->Add();
      TANGO_RETURN_IF_ERROR(RefreshProjection());
    }
    st = op(Snapshot());
    if (retryable(st) && st != StatusCode::kBusy) {
      // A reconfiguration is mid-flight (sealed but not yet proposed); back
      // off — with jitter, so the retrying herd does not stampede the
      // projection store in lockstep — and let it land.
      attempt.BackoffSleep();
    }
  }
  return st;
}

Status CorfuClient::ChainWrite(const Projection& p, LogOffset offset,
                               const std::vector<uint8_t>& bytes) {
  const std::vector<NodeId>& chain = p.ChainFor(offset);
  LogOffset local = p.LocalOffsetFor(offset);

  // Write the head first; it decides who owns the offset.
  Status head = StorageWrite(transport_, chain[0], p.epoch, local, bytes);
  if (!head.ok() && head != StatusCode::kWritten) {
    return head;
  }

  const std::vector<uint8_t>* value = &bytes;
  std::vector<uint8_t> winner;
  if (head == StatusCode::kWritten) {
    // Someone else owns this offset.  Complete the chain with *their* value
    // so the tail converges, then report the loss.
    Result<std::vector<uint8_t>> existing =
        StorageRead(transport_, chain[0], p.epoch, local);
    if (!existing.ok()) {
      return existing.status();
    }
    winner = std::move(existing).value();
    value = &winner;
  }

  for (size_t i = 1; i < chain.size(); ++i) {
    Status st = StorageWrite(transport_, chain[i], p.epoch, local, *value);
    if (!st.ok() && st != StatusCode::kWritten) {
      return st;
    }
  }
  return head;  // OK if we won, kWritten if we lost
}

Result<std::vector<uint8_t>> CorfuClient::ChainRead(const Projection& p,
                                                    LogOffset offset) {
  const std::vector<NodeId>& chain = p.ChainFor(offset);
  LogOffset local = p.LocalOffsetFor(offset);
  return StorageRead(transport_, chain.back(), p.epoch, local);
}

Result<LogOffset> CorfuClient::Append(std::span<const uint8_t> payload) {
  return AppendToStreams(payload, {});
}

Result<LogOffset> CorfuClient::AppendToStreams(
    std::span<const uint8_t> payload, const std::vector<StreamId>& streams) {
  tango::obs::TraceScope span("log.append");
  uint64_t start_us = tango::obs::MetricsEnabled() ? tango::NowMicros() : 0;
  tango::RetryPolicy::Attempt attempt = retry_.Begin();
  for (bool first = true;; first = false) {
    if (!first) {
      if (!attempt.ShouldRetry()) {
        break;
      }
      append_retries_->Add();
    }
    Projection p = Snapshot();
    Result<SequencerGrant> grant = SequencerNext(
        transport_, p.sequencer, p.epoch, /*count=*/1, streams, client_id_);
    if (!grant.ok()) {
      if (grant.status() == StatusCode::kBusy) {
        // The sequencer shed the grant: it is alive, just overloaded.  Honor
        // its retry-after hint (jittered) instead of refreshing anything.
        busy_backoffs_->Add();
        attempt.BackoffSleep(grant.status().retry_after_us());
        continue;
      }
      if (grant.status() == StatusCode::kSealedEpoch ||
          grant.status() == StatusCode::kUnavailable ||
          grant.status() == StatusCode::kTimeout) {
        // Sealed, or the sequencer died: refresh and retry on the (possibly
        // reconfigured) projection after a jittered backoff.
        TANGO_RETURN_IF_ERROR(RefreshProjection());
        attempt.BackoffSleep();
        continue;
      }
      return grant.status();
    }

    LogEntry entry;
    entry.epoch = p.epoch;
    entry.type = EntryType::kData;
    entry.headers.reserve(streams.size());
    for (size_t i = 0; i < streams.size(); ++i) {
      StreamHeader h;
      h.stream = streams[i];
      h.backpointers = grant->backpointers()[i];
      while (h.backpointers.size() < p.backpointer_count) {
        h.backpointers.push_back(kInvalidOffset);
      }
      entry.headers.push_back(std::move(h));
    }
    entry.payload.assign(payload.begin(), payload.end());

    Result<std::vector<uint8_t>> encoded = EncodeEntry(entry, grant->start);
    if (!encoded.ok()) {
      return encoded.status();
    }
    if (encoded->size() > p.page_size) {
      return Status(StatusCode::kOutOfRange, "entry exceeds page size");
    }

    Status st = ChainWrite(p, grant->start, *encoded);
    while (st == StatusCode::kBusy && attempt.ShouldRetry()) {
      // Storage shed the write.  Keep the granted token — abandoning it
      // would leave a hole per shed — and retry the same offset after the
      // hinted pause.
      busy_backoffs_->Add();
      append_retries_->Add();
      attempt.BackoffSleep(st.retry_after_us());
      st = ChainWrite(p, grant->start, *encoded);
    }
    if (st.ok()) {
      appends_->Add();
      if (start_us != 0) {
        uint64_t latency_us = tango::NowMicros() - start_us;
        append_latency_->Record(latency_us);
        tango::obs::SloTracker::Default().Record(tango::obs::SloOp::kAppend,
                                                 latency_us);
      }
      return grant->start;
    }
    if (st == StatusCode::kWritten || st == StatusCode::kTrimmed) {
      // Lost the offset (a filler beat us after a stall, or GC passed us by).
      // Grab a fresh offset and try again immediately — no cool-down needed,
      // just a fresh token.
      attempt.CountAttempt();
      continue;
    }
    if (st == StatusCode::kSealedEpoch) {
      TANGO_RETURN_IF_ERROR(RefreshProjection());
      continue;
    }
    if (st == StatusCode::kUnavailable || st == StatusCode::kTimeout) {
      // A chain node died (or a partition swallowed the write): refresh —
      // a HealthMonitor may already have reconfigured around it — back off
      // and retry on the surviving chain.
      TANGO_RETURN_IF_ERROR(RefreshProjection());
      attempt.BackoffSleep();
      continue;
    }
    return st;
  }
  return Status(StatusCode::kTimeout, "append retries exhausted");
}

Result<LogEntry> CorfuClient::Read(LogOffset offset) {
  tango::obs::TraceScope span("log.read");
  uint64_t start_us = tango::obs::MetricsEnabled() ? tango::NowMicros() : 0;
  std::vector<uint8_t> page;
  Status st = WithEpochRetry([&](const Projection& p) {
    Result<std::vector<uint8_t>> r = ChainRead(p, offset);
    if (r.ok()) {
      page = std::move(r).value();
    }
    return r.status();
  });
  if (!st.ok()) {
    return st;
  }
  if (start_us != 0) {
    tango::obs::SloTracker::Default().Record(
        tango::obs::SloOp::kRead, tango::NowMicros() - start_us);
  }
  return DecodeEntry(page, offset);
}

Result<std::vector<CorfuClient::BatchedRead>> CorfuClient::ReadBatch(
    std::span<const LogOffset> offsets) {
  tango::obs::TraceScope span("log.read_batch");
  uint64_t start_us = tango::obs::MetricsEnabled() ? tango::NowMicros() : 0;
  std::vector<BatchedRead> out(offsets.size());
  if (offsets.empty()) {
    return out;
  }
  // Indices into `offsets` still awaiting a result.  A sealed or unreachable
  // sub-batch re-queues only its own indices for the next attempt.
  std::vector<size_t> pending(offsets.size());
  for (size_t i = 0; i < pending.size(); ++i) {
    pending[i] = i;
  }
  Status last_retryable = Status::Ok();
  tango::RetryPolicy::Attempt attempt = retry_.Begin();
  for (bool first = true;; first = false) {
    if (!first) {
      if (!attempt.ShouldRetry()) {
        break;
      }
      TANGO_RETURN_IF_ERROR(RefreshProjection());
      attempt.BackoffSleep();
    }
    Projection p = Snapshot();

    // Group the pending offsets per replica set; each group is one RPC to
    // that chain's tail.
    std::vector<std::vector<size_t>> groups(p.replica_sets.size());
    for (size_t idx : pending) {
      groups[p.SetIndexFor(offsets[idx])].push_back(idx);
    }
    std::vector<const std::vector<size_t>*> live;
    for (const std::vector<size_t>& g : groups) {
      if (!g.empty()) {
        live.push_back(&g);
      }
    }

    std::vector<Status> rpc_status(live.size());
    std::vector<std::vector<uint8_t>> rpc_resp(live.size());
    ParallelDispatch(tango::ThreadPool::Shared(), live.size(), [&](size_t g) {
      const std::vector<size_t>& group = *live[g];
      ByteWriter w(8 + 8 * group.size());
      w.PutU32(p.epoch);
      w.PutU32(static_cast<uint32_t>(group.size()));
      for (size_t idx : group) {
        w.PutU64(p.LocalOffsetFor(offsets[idx]));
      }
      const std::vector<NodeId>& chain = p.ChainFor(offsets[group[0]]);
      rpc_status[g] = transport_->Call(chain.back(), kStorageReadBatch,
                                       w.bytes(), &rpc_resp[g]);
    });

    pending.clear();
    for (size_t g = 0; g < live.size(); ++g) {
      const std::vector<size_t>& group = *live[g];
      const Status& st = rpc_status[g];
      if (st == StatusCode::kSealedEpoch || st == StatusCode::kUnavailable ||
          st == StatusCode::kTimeout || st == StatusCode::kBusy) {
        last_retryable = st;
        pending.insert(pending.end(), group.begin(), group.end());
        continue;
      }
      if (!st.ok()) {
        return st;  // hard error: malformed request, internal fault, ...
      }
      ByteReader r(rpc_resp[g]);
      uint32_t count = r.GetU32();
      if (!r.ok() || count != group.size()) {
        return Status(StatusCode::kInternal, "malformed batch read response");
      }
      for (size_t idx : group) {
        StatusCode code = static_cast<StatusCode>(r.GetU8());
        if (code != StatusCode::kOk) {
          out[idx].status = Status(code);
          continue;
        }
        std::vector<uint8_t> page = r.GetBlob();
        if (!r.ok()) {
          return Status(StatusCode::kInternal,
                        "malformed batch read response");
        }
        Result<LogEntry> entry = DecodeEntry(page, offsets[idx]);
        if (entry.ok()) {
          out[idx].status = Status::Ok();
          out[idx].entry = std::move(entry).value();
        } else {
          out[idx].status = entry.status();
        }
      }
    }
    if (pending.empty()) {
      if (start_us != 0) {
        // One SLO sample per batch: a batched read is one user-visible
        // operation regardless of how many offsets it covers.
        tango::obs::SloTracker::Default().Record(
            tango::obs::SloOp::kRead, tango::NowMicros() - start_us);
      }
      return out;
    }
  }
  return last_retryable.ok()
             ? Status(StatusCode::kTimeout, "read batch retries exhausted")
             : last_retryable;
}

Result<LogEntry> CorfuClient::ReadRepair(LogOffset offset) {
  Result<LogEntry> entry = Read(offset);
  if (entry.ok() || entry.status() != StatusCode::kUnwritten) {
    return entry;
  }
  // Wait for a straggling writer, then declare a hole and fill it.
  uint64_t deadline = tango::NowMicros() +
                      static_cast<uint64_t>(options_.hole_timeout_ms) * 1000;
  while (tango::NowMicros() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    entry = Read(offset);
    if (entry.ok() || entry.status() != StatusCode::kUnwritten) {
      return entry;
    }
  }
  hole_timeouts_->Add();
  TANGO_RETURN_IF_ERROR(Fill(offset));
  return Read(offset);
}

Result<LogOffset> CorfuClient::CheckTail() {
  LogOffset tail = 0;
  Status st = WithEpochRetry([&](const Projection& p) -> Status {
    Result<SequencerTailInfo> info =
        SequencerTail(transport_, p.sequencer, p.epoch, {});
    if (!info.ok()) {
      return info.status();
    }
    tail = info->tail;
    return Status::Ok();
  });
  if (!st.ok()) {
    return st;
  }
  return tail;
}

Result<LogOffset> CorfuClient::CheckTailSlow() {
  Projection p = Snapshot();
  LogOffset tail = 0;
  for (size_t set = 0; set < p.replica_sets.size(); ++set) {
    const std::vector<NodeId>& chain = p.replica_sets[set];
    ByteWriter w(4);
    w.PutU32(p.epoch);
    std::vector<uint8_t> resp;
    Status st =
        transport_->Call(chain.back(), kStorageLocalTail, w.bytes(), &resp);
    if (!st.ok()) {
      return st;
    }
    ByteReader r(resp);
    LogOffset local_tail = r.GetU64();
    if (local_tail > 0) {
      tail = std::max(tail, p.GlobalOffsetFor(set, local_tail - 1) + 1);
    }
  }
  return tail;
}

Status CorfuClient::Trim(LogOffset offset) {
  return WithEpochRetry([&](const Projection& p) -> Status {
    const std::vector<NodeId>& chain = p.ChainFor(offset);
    LogOffset local = p.LocalOffsetFor(offset);
    ByteWriter w(12);
    w.PutU32(p.epoch);
    w.PutU64(local);
    for (NodeId node : chain) {
      TANGO_RETURN_IF_ERROR(
          transport_->Call(node, kStorageTrim, w.bytes(), nullptr));
    }
    return Status::Ok();
  });
}

Status CorfuClient::TrimPrefix(LogOffset limit) {
  return WithEpochRetry([&](const Projection& p) -> Status {
    size_t num_sets = p.replica_sets.size();
    for (size_t set = 0; set < num_sets; ++set) {
      // Local offsets below this limit map to global offsets < limit.
      LogOffset local_limit =
          limit > set ? (limit - set + num_sets - 1) / num_sets : 0;
      ByteWriter w(12);
      w.PutU32(p.epoch);
      w.PutU64(local_limit);
      for (NodeId node : p.replica_sets[set]) {
        TANGO_RETURN_IF_ERROR(
            transport_->Call(node, kStorageTrimPrefix, w.bytes(), nullptr));
      }
    }
    return Status::Ok();
  });
}

Status CorfuClient::Fill(LogOffset offset) {
  fills_->Add();
  return WithEpochRetry([&](const Projection& p) -> Status {
    std::vector<uint8_t> junk = EncodeJunkEntry(p.epoch);
    Status st = ChainWrite(p, offset, junk);
    if (st == StatusCode::kWritten) {
      return Status::Ok();  // a real value won; hole resolved either way
    }
    return st;
  });
}

Result<SequencerTailInfo> CorfuClient::StreamTails(
    const std::vector<StreamId>& streams) {
  SequencerTailInfo out;
  Status st = WithEpochRetry([&](const Projection& p) -> Status {
    Result<SequencerTailInfo> info =
        SequencerTail(transport_, p.sequencer, p.epoch, streams);
    if (!info.ok()) {
      return info.status();
    }
    out = std::move(info).value();
    return Status::Ok();
  });
  if (!st.ok()) {
    return st;
  }
  return out;
}

Result<std::unordered_map<StreamId, StreamTail>>
CorfuClient::RebuildSequencerState(uint64_t max_entries) {
  Result<LogOffset> tail = CheckTailSlow();
  if (!tail.ok()) {
    return tail.status();
  }
  Projection p = Snapshot();
  std::unordered_map<StreamId, StreamTail> state;
  uint64_t scanned = 0;
  for (LogOffset o = *tail; o > 0 && scanned < max_entries; --o, ++scanned) {
    Result<LogEntry> entry = Read(o - 1);
    if (!entry.ok()) {
      if (entry.status() == StatusCode::kTrimmed) {
        break;  // everything below is gone
      }
      continue;  // unwritten hole mid-log: skip
    }
    for (const StreamHeader& h : entry->headers) {
      StreamTail& t = state[h.stream];
      if (t.size() < p.backpointer_count) {
        t.push_back(o - 1);  // backward scan yields most-recent-first order
      }
    }
    if (entry->FindHeader(kSequencerStateStream) != nullptr) {
      // A sequencer checkpoint: everything older is summarized here, so the
      // scan stops.  Offsets collected above (newer) take precedence; the
      // checkpoint backfills each stream's list up to K.
      ByteReader r(entry->payload);
      Result<Sequencer::DumpedState> dump = DecodeSequencerState(r);
      if (dump.ok()) {
        for (auto& [stream, offsets] : dump->streams) {
          StreamTail& t = state[stream];
          for (LogOffset older : offsets) {
            if (t.size() >= p.backpointer_count) {
              break;
            }
            if (t.empty() || older < t.back()) {
              t.push_back(older);
            }
          }
        }
        break;
      }
    }
  }
  return state;
}

Result<LogOffset> CorfuClient::WriteSequencerCheckpoint() {
  Projection p = Snapshot();
  Result<Sequencer::DumpedState> dump =
      SequencerDump(transport_, p.sequencer, p.epoch);
  if (!dump.ok()) {
    return dump.status();
  }
  ByteWriter w;
  EncodeSequencerState(dump->tail, dump->streams, w);
  return AppendToStreams(w.bytes(), {kSequencerStateStream});
}

Status Reconfigure(CorfuClient* client,
                   const std::function<void(Projection&)>& mutate,
                   uint64_t rebuild_scan_limit) {
  // Rebuild stream state from the log *before* sealing (reads still work
  // either way, but this keeps the sealed window short).  A kSealedEpoch
  // here means the storage is sealed above our (stale or reset) projection
  // epoch — tolerate it and redo the rebuild once the new projection is
  // installed and our reads carry a current epoch.
  Result<std::unordered_map<StreamId, StreamTail>> state =
      client->RebuildSequencerState(rebuild_scan_limit);
  if (!state.ok() &&
      state.status().code() != tango::StatusCode::kSealedEpoch) {
    return state.status();
  }

  Projection current = client->projection();
  Projection next = current;
  mutate(next);
  next.epoch = current.epoch + 1;

  // A durable store's seal records outlive an in-memory projection store:
  // after a daemon restart the nodes may already be sealed above the epoch
  // this client believes is current.  Discover the highest sealed epoch so
  // the new epoch fences it; nodes that cannot answer are left to the seal
  // round below, which reports the real failure.
  for (size_t set = 0; set < next.replica_sets.size(); ++set) {
    for (tango::NodeId node : next.replica_sets[set]) {
      std::vector<uint8_t> resp;
      Status st = client->transport()->Call(node, kStorageSealedEpoch, {},
                                            &resp);
      if (!st.ok()) {
        continue;
      }
      ByteReader r(resp);
      Epoch sealed = r.GetU32();
      if (sealed >= next.epoch) {
        next.epoch = sealed + 1;
      }
    }
  }

  // Seal every storage node at the new epoch, collecting tails.
  LogOffset tail = 0;
  for (size_t set = 0; set < next.replica_sets.size(); ++set) {
    for (tango::NodeId node : next.replica_sets[set]) {
      ByteWriter w(4);
      w.PutU32(next.epoch);
      std::vector<uint8_t> resp;
      Status st =
          client->transport()->Call(node, kStorageSeal, w.bytes(), &resp);
      if (!st.ok()) {
        return st;
      }
      ByteReader r(resp);
      LogOffset local_tail = r.GetU64();
      if (local_tail > 0) {
        tail = std::max(tail, next.GlobalOffsetFor(set, local_tail - 1) + 1);
      }
    }
  }

  // Install the new projection; if we lose the race, adopt the winner and
  // report the conflict to the caller.
  Status proposed =
      ProposeProjection(client->transport(), client->projection_store(), next);
  if (!proposed.ok()) {
    (void)client->RefreshProjection();
    return proposed;
  }

  // Redo a rebuild that was fenced by a pre-existing seal, now that the
  // installed projection gives our reads the sealed epoch.
  TANGO_RETURN_IF_ERROR(client->RefreshProjection());
  if (!state.ok()) {
    state = client->RebuildSequencerState(rebuild_scan_limit);
    if (!state.ok()) {
      return state.status();
    }
  }

  // Bring the (possibly new) sequencer up to speed: sealed tail plus the
  // backpointer state recovered from the log.
  return SequencerBootstrap(client->transport(), next.sequencer, next.epoch,
                            tail, *state);
}

Status ReplaceStorageNode(CorfuClient* client, tango::NodeId failed,
                          tango::NodeId replacement) {
  Projection current = client->projection();
  size_t set_index = current.replica_sets.size();
  size_t chain_pos = 0;
  for (size_t s = 0; s < current.replica_sets.size(); ++s) {
    for (size_t r = 0; r < current.replica_sets[s].size(); ++r) {
      if (current.replica_sets[s][r] == failed) {
        set_index = s;
        chain_pos = r;
      }
    }
  }
  if (set_index == current.replica_sets.size()) {
    return Status(StatusCode::kNotFound, "node not in any chain");
  }

  // Copy the chain's surviving pages onto the replacement.  Prefer the head
  // as the source: it holds a superset of every replica below it.
  tango::NodeId source = tango::kInvalidNodeId;
  for (tango::NodeId node : current.replica_sets[set_index]) {
    if (node != failed) {
      source = node;
      break;
    }
  }
  if (source == tango::kInvalidNodeId) {
    return Status(StatusCode::kFailedPrecondition, "no surviving replica");
  }

  ByteWriter tail_req(4);
  tail_req.PutU32(current.epoch);
  std::vector<uint8_t> tail_resp;
  TANGO_RETURN_IF_ERROR(client->transport()->Call(source, kStorageLocalTail,
                                                  tail_req.bytes(),
                                                  &tail_resp));
  ByteReader tail_reader(tail_resp);
  LogOffset local_tail = tail_reader.GetU64();

  for (LogOffset local = 0; local < local_tail; ++local) {
    ByteWriter read_req(12);
    read_req.PutU32(current.epoch);
    read_req.PutU64(local);
    std::vector<uint8_t> page_resp;
    Status read = client->transport()->Call(source, kStorageRead,
                                            read_req.bytes(), &page_resp);
    if (read == StatusCode::kUnwritten || read == StatusCode::kTrimmed) {
      continue;  // holes stay holes; trimmed pages stay reclaimed
    }
    if (!read.ok()) {
      return read;
    }
    ByteReader page_reader(page_resp);
    std::vector<uint8_t> page = page_reader.GetBlob();
    ByteWriter write_req(16 + page.size());
    write_req.PutU32(current.epoch);
    write_req.PutU64(local);
    write_req.PutBlob(page);
    Status written = client->transport()->Call(replacement, kStorageWrite,
                                               write_req.bytes(), nullptr);
    if (!written.ok() && written != StatusCode::kWritten) {
      return written;
    }
  }

  // Swap the nodes, seal the new membership at epoch+1, and propose.  The
  // failed node is not sealed (it is presumed dead); the fencing that
  // matters is on the survivors and the replacement.
  Projection next = current;
  next.epoch = current.epoch + 1;
  next.replica_sets[set_index][chain_pos] = replacement;
  LogOffset tail = 0;
  for (size_t s = 0; s < next.replica_sets.size(); ++s) {
    for (tango::NodeId node : next.replica_sets[s]) {
      ByteWriter seal_req(4);
      seal_req.PutU32(next.epoch);
      std::vector<uint8_t> seal_resp;
      Status sealed =
          client->transport()->Call(node, kStorageSeal, seal_req.bytes(),
                                    &seal_resp);
      if (!sealed.ok()) {
        return sealed;
      }
      ByteReader seal_reader(seal_resp);
      LogOffset node_tail = seal_reader.GetU64();
      if (node_tail > 0) {
        tail = std::max(tail, next.GlobalOffsetFor(s, node_tail - 1) + 1);
      }
    }
  }

  Status proposed =
      ProposeProjection(client->transport(), client->projection_store(), next);
  if (!proposed.ok()) {
    (void)client->RefreshProjection();
    return proposed;
  }
  // The sequencer keeps its soft state; it only needs the new epoch.
  TANGO_RETURN_IF_ERROR(SequencerBootstrap(client->transport(), next.sequencer,
                                           next.epoch, tail, {}));
  return client->RefreshProjection();
}

}  // namespace corfu
