// Projection: the membership view of a CORFU deployment (§5, "Failure
// Handling").
//
// A projection names the replica sets of storage nodes, the page size, the
// backpointer redundancy K, and — unlike baseline CORFU — the sequencer as a
// first-class member, so that replacing a failed sequencer is an epoch
// change like any other reconfiguration.  Projections are stored in a
// ProjectionStore service with compare-and-swap semantics (standing in for
// the auxiliary/Paxos box of the original protocol).

#ifndef SRC_CORFU_PROJECTION_H_
#define SRC_CORFU_PROJECTION_H_

#include <cstdint>
#include <vector>

#include "src/corfu/types.h"
#include "src/net/transport.h"
#include "src/util/logging.h"
#include "src/util/serialize.h"
#include "src/util/status.h"

namespace corfu {

struct Projection {
  Epoch epoch = 0;
  uint32_t page_size = 4096;
  uint32_t backpointer_count = kDefaultBackpointerCount;
  tango::NodeId sequencer = tango::kInvalidNodeId;
  // replica_sets[i] is the chain (head..tail) for extent i.
  std::vector<std::vector<tango::NodeId>> replica_sets;

  // A projection is usable only when it names at least one replica set and a
  // nonzero page size.  Decode() enforces this for anything off the wire; a
  // hand-built projection must pass it before the striping math below, which
  // would otherwise divide by zero.
  bool Valid() const { return !replica_sets.empty() && page_size != 0; }

  // Deterministic mapping from the global address space to replica sets:
  // offset o lives on set (o mod S) at local offset (o div S).
  size_t SetIndexFor(LogOffset offset) const {
    TANGO_CHECK(!replica_sets.empty())
        << "projection has no replica sets (epoch " << epoch << ")";
    return static_cast<size_t>(offset % replica_sets.size());
  }
  LogOffset LocalOffsetFor(LogOffset offset) const {
    TANGO_CHECK(!replica_sets.empty())
        << "projection has no replica sets (epoch " << epoch << ")";
    return offset / replica_sets.size();
  }
  // Inverse: the global offset for local offset `local` on set `set`.
  LogOffset GlobalOffsetFor(size_t set, LogOffset local) const {
    TANGO_CHECK(!replica_sets.empty())
        << "projection has no replica sets (epoch " << epoch << ")";
    return local * replica_sets.size() + static_cast<LogOffset>(set);
  }

  const std::vector<tango::NodeId>& ChainFor(LogOffset offset) const {
    return replica_sets[SetIndexFor(offset)];
  }

  void Encode(tango::ByteWriter& w) const;
  static tango::Result<Projection> Decode(tango::ByteReader& r);
};

// In-memory CAS store for projections, exposed as an RPC service.
class ProjectionStore {
 public:
  // Installs the service for `node` on `transport` with `initial` at epoch 0.
  ProjectionStore(tango::Transport* transport, tango::NodeId node,
                  Projection initial);
  ~ProjectionStore();

  ProjectionStore(const ProjectionStore&) = delete;
  ProjectionStore& operator=(const ProjectionStore&) = delete;

  tango::NodeId node() const { return node_; }

 private:
  tango::Status HandleGet(tango::ByteReader& req, tango::ByteWriter& resp);
  tango::Status HandlePropose(tango::ByteReader& req, tango::ByteWriter& resp);

  tango::Transport* transport_;
  tango::NodeId node_;
  std::mutex mu_;
  Projection current_;
  tango::RpcDispatcher dispatcher_;
};

// Client-side accessors for the store.
tango::Result<Projection> FetchProjection(tango::Transport* transport,
                                          tango::NodeId store);
// Proposes `next` (whose epoch must be strictly greater than the store's —
// usually current+1, but a reconfigurer may jump further after discovering
// higher durably-sealed epochs); fails with kFailedPrecondition if someone
// else reconfigured first.
tango::Status ProposeProjection(tango::Transport* transport,
                                tango::NodeId store, const Projection& next);

}  // namespace corfu

#endif  // SRC_CORFU_PROJECTION_H_
