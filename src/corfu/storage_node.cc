#include "src/corfu/storage_node.h"

#include <chrono>
#include <thread>

namespace corfu {

using tango::ByteReader;
using tango::ByteWriter;
using tango::NodeId;
using tango::Result;
using tango::Status;
using tango::StatusCode;

StorageNode::StorageNode(tango::Transport* transport, NodeId node,
                         Options options)
    : transport_(transport), node_(node), options_(options) {
  auto& reg = tango::obs::MetricsRegistry::Default();
  writes_ok_ = reg.GetCounter("storage.write.ok");
  writes_lost_ = reg.GetCounter("storage.write.lost_race");
  reads_ok_ = reg.GetCounter("storage.read.ok");
  reads_unwritten_ = reg.GetCounter("storage.read.unwritten");
  reads_trimmed_ = reg.GetCounter("storage.read.trimmed");
  seals_ = reg.GetCounter("storage.seals");
  trims_ = reg.GetCounter("storage.trims");
  batch_size_ = reg.GetHistogram("storage.read_batch.size");
  dispatcher_.Register(kStorageWrite, [this](ByteReader& q, ByteWriter& p) {
    return HandleWrite(q, p);
  });
  dispatcher_.Register(kStorageRead, [this](ByteReader& q, ByteWriter& p) {
    return HandleRead(q, p);
  });
  dispatcher_.Register(kStorageReadBatch,
                       [this](ByteReader& q, ByteWriter& p) {
                         return HandleReadBatch(q, p);
                       });
  dispatcher_.Register(kStorageSeal, [this](ByteReader& q, ByteWriter& p) {
    return HandleSeal(q, p);
  });
  dispatcher_.Register(kStorageTrim, [this](ByteReader& q, ByteWriter& p) {
    return HandleTrim(q, p);
  });
  dispatcher_.Register(kStorageTrimPrefix,
                       [this](ByteReader& q, ByteWriter& p) {
                         return HandleTrimPrefix(q, p);
                       });
  dispatcher_.Register(kStorageLocalTail,
                       [this](ByteReader& q, ByteWriter& p) {
                         return HandleLocalTail(q, p);
                       });
  if (!options_.journal_path.empty()) {
    JournalReplay();
    journal_ = std::fopen(options_.journal_path.c_str(), "ab");
  }
  transport_->RegisterNode(node_, dispatcher_.AsHandler());
}

StorageNode::~StorageNode() {
  transport_->UnregisterNode(node_);
  if (journal_ != nullptr) {
    std::fclose(journal_);
  }
}

bool StorageNode::JournalAppend(JournalOp op, Epoch epoch, LogOffset local,
                                const std::vector<uint8_t>* bytes) {
  if (journal_ == nullptr) {
    return true;
  }
  tango::ByteWriter w(32 + (bytes != nullptr ? bytes->size() : 0));
  w.PutU8(op);
  w.PutU32(epoch);
  w.PutU64(local);
  if (bytes != nullptr) {
    w.PutBlob(*bytes);
  } else {
    w.PutU32(0);
  }
  if (std::fwrite(w.bytes().data(), 1, w.size(), journal_) != w.size()) {
    return false;
  }
  return std::fflush(journal_) == 0;
}

void StorageNode::JournalReplay() {
  std::FILE* in = std::fopen(options_.journal_path.c_str(), "rb");
  if (in == nullptr) {
    return;  // fresh node
  }
  // Records are self-framing: fixed 13-byte header + u32-length payload.
  while (true) {
    uint8_t header[17];
    if (std::fread(header, 1, sizeof(header), in) != sizeof(header)) {
      break;  // EOF or torn tail record: stop replaying
    }
    tango::ByteReader r(header, sizeof(header));
    JournalOp op = static_cast<JournalOp>(r.GetU8());
    Epoch epoch = r.GetU32();
    LogOffset local = r.GetU64();
    uint32_t len = r.GetU32();
    std::vector<uint8_t> bytes(len);
    if (len > 0 && std::fread(bytes.data(), 1, len, in) != len) {
      break;
    }
    switch (op) {
      case kJournalWrite:
        pages_.emplace(local, std::move(bytes));
        if (local + 1 > local_tail_) {
          local_tail_ = local + 1;
        }
        break;
      case kJournalSeal:
        sealed_epoch_ = std::max(sealed_epoch_, epoch);
        break;
      case kJournalTrim:
        pages_.erase(local);
        trimmed_[local] = true;
        break;
      case kJournalTrimPrefix:
        for (LogOffset o = trim_prefix_; o < local; ++o) {
          pages_.erase(o);
          trimmed_.erase(o);
        }
        trim_prefix_ = std::max(trim_prefix_, local);
        break;
    }
  }
  std::fclose(in);
}

void StorageNode::SimulateMedia(uint32_t latency_us) {
  if (latency_us == 0) {
    return;
  }
  if (options_.serialize_media_access) {
    std::lock_guard<std::mutex> lock(media_mu_);
    std::this_thread::sleep_for(std::chrono::microseconds(latency_us));
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(latency_us));
  }
}

Status StorageNode::CheckEpoch(Epoch epoch) const {
  if (epoch < sealed_epoch_) {
    return Status(StatusCode::kSealedEpoch, "node sealed at higher epoch");
  }
  return Status::Ok();
}

Status StorageNode::WriteLocal(Epoch epoch, LogOffset local,
                               std::vector<uint8_t> bytes) {
  if (bytes.size() > options_.page_size) {
    return Status(StatusCode::kInvalidArgument, "entry exceeds page size");
  }
  SimulateMedia(options_.write_latency_us);
  std::lock_guard<std::mutex> lock(mu_);
  TANGO_RETURN_IF_ERROR(CheckEpoch(epoch));
  if (local < trim_prefix_ || trimmed_.contains(local)) {
    return Status(StatusCode::kTrimmed);
  }
  auto [it, inserted] = pages_.emplace(local, std::move(bytes));
  if (!inserted) {
    writes_lost_->Add();
    return Status(StatusCode::kWritten);
  }
  if (local + 1 > local_tail_) {
    local_tail_ = local + 1;
  }
  if (!JournalAppend(kJournalWrite, epoch, local, &it->second)) {
    return Status(StatusCode::kUnavailable, "journal write failed");
  }
  writes_ok_->Add();
  return Status::Ok();
}

Result<std::vector<uint8_t>> StorageNode::ReadLocal(Epoch epoch,
                                                    LogOffset local) {
  SimulateMedia(options_.read_latency_us);
  std::lock_guard<std::mutex> lock(mu_);
  TANGO_RETURN_IF_ERROR(CheckEpoch(epoch));
  if (local < trim_prefix_ || trimmed_.contains(local)) {
    reads_trimmed_->Add();
    return Status(StatusCode::kTrimmed);
  }
  auto it = pages_.find(local);
  if (it == pages_.end()) {
    reads_unwritten_->Add();
    return Status(StatusCode::kUnwritten);
  }
  reads_ok_->Add();
  return it->second;
}

Status StorageNode::ReadBatchLocal(
    Epoch epoch, const std::vector<LogOffset>& locals,
    std::vector<Result<std::vector<uint8_t>>>* pages) {
  // One media pass for the whole batch: the device still transfers every
  // page, but seek/setup cost and the RPC round trip are amortized.
  SimulateMedia(options_.read_latency_us *
                static_cast<uint32_t>(locals.size()));
  std::lock_guard<std::mutex> lock(mu_);
  TANGO_RETURN_IF_ERROR(CheckEpoch(epoch));
  batch_size_->Record(locals.size());
  pages->clear();
  pages->reserve(locals.size());
  // Tally locally and publish once per batch: per-slot atomic increments
  // would put ~one RMW per log entry on the batched read hot path.
  uint64_t ok = 0, unwritten = 0, trimmed = 0;
  for (LogOffset local : locals) {
    if (local < trim_prefix_ || trimmed_.contains(local)) {
      ++trimmed;
      pages->emplace_back(Status(StatusCode::kTrimmed));
      continue;
    }
    auto it = pages_.find(local);
    if (it == pages_.end()) {
      ++unwritten;
      pages->emplace_back(Status(StatusCode::kUnwritten));
      continue;
    }
    ++ok;
    pages->emplace_back(it->second);
  }
  if (trimmed > 0) {
    reads_trimmed_->Add(trimmed);
  }
  if (unwritten > 0) {
    reads_unwritten_->Add(unwritten);
  }
  if (ok > 0) {
    reads_ok_->Add(ok);
  }
  return Status::Ok();
}

Result<LogOffset> StorageNode::Seal(Epoch epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch <= sealed_epoch_) {
    return Status(StatusCode::kSealedEpoch, "seal epoch not newer");
  }
  sealed_epoch_ = epoch;
  if (!JournalAppend(kJournalSeal, epoch, 0, nullptr)) {
    return Status(StatusCode::kUnavailable, "journal write failed");
  }
  seals_->Add();
  return local_tail_;
}

Status StorageNode::TrimLocal(Epoch epoch, LogOffset local) {
  std::lock_guard<std::mutex> lock(mu_);
  TANGO_RETURN_IF_ERROR(CheckEpoch(epoch));
  if (local < trim_prefix_) {
    return Status::Ok();  // already gone
  }
  if (pages_.erase(local) > 0) {
    ++trimmed_count_;
  }
  trimmed_[local] = true;
  trims_->Add();
  if (!JournalAppend(kJournalTrim, epoch, local, nullptr)) {
    return Status(StatusCode::kUnavailable, "journal write failed");
  }
  return Status::Ok();
}

Status StorageNode::TrimPrefixLocal(Epoch epoch, LogOffset local_limit) {
  std::lock_guard<std::mutex> lock(mu_);
  TANGO_RETURN_IF_ERROR(CheckEpoch(epoch));
  if (local_limit <= trim_prefix_) {
    return Status::Ok();
  }
  for (LogOffset o = trim_prefix_; o < local_limit; ++o) {
    if (pages_.erase(o) > 0) {
      ++trimmed_count_;
    }
    trimmed_.erase(o);
  }
  trim_prefix_ = local_limit;
  if (!JournalAppend(kJournalTrimPrefix, epoch, local_limit, nullptr)) {
    return Status(StatusCode::kUnavailable, "journal write failed");
  }
  return Status::Ok();
}

size_t StorageNode::PageCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.size();
}

uint64_t StorageNode::trimmed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trimmed_count_;
}

Status StorageNode::HandleWrite(ByteReader& req, ByteWriter& /*resp*/) {
  Epoch epoch = req.GetU32();
  LogOffset local = req.GetU64();
  std::vector<uint8_t> bytes = req.GetBlob();
  if (!req.ok()) {
    return Status(StatusCode::kInvalidArgument, "malformed write");
  }
  return WriteLocal(epoch, local, std::move(bytes));
}

Status StorageNode::HandleRead(ByteReader& req, ByteWriter& resp) {
  Epoch epoch = req.GetU32();
  LogOffset local = req.GetU64();
  if (!req.ok()) {
    return Status(StatusCode::kInvalidArgument, "malformed read");
  }
  Result<std::vector<uint8_t>> page = ReadLocal(epoch, local);
  if (!page.ok()) {
    return page.status();
  }
  resp.PutBlob(*page);
  return Status::Ok();
}

Status StorageNode::HandleReadBatch(ByteReader& req, ByteWriter& resp) {
  Epoch epoch = req.GetU32();
  uint32_t count = req.GetU32();
  if (!req.ok() || count > kMaxReadBatch) {
    return Status(StatusCode::kInvalidArgument, "malformed batch read");
  }
  std::vector<LogOffset> locals(count);
  for (uint32_t i = 0; i < count; ++i) {
    locals[i] = req.GetU64();
  }
  if (!req.ok()) {
    return Status(StatusCode::kInvalidArgument, "malformed batch read");
  }
  std::vector<Result<std::vector<uint8_t>>> pages;
  TANGO_RETURN_IF_ERROR(ReadBatchLocal(epoch, locals, &pages));
  resp.PutU32(count);
  for (const Result<std::vector<uint8_t>>& page : pages) {
    resp.PutU8(static_cast<uint8_t>(page.status().code()));
    if (page.ok()) {
      resp.PutBlob(*page);
    }
  }
  return Status::Ok();
}

Status StorageNode::HandleSeal(ByteReader& req, ByteWriter& resp) {
  Epoch epoch = req.GetU32();
  Result<LogOffset> tail = Seal(epoch);
  if (!tail.ok()) {
    return tail.status();
  }
  resp.PutU64(*tail);
  return Status::Ok();
}

Status StorageNode::HandleTrim(ByteReader& req, ByteWriter& /*resp*/) {
  Epoch epoch = req.GetU32();
  LogOffset local = req.GetU64();
  return TrimLocal(epoch, local);
}

Status StorageNode::HandleTrimPrefix(ByteReader& req, ByteWriter& /*resp*/) {
  Epoch epoch = req.GetU32();
  LogOffset local_limit = req.GetU64();
  return TrimPrefixLocal(epoch, local_limit);
}

Status StorageNode::HandleLocalTail(ByteReader& req, ByteWriter& resp) {
  Epoch epoch = req.GetU32();
  std::lock_guard<std::mutex> lock(mu_);
  TANGO_RETURN_IF_ERROR(CheckEpoch(epoch));
  resp.PutU64(local_tail_);
  return Status::Ok();
}

}  // namespace corfu
