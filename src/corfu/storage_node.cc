#include "src/corfu/storage_node.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/obs/flight.h"
#include "src/obs/slo.h"
#include "src/storage/memory_backend.h"
#include "src/storage/segment_store.h"
#include "src/util/logging.h"

namespace corfu {

using corfu::storage::MemoryBackend;
using corfu::storage::SegmentStoreBackend;
using corfu::storage::SegmentStoreOptions;
using tango::ByteReader;
using tango::ByteWriter;
using tango::NodeId;
using tango::Result;
using tango::Status;
using tango::StatusCode;

StorageNode::StorageNode(tango::Transport* transport, NodeId node,
                         Options options)
    : transport_(transport), node_(node), options_(options) {
  auto& reg = tango::obs::MetricsRegistry::Default();
  writes_ok_ = reg.GetCounter("storage.write.ok");
  writes_lost_ = reg.GetCounter("storage.write.lost_race");
  reads_ok_ = reg.GetCounter("storage.read.ok");
  reads_unwritten_ = reg.GetCounter("storage.read.unwritten");
  reads_trimmed_ = reg.GetCounter("storage.read.trimmed");
  seals_ = reg.GetCounter("storage.seals");
  trims_ = reg.GetCounter("storage.trims");
  journal_errors_ = reg.GetCounter("storage.journal.errors");
  batch_size_ = reg.GetHistogram("storage.read_batch.size");
  write_shed_ = reg.GetCounter("overload.storage.shed");
  inflight_writes_gauge_ = reg.GetGauge("overload.storage.inflight_writes");
  dispatcher_.Register(kStorageWrite, [this](ByteReader& q, ByteWriter& p) {
    return HandleWrite(q, p);
  });
  dispatcher_.Register(kStorageRead, [this](ByteReader& q, ByteWriter& p) {
    return HandleRead(q, p);
  });
  dispatcher_.Register(kStorageReadBatch,
                       [this](ByteReader& q, ByteWriter& p) {
                         return HandleReadBatch(q, p);
                       });
  dispatcher_.Register(kStorageSeal, [this](ByteReader& q, ByteWriter& p) {
    return HandleSeal(q, p);
  });
  dispatcher_.Register(kStorageTrim, [this](ByteReader& q, ByteWriter& p) {
    return HandleTrim(q, p);
  });
  dispatcher_.Register(kStorageTrimPrefix,
                       [this](ByteReader& q, ByteWriter& p) {
                         return HandleTrimPrefix(q, p);
                       });
  dispatcher_.Register(kStorageLocalTail,
                       [this](ByteReader& q, ByteWriter& p) {
                         return HandleLocalTail(q, p);
                       });
  dispatcher_.Register(kStorageSealedEpoch,
                       [this](ByteReader& q, ByteWriter& p) {
                         return HandleSealedEpoch(q, p);
                       });

  if (!options_.data_dir.empty()) {
    SegmentStoreOptions seg;
    seg.dir = options_.data_dir;
    seg.fs = options_.fs;
    seg.segment_bytes = options_.segment_bytes;
    seg.fsync_batch = options_.fsync_batch;
    seg.flush_interval_ms = options_.flush_interval_ms;
    seg.max_buffer_bytes = options_.max_buffer_bytes;
    auto store = SegmentStoreBackend::Open(std::move(seg));
    TANGO_CHECK(store.ok()) << "node " << node_
                            << ": cannot open segment store at "
                            << options_.data_dir << ": "
                            << store.status().ToString();
    backend_ = std::move(*store);
    if (!options_.journal_path.empty()) {
      TANGO_LOG(kWarning) << "node " << node_
                          << ": journal_path ignored — the segment store is "
                             "its own journal";
    }
  } else {
    backend_ = std::make_unique<MemoryBackend>();
    if (!options_.journal_path.empty()) {
      JournalReplay();
      journal_ = std::fopen(options_.journal_path.c_str(), "ab");
      if (journal_ == nullptr) {
        // A node that silently loses its journal looks healthy until the
        // restart that needs it.  Count it and say so.
        journal_errors_->Add();
        TANGO_LOG(kWarning) << "node " << node_ << ": cannot open journal "
                            << options_.journal_path << " ("
                            << std::strerror(errno)
                            << "); persistence disabled for this run";
      }
    }
  }
  transport_->RegisterNode(node_, dispatcher_.AsHandler());
}

StorageNode::~StorageNode() {
  transport_->UnregisterNode(node_);
  if (journal_ != nullptr) {
    std::fclose(journal_);
  }
}

std::unique_lock<std::mutex> StorageNode::JournalLock() {
  if (journal_ == nullptr) {
    return std::unique_lock<std::mutex>();
  }
  return std::unique_lock<std::mutex>(journal_mu_);
}

bool StorageNode::JournalAppend(JournalOp op, Epoch epoch, LogOffset local,
                                const std::vector<uint8_t>* bytes) {
  if (journal_ == nullptr) {
    return true;
  }
  tango::ByteWriter w(32 + (bytes != nullptr ? bytes->size() : 0));
  w.PutU8(op);
  w.PutU32(epoch);
  w.PutU64(local);
  if (bytes != nullptr) {
    w.PutBlob(*bytes);
  } else {
    w.PutU32(0);
  }
  if (std::fwrite(w.bytes().data(), 1, w.size(), journal_) != w.size() ||
      std::fflush(journal_) != 0) {
    journal_errors_->Add();
    TANGO_LOG(kWarning) << "node " << node_ << ": journal append failed ("
                        << std::strerror(errno) << ")";
    return false;
  }
  return true;
}

void StorageNode::JournalReplay() {
  std::FILE* in = std::fopen(options_.journal_path.c_str(), "rb");
  if (in == nullptr) {
    return;  // fresh node
  }
  // Records are self-framing: fixed 13-byte header + u32-length payload.
  // `good_end` tracks the end of the last whole record so a torn tail can
  // be truncated away instead of poisoning the next append.
  long good_end = 0;
  bool torn = false;
  while (true) {
    uint8_t header[17];
    size_t got = std::fread(header, 1, sizeof(header), in);
    if (got != sizeof(header)) {
      torn = got != 0;
      break;  // EOF (clean) or torn tail record
    }
    tango::ByteReader r(header, sizeof(header));
    JournalOp op = static_cast<JournalOp>(r.GetU8());
    Epoch epoch = r.GetU32();
    LogOffset local = r.GetU64();
    uint32_t len = r.GetU32();
    std::vector<uint8_t> bytes(len);
    if (len > 0 && std::fread(bytes.data(), 1, len, in) != len) {
      torn = true;
      break;
    }
    switch (op) {
      case kJournalWrite:
        (void)backend_->Put(epoch, local, bytes);
        break;
      case kJournalSeal:
        (void)backend_->Seal(epoch);
        break;
      case kJournalTrim:
        (void)backend_->Trim(epoch, local);
        break;
      case kJournalTrimPrefix:
        (void)backend_->TrimPrefix(epoch, local);
        break;
    }
    good_end = std::ftell(in);
  }
  std::fclose(in);
  if (torn) {
    // A crash mid-append leaves a partial record; anything after the last
    // whole record was never acknowledged.  Truncate so the journal stays
    // appendable — re-opening "ab" after garbage would corrupt every later
    // replay.
    TANGO_LOG(kWarning) << "node " << node_
                        << ": truncating torn journal tail at byte "
                        << good_end;
    if (::truncate(options_.journal_path.c_str(), good_end) != 0) {
      journal_errors_->Add();
      TANGO_LOG(kWarning) << "node " << node_
                          << ": journal truncate failed ("
                          << std::strerror(errno) << ")";
    }
  }
}

void StorageNode::SimulateMedia(uint32_t latency_us) {
  if (latency_us == 0) {
    return;
  }
  if (options_.serialize_media_access) {
    std::lock_guard<std::mutex> lock(media_mu_);
    std::this_thread::sleep_for(std::chrono::microseconds(latency_us));
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(latency_us));
  }
}

Status StorageNode::WriteLocal(Epoch epoch, LogOffset local,
                               std::vector<uint8_t> bytes) {
  if (bytes.size() > options_.page_size) {
    return Status(StatusCode::kInvalidArgument, "entry exceeds page size");
  }
  // Admission bound: shed instead of convoying on the media lock.  The hint
  // is how long the excess queue ahead of the caller takes to drain on a
  // serialized device (one write_latency per queued write), floored so
  // zero-latency configs still ask for a real pause.
  struct InflightGuard {
    StorageNode* node;
    ~InflightGuard() {
      node->inflight_writes_.fetch_sub(1, std::memory_order_relaxed);
      node->inflight_writes_gauge_->Add(-1);
    }
  };
  uint32_t inflight =
      inflight_writes_.fetch_add(1, std::memory_order_relaxed) + 1;
  inflight_writes_gauge_->Add(1);
  InflightGuard guard{this};
  if (options_.max_inflight_writes != 0 &&
      inflight > options_.max_inflight_writes) {
    write_shed_->Add();
    uint64_t per_write =
        options_.write_latency_us != 0 ? options_.write_latency_us : 100;
    uint64_t hint = std::clamp<uint64_t>(
        per_write * (inflight - options_.max_inflight_writes), 200, 1'000'000);
    tango::obs::SloTracker::Default().Record(tango::obs::SloOp::kAdmission,
                                             hint);
    return Status::Busy(static_cast<uint32_t>(hint), "storage node overloaded");
  }
  SimulateMedia(options_.write_latency_us);
  auto lock = JournalLock();
  Status s = backend_->Put(epoch, local, bytes);
  if (!s.ok()) {
    if (s.code() == StatusCode::kWritten) {
      writes_lost_->Add();
    }
    return s;
  }
  if (!JournalAppend(kJournalWrite, epoch, local, &bytes)) {
    return Status(StatusCode::kUnavailable, "journal write failed");
  }
  writes_ok_->Add();
  return Status::Ok();
}

Result<std::vector<uint8_t>> StorageNode::ReadLocal(Epoch epoch,
                                                    LogOffset local) {
  SimulateMedia(options_.read_latency_us);
  Result<std::vector<uint8_t>> page = backend_->Get(epoch, local);
  if (page.ok()) {
    reads_ok_->Add();
  } else if (page.status().code() == StatusCode::kTrimmed) {
    reads_trimmed_->Add();
  } else if (page.status().code() == StatusCode::kUnwritten) {
    reads_unwritten_->Add();
  }
  return page;
}

Status StorageNode::ReadBatchLocal(
    Epoch epoch, const std::vector<LogOffset>& locals,
    std::vector<Result<std::vector<uint8_t>>>* pages) {
  // One media pass for the whole batch: the device still transfers every
  // page, but seek/setup cost and the RPC round trip are amortized.
  SimulateMedia(options_.read_latency_us *
                static_cast<uint32_t>(locals.size()));
  batch_size_->Record(locals.size());
  pages->clear();
  TANGO_RETURN_IF_ERROR(backend_->GetBatch(epoch, locals, pages));
  // Tally locally and publish once per batch: per-slot atomic increments
  // would put ~one RMW per log entry on the batched read hot path.
  uint64_t ok = 0, unwritten = 0, trimmed = 0;
  for (const Result<std::vector<uint8_t>>& page : *pages) {
    if (page.ok()) {
      ++ok;
    } else if (page.status().code() == StatusCode::kTrimmed) {
      ++trimmed;
    } else if (page.status().code() == StatusCode::kUnwritten) {
      ++unwritten;
    }
  }
  if (trimmed > 0) {
    reads_trimmed_->Add(trimmed);
  }
  if (unwritten > 0) {
    reads_unwritten_->Add(unwritten);
  }
  if (ok > 0) {
    reads_ok_->Add(ok);
  }
  return Status::Ok();
}

Result<LogOffset> StorageNode::Seal(Epoch epoch) {
  auto lock = JournalLock();
  Result<LogOffset> tail = backend_->Seal(epoch);
  if (!tail.ok()) {
    return tail;
  }
  if (!JournalAppend(kJournalSeal, epoch, 0, nullptr)) {
    return Status(StatusCode::kUnavailable, "journal write failed");
  }
  seals_->Add();
  return tail;
}

Status StorageNode::TrimLocal(Epoch epoch, LogOffset local) {
  auto lock = JournalLock();
  TANGO_RETURN_IF_ERROR(backend_->Trim(epoch, local));
  trims_->Add();
  if (!JournalAppend(kJournalTrim, epoch, local, nullptr)) {
    return Status(StatusCode::kUnavailable, "journal write failed");
  }
  return Status::Ok();
}

Status StorageNode::TrimPrefixLocal(Epoch epoch, LogOffset local_limit) {
  auto lock = JournalLock();
  TANGO_RETURN_IF_ERROR(backend_->TrimPrefix(epoch, local_limit));
  if (!JournalAppend(kJournalTrimPrefix, epoch, local_limit, nullptr)) {
    return Status(StatusCode::kUnavailable, "journal write failed");
  }
  return Status::Ok();
}

size_t StorageNode::PageCount() const { return backend_->PageCount(); }

uint64_t StorageNode::trimmed_count() const {
  return backend_->trimmed_count();
}

Status StorageNode::HandleWrite(ByteReader& req, ByteWriter& /*resp*/) {
  Epoch epoch = req.GetU32();
  LogOffset local = req.GetU64();
  std::vector<uint8_t> bytes = req.GetBlob();
  if (!req.ok()) {
    return Status(StatusCode::kInvalidArgument, "malformed write");
  }
  return WriteLocal(epoch, local, std::move(bytes));
}

Status StorageNode::HandleRead(ByteReader& req, ByteWriter& resp) {
  Epoch epoch = req.GetU32();
  LogOffset local = req.GetU64();
  if (!req.ok()) {
    return Status(StatusCode::kInvalidArgument, "malformed read");
  }
  Result<std::vector<uint8_t>> page = ReadLocal(epoch, local);
  if (!page.ok()) {
    return page.status();
  }
  resp.PutBlob(*page);
  return Status::Ok();
}

Status StorageNode::HandleReadBatch(ByteReader& req, ByteWriter& resp) {
  Epoch epoch = req.GetU32();
  uint32_t count = req.GetU32();
  if (!req.ok() || count > kMaxReadBatch) {
    return Status(StatusCode::kInvalidArgument, "malformed batch read");
  }
  std::vector<LogOffset> locals(count);
  for (uint32_t i = 0; i < count; ++i) {
    locals[i] = req.GetU64();
  }
  if (!req.ok()) {
    return Status(StatusCode::kInvalidArgument, "malformed batch read");
  }
  std::vector<Result<std::vector<uint8_t>>> pages;
  TANGO_RETURN_IF_ERROR(ReadBatchLocal(epoch, locals, &pages));
  resp.PutU32(count);
  for (const Result<std::vector<uint8_t>>& page : pages) {
    resp.PutU8(static_cast<uint8_t>(page.status().code()));
    if (page.ok()) {
      resp.PutBlob(*page);
    }
  }
  return Status::Ok();
}

Status StorageNode::HandleSeal(ByteReader& req, ByteWriter& resp) {
  Epoch epoch = req.GetU32();
  Result<LogOffset> tail = Seal(epoch);
  if (!tail.ok()) {
    return tail.status();
  }
  tango::obs::FlightRecorder::Default().Record(tango::obs::FlightKind::kSeal,
                                        "storage sealed epoch", epoch, *tail,
                                        node_);
  resp.PutU64(*tail);
  return Status::Ok();
}

Status StorageNode::HandleTrim(ByteReader& req, ByteWriter& /*resp*/) {
  Epoch epoch = req.GetU32();
  LogOffset local = req.GetU64();
  return TrimLocal(epoch, local);
}

Status StorageNode::HandleTrimPrefix(ByteReader& req, ByteWriter& /*resp*/) {
  Epoch epoch = req.GetU32();
  LogOffset local_limit = req.GetU64();
  return TrimPrefixLocal(epoch, local_limit);
}

Status StorageNode::HandleLocalTail(ByteReader& req, ByteWriter& resp) {
  Epoch epoch = req.GetU32();
  Result<LogOffset> tail = backend_->LocalTail(epoch);
  if (!tail.ok()) {
    return tail.status();
  }
  resp.PutU64(*tail);
  return Status::Ok();
}

Status StorageNode::HandleSealedEpoch(ByteReader& /*req*/, ByteWriter& resp) {
  resp.PutU32(backend_->sealed_epoch());
  return Status::Ok();
}

}  // namespace corfu
