// StorageNode: a flash unit exposing a 64-bit write-once address space (§2.2).
//
// Each node stores fixed-size pages keyed by *local* offset (the client maps
// global log offsets onto replica sets and local offsets using the
// projection).  The write-once contract — first writer wins, second writer
// gets kWritten — is what makes client-driven chain replication and hole
// filling safe, and it is enforced here, not trusted to clients.
//
// Nodes are sealed by epoch: a Seal(e) call raises the node's epoch to e and
// makes it reject any request carrying an older epoch with kSealedEpoch,
// which is the mechanism reconfiguration uses to fence lagging clients and
// retired sequencers.
//
// The node itself is a protocol shell: wire handling, media simulation and
// metrics live here, while the write-once page state lives behind a
// storage::StorageBackend.  The default engine is the in-memory map
// (optionally paired with the legacy record journal); setting `data_dir`
// selects the durable SegmentStoreBackend instead.

#ifndef SRC_CORFU_STORAGE_NODE_H_
#define SRC_CORFU_STORAGE_NODE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/corfu/types.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/storage/backend.h"
#include "src/storage/fault_fs.h"
#include "src/util/status.h"

namespace corfu {

class StorageNode {
 public:
  struct Options {
    uint32_t page_size = 4096;
    // Simulated media latency per op (microseconds); 0 = no sleep.  Models
    // the SSD read/write cost of the paper's testbed when desired.
    uint32_t write_latency_us = 0;
    uint32_t read_latency_us = 0;
    // When true (default), simulated latency is served under a per-node
    // media lock, so a node's throughput is bounded at 1/latency IOPS —
    // modeling a single-channel device.  When false, latency only delays
    // callers (infinite parallelism).
    bool serialize_media_access = true;
    // Legacy journal (in-memory engine only): when non-empty,
    // pages/seals/trims are journaled to this file (append-only, like the
    // flash the paper runs on) and reloaded on construction, so a storage
    // node survives process restarts.
    std::string journal_path;
    // When non-empty, the node runs on the durable SegmentStoreBackend
    // rooted at this directory (and journal_path is ignored).
    std::string data_dir;
    // Segment-engine tuning; see storage::SegmentStoreOptions.
    uint64_t segment_bytes = 8ull << 20;
    uint32_t fsync_batch = 64;
    uint32_t flush_interval_ms = 20;
    // File abstraction for the segment engine; nullptr = real POSIX.
    // Tests inject faults here.
    corfu::storage::FileSystem* fs = nullptr;
    // Backpressure: bound on concurrently executing writes.  Beyond this the
    // write is shed with kBusy and a retry-after hint instead of convoying
    // on the media lock.  0 = unbounded (the pre-overload behavior).
    uint32_t max_inflight_writes = 0;
    // Backpressure for the segment engine's group write buffer; see
    // storage::SegmentStoreOptions::max_buffer_bytes.  0 = unbounded.
    uint64_t max_buffer_bytes = 0;
  };

  StorageNode(tango::Transport* transport, tango::NodeId node, Options options);
  ~StorageNode();

  StorageNode(const StorageNode&) = delete;
  StorageNode& operator=(const StorageNode&) = delete;

  tango::NodeId node() const { return node_; }
  // The persistence engine under this node.
  corfu::storage::StorageBackend* backend() { return backend_.get(); }

  // Direct (non-RPC) accessors used by tests.
  tango::Status WriteLocal(Epoch epoch, LogOffset local,
                           std::vector<uint8_t> bytes);
  tango::Result<std::vector<uint8_t>> ReadLocal(Epoch epoch, LogOffset local);
  // Vectored read: serves every offset in `locals` under one epoch check and
  // one media pass.  `pages` gets one Result per offset, in order; per-offset
  // failures (kUnwritten, kTrimmed) land in the Results while the call itself
  // fails only on a stale epoch or malformed input.
  tango::Status ReadBatchLocal(
      Epoch epoch, const std::vector<LogOffset>& locals,
      std::vector<tango::Result<std::vector<uint8_t>>>* pages);
  // Seals the node at `epoch` and returns the local tail (highest written
  // local offset + 1, i.e. number of the next unwritten slot upper bound).
  tango::Result<LogOffset> Seal(Epoch epoch);
  tango::Status TrimLocal(Epoch epoch, LogOffset local);
  tango::Status TrimPrefixLocal(Epoch epoch, LogOffset local_limit);

  // Stats for GC / capacity tests.
  size_t PageCount() const;
  uint64_t trimmed_count() const;

 private:
  tango::Status HandleWrite(tango::ByteReader& req, tango::ByteWriter& resp);
  tango::Status HandleRead(tango::ByteReader& req, tango::ByteWriter& resp);
  tango::Status HandleReadBatch(tango::ByteReader& req,
                                tango::ByteWriter& resp);
  tango::Status HandleSeal(tango::ByteReader& req, tango::ByteWriter& resp);
  tango::Status HandleTrim(tango::ByteReader& req, tango::ByteWriter& resp);
  tango::Status HandleTrimPrefix(tango::ByteReader& req,
                                 tango::ByteWriter& resp);
  tango::Status HandleLocalTail(tango::ByteReader& req,
                                tango::ByteWriter& resp);
  tango::Status HandleSealedEpoch(tango::ByteReader& req,
                                  tango::ByteWriter& resp);

  void SimulateMedia(uint32_t latency_us);

  // Holds journal_mu_ for the scope of a mutation iff the legacy journal is
  // enabled, so journal record order matches backend commit order.
  std::unique_lock<std::mutex> JournalLock();

  // Journal records (caller holds journal_mu_ via JournalLock).  Journaling
  // failures are counted (storage.journal.errors), logged at warning level,
  // and surface as kUnavailable on the triggering operation.
  enum JournalOp : uint8_t {
    kJournalWrite = 1,
    kJournalSeal = 2,
    kJournalTrim = 3,
    kJournalTrimPrefix = 4,
  };
  bool JournalAppend(JournalOp op, Epoch epoch, LogOffset local,
                     const std::vector<uint8_t>* bytes);
  void JournalReplay();

  tango::Transport* transport_;
  tango::NodeId node_;
  Options options_;
  std::mutex media_mu_;  // serializes simulated device access

  std::unique_ptr<corfu::storage::StorageBackend> backend_;

  // Legacy journal (memory engine only).  journal_mu_ orders backend
  // mutations with their journal records; it is never taken when the
  // journal is off, so the durable engine's group commit stays concurrent.
  std::mutex journal_mu_;
  std::FILE* journal_ = nullptr;

  // Registry instruments (shared across all storage nodes in the process).
  tango::obs::Counter* writes_ok_;
  tango::obs::Counter* writes_lost_;   // write-once conflicts (kWritten)
  tango::obs::Counter* reads_ok_;
  tango::obs::Counter* reads_unwritten_;
  tango::obs::Counter* reads_trimmed_;
  tango::obs::Counter* seals_;
  tango::obs::Counter* trims_;
  tango::obs::Counter* journal_errors_;
  tango::obs::Histogram* batch_size_;
  tango::obs::Counter* write_shed_;
  tango::obs::Gauge* inflight_writes_gauge_;

  // Concurrently executing WriteLocal calls, for the admission bound.
  std::atomic<uint32_t> inflight_writes_{0};

  tango::RpcDispatcher dispatcher_;
};

}  // namespace corfu

#endif  // SRC_CORFU_STORAGE_NODE_H_
