// StorageNode: a flash unit exposing a 64-bit write-once address space (§2.2).
//
// Each node stores fixed-size pages keyed by *local* offset (the client maps
// global log offsets onto replica sets and local offsets using the
// projection).  The write-once contract — first writer wins, second writer
// gets kWritten — is what makes client-driven chain replication and hole
// filling safe, and it is enforced here, not trusted to clients.
//
// Nodes are sealed by epoch: a Seal(e) call raises the node's epoch to e and
// makes it reject any request carrying an older epoch with kSealedEpoch,
// which is the mechanism reconfiguration uses to fence lagging clients and
// retired sequencers.

#ifndef SRC_CORFU_STORAGE_NODE_H_
#define SRC_CORFU_STORAGE_NODE_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/corfu/types.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/util/status.h"

namespace corfu {

class StorageNode {
 public:
  struct Options {
    uint32_t page_size = 4096;
    // Simulated media latency per op (microseconds); 0 = no sleep.  Models
    // the SSD read/write cost of the paper's testbed when desired.
    uint32_t write_latency_us = 0;
    uint32_t read_latency_us = 0;
    // When true (default), simulated latency is served under a per-node
    // media lock, so a node's throughput is bounded at 1/latency IOPS —
    // modeling a single-channel device.  When false, latency only delays
    // callers (infinite parallelism).
    bool serialize_media_access = true;
    // When non-empty, pages/seals/trims are journaled to this file
    // (append-only, like the flash the paper runs on) and reloaded on
    // construction, so a storage node survives process restarts.
    std::string journal_path;
  };

  StorageNode(tango::Transport* transport, tango::NodeId node, Options options);
  ~StorageNode();

  StorageNode(const StorageNode&) = delete;
  StorageNode& operator=(const StorageNode&) = delete;

  tango::NodeId node() const { return node_; }

  // Direct (non-RPC) accessors used by tests.
  tango::Status WriteLocal(Epoch epoch, LogOffset local,
                           std::vector<uint8_t> bytes);
  tango::Result<std::vector<uint8_t>> ReadLocal(Epoch epoch, LogOffset local);
  // Vectored read: serves every offset in `locals` under one epoch check and
  // one media pass.  `pages` gets one Result per offset, in order; per-offset
  // failures (kUnwritten, kTrimmed) land in the Results while the call itself
  // fails only on a stale epoch or malformed input.
  tango::Status ReadBatchLocal(
      Epoch epoch, const std::vector<LogOffset>& locals,
      std::vector<tango::Result<std::vector<uint8_t>>>* pages);
  // Seals the node at `epoch` and returns the local tail (highest written
  // local offset + 1, i.e. number of the next unwritten slot upper bound).
  tango::Result<LogOffset> Seal(Epoch epoch);
  tango::Status TrimLocal(Epoch epoch, LogOffset local);
  tango::Status TrimPrefixLocal(Epoch epoch, LogOffset local_limit);

  // Stats for GC / capacity tests.
  size_t PageCount() const;
  uint64_t trimmed_count() const;

 private:
  tango::Status HandleWrite(tango::ByteReader& req, tango::ByteWriter& resp);
  tango::Status HandleRead(tango::ByteReader& req, tango::ByteWriter& resp);
  tango::Status HandleReadBatch(tango::ByteReader& req,
                                tango::ByteWriter& resp);
  tango::Status HandleSeal(tango::ByteReader& req, tango::ByteWriter& resp);
  tango::Status HandleTrim(tango::ByteReader& req, tango::ByteWriter& resp);
  tango::Status HandleTrimPrefix(tango::ByteReader& req,
                                 tango::ByteWriter& resp);
  tango::Status HandleLocalTail(tango::ByteReader& req,
                                tango::ByteWriter& resp);

  tango::Status CheckEpoch(Epoch epoch) const;  // caller holds mu_
  void SimulateMedia(uint32_t latency_us);

  // Journal records (caller holds mu_).  Best-effort: journaling failures
  // surface as kUnavailable on the triggering operation.
  enum JournalOp : uint8_t {
    kJournalWrite = 1,
    kJournalSeal = 2,
    kJournalTrim = 3,
    kJournalTrimPrefix = 4,
  };
  bool JournalAppend(JournalOp op, Epoch epoch, LogOffset local,
                     const std::vector<uint8_t>* bytes);
  void JournalReplay();

  tango::Transport* transport_;
  tango::NodeId node_;
  Options options_;
  std::mutex media_mu_;  // serializes simulated device access

  mutable std::mutex mu_;
  Epoch sealed_epoch_ = 0;
  std::unordered_map<LogOffset, std::vector<uint8_t>> pages_;
  // Offsets below this are trimmed wholesale (prefix trim).
  LogOffset trim_prefix_ = 0;
  // Individually trimmed offsets at or above trim_prefix_.
  std::unordered_map<LogOffset, bool> trimmed_;
  LogOffset local_tail_ = 0;  // one past the highest written local offset
  uint64_t trimmed_count_ = 0;
  std::FILE* journal_ = nullptr;

  // Registry instruments (shared across all storage nodes in the process).
  tango::obs::Counter* writes_ok_;
  tango::obs::Counter* writes_lost_;   // write-once conflicts (kWritten)
  tango::obs::Counter* reads_ok_;
  tango::obs::Counter* reads_unwritten_;
  tango::obs::Counter* reads_trimmed_;
  tango::obs::Counter* seals_;
  tango::obs::Counter* trims_;
  tango::obs::Histogram* batch_size_;

  tango::RpcDispatcher dispatcher_;
};

}  // namespace corfu

#endif  // SRC_CORFU_STORAGE_NODE_H_
