#include "src/corfu/entry.h"

namespace corfu {

using tango::ByteReader;
using tango::ByteWriter;
using tango::Result;
using tango::Status;
using tango::StatusCode;

namespace {

constexpr uint32_t kAbsoluteFormatBit = 0x80000000u;

}  // namespace

const StreamHeader* LogEntry::FindHeader(StreamId stream) const {
  for (const StreamHeader& h : headers) {
    if (h.stream == stream) {
      return &h;
    }
  }
  return nullptr;
}

Result<std::vector<uint8_t>> EncodeEntry(const LogEntry& entry,
                                         LogOffset self_offset) {
  ByteWriter w(64 + entry.payload.size());
  w.PutU32(entry.epoch);
  w.PutU8(static_cast<uint8_t>(entry.type));
  if (entry.headers.size() > 255) {
    return Status(StatusCode::kOutOfRange, "too many stream headers");
  }
  w.PutU8(static_cast<uint8_t>(entry.headers.size()));

  for (const StreamHeader& h : entry.headers) {
    if (h.stream > kMaxStreamId) {
      return Status(StatusCode::kInvalidArgument, "stream id exceeds 31 bits");
    }
    if (h.backpointers.size() > 255) {
      return Status(StatusCode::kOutOfRange, "too many backpointers");
    }
    // Decide the format: relative 2-byte deltas if every pointer fits.
    bool relative_ok = true;
    for (LogOffset bp : h.backpointers) {
      if (bp == kInvalidOffset) {
        continue;
      }
      if (bp >= self_offset || self_offset - bp > 0xffff) {
        relative_ok = false;
        break;
      }
    }
    if (relative_ok) {
      w.PutU32(h.stream);
      w.PutU8(static_cast<uint8_t>(h.backpointers.size()));
      for (LogOffset bp : h.backpointers) {
        uint16_t delta =
            bp == kInvalidOffset
                ? 0
                : static_cast<uint16_t>(self_offset - bp);
        w.PutU16(delta);
      }
    } else {
      // Absolute fallback: keep ceil(K/4) pointers, matching the paper's
      // space budget (K 2-byte deltas == K/4 8-byte offsets).
      size_t keep = (h.backpointers.size() + 3) / 4;
      w.PutU32(h.stream | kAbsoluteFormatBit);
      w.PutU8(static_cast<uint8_t>(keep));
      for (size_t i = 0; i < keep; ++i) {
        w.PutU64(h.backpointers[i]);
      }
    }
  }
  w.PutBlob(entry.payload);
  return w.Take();
}

Result<LogEntry> DecodeEntry(std::span<const uint8_t> bytes,
                             LogOffset self_offset) {
  ByteReader r(bytes);
  LogEntry entry;
  entry.epoch = r.GetU32();
  entry.type = static_cast<EntryType>(r.GetU8());
  uint8_t header_count = r.GetU8();
  entry.headers.reserve(header_count);
  for (int i = 0; i < header_count; ++i) {
    uint32_t id_and_format = r.GetU32();
    uint8_t pointer_count = r.GetU8();
    StreamHeader h;
    h.stream = id_and_format & kMaxStreamId;
    h.backpointers.reserve(pointer_count);
    if ((id_and_format & kAbsoluteFormatBit) != 0) {
      for (int j = 0; j < pointer_count; ++j) {
        h.backpointers.push_back(r.GetU64());
      }
    } else {
      for (int j = 0; j < pointer_count; ++j) {
        uint16_t delta = r.GetU16();
        h.backpointers.push_back(delta == 0 ? kInvalidOffset
                                            : self_offset - delta);
      }
    }
    entry.headers.push_back(std::move(h));
  }
  entry.payload = r.GetBlob();
  if (!r.ok()) {
    return Status(StatusCode::kInvalidArgument, "malformed log entry");
  }
  return entry;
}

std::vector<uint8_t> EncodeJunkEntry(Epoch epoch) {
  LogEntry junk;
  junk.epoch = epoch;
  junk.type = EntryType::kJunk;
  // Junk encoding never fails: no headers, empty payload.
  return EncodeEntry(junk, 0).value();
}

}  // namespace corfu
