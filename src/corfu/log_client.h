// CorfuClient: the client-side library of the shared log (§2.2).
//
// Exposes the four CORFU verbs (append, read, check, trim) plus fill, the
// streaming multiappend, and the recovery operations (slow tail check,
// sequencer state rebuild, reconfiguration).  Replication is client-driven
// chain replication: the client writes replicas head-to-tail and reads from
// the tail, so a partially replicated entry is never observable.  Every
// request carries the client's projection epoch; on kSealedEpoch the client
// refreshes its projection from the projection store and retries.
//
// Thread safety: all operations may be called concurrently.  Each operation
// snapshots the current projection under a shared lock, so a reconfiguration
// racing with data operations is safe — the losers are fenced by the sealed
// epoch and retry on the new projection.

#ifndef SRC_CORFU_LOG_CLIENT_H_
#define SRC_CORFU_LOG_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/corfu/append_pipeline.h"
#include "src/corfu/entry.h"
#include "src/corfu/projection.h"
#include "src/corfu/sequencer.h"
#include "src/corfu/types.h"
#include "src/net/breaker.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/util/retry.h"
#include "src/util/status.h"

namespace corfu {

class CorfuClient {
 public:
  struct Options {
    // How long a reader waits on an unwritten offset before filling the
    // presumed hole (paper default: 100 ms).
    uint32_t hole_timeout_ms = 100;
    // Retry budget for sealed-epoch refresh loops (becomes the retry
    // policy's max_attempts).
    int max_epoch_retries = 8;
    // Backoff shape for those retries: exponential with jitter plus an
    // optional per-operation deadline (deadline_ms).  max_attempts here is
    // ignored — max_epoch_retries is the single attempts knob.
    tango::RetryPolicy::Options retry;
    // Window and grant-batch sizes for the asynchronous append pipeline
    // (AppendAsync); the pipeline is only created on first use.
    AppendPipeline::Options pipeline;
    // When true, every data-plane RPC goes through a per-node circuit
    // breaker (see net/breaker.h): a node that keeps timing out fails fast
    // with kBusy instead of costing a transport timeout per call.
    // Control-plane RPCs (IsControlPlaneRpc) always pass through.
    bool enable_circuit_breaker = false;
    tango::CircuitBreakerTransport::Options breaker;
  };

  CorfuClient(tango::Transport* transport, tango::NodeId projection_store)
      : CorfuClient(transport, projection_store, Options{}) {}
  CorfuClient(tango::Transport* transport, tango::NodeId projection_store,
              Options options);
  // Shuts down the append pipeline (if created), junk-filling its unused
  // tokens, before the rest of the client is torn down.
  ~CorfuClient();

  // --- Core CORFU interface -------------------------------------------------

  // Appends a raw payload with no stream headers; returns its offset.
  tango::Result<LogOffset> Append(std::span<const uint8_t> payload);

  // Multiappend (§4): appends one entry that belongs to every stream in
  // `streams`.  The sequencer supplies the backpointer headers.
  tango::Result<LogOffset> AppendToStreams(std::span<const uint8_t> payload,
                                           const std::vector<StreamId>& streams);

  // Asynchronous append through the windowed pipeline (see AppendPipeline):
  // returns a Handle that resolves out of order when this entry's chain
  // write lands; `completion`, if given, fires first from a worker thread.
  // Blocks only when the pipeline window is full.
  AppendPipeline::Handle AppendAsync(
      std::span<const uint8_t> payload, std::vector<StreamId> streams,
      AppendPipeline::Completion completion = nullptr);

  // The client's pipeline, created on first use with options().pipeline.
  // Exposed for Drain() and stats().
  AppendPipeline& pipeline();

  // Reads and decodes the entry at `offset`.
  tango::Result<LogEntry> Read(LogOffset offset);

  // One slot of a ReadBatch result.  `status` is per-offset: kOk with a
  // decoded entry, or kUnwritten / kTrimmed (and, rarely, a decode error).
  struct BatchedRead {
    tango::Status status{tango::StatusCode::kUnwritten};
    LogEntry entry;  // valid only when status.ok()
  };

  // Vectored read (the playback fast path): fetches every offset in one
  // kStorageReadBatch round trip per replica set, with the per-set sub-batches
  // dispatched in parallel on the shared thread pool.  Per-offset failures
  // (holes, trims) are reported in the slots and never fail the batch; a
  // sealed epoch refreshes the projection and retries only the failed
  // sub-batches.  Unlike ReadRepair this never waits out or fills a hole —
  // callers fall back to ReadRepair for offsets they actually need.
  tango::Result<std::vector<BatchedRead>> ReadBatch(
      std::span<const LogOffset> offsets);

  // Reads, waiting up to hole_timeout_ms for a lagging writer, then fills the
  // hole with junk and reads whatever won.  This is the playback read.
  tango::Result<LogEntry> ReadRepair(LogOffset offset);

  // Fast check: one round trip to the sequencer.  Returns the next unwritten
  // offset (i.e. entries [0, tail) are potentially written).
  tango::Result<LogOffset> CheckTail();

  // Slow check: queries every replica set's tail storage node and inverts
  // the mapping function.  Works with no sequencer at all.
  tango::Result<LogOffset> CheckTailSlow();

  // Marks `offset` as garbage-collectable on its replica set.
  tango::Status Trim(LogOffset offset);
  // Trims every offset below `limit` (used by the Tango directory's forget).
  tango::Status TrimPrefix(LogOffset limit);

  // Writes a junk entry at `offset` (first-writer-wins); used to patch holes
  // left by crashed clients.  Returns OK whether junk or an existing value
  // won — either way the hole is resolved.
  tango::Status Fill(LogOffset offset);

  // --- Streaming support ----------------------------------------------------

  // Tail + last-K backpointers for `streams`, without incrementing.
  tango::Result<SequencerTailInfo> StreamTails(
      const std::vector<StreamId>& streams);

  // --- Recovery -------------------------------------------------------------

  // Scans backward from the tail collecting per-stream last-K offsets, for
  // bootstrapping a replacement sequencer.  Scans at most `max_entries`, or
  // until it meets a sequencer-state checkpoint (below), whichever first.
  tango::Result<std::unordered_map<StreamId, StreamTail>>
  RebuildSequencerState(uint64_t max_entries);

  // Dumps the live sequencer's full backpointer state and appends it to the
  // reserved kSequencerStateStream (§5's planned optimization: periodic
  // sequencer checkpoints bound the recovery scan to the checkpoint
  // interval).  Returns the checkpoint's log offset.
  tango::Result<LogOffset> WriteSequencerCheckpoint();

  tango::Status RefreshProjection();
  // Returns a copy of the current projection (safe under concurrency).
  Projection projection() const;
  tango::Transport* transport() const { return transport_; }
  // This client's identity for the sequencer's per-client grant quotas.
  uint64_t client_id() const { return client_id_; }
  // The breaker decorating the transport, or null when disabled.
  tango::CircuitBreakerTransport* circuit_breaker() const {
    return breaker_.get();
  }
  tango::NodeId projection_store() const { return projection_store_; }
  const Options& options() const { return options_; }

 private:
  // The pipeline reuses the client's chain-write, retry, and projection
  // machinery without widening the public surface.
  friend class AppendPipeline;

  Projection Snapshot() const;

  // Writes `bytes` at `offset` through the chain.  If another writer already
  // owns the offset, completes the chain with the winner's value and returns
  // kWritten.
  tango::Status ChainWrite(const Projection& p, LogOffset offset,
                           const std::vector<uint8_t>& bytes);

  // Reads the raw page from the chain's tail replica.
  tango::Result<std::vector<uint8_t>> ChainRead(const Projection& p,
                                                LogOffset offset);

  // Runs `op(projection snapshot)`, refreshing on kSealedEpoch and retrying.
  tango::Status WithEpochRetry(
      const std::function<tango::Status(const Projection&)>& op);

  // The transport every RPC uses: the raw transport, or the owned circuit
  // breaker wrapped around it when enabled.
  tango::Transport* transport_;
  std::unique_ptr<tango::CircuitBreakerTransport> breaker_;
  tango::NodeId projection_store_;
  Options options_;
  tango::RetryPolicy retry_;
  uint64_t client_id_;

  // Registry instruments (see DESIGN.md "Observability").
  tango::obs::Counter* appends_;
  tango::obs::Counter* append_retries_;
  tango::obs::Counter* fills_;
  tango::obs::Counter* epoch_refreshes_;
  tango::obs::Counter* hole_timeouts_;
  tango::obs::Counter* busy_backoffs_;
  tango::obs::Histogram* append_latency_;

  mutable std::shared_mutex projection_mu_;
  Projection projection_;

  std::once_flag pipeline_once_;
  std::unique_ptr<AppendPipeline> pipeline_;
};

// Reconfiguration (§5, Failure Handling): seals the cluster at epoch+1,
// applies `mutate` to a copy of `client`'s projection (e.g. replacing the
// sequencer), proposes it, and bootstraps the new sequencer with the sealed
// tail plus backpointer state rebuilt by scanning backward up to
// `rebuild_scan_limit` entries.  On success the client's projection is
// refreshed in place.
tango::Status Reconfigure(CorfuClient* client,
                          const std::function<void(Projection&)>& mutate,
                          uint64_t rebuild_scan_limit = 65536);

// Replaces a failed storage node with `replacement` (baseline CORFU's
// reconfiguration for storage failures, which Tango inherits): copies every
// surviving page of the failed node's chain from a healthy replica onto the
// replacement, then reconfigures the projection to swap the nodes.  The
// replacement must already be registered on the transport and empty.
tango::Status ReplaceStorageNode(CorfuClient* client, tango::NodeId failed,
                                 tango::NodeId replacement);

}  // namespace corfu

#endif  // SRC_CORFU_LOG_CLIENT_H_
