#include "src/corfu/cluster.h"

#include "src/util/logging.h"

namespace corfu {

using tango::NodeId;
using tango::Status;

CorfuCluster::CorfuCluster(tango::Transport* transport, Options options)
    : transport_(transport), options_(options) {
  TANGO_CHECK(options_.num_storage_nodes % options_.replication_factor == 0)
      << "storage nodes must divide evenly into replica sets";

  Projection initial;
  initial.epoch = 0;
  initial.page_size = options_.page_size;
  initial.backpointer_count = options_.backpointer_count;
  initial.sequencer = options_.sequencer_node;

  int num_sets = options_.num_storage_nodes / options_.replication_factor;
  for (int set = 0; set < num_sets; ++set) {
    std::vector<NodeId> chain;
    for (int r = 0; r < options_.replication_factor; ++r) {
      NodeId node = options_.storage_base +
                    static_cast<NodeId>(set * options_.replication_factor + r);
      storage_nodes_.push_back(std::make_unique<StorageNode>(
          transport_, node, NodeStorageOptions(node)));
      chain.push_back(node);
    }
    initial.replica_sets.push_back(std::move(chain));
  }

  sequencer_ = std::make_unique<Sequencer>(transport_, options_.sequencer_node,
                                           /*epoch=*/0,
                                           options_.backpointer_count,
                                           options_.admission);
  next_sequencer_node_ = options_.sequencer_node + 1000;
  next_spare_node_ =
      options_.storage_base + static_cast<NodeId>(options_.num_storage_nodes) +
      10000;

  projection_store_ = std::make_unique<ProjectionStore>(
      transport_, options_.projection_store_node, std::move(initial));
}

CorfuCluster::~CorfuCluster() {
  // Stop the monitor before any service it probes is torn down.
  monitor_.reset();
}

std::unique_ptr<CorfuClient> CorfuCluster::MakeClient(
    CorfuClient::Options options) const {
  return std::make_unique<CorfuClient>(transport_,
                                       options_.projection_store_node, options);
}

StorageNode::Options CorfuCluster::NodeStorageOptions(tango::NodeId node) const {
  StorageNode::Options storage_options = options_.storage;
  storage_options.page_size = options_.page_size;
  if (!options_.data_dir.empty()) {
    storage_options.data_dir =
        options_.data_dir + "/node-" + std::to_string(node);
  } else if (!options_.journal_dir.empty()) {
    storage_options.journal_path =
        options_.journal_dir + "/node-" + std::to_string(node) + ".journal";
  }
  return storage_options;
}

void CorfuCluster::SpawnStorageNode(tango::NodeId node) {
  std::lock_guard<std::mutex> lock(spawn_mu_);
  storage_nodes_.push_back(std::make_unique<StorageNode>(
      transport_, node, NodeStorageOptions(node)));
}

tango::NodeId CorfuCluster::SpawnSpareStorageNode() {
  std::lock_guard<std::mutex> lock(spawn_mu_);
  NodeId node = next_spare_node_++;
  storage_nodes_.push_back(std::make_unique<StorageNode>(
      transport_, node, NodeStorageOptions(node)));
  return node;
}

tango::NodeId CorfuCluster::SpawnReplacementSequencer() {
  std::lock_guard<std::mutex> lock(spawn_mu_);
  NodeId node = next_sequencer_node_++;
  replacement_sequencers_.push_back(std::make_unique<Sequencer>(
      transport_, node, /*epoch=*/0, options_.backpointer_count,
      options_.admission));
  return node;
}

HealthMonitor* CorfuCluster::StartHealthMonitor(HealthMonitor::Options options) {
  monitor_ = std::make_unique<HealthMonitor>(
      transport_, options_.projection_store_node, options);
  monitor_->set_spare_provider([this] { return SpawnSpareStorageNode(); });
  monitor_->set_sequencer_provider(
      [this] { return SpawnReplacementSequencer(); });
  monitor_->Start();
  return monitor_.get();
}

Status CorfuCluster::ReplaceSequencer(CorfuClient* client) {
  // Crash the old sequencer: its registration disappears, so in-flight
  // clients see kUnavailable and fall back to reconfigured state.
  sequencer_.reset();

  NodeId new_node = next_sequencer_node_++;
  // The replacement starts empty at epoch 0 and is bootstrapped by
  // Reconfigure with the sealed tail + rebuilt backpointer state.
  sequencer_ = std::make_unique<Sequencer>(transport_, new_node, /*epoch=*/0,
                                           options_.backpointer_count,
                                           options_.admission);
  return Reconfigure(client,
                     [new_node](Projection& p) { p.sequencer = new_node; });
}

}  // namespace corfu
