// AppendPipeline: windowed asynchronous appends over the shared log.
//
// The synchronous append path costs one sequencer round trip plus one
// blocking chain write per entry, so single-client write throughput is
// bounded by link latency.  The sequencer, however, assigns global order at
// grant time — once two entries hold distinct tokens their chain writes are
// independent, and replicating them concurrently cannot violate log order.
// The pipeline exploits exactly that:
//
//   * a bounded window of in-flight appends (Submit blocks when full, which
//     is the only backpressure mechanism);
//   * grant amortization: when several appends to the same stream set wait
//     for tokens, one SequencerNext(count = waiting, capped at grant_batch)
//     buys offsets for all of them, each with its own ready-made backpointer
//     headers (see SequencerGrant::token_backpointers);
//   * out-of-order completion: each append completes when its own chain
//     write lands, independent of earlier offsets.  Readers already tolerate
//     temporarily unwritten lower offsets (holes) — that is the log's normal
//     state during concurrent appends, pipelined or not;
//   * per-token failure isolation: losing an offset (kWritten/kTrimmed) or a
//     sealed epoch abandons only that token; the entry re-drives through the
//     client's RetryPolicy on a fresh token.  Abandoned and never-used pooled
//     tokens are junk-filled at Shutdown so the window leaves no lingering
//     holes behind.
//
// Thread safety: Submit/Drain/stats may be called from any thread.  Shutdown
// (and the destructor) must not race with Submit.

#ifndef SRC_CORFU_APPEND_PIPELINE_H_
#define SRC_CORFU_APPEND_PIPELINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "src/corfu/projection.h"
#include "src/corfu/sequencer.h"
#include "src/corfu/types.h"
#include "src/obs/metrics.h"
#include "src/util/status.h"
#include "src/util/threading.h"

namespace corfu {

class CorfuClient;

class AppendPipeline {
 public:
  struct Options {
    // Maximum appends in flight; also the AIMD window ceiling.
    uint32_t window = 8;
    // Tokens per SequencerNext request (more when even more appends are
    // already waiting on the same stream set).  Surplus tokens are pooled
    // for subsequent appends and junk-filled at Shutdown if never used, so
    // over-granting trades a few teardown junk entries for one sequencer
    // round trip per grant_batch appends.
    uint32_t grant_batch = 8;
    // Worker threads; 0 = one per window slot (the pre-AIMD behavior).
    uint32_t workers = 0;
    // AIMD window adaptation: kBusy sheds and chain-write timeouts halve the
    // effective window (down to 1); each completed append grows it back by
    // ~1/cwnd.  With no overload signals the window sits at `window`, so
    // the default costs nothing on healthy clusters.
    bool adaptive_window = true;
    // When true, Submit with a full window fails the append immediately
    // with kBusy + a depth-derived retry-after hint instead of blocking —
    // the open-loop mode load generators and latency-sensitive callers use.
    bool shed_on_full = false;
    // Per-token chain-write deadline: a write that outlives this is timed
    // out (freeing its worker and shrinking the window) while the straggler
    // finishes on a detached helper — write-once semantics make the late
    // write harmless (first-writer-wins; the token is junk-filled).  0 = no
    // deadline: a wedged storage node can pin a worker indefinitely.
    uint32_t token_deadline_ms = 0;
  };

  // Invoked exactly once per submitted append, from a worker thread, with
  // the final status and (on success) the entry's log offset.
  using Completion =
      std::function<void(const tango::Status&, LogOffset offset)>;

  // Future-style completion: Wait() blocks until the append finishes.
  class Handle {
   public:
    Handle() = default;
    bool valid() const { return state_ != nullptr; }
    // Blocks until the append completes; returns its final status.
    tango::Status Wait() const;
    // The assigned offset; valid once Wait() has returned OK.
    LogOffset offset() const;

   private:
    friend class AppendPipeline;
    struct State;
    std::shared_ptr<State> state_;
  };

  // Lifetime token-accounting counters, for invariant checks in tests and
  // benches: after Shutdown, tokens_granted ==
  // completed_appends + tokens_lost + tokens_filled - fill_failures' holes —
  // in particular every abandoned or pooled-but-unused token must show up in
  // tokens_filled (or fill_failures).
  struct Stats {
    uint64_t submitted = 0;
    uint64_t completed_ok = 0;
    uint64_t completed_error = 0;
    uint64_t grant_rpcs = 0;
    uint64_t tokens_granted = 0;
    // Tokens whose offset was consumed by another writer or trimmed: no fill
    // needed, the offset is not a hole.
    uint64_t tokens_lost = 0;
    // Tokens given up with the offset still unwritten (sealed epoch, chain
    // failure, teardown surplus); each must be junk-filled.
    uint64_t tokens_abandoned = 0;
    uint64_t tokens_filled = 0;
    uint64_t fill_failures = 0;
  };

  AppendPipeline(CorfuClient* client, Options options);
  // Drains queued work, joins the workers, junk-fills leftover tokens.
  ~AppendPipeline();

  AppendPipeline(const AppendPipeline&) = delete;
  AppendPipeline& operator=(const AppendPipeline&) = delete;

  // Enqueues an append of `payload` to `streams`; blocks while the window is
  // full.  The returned Handle resolves when the append completes; if
  // `completion` is non-null it fires first (from the worker thread).
  // Oversized payloads fail immediately with kOutOfRange, without consuming
  // a token or a window slot.
  Handle Submit(std::span<const uint8_t> payload,
                std::vector<StreamId> streams, Completion completion = nullptr);

  // Blocks until every append submitted so far has completed.
  void Drain();

  // Drain + stop the workers + junk-fill every pooled or abandoned token.
  // Idempotent; Submit must not be called afterwards.
  void Shutdown();

  Stats stats() const;
  const Options& options() const { return options_; }
  // Current AIMD window limit, for tests and benches.
  uint32_t window_limit() const;

 private:
  // A granted log position: the offset plus the backpointer headers the
  // sequencer computed for it, bound to the epoch of the grant.
  struct Token {
    LogOffset offset = kInvalidOffset;
    Epoch epoch = 0;
    std::vector<StreamTail> backpointers;
  };

  // Per-stream-set token pool.  One grant RPC in flight per bucket: the
  // granting worker asks for every waiter's token at once, the others block
  // on `cv` until tokens arrive.
  struct Bucket {
    std::deque<Token> tokens;
    uint32_t waiting = 0;
    bool grant_inflight = false;
    std::condition_variable cv;
  };

  struct Work {
    std::vector<uint8_t> payload;
    std::vector<StreamId> streams;
    std::shared_ptr<Handle::State> state;
    Completion completion;
  };

  void WorkerLoop();
  void ProcessOne(Work& work);
  // AIMD: halves the effective window on an overload signal (kBusy shed or
  // chain-write deadline); grows it ~1/cwnd per success.
  void ShrinkWindow();
  void GrowWindow();
  uint32_t WindowLimitLocked() const;
  // ChainWrite bounded by token_deadline_ms via the deadline runner (when
  // configured); a timed-out write returns kTimeout while the straggling
  // call finishes in the background.
  tango::Status BoundedChainWrite(const Projection& p, LogOffset offset,
                                  const std::vector<uint8_t>& bytes);
  // One append attempt: acquire a token, encode, chain-write.  On success
  // stores the offset in *out.  Retryable failures are returned for
  // ProcessOne's policy loop to handle.
  tango::Status TryOnce(const Work& work, LogOffset* out);
  // Pops (or grants) a token for `streams` at `p`'s epoch.  Tokens found in
  // the pool with a stale epoch are moved to the abandoned list.
  tango::Status AcquireToken(const Projection& p,
                             const std::vector<StreamId>& streams, Token* out);
  // Marks a token's offset as a hole to be junk-filled at Shutdown.
  void Abandon(Token token);
  void Complete(Work& work, const tango::Status& status, LogOffset offset);

  CorfuClient* client_;
  Options options_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;   // workers: work available or stopping
  std::condition_variable window_cv_;  // submitters: a window slot freed
  std::condition_variable idle_cv_;    // Drain: everything completed
  std::deque<Work> queue_;
  uint32_t active_ = 0;  // works popped but not yet completed
  double cwnd_ = 1.0;    // AIMD window, in [1, options_.window]
  bool stopping_ = false;
  bool shut_down_ = false;
  std::vector<std::thread> workers_;
  // Helper threads for deadline-bounded chain writes; reset (joining any
  // stragglers) during Shutdown, before leftover tokens are junk-filled.
  std::unique_ptr<tango::DeadlineRunner> deadline_runner_;

  std::mutex pool_mu_;
  std::map<std::vector<StreamId>, Bucket> pool_;
  std::vector<Token> abandoned_;

  mutable std::mutex stats_mu_;
  Stats stats_;

  // Registry instruments (see DESIGN.md "Observability").
  tango::obs::Gauge* depth_gauge_;
  tango::obs::Counter* grant_rpcs_;
  tango::obs::Counter* tokens_granted_;
  tango::obs::Counter* abandoned_counter_;
  tango::obs::Histogram* grant_batch_hist_;
  tango::obs::Histogram* grant_stage_us_;
  tango::obs::Histogram* write_stage_us_;
  tango::obs::Gauge* cwnd_gauge_;
  tango::obs::Counter* shed_counter_;
  tango::obs::Counter* busy_counter_;
  tango::obs::Counter* deadline_timeouts_;
};

}  // namespace corfu

#endif  // SRC_CORFU_APPEND_PIPELINE_H_
