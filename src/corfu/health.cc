#include "src/corfu/health.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>
#include <vector>

// For ScopedNetworkIdentity: the monitor stamps its probes with an identity
// so transports that model per-link partitions (InProcTransport) can isolate
// the monitor itself.  On transports without link modeling the scope is a
// no-op thread-local write.
#include "src/net/inproc_transport.h"
#include "src/corfu/sequencer.h"
#include "src/obs/flight.h"
#include "src/util/logging.h"
#include "src/util/serialize.h"
#include "src/util/threading.h"

namespace corfu {

using tango::ByteReader;
using tango::ByteWriter;
using tango::NodeId;
using tango::Result;
using tango::Status;
using tango::StatusCode;

namespace {

// How a probe outcome bears on the target's health.
enum class Probe {
  kHealthy,  // answered (any answer, even an application error, is a pulse)
  kStale,    // answered kSealedEpoch: the node is alive, *we* may be behind
  kMiss,     // unreachable or timed out
};

Probe Classify(const Status& st) {
  if (st == StatusCode::kSealedEpoch) {
    return Probe::kStale;
  }
  if (st == StatusCode::kUnavailable || st == StatusCode::kTimeout) {
    return Probe::kMiss;
  }
  return Probe::kHealthy;
}

}  // namespace

HealthMonitor::HealthMonitor(tango::Transport* transport,
                             NodeId projection_store, Options options)
    : transport_(transport), options_(options) {
  client_ = std::make_unique<CorfuClient>(transport, projection_store);
  Projection p = client_->projection();
  for (const std::vector<NodeId>& chain : p.replica_sets) {
    expected_replication_ = std::max(expected_replication_, chain.size());
  }
  auto& reg = tango::obs::MetricsRegistry::Default();
  heartbeats_ = reg.GetCounter("health.heartbeats");
  misses_ = reg.GetCounter("health.misses");
  failovers_storage_ = reg.GetCounter("health.failovers_storage");
  failovers_sequencer_ = reg.GetCounter("health.failovers_sequencer");
  reconfigurations_ = reg.GetGauge("health.reconfigurations");
  recovery_latency_ = reg.GetHistogram("health.recovery_latency_us");
}

HealthMonitor::~HealthMonitor() { Stop(); }

void HealthMonitor::set_spare_provider(SpareProvider provider) {
  std::lock_guard<std::mutex> lock(run_mu_);
  spare_provider_ = std::move(provider);
}

void HealthMonitor::set_sequencer_provider(SequencerProvider provider) {
  std::lock_guard<std::mutex> lock(run_mu_);
  sequencer_provider_ = std::move(provider);
}

void HealthMonitor::Start() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (thread_.joinable()) {
    return;
  }
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void HealthMonitor::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!thread_.joinable()) {
      return;
    }
    stop_ = true;
  }
  thread_cv_.notify_all();
  thread_.join();
  thread_ = std::thread();
}

void HealthMonitor::Loop() {
  tango::SetCurrentThreadName("tgo-health");
  while (true) {
    {
      std::unique_lock<std::mutex> lock(thread_mu_);
      thread_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.heartbeat_interval_ms),
          [this] { return stop_; });
      if (stop_) {
        return;
      }
    }
    // Failures inside a round are expected while the cluster is degraded
    // (lost CAS races, unreachable peers); RunOnce logs them and the next
    // round re-evaluates from the refreshed projection.
    (void)RunOnce();
  }
}

int HealthMonitor::ConsecutiveMisses(NodeId node) const {
  std::lock_guard<std::mutex> lock(run_mu_);
  auto it = misses_by_node_.find(node);
  return it == misses_by_node_.end() ? 0 : it->second;
}

void HealthMonitor::NoteRecoveryStart() {
  uint64_t expected = 0;
  recovery_start_us_.compare_exchange_strong(expected, tango::NowMicros(),
                                             std::memory_order_relaxed);
}

Status HealthMonitor::ProbeStorage(NodeId node, Epoch epoch) {
  ByteWriter w(4);
  w.PutU32(epoch);
  std::vector<uint8_t> resp;
  return transport_->Call(node, kStorageLocalTail, w.bytes(), &resp);
}

Status HealthMonitor::RunOnce() {
  std::lock_guard<std::mutex> run_lock(run_mu_);
  std::optional<tango::ScopedNetworkIdentity> identity;
  if (options_.identity != tango::kInvalidNodeId) {
    identity.emplace(options_.identity);
  }

  // --- Probe phase -------------------------------------------------------
  // The projection store probe doubles as the refresh: any reconfiguration a
  // concurrent monitor landed is adopted before we judge anyone.
  heartbeats_->Add();
  Status store_st = client_->RefreshProjection();
  if (Classify(store_st) == Probe::kMiss) {
    misses_->Add();
    // A single CAS store has no failover; keep serving from the cached
    // projection and keep probing.
  }
  Projection p = client_->projection();

  heartbeats_->Add();
  Result<SequencerTailInfo> seq_tail =
      SequencerTail(transport_, p.sequencer, p.epoch, {});
  Probe seq_probe = Classify(seq_tail.status());
  if (seq_probe == Probe::kStale) {
    // Either our projection is behind (refresh fixes it) or the sequencer
    // itself is sealed behind the current epoch — a lost bootstrap, e.g. a
    // monitor that crashed between propose and bootstrap.  The latter is a
    // real outage (every append fails) that a plain heartbeat would miss.
    (void)client_->RefreshProjection();
    p = client_->projection();
    seq_tail = SequencerTail(transport_, p.sequencer, p.epoch, {});
    if (seq_tail.status() == StatusCode::kSealedEpoch) {
      NoteRecoveryStart();
      return ResyncSequencer();
    }
    seq_probe = Classify(seq_tail.status());
  }

  std::unordered_map<NodeId, int> next_misses;
  int seq_misses = 0;
  if (seq_probe == Probe::kMiss) {
    misses_->Add();
    seq_misses = misses_by_node_[p.sequencer] + 1;
    next_misses[p.sequencer] = seq_misses;
    if (seq_misses >= options_.miss_threshold) {
      NoteRecoveryStart();
    }
  }

  bool saw_stale_storage = false;
  NodeId dead_storage = tango::kInvalidNodeId;
  for (const std::vector<NodeId>& chain : p.replica_sets) {
    for (NodeId node : chain) {
      heartbeats_->Add();
      Probe probe = Classify(ProbeStorage(node, p.epoch));
      switch (probe) {
        case Probe::kHealthy:
          break;
        case Probe::kStale:
          saw_stale_storage = true;
          break;
        case Probe::kMiss: {
          misses_->Add();
          int m = misses_by_node_[node] + 1;
          next_misses[node] = m;
          if (m >= options_.miss_threshold &&
              dead_storage == tango::kInvalidNodeId) {
            dead_storage = node;
            NoteRecoveryStart();
          }
          break;
        }
      }
    }
  }
  // Nodes that answered — or left the projection — drop out of the ledger,
  // so a blip never accumulates across unrelated incidents.
  misses_by_node_ = std::move(next_misses);

  if (saw_stale_storage) {
    // A reconfiguration we have not seen yet; adopt it before acting.
    (void)client_->RefreshProjection();
  }

  // --- React phase: at most one epoch change per round -------------------
  if (seq_misses >= options_.miss_threshold) {
    return HandleSequencerFailure();
  }
  if (dead_storage != tango::kInvalidNodeId) {
    return DegradeChain(dead_storage);
  }
  if (options_.auto_repair && spare_provider_) {
    Projection current = client_->projection();
    for (size_t set = 0; set < current.replica_sets.size(); ++set) {
      if (current.replica_sets[set].size() < expected_replication_) {
        return RepairChain(set);
      }
    }
  }

  // --- Healed? -----------------------------------------------------------
  if (recovery_start_us_.load(std::memory_order_relaxed) != 0 &&
      store_st.ok() && seq_probe == Probe::kHealthy && misses_by_node_.empty()) {
    Projection current = client_->projection();
    bool full = true;
    for (const std::vector<NodeId>& chain : current.replica_sets) {
      full = full && chain.size() >= expected_replication_;
    }
    if (full) {
      uint64_t start = recovery_start_us_.exchange(0, std::memory_order_relaxed);
      uint64_t latency = tango::NowMicros() - start;
      recovery_latency_->Record(latency);
      tango::obs::FlightRecorder::Default().Record(tango::obs::FlightKind::kRecovery,
                                            "cluster healed", current.epoch,
                                            latency);
      TANGO_LOG(kInfo)
          << "health: cluster healed at epoch " << current.epoch << " after "
          << latency << " us";
    }
  }
  return Status::Ok();
}

Status HealthMonitor::HandleSequencerFailure() {
  if (!sequencer_provider_) {
    return Status(StatusCode::kFailedPrecondition,
                  "sequencer dead and no sequencer provider configured");
  }
  if (pending_sequencer_ == tango::kInvalidNodeId) {
    pending_sequencer_ = sequencer_provider_();
  }
  NodeId replacement = pending_sequencer_;
  if (replacement == tango::kInvalidNodeId) {
    return Status(StatusCode::kUnavailable, "no replacement sequencer");
  }
  TANGO_LOG(kWarning)
      << "health: sequencer unreachable, reconfiguring to node " << replacement;
  Status st = Reconfigure(
      client_.get(),
      [replacement](Projection& next) { next.sequencer = replacement; },
      options_.rebuild_scan_limit);
  if (!st.ok()) {
    // Lost the race or a peer was unreachable mid-seal; a refreshed view
    // next round decides whether the failover is still needed.  The spawned
    // replacement is kept for reuse.
    (void)client_->RefreshProjection();
    return st;
  }
  pending_sequencer_ = tango::kInvalidNodeId;
  misses_by_node_.clear();
  failovers_sequencer_->Add();
  reconfigurations_->Add(1);
  tango::obs::FlightRecorder::Default().Record(
      tango::obs::FlightKind::kReconfig, "sequencer failover",
      client_->projection().epoch);
  return Status::Ok();
}

Status HealthMonitor::ResyncSequencer() {
  TANGO_LOG(kWarning)
      << "health: sequencer sealed behind current epoch, re-bootstrapping";
  // A no-op membership change: seals e+1, rebuilds backpointer state from
  // the log, and bootstraps the (same) sequencer at the new epoch.
  Status st = Reconfigure(
      client_.get(), [](Projection&) {}, options_.rebuild_scan_limit);
  if (st.ok()) {
    reconfigurations_->Add(1);
    tango::obs::FlightRecorder::Default().Record(
        tango::obs::FlightKind::kReconfig, "sequencer resync",
        client_->projection().epoch);
  } else {
    (void)client_->RefreshProjection();
  }
  return st;
}

Status HealthMonitor::DegradeChain(NodeId dead) {
  Projection current = client_->projection();
  size_t set_index = current.replica_sets.size();
  size_t chain_pos = 0;
  for (size_t s = 0; s < current.replica_sets.size(); ++s) {
    for (size_t r = 0; r < current.replica_sets[s].size(); ++r) {
      if (current.replica_sets[s][r] == dead) {
        set_index = s;
        chain_pos = r;
      }
    }
  }
  if (set_index == current.replica_sets.size()) {
    return Status::Ok();  // already reconfigured away by a peer
  }
  if (current.replica_sets[set_index].size() <= 1) {
    // Last replica of its extent: excising it would lose data.  Keep
    // probing — if the node comes back, the chain heals; an operator can
    // also repair from a journal.
    return Status(StatusCode::kFailedPrecondition,
                  "sole surviving replica is unreachable; cannot degrade");
  }

  Projection next = current;
  next.epoch = current.epoch + 1;
  next.replica_sets[set_index].erase(next.replica_sets[set_index].begin() +
                                     static_cast<long>(chain_pos));
  TANGO_LOG(kWarning)
      << "health: storage node " << dead << " declared dead, degrading set "
      << set_index << " at epoch " << next.epoch;

  // Seal the survivors (all chains — the epoch is global) at the new epoch,
  // collecting the sealed tail.  kSealedEpoch from any node means a peer
  // monitor won the race to e+1; adopt its view instead.
  LogOffset tail = 0;
  for (size_t s = 0; s < next.replica_sets.size(); ++s) {
    for (NodeId node : next.replica_sets[s]) {
      ByteWriter w(4);
      w.PutU32(next.epoch);
      std::vector<uint8_t> resp;
      Status sealed = transport_->Call(node, kStorageSeal, w.bytes(), &resp);
      if (!sealed.ok()) {
        (void)client_->RefreshProjection();
        return sealed;
      }
      ByteReader r(resp);
      LogOffset local_tail = r.GetU64();
      if (local_tail > 0) {
        tail = std::max(tail, next.GlobalOffsetFor(s, local_tail - 1) + 1);
      }
    }
  }

  Status proposed =
      ProposeProjection(transport_, client_->projection_store(), next);
  if (!proposed.ok()) {
    (void)client_->RefreshProjection();
    return proposed;
  }
  failovers_storage_->Add();
  reconfigurations_->Add(1);
  tango::obs::FlightRecorder::Default().Record(tango::obs::FlightKind::kReconfig,
                                        "storage failover", next.epoch);

  // The sequencer keeps its soft state across a storage swap; it only needs
  // the new epoch and the sealed tail.  If it is dead too, the next round's
  // probe escalates to a sequencer failover, which re-bootstraps anyway.
  Status boot =
      SequencerBootstrap(transport_, next.sequencer, next.epoch, tail, {});
  (void)client_->RefreshProjection();
  return boot;
}

Status HealthMonitor::CopyLocalRange(NodeId source, NodeId dest, Epoch epoch,
                                     LogOffset from, LogOffset to) {
  for (LogOffset local = from; local < to; ++local) {
    ByteWriter read_req(12);
    read_req.PutU32(epoch);
    read_req.PutU64(local);
    std::vector<uint8_t> page_resp;
    Status read =
        transport_->Call(source, kStorageRead, read_req.bytes(), &page_resp);
    if (read == StatusCode::kUnwritten || read == StatusCode::kTrimmed) {
      continue;  // holes stay holes; trimmed pages stay reclaimed
    }
    if (!read.ok()) {
      return read;
    }
    ByteReader page_reader(page_resp);
    std::vector<uint8_t> page = page_reader.GetBlob();
    ByteWriter write_req(16 + page.size());
    write_req.PutU32(epoch);
    write_req.PutU64(local);
    write_req.PutBlob(page);
    Status written =
        transport_->Call(dest, kStorageWrite, write_req.bytes(), nullptr);
    // kWritten means a previous (partial) copy already placed this page.
    if (!written.ok() && written != StatusCode::kWritten) {
      return written;
    }
  }
  return Status::Ok();
}

Status HealthMonitor::RepairChain(size_t set_index) {
  Projection current = client_->projection();
  if (set_index >= current.replica_sets.size() ||
      current.replica_sets[set_index].empty()) {
    return Status(StatusCode::kFailedPrecondition, "no surviving replica");
  }
  const std::vector<NodeId>& chain = current.replica_sets[set_index];

  NodeId spare;
  if (pending_spare_ != tango::kInvalidNodeId &&
      pending_spare_set_ == set_index) {
    spare = pending_spare_;  // resume the interrupted repair
  } else {
    spare = spare_provider_();
    if (spare == tango::kInvalidNodeId) {
      return Status(StatusCode::kUnavailable, "no spare storage node");
    }
    pending_spare_ = spare;
    pending_spare_set_ = set_index;
  }

  // Warm copy: stream the chain's pages onto the spare at the *current*
  // epoch, with foreground traffic still flowing.  The head holds a superset
  // of every replica below it, so it is the source.
  NodeId source = chain[0];
  ByteWriter tail_req(4);
  tail_req.PutU32(current.epoch);
  std::vector<uint8_t> tail_resp;
  Status tail_st =
      transport_->Call(source, kStorageLocalTail, tail_req.bytes(), &tail_resp);
  if (!tail_st.ok()) {
    (void)client_->RefreshProjection();
    return tail_st;
  }
  ByteReader tail_reader(tail_resp);
  LogOffset watermark = tail_reader.GetU64();
  TANGO_LOG(kInfo)
      << "health: repairing set " << set_index << " onto spare " << spare
      << " (warm copy of " << watermark << " pages from node " << source << ")";
  TANGO_RETURN_IF_ERROR(
      CopyLocalRange(source, spare, current.epoch, 0, watermark));

  // Seal at e+1 — freezing writers — and catch up the pages that landed
  // during the warm copy, then propose the repaired chain (spare at the
  // tail).  The sealed window is proportional to the copy *delta*, not the
  // chain size.
  Projection next = current;
  next.epoch = current.epoch + 1;
  next.replica_sets[set_index].push_back(spare);
  LogOffset tail = 0;
  LogOffset source_tail = watermark;
  for (size_t s = 0; s < next.replica_sets.size(); ++s) {
    for (NodeId node : next.replica_sets[s]) {
      ByteWriter w(4);
      w.PutU32(next.epoch);
      std::vector<uint8_t> resp;
      Status sealed = transport_->Call(node, kStorageSeal, w.bytes(), &resp);
      if (!sealed.ok()) {
        (void)client_->RefreshProjection();
        return sealed;
      }
      ByteReader r(resp);
      LogOffset local_tail = r.GetU64();
      if (node == source) {
        source_tail = local_tail;
      }
      if (local_tail > 0) {
        tail = std::max(tail, next.GlobalOffsetFor(s, local_tail - 1) + 1);
      }
    }
  }
  TANGO_RETURN_IF_ERROR(
      CopyLocalRange(source, spare, next.epoch, watermark, source_tail));

  Status proposed =
      ProposeProjection(transport_, client_->projection_store(), next);
  if (!proposed.ok()) {
    // Lost the CAS; the spare (and its copied pages) stays pending for this
    // set and the next round retries against the winner's projection.
    (void)client_->RefreshProjection();
    return proposed;
  }
  pending_spare_ = tango::kInvalidNodeId;
  reconfigurations_->Add(1);
  tango::obs::FlightRecorder::Default().Record(tango::obs::FlightKind::kReconfig,
                                        "set repaired with spare", next.epoch,
                                        spare);
  TANGO_LOG(kInfo)
      << "health: set " << set_index << " repaired with spare " << spare
      << " at epoch " << next.epoch;

  Status boot =
      SequencerBootstrap(transport_, next.sequencer, next.epoch, tail, {});
  (void)client_->RefreshProjection();
  return boot;
}

}  // namespace corfu
