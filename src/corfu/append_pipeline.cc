#include "src/corfu/append_pipeline.h"

#include <algorithm>
#include <utility>

#include "src/corfu/entry.h"
#include "src/corfu/log_client.h"
#include "src/obs/flight.h"
#include "src/util/retry.h"
#include "src/util/threading.h"

namespace corfu {

using tango::Result;
using tango::Status;
using tango::StatusCode;

struct AppendPipeline::Handle::State {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  Status status = Status::Ok();
  LogOffset offset = kInvalidOffset;
};

Status AppendPipeline::Handle::Wait() const {
  std::unique_lock<std::mutex> lock(state_->m);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->status;
}

LogOffset AppendPipeline::Handle::offset() const {
  std::lock_guard<std::mutex> lock(state_->m);
  return state_->offset;
}

AppendPipeline::AppendPipeline(CorfuClient* client, Options options)
    : client_(client), options_(options) {
  options_.window = std::max(options_.window, 1u);
  options_.grant_batch =
      std::clamp(options_.grant_batch, 1u, kMaxGrantBatch);
  cwnd_ = static_cast<double>(options_.window);
  auto& reg = tango::obs::MetricsRegistry::Default();
  depth_gauge_ = reg.GetGauge("log.pipeline.depth");
  grant_rpcs_ = reg.GetCounter("log.pipeline.grant_rpcs");
  tokens_granted_ = reg.GetCounter("log.pipeline.tokens_granted");
  abandoned_counter_ = reg.GetCounter("log.pipeline.tokens_abandoned");
  grant_batch_hist_ = reg.GetHistogram("log.pipeline.grant_batch");
  grant_stage_us_ = reg.GetHistogram("log.append.stage.grant_us");
  write_stage_us_ = reg.GetHistogram("log.append.stage.write_us");
  cwnd_gauge_ = reg.GetGauge("overload.pipeline.cwnd");
  shed_counter_ = reg.GetCounter("overload.pipeline.shed");
  busy_counter_ = reg.GetCounter("overload.pipeline.busy");
  deadline_timeouts_ = reg.GetCounter("overload.pipeline.deadline_timeouts");
  cwnd_gauge_->Set(static_cast<int64_t>(cwnd_));
  if (options_.token_deadline_ms > 0) {
    deadline_runner_ = std::make_unique<tango::DeadlineRunner>();
  }
  uint32_t workers =
      options_.workers != 0 ? options_.workers : options_.window;
  workers_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

uint32_t AppendPipeline::WindowLimitLocked() const {
  return std::max(1u, static_cast<uint32_t>(cwnd_));
}

uint32_t AppendPipeline::window_limit() const {
  std::lock_guard<std::mutex> lock(mu_);
  return WindowLimitLocked();
}

void AppendPipeline::ShrinkWindow() {
  if (!options_.adaptive_window) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  cwnd_ = std::max(1.0, cwnd_ / 2.0);
  cwnd_gauge_->Set(static_cast<int64_t>(cwnd_));
}

void AppendPipeline::GrowWindow() {
  if (!options_.adaptive_window) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (cwnd_ < static_cast<double>(options_.window)) {
    cwnd_ = std::min(static_cast<double>(options_.window),
                     cwnd_ + 1.0 / std::max(cwnd_, 1.0));
    // The window may have widened past the current depth; admit a blocked
    // submitter.
    window_cv_.notify_one();
  }
  cwnd_gauge_->Set(static_cast<int64_t>(cwnd_));
}

AppendPipeline::~AppendPipeline() { Shutdown(); }

AppendPipeline::Handle AppendPipeline::Submit(
    std::span<const uint8_t> payload, std::vector<StreamId> streams,
    Completion completion) {
  Handle handle;
  handle.state_ = std::make_shared<Handle::State>();

  // Fail oversized records up front — before they consume a window slot or a
  // sequencer token that would become a junk hole.
  Projection p = client_->Snapshot();
  if (EntryOverheadBound(streams.size(), p.backpointer_count) +
          payload.size() >
      p.page_size) {
    Work reject;
    reject.state = handle.state_;
    reject.completion = std::move(completion);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.submitted;
    }
    Complete(reject, Status(StatusCode::kOutOfRange, "entry exceeds page size"),
             kInvalidOffset);
    return handle;
  }

  Work work;
  work.payload.assign(payload.begin(), payload.end());
  work.streams = std::move(streams);
  work.state = handle.state_;
  work.completion = std::move(completion);
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shut_down_) {
      lock.unlock();
      Complete(work,
               Status(StatusCode::kFailedPrecondition, "pipeline shut down"),
               kInvalidOffset);
      return handle;
    }
    if (queue_.size() + active_ >= WindowLimitLocked()) {
      if (options_.shed_on_full) {
        // Open-loop mode: a full window is an overload signal for the
        // caller, not something to queue behind.  The hint scales with the
        // depth a retry would have to wait out.
        uint32_t hint = static_cast<uint32_t>(std::clamp<uint64_t>(
            1000 * (queue_.size() + active_), 200, 100'000));
        shed_counter_->Add();
        lock.unlock();
        {
          std::lock_guard<std::mutex> slock(stats_mu_);
          ++stats_.submitted;
        }
        Complete(work, Status::Busy(hint, "append window full"),
                 kInvalidOffset);
        return handle;
      }
      // The submitter is actually blocked on the window — the stall the
      // flight recorder exists to explain after a crash.
      uint64_t stall_start_us = tango::NowMicros();
      window_cv_.wait(
          lock, [&] { return queue_.size() + active_ < WindowLimitLocked(); });
      tango::obs::FlightRecorder::Default().Record(
          tango::obs::FlightKind::kPipelineStall, "append window stall",
          tango::NowMicros() - stall_start_us, options_.window);
    }
    queue_.push_back(std::move(work));
    depth_gauge_->Set(static_cast<int64_t>(queue_.size() + active_));
    queue_cv_.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
  }
  return handle;
}

void AppendPipeline::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

void AppendPipeline::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_ && stopping_) {
      return;
    }
    shut_down_ = true;
    stopping_ = true;
    queue_cv_.notify_all();
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
  // Join any straggling deadline-bounded chain writes before junk-filling,
  // so a late write either landed (Fill no-ops on it) or never will.
  deadline_runner_.reset();
  // Every queued work has been processed; what remains are tokens that were
  // granted but never written.  Junk-fill them so the window leaves no holes
  // behind (first-writer-wins: Fill is a no-op where a real value landed).
  std::vector<Token> leftovers;
  uint64_t pooled_abandoned = 0;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    for (auto& [streams, bucket] : pool_) {
      for (Token& t : bucket.tokens) {
        leftovers.push_back(std::move(t));
        ++pooled_abandoned;  // unused at teardown: abandoned now
      }
    }
    pool_.clear();
    for (Token& t : abandoned_) {
      leftovers.push_back(std::move(t));
    }
    abandoned_.clear();
  }
  uint64_t filled = 0;
  uint64_t failures = 0;
  for (Token& t : leftovers) {
    Status st = client_->Fill(t.offset);
    if (st.ok()) {
      ++filled;
    } else {
      ++failures;
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.tokens_abandoned += pooled_abandoned;
    stats_.tokens_filled += filled;
    stats_.fill_failures += failures;
  }
  abandoned_counter_->Add(pooled_abandoned);
}

AppendPipeline::Stats AppendPipeline::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void AppendPipeline::WorkerLoop() {
  tango::SetCurrentThreadName("tgo-append");
  for (;;) {
    Work work;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      work = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      depth_gauge_->Set(static_cast<int64_t>(queue_.size() + active_));
    }
    ProcessOne(work);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      depth_gauge_->Set(static_cast<int64_t>(queue_.size() + active_));
      window_cv_.notify_one();
      if (queue_.empty() && active_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

void AppendPipeline::ProcessOne(Work& work) {
  // The same policy loop as the synchronous AppendToStreams, but per-token:
  // a failure abandons only this entry's token, never the whole window.
  tango::RetryPolicy::Attempt attempt = client_->retry_.Begin();
  Status st = Status::Ok();
  for (bool first = true;; first = false) {
    if (!first) {
      if (!attempt.ShouldRetry()) {
        st = Status(StatusCode::kTimeout, "append retries exhausted");
        break;
      }
      client_->append_retries_->Add();
    }
    LogOffset offset = kInvalidOffset;
    st = TryOnce(work, &offset);
    if (st.ok()) {
      client_->appends_->Add();
      GrowWindow();
      Complete(work, st, offset);
      return;
    }
    if (st == StatusCode::kWritten || st == StatusCode::kTrimmed) {
      // Lost the offset to another writer or to GC: no hole, just grab a
      // fresh token immediately.
      attempt.CountAttempt();
      continue;
    }
    if (st == StatusCode::kBusy) {
      // The sequencer or a storage node shed us: multiplicative decrease,
      // then the hinted cooperative pause before re-driving on a fresh
      // token.  No projection refresh — the cluster is alive, just loaded.
      busy_counter_->Add();
      ShrinkWindow();
      attempt.BackoffSleep(st.retry_after_us());
      continue;
    }
    if (st == StatusCode::kSealedEpoch) {
      Status refreshed = client_->RefreshProjection();
      if (!refreshed.ok()) {
        st = refreshed;
        break;
      }
      continue;
    }
    if (st == StatusCode::kUnavailable || st == StatusCode::kTimeout) {
      if (st == StatusCode::kTimeout) {
        // A timed-out chain write is congestion evidence just like a shed.
        ShrinkWindow();
      }
      Status refreshed = client_->RefreshProjection();
      if (!refreshed.ok()) {
        st = refreshed;
        break;
      }
      attempt.BackoffSleep();
      continue;
    }
    break;  // hard error
  }
  Complete(work, st, kInvalidOffset);
}

Status AppendPipeline::TryOnce(const Work& work, LogOffset* out) {
  Projection p = client_->Snapshot();
  Token token;
  {
    tango::obs::ScopedTimer timer(grant_stage_us_);
    TANGO_RETURN_IF_ERROR(AcquireToken(p, work.streams, &token));
  }

  LogEntry entry;
  entry.epoch = p.epoch;
  entry.type = EntryType::kData;
  entry.headers.reserve(work.streams.size());
  for (size_t i = 0; i < work.streams.size(); ++i) {
    StreamHeader h;
    h.stream = work.streams[i];
    h.backpointers = token.backpointers[i];
    while (h.backpointers.size() < p.backpointer_count) {
      h.backpointers.push_back(kInvalidOffset);
    }
    entry.headers.push_back(std::move(h));
  }
  entry.payload = work.payload;

  Result<std::vector<uint8_t>> encoded = EncodeEntry(entry, token.offset);
  if (!encoded.ok()) {
    Abandon(std::move(token));
    return encoded.status();
  }
  if (encoded->size() > p.page_size) {
    Abandon(std::move(token));
    return Status(StatusCode::kOutOfRange, "entry exceeds page size");
  }

  Status st;
  {
    tango::obs::ScopedTimer timer(write_stage_us_);
    st = BoundedChainWrite(p, token.offset, *encoded);
  }
  if (st == StatusCode::kBusy) {
    // Storage shed the write: hold the token (abandoning it would mint one
    // hole per shed) and retry the same offset a few times after the hinted
    // pause before giving the token up.
    tango::RetryPolicy::Attempt pause = client_->retry_.Begin();
    for (int tries = 0; st == StatusCode::kBusy && tries < 3; ++tries) {
      busy_counter_->Add();
      pause.BackoffSleep(st.retry_after_us());
      tango::obs::ScopedTimer timer(write_stage_us_);
      st = BoundedChainWrite(p, token.offset, *encoded);
    }
  }
  if (st.ok()) {
    *out = token.offset;
    return st;
  }
  if (st == StatusCode::kWritten || st == StatusCode::kTrimmed) {
    // The offset is occupied (or reclaimed) — not a hole, nothing to fill.
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.tokens_lost;
    return st;
  }
  // Sealed epoch or chain failure with the offset still unwritten: the token
  // becomes a hole we owe a junk-fill for.
  Abandon(std::move(token));
  return st;
}

Status AppendPipeline::BoundedChainWrite(const Projection& p, LogOffset offset,
                                         const std::vector<uint8_t>& bytes) {
  if (deadline_runner_ == nullptr) {
    return client_->ChainWrite(p, offset, bytes);
  }
  // The helper may outlive this frame, so it owns copies of everything it
  // touches (client_ itself outlives the runner: Shutdown joins stragglers).
  struct Ctx {
    CorfuClient* client;
    Projection p;
    LogOffset offset;
    std::vector<uint8_t> bytes;
    Status st = Status::Ok();
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->client = client_;
  ctx->p = p;
  ctx->offset = offset;
  ctx->bytes = bytes;
  bool in_time = deadline_runner_->Run(
      [ctx] { ctx->st = ctx->client->ChainWrite(ctx->p, ctx->offset,
                                                ctx->bytes); },
      static_cast<uint64_t>(options_.token_deadline_ms) * 1000);
  if (!in_time) {
    // The write is still in flight on the helper; whether it eventually
    // lands or not, abandoning the token is safe — first-writer-wins, and
    // Fill no-ops where a value landed.
    deadline_timeouts_->Add();
    return Status(StatusCode::kTimeout, "chain write exceeded token deadline");
  }
  return ctx->st;
}

Status AppendPipeline::AcquireToken(const Projection& p,
                                    const std::vector<StreamId>& streams,
                                    Token* out) {
  std::unique_lock<std::mutex> lock(pool_mu_);
  Bucket& bucket = pool_[streams];
  ++bucket.waiting;
  for (;;) {
    while (!bucket.tokens.empty()) {
      Token t = std::move(bucket.tokens.front());
      bucket.tokens.pop_front();
      if (t.epoch == p.epoch) {
        --bucket.waiting;
        *out = std::move(t);
        return Status::Ok();
      }
      // Granted under an epoch that has since been sealed; it can never be
      // written, only filled.
      abandoned_.push_back(std::move(t));
      abandoned_counter_->Add();
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.tokens_abandoned;
    }
    if (!bucket.grant_inflight) {
      break;  // this worker becomes the granter
    }
    bucket.cv.wait(lock);
  }

  bucket.grant_inflight = true;
  // One RPC buys at least a full batch of tokens — more when even more
  // appends are already waiting on this stream set.  Surplus tokens stay
  // pooled for the next submissions (the steady-state fast path: no grant
  // round trip at all) and are junk-filled at Shutdown if never used.
  uint32_t count =
      std::min(std::max(bucket.waiting, options_.grant_batch), kMaxGrantBatch);
  lock.unlock();
  Result<SequencerGrant> grant =
      SequencerNext(client_->transport_, p.sequencer, p.epoch, count, streams,
                    client_->client_id_);
  lock.lock();
  bucket.grant_inflight = false;
  if (!grant.ok()) {
    --bucket.waiting;
    bucket.cv.notify_all();  // let another waiter try (or fail) the grant
    return grant.status();
  }
  grant_rpcs_->Add();
  tokens_granted_->Add(count);
  grant_batch_hist_->Record(count);
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.grant_rpcs;
    stats_.tokens_granted += count;
  }
  for (uint32_t t = 0; t < count; ++t) {
    Token token;
    token.offset = grant->start + t;
    token.epoch = p.epoch;
    if (!grant->token_backpointers.empty()) {
      token.backpointers = std::move(grant->token_backpointers[t]);
    }
    bucket.tokens.push_back(std::move(token));
  }
  bucket.cv.notify_all();

  // Take our own token (front of the fresh batch).
  Token t = std::move(bucket.tokens.front());
  bucket.tokens.pop_front();
  --bucket.waiting;
  *out = std::move(t);
  return Status::Ok();
}

void AppendPipeline::Abandon(Token token) {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    abandoned_.push_back(std::move(token));
  }
  abandoned_counter_->Add();
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.tokens_abandoned;
}

void AppendPipeline::Complete(Work& work, const Status& status,
                              LogOffset offset) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (status.ok()) {
      ++stats_.completed_ok;
    } else {
      ++stats_.completed_error;
    }
  }
  if (work.completion) {
    work.completion(status, offset);
  }
  {
    std::lock_guard<std::mutex> lock(work.state->m);
    work.state->status = status;
    work.state->offset = offset;
    work.state->done = true;
  }
  work.state->cv.notify_all();
}

}  // namespace corfu
