// Streaming CORFU (§5): a readnext/sync interface layered on the shared log.
//
// A stream's metadata is a client-side linked list of the log offsets that
// belong to it.  The list is built lazily by asking the sequencer for the
// stream's last K offsets and striding *backward* through the K-redundant
// backpointers stored in each entry's stream header — N/K random reads for a
// stream with N unseen entries.  Junk entries (filled holes) carry no
// backpointers; when every pointer out of the frontier dead-ends in junk, the
// reader falls back to scanning the log backward offset-by-offset, exactly as
// the paper prescribes.
//
// Thread safety: StreamStore is designed to sit under the Tango runtime's
// playback lock; concurrent Append/MultiAppend calls are safe (they only
// touch the CorfuClient), but Sync/ReadNext for the same store must be
// externally serialized.

#ifndef SRC_CORFU_STREAM_H_
#define SRC_CORFU_STREAM_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/corfu/log_client.h"
#include "src/obs/metrics.h"
#include "src/corfu/types.h"
#include "src/util/status.h"

namespace tango {
class Executor;
}  // namespace tango

namespace corfu {

// A decoded entry paired with its log position.
struct StreamEntry {
  LogOffset offset = kInvalidOffset;
  std::shared_ptr<const LogEntry> entry;
};

class StreamStore {
 public:
  struct Options {
    // Entries cached across streams (a multiappended entry is fetched from
    // the log once even if it belongs to many local streams).  The cache is
    // LRU: a hit promotes, so hot multiappended entries survive long replays.
    size_t cache_capacity = 8192;
    // Read-ahead depth: on a cache miss, FetchEntry batch-reads up to this
    // many upcoming known offsets in one CorfuClient::ReadBatch call and
    // lands them in the entry cache.  0 disables prefetching entirely (the
    // original one-RPC-per-entry path).
    size_t readahead = 0;
    // Brown-out mode: when a Sync fails with an overload / outage status
    // (kBusy, kUnavailable, kTimeout), serve the stream's last successfully
    // synced tail — explicitly marked stale via IsStale — instead of
    // erroring, so readers keep draining known offsets (and the LRU entry
    // cache) while the cluster sheds.  Entries are immutable, so everything
    // already discovered is still correct; only the tail is behind.
    bool brownout_stale_reads = true;
  };

  // Which way FetchEntry prefetches through the known-offset list: forward
  // for playback, backward for newest-first scans (checkpoint search).
  enum class PrefetchDirection { kForward, kBackward };

  explicit StreamStore(CorfuClient* log) : StreamStore(log, Options{}) {}
  StreamStore(CorfuClient* log, Options options);
  ~StreamStore();  // waits out any in-flight async prefetch

  // Registers interest in a stream (idempotent).  Only opened streams can be
  // synced and read.
  void Open(StreamId stream);

  // Appends to a single stream.
  tango::Result<LogOffset> Append(StreamId stream,
                                  std::span<const uint8_t> payload);

  // Appends one entry to several streams atomically (multiappend).
  tango::Result<LogOffset> MultiAppend(std::span<const uint8_t> payload,
                                       const std::vector<StreamId>& streams);

  // Brings the stream's linked list up to date with the sequencer and
  // returns the current global log tail (the position up to which the list
  // is now complete).  Must be called before ReadNext for linearizability.
  tango::Result<LogOffset> Sync(StreamId stream);

  // Returns the next data entry of the stream, skipping junk.  Returns
  // kUnwritten when the cursor has consumed everything Sync discovered.
  tango::Result<StreamEntry> ReadNext(StreamId stream);

  // Like ReadNext but does not advance the cursor.
  tango::Result<StreamEntry> PeekNext(StreamId stream);

  // Syncs several streams with a single sequencer round trip; returns the
  // global log tail.  Equivalent to calling Sync on each stream.  Under
  // brown-out (every requested stream already synced once, overload
  // failure) returns the most conservative stale tail: the minimum of the
  // streams' last synced tails.
  tango::Result<LogOffset> SyncAll(const std::vector<StreamId>& streams);

  // Whether the stream's last Sync served a stale (brown-out) tail rather
  // than a fresh sequencer answer.
  bool IsStale(StreamId stream) const;

  // Advances the cursor past exactly one known offset (junk included),
  // without fetching it.  Used by global-order playback, which steps all
  // co-located streams through a multiappended entry in lockstep.
  void AdvanceCursor(StreamId stream);

  // Positions the cursor at the first known offset strictly greater than
  // `offset` (used when restoring a view from a checkpoint).
  void SeekCursorAfter(StreamId stream, LogOffset offset);

  // Log offset of the next entry the cursor would deliver, or kInvalidOffset
  // if the cursor is at the synced end.
  LogOffset NextOffset(StreamId stream) const;

  // All known offsets of the stream (ascending; includes junk positions).
  const std::vector<LogOffset>& KnownOffsets(StreamId stream) const;

  // Rewinds the readnext cursor to the beginning of the stream (used to
  // rebuild a view from history, §3.1).
  void ResetCursor(StreamId stream);

  // Cached random read of any log position (repairing holes if needed).
  // With Options::readahead > 0, a miss prefetches the next known offsets in
  // `direction` via one batched read before falling back to ReadRepair for
  // the demanded offset.
  tango::Result<std::shared_ptr<const LogEntry>> FetchEntry(
      LogOffset offset,
      PrefetchDirection direction = PrefetchDirection::kForward);

  // Launches a background batched read of the next Options::readahead
  // uncached known offsets in [from, limit) on `executor`, so the fetch of
  // the next playback window overlaps the apply of the current one.  The
  // `limit` bound is the caller's playback horizon: offsets beyond it belong
  // to a future playback round and must still cross the transport then (a
  // failed fetch has to surface there, not be masked by a stale prefetch).
  // At most one async batch is in flight; calls while one is pending (or
  // with readahead 0) are no-ops.  Results are folded into the entry cache
  // from the owning thread — by the next FetchEntry or DrainAsyncPrefetch
  // call — so the cache itself stays externally serialized.  A FetchEntry
  // miss on an offset covered by the in-flight batch waits for that batch
  // instead of issuing a duplicate read.
  void StartAsyncPrefetch(LogOffset from, LogOffset limit,
                          tango::Executor* executor);

  // Folds a completed async batch into the cache; with `wait`, blocks until
  // the in-flight batch (if any) lands first.
  void DrainAsyncPrefetch(bool wait);

  // Drops every cached entry (bench/test hook; counters are kept).
  void ClearEntryCache();

  CorfuClient* log() const { return log_; }

  // Number of log reads issued for metadata reconstruction (ablation metric).
  uint64_t reconstruction_reads() const { return reconstruction_reads_; }
  // Entry-cache effectiveness counters (demanded FetchEntry lookups only;
  // prefetch inserts are not counted as misses).
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }
  // Number of ReadBatch calls issued by the prefetcher.
  uint64_t prefetch_batches() const { return prefetch_batches_; }
  // Number of background (overlapped) prefetch batches launched.
  uint64_t async_prefetch_batches() const { return async_prefetch_batches_; }

 private:
  struct StreamState {
    std::vector<LogOffset> offsets;  // ascending, complete up to synced_tail
    size_t cursor = 0;               // index into offsets
    LogOffset synced_tail = 0;       // log tail as of the last Sync
    bool stale = false;              // last Sync was a brown-out answer
  };

  // Marks `state` stale (metrics included) and returns its last synced
  // tail; the brown-out path shared by Sync and SyncAll.
  LogOffset ServeStaleTail(StreamState& state);
  void MarkFresh(StreamState& state);

  // Walks backpointers (and, on junk dead-ends, scans) to discover every
  // offset of `stream` in (floor, start_set...], appending them ascending.
  tango::Status Backfill(StreamId stream, StreamState& state,
                         const StreamTail& latest);

  StreamState& StateFor(StreamId stream);

  // LRU cache primitives.  Lookup promotes; insert evicts from the cold end.
  std::shared_ptr<const LogEntry> CacheLookup(LogOffset offset);
  void CacheInsert(LogOffset offset, std::shared_ptr<const LogEntry> entry);

  // Batch-reads up to Options::readahead uncached known offsets starting at
  // `offset` (inclusive) in `direction`, landing successes in the cache.
  // Holes/trims degrade per offset and are simply not cached.
  void Prefetch(LogOffset offset, PrefetchDirection direction);

  // Batch-reads `offsets`, caching every page that decodes (best effort).
  void PrefetchOffsets(const std::vector<LogOffset>& offsets);

  CorfuClient* log_;
  Options options_;
  std::unordered_map<StreamId, StreamState> streams_;

  // Union of every stream's known offsets (ascending) — the prefetcher's
  // read-ahead source, maintained by Backfill.
  std::set<LogOffset> known_offsets_;

  // LRU entry cache: lru_ front is hottest, back is next to evict.
  struct CachedEntry {
    std::shared_ptr<const LogEntry> entry;
    std::list<LogOffset>::iterator lru_it;
  };
  std::unordered_map<LogOffset, CachedEntry> cache_;
  std::list<LogOffset> lru_;
  uint64_t reconstruction_reads_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  uint64_t prefetch_batches_ = 0;
  uint64_t async_prefetch_batches_ = 0;

  // In-flight background prefetch.  `offsets` is written by the owning
  // thread before launch and read only by it; the mutex guards the
  // worker-to-owner handoff (inflight flag + results).
  struct AsyncPrefetch {
    std::mutex mu;
    std::condition_variable cv;
    bool inflight = false;
    bool has_results = false;
    std::vector<CorfuClient::BatchedRead> results;
  };
  std::vector<LogOffset> apf_offsets_;  // request of the in-flight batch
  AsyncPrefetch apf_;

  // Registry mirrors of the counters above, plus demanded-read accounting.
  // The cache-hit fast path increments only store.cache.hits (one atomic,
  // to stay inside the read-path overhead budget); every cache miss lands
  // in exactly one of miss_ok/trimmed/errors, so at quiescence
  //   store.cache.misses == store.fetch.miss_ok + store.fetch.trimmed +
  //                         store.fetch.errors
  // and demanded reads == hits + misses (chaos_test asserts both).
  tango::obs::Counter* obs_hits_;
  tango::obs::Counter* obs_misses_;
  tango::obs::Counter* obs_prefetch_batches_;
  tango::obs::Counter* obs_async_batches_;
  tango::obs::Counter* obs_backfill_reads_;
  tango::obs::Counter* fetch_miss_ok_;
  tango::obs::Counter* fetch_trimmed_;
  tango::obs::Counter* fetch_errors_;
  tango::obs::Counter* stale_syncs_;
  tango::obs::Gauge* stale_streams_;
};

}  // namespace corfu

#endif  // SRC_CORFU_STREAM_H_
