// HealthMonitor: failure detection and autonomous reconfiguration (§5,
// "Failure Handling").
//
// The paper's recovery protocol is client-driven: any client that suspects a
// failure may seal the current epoch and propose a new projection through the
// auxiliary's compare-and-swap.  This class packages that into a service: it
// heartbeats the sequencer, every storage node in the current projection, and
// the projection store, declares a node dead after `miss_threshold`
// consecutive missed probes, and then drives recovery on its own:
//
//   storage failure:  seal epoch e+1, propose the chain minus the dead node
//                     (degraded but fully serving — chain replication reads
//                     from the tail and writes through the survivors), then
//                     in the background copy the chain onto a spare and
//                     propose the repaired full chain at e+2.
//   sequencer failure: spawn a replacement and run the paper's sequencer
//                     reconfiguration (seal, rebuild backpointer state by
//                     backward scan, bootstrap, propose).
//
// Safety under concurrent monitors: every step goes through the existing
// CAS machinery.  Seals only succeed for a strictly newer epoch, so two
// monitors racing to seal e+1 produce one winner; ProposeProjection requires
// epoch == current+1, so only one proposal lands.  Losers refresh their
// projection and re-evaluate — a chain that is still short triggers repair
// again, so crashes and lost races converge on the next round rather than
// wedging.  Repair is *reconciliation*: it keys off "chain shorter than the
// expected replication factor", not off the monitor's own memory of having
// degraded it.

#ifndef SRC_CORFU_HEALTH_H_
#define SRC_CORFU_HEALTH_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "src/corfu/log_client.h"
#include "src/corfu/projection.h"
#include "src/corfu/types.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/util/status.h"

namespace corfu {

class HealthMonitor {
 public:
  struct Options {
    // Probe period for the background thread (Start()).
    uint32_t heartbeat_interval_ms = 10;
    // Consecutive missed probes before a node is declared dead.
    int miss_threshold = 3;
    // Backward-scan bound when rebuilding a replacement sequencer's state.
    uint64_t rebuild_scan_limit = 65536;
    // When false the monitor only degrades (and replaces sequencers); chains
    // stay short until an operator repairs them.
    bool auto_repair = true;
    // Network identity the monitor's own RPCs carry (for transports that
    // model per-link partitions, e.g. InProcTransport).  kInvalidNodeId
    // leaves the calling thread's identity untouched.
    tango::NodeId identity = tango::kInvalidNodeId;
  };

  // Spawns and registers an empty storage node, returning its id
  // (kInvalidNodeId when no spare is available).
  using SpareProvider = std::function<tango::NodeId()>;
  // Spawns and registers a fresh (epoch-0) sequencer, returning its id.
  using SequencerProvider = std::function<tango::NodeId()>;

  // The monitor owns a CorfuClient of its own on `transport`; the projection
  // store must be reachable at construction time.
  HealthMonitor(tango::Transport* transport, tango::NodeId projection_store,
                Options options);
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  void set_spare_provider(SpareProvider provider);
  void set_sequencer_provider(SequencerProvider provider);

  // Background probing every heartbeat_interval_ms.  Idempotent.
  void Start();
  // Stops and joins the background thread (also called by the destructor).
  void Stop();

  // One probe-and-react round: heartbeat everything, then take at most one
  // recovery action (sequencer failover, chain degrade, or chain repair).
  // Public so tests can drive detection and recovery deterministically
  // without the background thread.  Serialized against itself.
  tango::Status RunOnce();

  // Consecutive missed probes for `node` (0 when healthy or unknown).
  int ConsecutiveMisses(tango::NodeId node) const;
  // True between the first threshold crossing and the round where the
  // cluster is fully healed (all chains at full strength, every probe
  // answering).  The healing round records health.recovery_latency_us.
  bool InRecovery() const {
    return recovery_start_us_.load(std::memory_order_relaxed) != 0;
  }

  const Options& options() const { return options_; }
  CorfuClient* client() const { return client_.get(); }

 private:
  void Loop();
  void NoteRecoveryStart();

  // Recovery actions; each is one CAS-guarded epoch change.
  tango::Status HandleSequencerFailure();
  tango::Status DegradeChain(tango::NodeId dead);
  tango::Status RepairChain(size_t set_index);
  // Re-bootstraps a live sequencer that is sealed behind the current epoch
  // (e.g. its bootstrap was lost to a monitor crash mid-reconfiguration).
  tango::Status ResyncSequencer();

  tango::Status ProbeStorage(tango::NodeId node, Epoch epoch);
  tango::Status CopyLocalRange(tango::NodeId source, tango::NodeId dest,
                               Epoch epoch, LogOffset from, LogOffset to);

  tango::Transport* transport_;
  Options options_;
  std::unique_ptr<CorfuClient> client_;
  SpareProvider spare_provider_;
  SequencerProvider sequencer_provider_;
  // Full chain length the cluster was built with; any shorter chain is a
  // repair candidate.
  size_t expected_replication_ = 1;

  // Registry instruments (see DESIGN.md "Observability").
  tango::obs::Counter* heartbeats_;
  tango::obs::Counter* misses_;
  tango::obs::Counter* failovers_storage_;
  tango::obs::Counter* failovers_sequencer_;
  tango::obs::Gauge* reconfigurations_;
  tango::obs::Histogram* recovery_latency_;

  // Serializes RunOnce (background thread vs. manual calls) and guards the
  // miss ledger and pending-replacement state below.
  mutable std::mutex run_mu_;
  std::unordered_map<tango::NodeId, int> misses_by_node_;
  // A spare that was spawned but whose repair has not landed yet (copy
  // crashed or the propose lost its CAS).  Reused only for the same replica
  // set — a different set's pages would poison a partially copied spare.
  tango::NodeId pending_spare_ = tango::kInvalidNodeId;
  size_t pending_spare_set_ = 0;
  // Same idea for a spawned-but-not-yet-installed replacement sequencer.
  tango::NodeId pending_sequencer_ = tango::kInvalidNodeId;

  // Microsecond timestamp of the oldest unhealed failure (0 = healthy).
  std::atomic<uint64_t> recovery_start_us_{0};

  std::mutex thread_mu_;
  std::condition_variable thread_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace corfu

#endif  // SRC_CORFU_HEALTH_H_
