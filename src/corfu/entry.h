// Log entry wire format, including per-stream backpointer headers (§5).
//
// Layout (little-endian):
//   u32 epoch
//   u8  type            (kData | kJunk)
//   u8  header_count    (number of stream headers; 0 for junk)
//   stream headers...
//   u32 payload_len | payload bytes
//
// Each stream header is:
//   u32 id_and_format   (bit 31 = 1 → absolute format, bits 0..30 = stream id)
//   u8  pointer_count
//   pointer_count * (u16 relative delta | u64 absolute offset)
//
// Relative deltas are distances back from the entry's own offset; a delta of
// 0 means "no earlier entry" (the entry's own offset is never a valid target
// of its own backpointer, so 0 is free to act as the null pointer).  When any
// delta would exceed 65535, the encoder switches the header to the absolute
// format, storing ceil(K/4) 8-byte offsets instead of K 2-byte deltas —
// exactly the fallback described in the paper.

#ifndef SRC_CORFU_ENTRY_H_
#define SRC_CORFU_ENTRY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/corfu/types.h"
#include "src/util/serialize.h"
#include "src/util/status.h"

namespace corfu {

enum class EntryType : uint8_t {
  kData = 0,
  // A hole filled by the CORFU `fill` primitive.  Junk entries carry no
  // stream headers and no payload; stream readers skip them and backpointer
  // chains cannot cross them without a fallback scan.
  kJunk = 1,
};

struct StreamHeader {
  StreamId stream = kInvalidStreamId;
  // Absolute offsets of the previous entries in this stream, most recent
  // first.  kInvalidOffset slots mean "no earlier entry".
  std::vector<LogOffset> backpointers;
};

struct LogEntry {
  Epoch epoch = 0;
  EntryType type = EntryType::kData;
  std::vector<StreamHeader> headers;
  std::vector<uint8_t> payload;

  bool is_junk() const { return type == EntryType::kJunk; }

  // Returns the header for `stream`, or nullptr.
  const StreamHeader* FindHeader(StreamId stream) const;
};

// Worst-case wire size of one stream header carrying `backpointer_count`
// pointers: 5 fixed bytes (id_and_format + pointer_count) plus the larger of
// the relative (2 bytes each) and absolute (8 bytes per kept ceil(K/4))
// pointer encodings.  For the default K=4 both forms cost 8 bytes, so the
// bound is exact and stable across re-encoding at a different offset.
constexpr size_t StreamHeaderBound(size_t backpointer_count) {
  size_t relative = 2 * backpointer_count;
  size_t absolute = 8 * ((backpointer_count + 3) / 4);
  return 5 + (relative > absolute ? relative : absolute);
}

// Worst-case wire size of a data entry with `num_streams` headers of
// `backpointer_count` pointers each, excluding the payload: 10 fixed bytes
// (epoch, type, header count, payload length) plus the header bounds.
// Appenders use this to fail oversized records before burning a token.
constexpr size_t EntryOverheadBound(size_t num_streams,
                                    size_t backpointer_count) {
  return 10 + num_streams * StreamHeaderBound(backpointer_count);
}

// Encodes `entry` as it would be written at `self_offset` (needed to compute
// relative backpointers).  Fails if a header has more than 255 pointers or
// the stream id exceeds 31 bits.
tango::Result<std::vector<uint8_t>> EncodeEntry(const LogEntry& entry,
                                                LogOffset self_offset);

// Decodes bytes read from `self_offset` back into a LogEntry with absolute
// backpointers.
tango::Result<LogEntry> DecodeEntry(std::span<const uint8_t> bytes,
                                    LogOffset self_offset);

// Builds the canonical junk entry used by fill().
std::vector<uint8_t> EncodeJunkEntry(Epoch epoch);

}  // namespace corfu

#endif  // SRC_CORFU_ENTRY_H_
