#include "src/corfu/projection.h"

#include <mutex>

namespace corfu {

using tango::ByteReader;
using tango::ByteWriter;
using tango::NodeId;
using tango::Result;
using tango::Status;
using tango::StatusCode;

void Projection::Encode(ByteWriter& w) const {
  w.PutU32(epoch);
  w.PutU32(page_size);
  w.PutU32(backpointer_count);
  w.PutU32(sequencer);
  w.PutU32(static_cast<uint32_t>(replica_sets.size()));
  for (const std::vector<NodeId>& chain : replica_sets) {
    w.PutU32(static_cast<uint32_t>(chain.size()));
    for (NodeId node : chain) {
      w.PutU32(node);
    }
  }
}

Result<Projection> Projection::Decode(ByteReader& r) {
  Projection p;
  p.epoch = r.GetU32();
  p.page_size = r.GetU32();
  p.backpointer_count = r.GetU32();
  p.sequencer = r.GetU32();
  uint32_t num_sets = r.GetU32();
  p.replica_sets.reserve(num_sets);
  for (uint32_t i = 0; i < num_sets && r.ok(); ++i) {
    uint32_t chain_len = r.GetU32();
    if (chain_len == 0) {
      return Status(StatusCode::kInvalidArgument,
                    "malformed projection: empty replica chain");
    }
    std::vector<NodeId> chain;
    chain.reserve(chain_len);
    for (uint32_t j = 0; j < chain_len; ++j) {
      chain.push_back(r.GetU32());
    }
    p.replica_sets.push_back(std::move(chain));
  }
  // Valid() is the same guard the striping accessors (SetIndexFor /
  // LocalOffsetFor) enforce by CHECK: no replica sets or a zero page size
  // would turn offset math into division by zero.
  if (!r.ok() || !p.Valid()) {
    return Status(StatusCode::kInvalidArgument, "malformed projection");
  }
  return p;
}

ProjectionStore::ProjectionStore(tango::Transport* transport, NodeId node,
                                 Projection initial)
    : transport_(transport), node_(node), current_(std::move(initial)) {
  dispatcher_.Register(kProjectionGet,
                       [this](ByteReader& req, ByteWriter& resp) {
                         return HandleGet(req, resp);
                       });
  dispatcher_.Register(kProjectionPropose,
                       [this](ByteReader& req, ByteWriter& resp) {
                         return HandlePropose(req, resp);
                       });
  transport_->RegisterNode(node_, dispatcher_.AsHandler());
}

ProjectionStore::~ProjectionStore() { transport_->UnregisterNode(node_); }

Status ProjectionStore::HandleGet(ByteReader& /*req*/, ByteWriter& resp) {
  std::lock_guard<std::mutex> lock(mu_);
  current_.Encode(resp);
  return Status::Ok();
}

Status ProjectionStore::HandlePropose(ByteReader& req, ByteWriter& resp) {
  Result<Projection> proposed = Projection::Decode(req);
  if (!proposed.ok()) {
    return proposed.status();
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Any strictly higher epoch wins: racing reconfigurers collide on equal
  // epochs (second proposer rejected here), and a proposer that jumped
  // several epochs ahead is legitimate — after a restart the in-memory
  // store lags the epochs durably sealed into the storage nodes, and the
  // storage seal (not store contiguity) is what fences stale projections.
  if (proposed->epoch <= current_.epoch) {
    // Lost the race (or proposer was behind); return the winner so the
    // caller can adopt it.
    current_.Encode(resp);
    return Status(StatusCode::kFailedPrecondition, "epoch conflict");
  }
  current_ = std::move(proposed).value();
  current_.Encode(resp);
  return Status::Ok();
}

Result<Projection> FetchProjection(tango::Transport* transport,
                                   NodeId store) {
  std::vector<uint8_t> resp;
  Status st = transport->Call(store, kProjectionGet, {}, &resp);
  if (!st.ok()) {
    return st;
  }
  ByteReader r(resp);
  return Projection::Decode(r);
}

Status ProposeProjection(tango::Transport* transport, NodeId store,
                         const Projection& next) {
  ByteWriter w;
  next.Encode(w);
  std::vector<uint8_t> resp;
  return transport->Call(store, kProjectionPropose, w.bytes(), &resp);
}

}  // namespace corfu
