// Sequencer: the networked tail counter of the shared log (§2.2, §5).
//
// The sequencer is soft state.  It hands out new log offsets, and — for the
// streaming extension — remembers the last K offsets issued for every stream
// so it can return ready-made backpointer headers with each grant.  If it
// dies, its state is reconstructed by scanning the log backward (see
// CorfuClient::RebuildSequencerState) and a replacement is installed via an
// epoch change; it is an optimization for finding the tail, never the source
// of durability.
//
// RPC surface:
//   Next(epoch, count, streams[]) -> start offset + per-token per-stream
//     backpointers.  count > 1 grants the contiguous token range
//     [start, start+count): with no streams it models raw offset batching
//     (the Figure 2 experiment); with streams it is the append pipeline's
//     grant amortization — every token carries the backpointer headers a
//     sequence of count single grants would have produced, so independent
//     entries can replicate concurrently in sequencer order.
//   Tail(epoch, streams[])        -> current tail + per-stream backpointers,
//     without incrementing (the "fast check" and stream-sync primitive)
//   Bootstrap(epoch, tail, state) -> installs recovered state

#ifndef SRC_CORFU_SEQUENCER_H_
#define SRC_CORFU_SEQUENCER_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/corfu/types.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/util/status.h"

namespace corfu {

// Backpointer state for one stream: last `backpointer_count` offsets issued,
// most recent first.
using StreamTail = std::vector<LogOffset>;

struct SequencerGrant {
  LogOffset start = kInvalidOffset;
  // Number of consecutive tokens granted: the range [start, start + count).
  uint32_t count = 1;
  // token_backpointers[t][s]: the offsets of the previous K entries of
  // streams[s] before token start+t, most recent first.  Earlier tokens of
  // the same grant appear in later tokens' lists, so a range grant yields
  // exactly the headers count consecutive single grants would have.  Empty
  // when the grant carried no streams (raw offset batching).
  std::vector<std::vector<StreamTail>> token_backpointers;

  // The common single-token view: token t's backpointers, parallel to the
  // requested stream ids.
  const std::vector<StreamTail>& backpointers(uint32_t token = 0) const {
    return token_backpointers[token];
  }
};

struct SequencerTailInfo {
  LogOffset tail = 0;  // next offset that would be granted
  std::vector<StreamTail> backpointers;
};

class Sequencer {
 public:
  Sequencer(tango::Transport* transport, tango::NodeId node, Epoch epoch,
            uint32_t backpointer_count);
  ~Sequencer();

  Sequencer(const Sequencer&) = delete;
  Sequencer& operator=(const Sequencer&) = delete;

  tango::NodeId node() const { return node_; }

  // Direct in-process entry points (also reachable over RPC).
  tango::Result<SequencerGrant> Next(Epoch epoch, uint32_t count,
                                     const std::vector<StreamId>& streams);
  tango::Result<SequencerTailInfo> Tail(Epoch epoch,
                                        const std::vector<StreamId>& streams);
  tango::Status Bootstrap(Epoch epoch, LogOffset tail,
                          std::unordered_map<StreamId, StreamTail> state);

  struct DumpedState {
    LogOffset tail = 0;
    std::unordered_map<StreamId, StreamTail> streams;
  };
  // Full backpointer state, for checkpointing into the log.
  tango::Result<DumpedState> Dump(Epoch epoch) const;

  // Approximate memory footprint of the backpointer map (§5 sizes this at
  // 32 MB per million streams with K=4).
  size_t StreamCount() const;

 private:
  tango::Status HandleNext(tango::ByteReader& req, tango::ByteWriter& resp);
  tango::Status HandleTail(tango::ByteReader& req, tango::ByteWriter& resp);
  tango::Status HandleBootstrap(tango::ByteReader& req,
                                tango::ByteWriter& resp);
  tango::Status HandleDump(tango::ByteReader& req, tango::ByteWriter& resp);

  tango::Transport* transport_;
  tango::NodeId node_;
  uint32_t backpointer_count_;

  mutable std::mutex mu_;
  Epoch epoch_;
  LogOffset tail_ = 0;
  std::unordered_map<StreamId, StreamTail> streams_;

  // Registry instruments (see DESIGN.md "Observability").
  tango::obs::Counter* tokens_;
  tango::obs::Counter* tail_checks_;
  tango::obs::Counter* sealed_rejects_;
  tango::obs::Gauge* tail_gauge_;
  tango::obs::Gauge* stream_gauge_;

  tango::RpcDispatcher dispatcher_;
};

// Client-side wrappers.
tango::Result<SequencerGrant> SequencerNext(
    tango::Transport* transport, tango::NodeId sequencer, Epoch epoch,
    uint32_t count, const std::vector<StreamId>& streams);
tango::Result<SequencerTailInfo> SequencerTail(
    tango::Transport* transport, tango::NodeId sequencer, Epoch epoch,
    const std::vector<StreamId>& streams);
tango::Status SequencerBootstrap(
    tango::Transport* transport, tango::NodeId sequencer, Epoch epoch,
    LogOffset tail, const std::unordered_map<StreamId, StreamTail>& state);
tango::Result<Sequencer::DumpedState> SequencerDump(
    tango::Transport* transport, tango::NodeId sequencer, Epoch epoch);

// Wire helpers for sequencer-state blobs (shared with the log-checkpoint
// path in CorfuClient).
void EncodeSequencerState(LogOffset tail,
                          const std::unordered_map<StreamId, StreamTail>& state,
                          tango::ByteWriter& w);
tango::Result<Sequencer::DumpedState> DecodeSequencerState(
    tango::ByteReader& r);

}  // namespace corfu

#endif  // SRC_CORFU_SEQUENCER_H_
