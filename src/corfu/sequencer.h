// Sequencer: the networked tail counter of the shared log (§2.2, §5).
//
// The sequencer is soft state.  It hands out new log offsets, and — for the
// streaming extension — remembers the last K offsets issued for every stream
// so it can return ready-made backpointer headers with each grant.  If it
// dies, its state is reconstructed by scanning the log backward (see
// CorfuClient::RebuildSequencerState) and a replacement is installed via an
// epoch change; it is an optimization for finding the tail, never the source
// of durability.
//
// RPC surface:
//   Next(epoch, count, streams[]) -> start offset + per-token per-stream
//     backpointers.  count > 1 grants the contiguous token range
//     [start, start+count): with no streams it models raw offset batching
//     (the Figure 2 experiment); with streams it is the append pipeline's
//     grant amortization — every token carries the backpointer headers a
//     sequence of count single grants would have produced, so independent
//     entries can replicate concurrently in sequencer order.
//   Tail(epoch, streams[])        -> current tail + per-stream backpointers,
//     without incrementing (the "fast check" and stream-sync primitive)
//   Bootstrap(epoch, tail, state) -> installs recovered state

#ifndef SRC_CORFU_SEQUENCER_H_
#define SRC_CORFU_SEQUENCER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/corfu/types.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/util/status.h"

namespace corfu {

// Backpointer state for one stream: last `backpointer_count` offsets issued,
// most recent first.
using StreamTail = std::vector<LogOffset>;

struct SequencerGrant {
  LogOffset start = kInvalidOffset;
  // Number of consecutive tokens granted: the range [start, start + count).
  uint32_t count = 1;
  // token_backpointers[t][s]: the offsets of the previous K entries of
  // streams[s] before token start+t, most recent first.  Earlier tokens of
  // the same grant appear in later tokens' lists, so a range grant yields
  // exactly the headers count consecutive single grants would have.  Empty
  // when the grant carried no streams (raw offset batching).
  std::vector<std::vector<StreamTail>> token_backpointers;

  // The common single-token view: token t's backpointers, parallel to the
  // requested stream ids.
  const std::vector<StreamTail>& backpointers(uint32_t token = 0) const {
    return token_backpointers[token];
  }
};

struct SequencerTailInfo {
  LogOffset tail = 0;  // next offset that would be granted
  std::vector<StreamTail> backpointers;
};

// Admission-control knobs for the sequencer's grant path.  The sequencer is
// the one node every append crosses, so it is where overload concentrates
// first; these bounds turn "queue until collapse" into "shed with a hint".
// Only kSequencerNext sheds — Tail/Bootstrap/Dump are control-plane
// (IsControlPlaneRpc) and always admitted.
struct SequencerAdmission {
  // Sustained token-grant rate admitted across all clients (tokens/sec).
  // 0 disables admission control entirely (the pre-overload behavior).
  uint64_t capacity_tokens_per_sec = 0;
  // Token-bucket depth: how large a burst is absorbed before shedding.
  // 0 = capacity/8 (125 ms of burst).
  uint64_t burst_tokens = 0;
  // Per-client fair share of capacity, in (0, 1]: each client id gets its
  // own bucket refilled at capacity * share so one aggressive client cannot
  // monopolize the grant rate.  0 disables per-client quotas.  Anonymous
  // callers (client id 0) share a single bucket.
  double per_client_share = 0.0;
  // Bound on concurrently executing Next calls (the "grant queue"): beyond
  // this the request is shed immediately instead of convoying on the
  // sequencer mutex.  0 = unbounded.
  uint32_t max_inflight = 0;
};

class Sequencer {
 public:
  Sequencer(tango::Transport* transport, tango::NodeId node, Epoch epoch,
            uint32_t backpointer_count,
            SequencerAdmission admission = SequencerAdmission{});
  ~Sequencer();

  Sequencer(const Sequencer&) = delete;
  Sequencer& operator=(const Sequencer&) = delete;

  tango::NodeId node() const { return node_; }

  // Replaces the admission policy at runtime (benches flip this mid-run).
  void set_admission(SequencerAdmission admission);

  // Direct in-process entry points (also reachable over RPC).  client_id
  // attributes the grant to a caller for per-client quotas; 0 = anonymous.
  tango::Result<SequencerGrant> Next(Epoch epoch, uint32_t count,
                                     const std::vector<StreamId>& streams,
                                     uint64_t client_id = 0);
  tango::Result<SequencerTailInfo> Tail(Epoch epoch,
                                        const std::vector<StreamId>& streams);
  tango::Status Bootstrap(Epoch epoch, LogOffset tail,
                          std::unordered_map<StreamId, StreamTail> state);

  struct DumpedState {
    LogOffset tail = 0;
    std::unordered_map<StreamId, StreamTail> streams;
  };
  // Full backpointer state, for checkpointing into the log.
  tango::Result<DumpedState> Dump(Epoch epoch) const;

  // Approximate memory footprint of the backpointer map (§5 sizes this at
  // 32 MB per million streams with K=4).
  size_t StreamCount() const;

 private:
  // Continuous-refill token bucket; guarded by mu_.
  struct Bucket {
    double tokens = 0.0;
    uint64_t last_refill_us = 0;
  };

  tango::Status HandleNext(tango::ByteReader& req, tango::ByteWriter& resp);
  tango::Status HandleTail(tango::ByteReader& req, tango::ByteWriter& resp);
  tango::Status HandleBootstrap(tango::ByteReader& req,
                                tango::ByteWriter& resp);
  tango::Status HandleDump(tango::ByteReader& req, tango::ByteWriter& resp);

  // Refills `b` at `rate` tokens/sec capped at `burst`, then either deducts
  // `count` (admitted, returns 0) or computes the deficit-based retry-after
  // hint in microseconds (shed, returns nonzero).  Guarded by mu_.
  uint64_t TakeOrHint(Bucket& b, double rate, double burst, uint32_t count,
                      uint64_t now_us);
  // Full admission decision for one Next(count) from client_id.  Guarded by
  // mu_.  OK or kBusy with a retry-after hint.
  tango::Status Admit(uint32_t count, uint64_t client_id, uint64_t now_us);

  tango::Transport* transport_;
  tango::NodeId node_;
  uint32_t backpointer_count_;

  mutable std::mutex mu_;
  Epoch epoch_;
  LogOffset tail_ = 0;
  std::unordered_map<StreamId, StreamTail> streams_;

  SequencerAdmission admission_;
  Bucket global_bucket_;
  std::unordered_map<uint64_t, Bucket> client_buckets_;
  std::atomic<uint32_t> next_inflight_{0};

  // Registry instruments (see DESIGN.md "Observability").
  tango::obs::Counter* tokens_;
  tango::obs::Counter* tail_checks_;
  tango::obs::Counter* sealed_rejects_;
  tango::obs::Gauge* tail_gauge_;
  tango::obs::Gauge* stream_gauge_;
  tango::obs::Counter* shed_;
  tango::obs::Counter* shed_client_quota_;
  tango::obs::Counter* admitted_tokens_;
  tango::obs::Histogram* retry_after_us_;
  tango::obs::Gauge* inflight_gauge_;

  tango::RpcDispatcher dispatcher_;
};

// Client-side wrappers.
tango::Result<SequencerGrant> SequencerNext(
    tango::Transport* transport, tango::NodeId sequencer, Epoch epoch,
    uint32_t count, const std::vector<StreamId>& streams,
    uint64_t client_id = 0);
tango::Result<SequencerTailInfo> SequencerTail(
    tango::Transport* transport, tango::NodeId sequencer, Epoch epoch,
    const std::vector<StreamId>& streams);
tango::Status SequencerBootstrap(
    tango::Transport* transport, tango::NodeId sequencer, Epoch epoch,
    LogOffset tail, const std::unordered_map<StreamId, StreamTail>& state);
tango::Result<Sequencer::DumpedState> SequencerDump(
    tango::Transport* transport, tango::NodeId sequencer, Epoch epoch);

// Wire helpers for sequencer-state blobs (shared with the log-checkpoint
// path in CorfuClient).
void EncodeSequencerState(LogOffset tail,
                          const std::unordered_map<StreamId, StreamTail>& state,
                          tango::ByteWriter& w);
tango::Result<Sequencer::DumpedState> DecodeSequencerState(
    tango::ByteReader& r);

}  // namespace corfu

#endif  // SRC_CORFU_SEQUENCER_H_
