#include "src/storage/segment_store.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/flight.h"
#include "src/obs/slo.h"
#include "src/util/crc32c.h"
#include "src/util/logging.h"
#include "src/util/serialize.h"
#include "src/util/threading.h"

namespace corfu::storage {

using tango::ByteReader;
using tango::ByteWriter;
using tango::Result;
using tango::Status;
using tango::StatusCode;

namespace {

// Sanity bound on a record's `len` field; anything larger is framing
// corruption, not a real record.
constexpr uint32_t kMaxRecordLen = 1u << 30;

// Writes all of `bytes`, retrying short writes (write(2) is allowed to stop
// early; the fault injector exercises this on purpose).
Status AppendFully(File* file, std::span<const uint8_t> bytes) {
  size_t done = 0;
  while (done < bytes.size()) {
    Result<size_t> n = file->Append(bytes.subspan(done));
    if (!n.ok()) {
      return n.status();
    }
    if (*n == 0) {
      return Status(StatusCode::kUnavailable, "write made no progress");
    }
    done += *n;
  }
  return Status::Ok();
}

}  // namespace

std::string SegmentStoreBackend::SegmentFileName(uint32_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%08x.log", id);
  return buf;
}

std::string SegmentStoreBackend::SegmentPath(uint32_t id) const {
  return options_.dir + "/" + SegmentFileName(id);
}

SegmentStoreBackend::SegmentStoreBackend(SegmentStoreOptions options)
    : options_(std::move(options)),
      fs_(options_.fs != nullptr ? options_.fs : PosixFileSystem()) {
  auto& reg = tango::obs::MetricsRegistry::Default();
  m_records_ = reg.GetCounter("storage.segment.records");
  m_bytes_ = reg.GetCounter("storage.segment.bytes");
  m_fsyncs_ = reg.GetCounter("storage.segment.fsyncs");
  m_flushes_ = reg.GetCounter("storage.segment.flushes");
  m_gc_deleted_ = reg.GetCounter("storage.segment.gc_deleted");
  m_corrupt_ = reg.GetCounter("storage.segment.corrupt_rejected");
  m_failstop_ = reg.GetCounter("storage.segment.failstop");
  m_wbuf_shed_ = reg.GetCounter("overload.storage.wbuf_shed");
  m_wbuf_bytes_ = reg.GetGauge("overload.storage.wbuf_bytes");
}

Result<std::unique_ptr<SegmentStoreBackend>> SegmentStoreBackend::Open(
    SegmentStoreOptions options) {
  std::unique_ptr<SegmentStoreBackend> store(
      new SegmentStoreBackend(std::move(options)));
  TANGO_RETURN_IF_ERROR(store->Recover());
  if (store->options_.flush_interval_ms > 0) {
    store->flusher_ = std::thread([s = store.get()] { s->FlusherLoop(); });
  }
  return store;
}

SegmentStoreBackend::~SegmentStoreBackend() {
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(flusher_mu_);
      stop_flusher_ = true;
    }
    flusher_cv_.notify_all();
    flusher_.join();
  }
  // Best-effort final flush so a graceful shutdown leaves nothing buffered.
  std::unique_lock<std::mutex> lk(mu_);
  if (!failed_) {
    uint64_t target = accepted_seq_;
    if (FlushToSeqLocked(target, lk).ok()) {
      (void)SyncToSeqLocked(target, lk);
    }
  }
}

Status SegmentStoreBackend::Recover() {
  TANGO_RETURN_IF_ERROR(fs_->CreateDir(options_.dir));
  auto names = fs_->List(options_.dir);
  if (!names.ok()) {
    return names.status();
  }
  std::vector<uint32_t> ids;
  for (const std::string& name : *names) {
    if (name.size() == 16 && name.rfind("seg-", 0) == 0 &&
        name.compare(12, 4, ".log") == 0) {
      ids.push_back(
          static_cast<uint32_t>(std::strtoul(name.c_str() + 4, nullptr, 16)));
    }
  }
  std::sort(ids.begin(), ids.end());

  if (ids.empty()) {
    auto file = fs_->Open(SegmentPath(0));
    if (!file.ok()) {
      return file.status();
    }
    segments_[0].file = std::move(*file);
    active_id_ = 0;
    return Status::Ok();
  }

  for (size_t i = 0; i < ids.size(); ++i) {
    uint32_t id = ids[i];
    bool is_final = (i + 1 == ids.size());
    auto file = fs_->Open(SegmentPath(id));
    if (!file.ok()) {
      return file.status();
    }
    auto size = (*file)->Size();
    if (!size.ok()) {
      return size.status();
    }
    std::vector<uint8_t> image(static_cast<size_t>(*size));
    if (!image.empty()) {
      auto n = (*file)->ReadAt(0, image);
      if (!n.ok()) {
        return n.status();
      }
      if (*n != image.size()) {
        return Status(StatusCode::kUnavailable, "segment short read");
      }
    }

    ++recovery_.segments_scanned;
    Segment& seg = segments_[id];
    seg.file = std::move(*file);

    uint64_t pos = 0;
    bool bad = false;
    bool crc_bad = false;
    while (pos < image.size()) {
      uint64_t remaining = image.size() - pos;
      if (remaining < kFrameHeader + kBodyHeader) {
        bad = true;
        break;
      }
      ByteReader frame(image.data() + pos, kFrameHeader);
      uint32_t len = frame.GetU32();
      uint32_t crc = frame.GetU32();
      if (len < kBodyHeader || len > kMaxRecordLen ||
          pos + kFrameHeader + len > image.size()) {
        bad = true;
        break;
      }
      if (tango::Crc32c(image.data() + pos + kFrameHeader, len) != crc) {
        bad = true;
        crc_bad = true;
        ++recovery_.corrupt_records;
        break;
      }
      ByteReader body(image.data() + pos + kFrameHeader, len);
      uint8_t type = body.GetU8();
      Epoch epoch = body.GetU32();
      LogOffset local = body.GetU64();
      std::span<const uint8_t> payload(
          image.data() + pos + kFrameHeader + kBodyHeader, len - kBodyHeader);
      TANGO_RETURN_IF_ERROR(ApplyRecord(id, pos, kFrameHeader + len, type,
                                        epoch, local, payload));
      ++recovery_.records_replayed;
      pos += kFrameHeader + len;
    }

    seg.end = pos;
    if (bad) {
      uint64_t dropped = image.size() - pos;
      if (is_final) {
        // Torn tail: the crash interrupted the last group flush.  Truncate
        // back to the last whole record and carry on appending from there.
        recovery_.torn_bytes_truncated += dropped;
        TANGO_LOG(kWarning)
            << "segment store: truncating torn tail of " << SegmentPath(id)
            << " (" << dropped << " bytes"
            << (crc_bad ? ", CRC mismatch" : "") << ")";
        TANGO_RETURN_IF_ERROR(seg.file->Truncate(pos));
      } else {
        // Mid-log corruption: records beyond this point in the segment are
        // unreachable.  Surface it loudly; the lost pages read as holes and
        // the chain's other replica serves them.
        recovery_.skipped_bytes += dropped;
        m_corrupt_->Add();
        TANGO_LOG(kWarning)
            << "segment store: corrupt record in " << SegmentPath(id)
            << " at offset " << pos << "; skipping " << dropped
            << " unreachable bytes";
      }
    }
  }

  active_id_ = ids.back();
  tango::obs::FlightRecorder::Default().Record(
      tango::obs::FlightKind::kRecovery, "segment store recovered",
      recovery_.segments_scanned, recovery_.pages_recovered);
  return Status::Ok();
}

Status SegmentStoreBackend::ApplyRecord(uint32_t segment, uint64_t record_off,
                                        uint64_t record_len, uint8_t type,
                                        Epoch epoch, LogOffset local,
                                        std::span<const uint8_t> payload) {
  switch (type) {
    case kRecWrite: {
      if (local + 1 > local_tail_) {
        local_tail_ = local + 1;
      }
      if (local < trim_prefix_ || trimmed_.contains(local) ||
          pages_.contains(local)) {
        break;  // dead or duplicate write; keep the first/live state
      }
      pages_.emplace(local,
                     PageRef{segment, record_off,
                             static_cast<uint32_t>(record_len)});
      ++segments_[segment].live_pages;
      ++recovery_.pages_recovered;
      break;
    }
    case kRecSeal:
      sealed_epoch_ = std::max(sealed_epoch_, epoch);
      break;
    case kRecTrim: {
      if (local < trim_prefix_) {
        break;
      }
      auto it = pages_.find(local);
      if (it != pages_.end()) {
        --segments_[it->second.segment].live_pages;
        pages_.erase(it);
        ++trimmed_count_;
      }
      trimmed_[local] = true;
      break;
    }
    case kRecTrimPrefix:
      ApplyTrimPrefixLocked(local);
      break;
    case kRecCheckpoint: {
      ByteReader r(payload.data(), payload.size());
      LogOffset tail = r.GetU64();
      uint64_t trimmed_total = r.GetU64();
      uint32_t n = r.GetU32();
      sealed_epoch_ = std::max(sealed_epoch_, epoch);
      ApplyTrimPrefixLocked(local);
      local_tail_ = std::max(local_tail_, tail);
      trimmed_count_ = std::max(trimmed_count_, trimmed_total);
      for (uint32_t i = 0; i < n && r.ok(); ++i) {
        LogOffset o = r.GetU64();
        if (o < trim_prefix_) {
          continue;
        }
        auto it = pages_.find(o);
        if (it != pages_.end()) {
          --segments_[it->second.segment].live_pages;
          pages_.erase(it);
        }
        trimmed_[o] = true;
      }
      if (!r.ok()) {
        return Status(StatusCode::kInternal, "malformed checkpoint record");
      }
      break;
    }
    default:
      return Status(StatusCode::kInternal, "unknown record type");
  }
  return Status::Ok();
}

void SegmentStoreBackend::ApplyTrimPrefixLocked(LogOffset limit) {
  if (limit <= trim_prefix_) {
    return;
  }
  for (auto it = pages_.begin(); it != pages_.end();) {
    if (it->first < limit) {
      --segments_[it->second.segment].live_pages;
      ++trimmed_count_;
      it = pages_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = trimmed_.begin(); it != trimmed_.end();) {
    if (it->first < limit) {
      it = trimmed_.erase(it);
    } else {
      ++it;
    }
  }
  trim_prefix_ = limit;
}

Status SegmentStoreBackend::CheckEpochLocked(Epoch epoch) const {
  if (epoch < sealed_epoch_) {
    return Status(StatusCode::kSealedEpoch, "node sealed at higher epoch");
  }
  return Status::Ok();
}

Status SegmentStoreBackend::EnsureRoomLocked(size_t record_size,
                                             std::unique_lock<std::mutex>& lk) {
  while (true) {
    if (failed_) {
      return Status(StatusCode::kUnavailable, "segment store failed stop");
    }
    if (rolling_) {
      cv_.wait(lk);
      continue;
    }
    Segment& active = segments_[active_id_];
    if (active.end == 0 || active.end + record_size <= options_.segment_bytes) {
      return Status::Ok();
    }
    rolling_ = true;
    Status s = RollSegmentLocked(lk);
    rolling_ = false;
    cv_.notify_all();
    if (!s.ok()) {
      return s;
    }
  }
}

uint64_t SegmentStoreBackend::AdmitRecordLocked(
    uint8_t type, Epoch epoch, LogOffset local,
    std::span<const uint8_t> payload, PageRef* ref) {
  uint32_t len = static_cast<uint32_t>(kBodyHeader + payload.size());
  ByteWriter body(len);
  body.PutU8(type);
  body.PutU32(epoch);
  body.PutU64(local);
  body.PutBytes(payload.data(), payload.size());
  uint32_t crc = tango::Crc32c(body.bytes().data(), body.size());

  Segment& active = segments_[active_id_];
  if (ref != nullptr) {
    *ref = PageRef{active_id_, active.end,
                   static_cast<uint32_t>(kFrameHeader + len)};
  }
  ByteWriter frame(kFrameHeader);
  frame.PutU32(len);
  frame.PutU32(crc);
  buf_.insert(buf_.end(), frame.bytes().begin(), frame.bytes().end());
  buf_.insert(buf_.end(), body.bytes().begin(), body.bytes().end());
  active.end += kFrameHeader + len;
  m_records_->Add();
  return ++accepted_seq_;
}

Status SegmentStoreBackend::FlushToSeqLocked(uint64_t seq,
                                             std::unique_lock<std::mutex>& lk) {
  while (written_seq_ < seq) {
    if (failed_) {
      return Status(StatusCode::kUnavailable, "segment store failed stop");
    }
    if (writer_active_) {
      cv_.wait(lk);
      continue;
    }
    if (buf_.empty()) {
      // Nothing buffered yet written_seq_ lags: cannot happen, but never
      // spin on it.
      written_seq_ = accepted_seq_;
      break;
    }
    writer_active_ = true;
    std::vector<uint8_t> batch;
    batch.swap(buf_);
    uint64_t batch_seq = accepted_seq_;
    File* file = segments_[active_id_].file.get();
    lk.unlock();
    Status s = AppendFully(file, batch);
    lk.lock();
    writer_active_ = false;
    if (!s.ok()) {
      failed_ = true;
      m_failstop_->Add();
      tango::obs::FlightRecorder::Default().Record(
          tango::obs::FlightKind::kFailstop, "group flush failed");
      TANGO_LOG(kError) << "segment store: group flush failed, entering "
                           "fail-stop: " << s.ToString();
      cv_.notify_all();
      return s;
    }
    written_seq_ = std::max(written_seq_, batch_seq);
    flushes_.fetch_add(1);
    m_flushes_->Add();
    m_bytes_->Add(batch.size());
    cv_.notify_all();
  }
  return Status::Ok();
}

Status SegmentStoreBackend::SyncToSeqLocked(uint64_t seq,
                                            std::unique_lock<std::mutex>& lk) {
  while (synced_seq_ < seq) {
    if (failed_) {
      return Status(StatusCode::kUnavailable, "segment store failed stop");
    }
    if (written_seq_ < seq) {
      TANGO_RETURN_IF_ERROR(FlushToSeqLocked(seq, lk));
      continue;
    }
    if (syncer_active_) {
      cv_.wait(lk);
      continue;
    }
    syncer_active_ = true;
    // Unsynced records always live in the active segment: a roll fsyncs the
    // outgoing segment before switching.
    uint64_t target = written_seq_;
    File* file = segments_[active_id_].file.get();
    lk.unlock();
    Status s = file->Sync();
    lk.lock();
    syncer_active_ = false;
    if (!s.ok()) {
      failed_ = true;
      m_failstop_->Add();
      tango::obs::FlightRecorder::Default().Record(
          tango::obs::FlightKind::kFailstop, "fsync failed");
      TANGO_LOG(kError) << "segment store: fsync failed, entering fail-stop: "
                        << s.ToString();
      cv_.notify_all();
      return s;
    }
    synced_seq_ = std::max(synced_seq_, target);
    fsyncs_.fetch_add(1);
    m_fsyncs_->Add();
    cv_.notify_all();
  }
  return Status::Ok();
}

Status SegmentStoreBackend::WaitDurableLocked(uint64_t seq,
                                              std::unique_lock<std::mutex>& lk) {
  TANGO_RETURN_IF_ERROR(FlushToSeqLocked(seq, lk));
  if (options_.fsync_batch <= 1) {
    return SyncToSeqLocked(seq, lk);
  }
  if (written_seq_ - synced_seq_ >= options_.fsync_batch) {
    return SyncToSeqLocked(written_seq_, lk);
  }
  return Status::Ok();
}

Status SegmentStoreBackend::RollSegmentLocked(std::unique_lock<std::mutex>& lk) {
  // Close the outgoing segment durably so every unsynced record is always in
  // the active file (SyncToSeqLocked relies on this).
  uint64_t target = accepted_seq_;
  TANGO_RETURN_IF_ERROR(FlushToSeqLocked(target, lk));
  TANGO_RETURN_IF_ERROR(SyncToSeqLocked(target, lk));
  uint32_t id = active_id_ + 1;
  auto file = fs_->Open(SegmentPath(id));
  if (!file.ok()) {
    failed_ = true;
    m_failstop_->Add();
    tango::obs::FlightRecorder::Default().Record(
        tango::obs::FlightKind::kFailstop, "segment open failed", id);
    return file.status();
  }
  segments_[id].file = std::move(*file);
  active_id_ = id;
  return Status::Ok();
}

void SegmentStoreBackend::MaybeGcLocked(std::unique_lock<std::mutex>& lk) {
  bool any_dead = false;
  for (const auto& [id, seg] : segments_) {
    if (id != active_id_ && seg.live_pages == 0) {
      any_dead = true;
      break;
    }
  }
  if (!any_dead || failed_) {
    return;
  }
  // Snapshot the reconstructed state into a checkpoint record first: once it
  // is durable, recovery no longer needs anything in the dead segments.
  ByteWriter snap;
  snap.PutU64(local_tail_);
  snap.PutU64(trimmed_count_);
  snap.PutU32(static_cast<uint32_t>(trimmed_.size()));
  for (const auto& [o, v] : trimmed_) {
    (void)v;
    snap.PutU64(o);
  }
  size_t record_size = kFrameHeader + kBodyHeader + snap.size();
  if (!EnsureRoomLocked(record_size, lk).ok()) {
    return;
  }
  uint64_t seq = AdmitRecordLocked(kRecCheckpoint, sealed_epoch_, trim_prefix_,
                                   snap.bytes(), nullptr);
  if (!FlushToSeqLocked(seq, lk).ok() || !SyncToSeqLocked(seq, lk).ok()) {
    return;
  }
  // EnsureRoom/Flush/Sync can drop the lock; re-scan for victims against the
  // state as it stands now.  Anything that died meanwhile had its trim
  // admitted after the checkpoint, so replay order stays correct.
  std::vector<uint32_t> victims;
  for (const auto& [id, seg] : segments_) {
    if (id != active_id_ && seg.live_pages == 0) {
      victims.push_back(id);
    }
  }
  for (uint32_t id : victims) {
    Status s = fs_->Remove(SegmentPath(id));
    if (!s.ok()) {
      TANGO_LOG(kWarning) << "segment store: GC unlink failed for "
                          << SegmentPath(id) << ": " << s.ToString();
      continue;
    }
    segments_.erase(id);
    gc_deleted_.fetch_add(1);
    m_gc_deleted_->Add();
    tango::obs::FlightRecorder::Default().Record(
        tango::obs::FlightKind::kGc, "gc deleted segment", id, trim_prefix_);
  }
}

Result<std::vector<uint8_t>> SegmentStoreBackend::ReadPageLocked(
    const PageRef& ref, LogOffset local) {
  auto it = segments_.find(ref.segment);
  if (it == segments_.end()) {
    return Status(StatusCode::kInternal, "page ref to deleted segment");
  }
  std::vector<uint8_t> record(ref.record_len);
  auto n = it->second.file->ReadAt(ref.record_off, record);
  bool ok = n.ok() && *n == record.size();
  if (ok) {
    ByteReader frame(record.data(), kFrameHeader);
    uint32_t len = frame.GetU32();
    uint32_t crc = frame.GetU32();
    ok = len == record.size() - kFrameHeader &&
         tango::Crc32c(record.data() + kFrameHeader, len) == crc;
    if (ok) {
      ByteReader body(record.data() + kFrameHeader, len);
      uint8_t type = body.GetU8();
      body.GetU32();  // epoch
      LogOffset rec_local = body.GetU64();
      ok = type == kRecWrite && rec_local == local;
    }
  }
  if (!ok) {
    // Never serve bytes that fail the checksum: surface the corruption and
    // report the slot unwritten so the chain's other replica serves it.
    corrupt_reads_.fetch_add(1);
    m_corrupt_->Add();
    TANGO_LOG(kWarning) << "segment store: CRC-rejected page at local offset "
                        << local << " (segment " << ref.segment << ")";
    return Status(StatusCode::kUnwritten);
  }
  return std::vector<uint8_t>(record.begin() + kFrameHeader + kBodyHeader,
                              record.end());
}

Status SegmentStoreBackend::Put(Epoch epoch, LogOffset local,
                                std::span<const uint8_t> bytes) {
  std::unique_lock<std::mutex> lk(mu_);
  TANGO_RETURN_IF_ERROR(
      EnsureRoomLocked(kFrameHeader + kBodyHeader + bytes.size(), lk));
  m_wbuf_bytes_->Set(static_cast<int64_t>(buf_.size()));
  if (options_.max_buffer_bytes != 0 && buf_.size() > options_.max_buffer_bytes) {
    // The group write buffer is backed up behind a slow device: shed rather
    // than queue unboundedly.  The hint is the flusher's cadence — by then
    // either the drain caught up or the caller learns to slow down.
    m_wbuf_shed_->Add();
    uint64_t hint = options_.flush_interval_ms != 0
                        ? static_cast<uint64_t>(options_.flush_interval_ms) * 500
                        : 5'000;  // half the flush interval, or 5 ms
    hint = std::clamp<uint64_t>(hint, 200, 1'000'000);
    tango::obs::SloTracker::Default().Record(tango::obs::SloOp::kAdmission,
                                             hint);
    return Status::Busy(static_cast<uint32_t>(hint),
                        "segment write buffer full");
  }
  TANGO_RETURN_IF_ERROR(CheckEpochLocked(epoch));
  if (local < trim_prefix_ || trimmed_.contains(local)) {
    return Status(StatusCode::kTrimmed);
  }
  if (pages_.contains(local)) {
    return Status(StatusCode::kWritten);
  }
  PageRef ref;
  uint64_t seq = AdmitRecordLocked(kRecWrite, epoch, local, bytes, &ref);
  pages_.emplace(local, ref);
  ++segments_[ref.segment].live_pages;
  if (local + 1 > local_tail_) {
    local_tail_ = local + 1;
  }
  return WaitDurableLocked(seq, lk);
}

Result<std::vector<uint8_t>> SegmentStoreBackend::Get(Epoch epoch,
                                                      LogOffset local) {
  std::unique_lock<std::mutex> lk(mu_);
  TANGO_RETURN_IF_ERROR(CheckEpochLocked(epoch));
  if (local < trim_prefix_ || trimmed_.contains(local)) {
    return Status(StatusCode::kTrimmed);
  }
  auto it = pages_.find(local);
  if (it == pages_.end()) {
    return Status(StatusCode::kUnwritten);
  }
  if (!buf_.empty() || writer_active_) {
    TANGO_RETURN_IF_ERROR(FlushToSeqLocked(accepted_seq_, lk));
    it = pages_.find(local);  // the lock was dropped; re-resolve
    if (it == pages_.end()) {
      return Status(local < trim_prefix_ || trimmed_.contains(local)
                        ? StatusCode::kTrimmed
                        : StatusCode::kUnwritten);
    }
  }
  return ReadPageLocked(it->second, local);
}

Status SegmentStoreBackend::GetBatch(
    Epoch epoch, const std::vector<LogOffset>& locals,
    std::vector<Result<std::vector<uint8_t>>>* pages) {
  std::unique_lock<std::mutex> lk(mu_);
  TANGO_RETURN_IF_ERROR(CheckEpochLocked(epoch));
  if (!buf_.empty() || writer_active_) {
    TANGO_RETURN_IF_ERROR(FlushToSeqLocked(accepted_seq_, lk));
    TANGO_RETURN_IF_ERROR(CheckEpochLocked(epoch));
  }
  pages->reserve(pages->size() + locals.size());
  for (LogOffset local : locals) {
    if (local < trim_prefix_ || trimmed_.contains(local)) {
      pages->emplace_back(Status(StatusCode::kTrimmed));
      continue;
    }
    auto it = pages_.find(local);
    if (it == pages_.end()) {
      pages->emplace_back(Status(StatusCode::kUnwritten));
      continue;
    }
    pages->emplace_back(ReadPageLocked(it->second, local));
  }
  return Status::Ok();
}

Result<LogOffset> SegmentStoreBackend::Seal(Epoch epoch) {
  std::unique_lock<std::mutex> lk(mu_);
  TANGO_RETURN_IF_ERROR(
      EnsureRoomLocked(kFrameHeader + kBodyHeader, lk));
  if (epoch <= sealed_epoch_) {
    return Status(StatusCode::kSealedEpoch, "seal epoch not newer");
  }
  sealed_epoch_ = epoch;
  uint64_t seq = AdmitRecordLocked(kRecSeal, epoch, 0, {}, nullptr);
  LogOffset tail = local_tail_;
  // Seals fence lagging epochs; they are never deferrable to a batch.
  TANGO_RETURN_IF_ERROR(FlushToSeqLocked(seq, lk));
  TANGO_RETURN_IF_ERROR(SyncToSeqLocked(seq, lk));
  return tail;
}

Status SegmentStoreBackend::Trim(Epoch epoch, LogOffset local) {
  std::unique_lock<std::mutex> lk(mu_);
  TANGO_RETURN_IF_ERROR(
      EnsureRoomLocked(kFrameHeader + kBodyHeader, lk));
  TANGO_RETURN_IF_ERROR(CheckEpochLocked(epoch));
  if (local < trim_prefix_) {
    return Status::Ok();  // already gone
  }
  auto it = pages_.find(local);
  if (it != pages_.end()) {
    --segments_[it->second.segment].live_pages;
    pages_.erase(it);
    ++trimmed_count_;
  }
  trimmed_[local] = true;
  uint64_t seq = AdmitRecordLocked(kRecTrim, epoch, local, {}, nullptr);
  TANGO_RETURN_IF_ERROR(WaitDurableLocked(seq, lk));
  MaybeGcLocked(lk);
  return Status::Ok();
}

Status SegmentStoreBackend::TrimPrefix(Epoch epoch, LogOffset limit) {
  std::unique_lock<std::mutex> lk(mu_);
  TANGO_RETURN_IF_ERROR(
      EnsureRoomLocked(kFrameHeader + kBodyHeader, lk));
  TANGO_RETURN_IF_ERROR(CheckEpochLocked(epoch));
  if (limit <= trim_prefix_) {
    return Status::Ok();
  }
  ApplyTrimPrefixLocked(limit);
  uint64_t seq = AdmitRecordLocked(kRecTrimPrefix, epoch, limit, {}, nullptr);
  TANGO_RETURN_IF_ERROR(WaitDurableLocked(seq, lk));
  MaybeGcLocked(lk);
  return Status::Ok();
}

Result<LogOffset> SegmentStoreBackend::LocalTail(Epoch epoch) {
  std::unique_lock<std::mutex> lk(mu_);
  TANGO_RETURN_IF_ERROR(CheckEpochLocked(epoch));
  return local_tail_;
}

Status SegmentStoreBackend::Sync() {
  std::unique_lock<std::mutex> lk(mu_);
  uint64_t target = accepted_seq_;
  TANGO_RETURN_IF_ERROR(FlushToSeqLocked(target, lk));
  return SyncToSeqLocked(target, lk);
}

Epoch SegmentStoreBackend::sealed_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_epoch_;
}

size_t SegmentStoreBackend::PageCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.size();
}

uint64_t SegmentStoreBackend::trimmed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trimmed_count_;
}

size_t SegmentStoreBackend::segment_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.size();
}

bool SegmentStoreBackend::failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

void SegmentStoreBackend::FlusherLoop() {
  tango::SetCurrentThreadName("tgo-flush");
  while (true) {
    {
      std::unique_lock<std::mutex> flk(flusher_mu_);
      flusher_cv_.wait_for(flk,
                           std::chrono::milliseconds(options_.flush_interval_ms),
                           [this] { return stop_flusher_; });
      if (stop_flusher_) {
        return;
      }
    }
    std::unique_lock<std::mutex> lk(mu_);
    if (failed_) {
      return;
    }
    uint64_t target = accepted_seq_;
    if (synced_seq_ >= target) {
      continue;
    }
    if (!FlushToSeqLocked(target, lk).ok()) {
      return;
    }
    if (!SyncToSeqLocked(target, lk).ok()) {
      return;
    }
  }
}

}  // namespace corfu::storage
