#include "src/storage/memory_backend.h"

namespace corfu::storage {

using tango::Result;
using tango::Status;
using tango::StatusCode;

Status MemoryBackend::CheckEpochLocked(Epoch epoch) const {
  if (epoch < sealed_epoch_) {
    return Status(StatusCode::kSealedEpoch, "node sealed at higher epoch");
  }
  return Status::Ok();
}

Status MemoryBackend::Put(Epoch epoch, LogOffset local,
                          std::span<const uint8_t> bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  TANGO_RETURN_IF_ERROR(CheckEpochLocked(epoch));
  if (local < trim_prefix_ || trimmed_.contains(local)) {
    return Status(StatusCode::kTrimmed);
  }
  auto [it, inserted] =
      pages_.emplace(local, std::vector<uint8_t>(bytes.begin(), bytes.end()));
  (void)it;
  if (!inserted) {
    return Status(StatusCode::kWritten);
  }
  if (local + 1 > local_tail_) {
    local_tail_ = local + 1;
  }
  return Status::Ok();
}

Result<std::vector<uint8_t>> MemoryBackend::Get(Epoch epoch, LogOffset local) {
  std::lock_guard<std::mutex> lock(mu_);
  TANGO_RETURN_IF_ERROR(CheckEpochLocked(epoch));
  if (local < trim_prefix_ || trimmed_.contains(local)) {
    return Status(StatusCode::kTrimmed);
  }
  auto it = pages_.find(local);
  if (it == pages_.end()) {
    return Status(StatusCode::kUnwritten);
  }
  return it->second;
}

Status MemoryBackend::GetBatch(
    Epoch epoch, const std::vector<LogOffset>& locals,
    std::vector<Result<std::vector<uint8_t>>>* pages) {
  std::lock_guard<std::mutex> lock(mu_);
  TANGO_RETURN_IF_ERROR(CheckEpochLocked(epoch));
  pages->reserve(pages->size() + locals.size());
  for (LogOffset local : locals) {
    if (local < trim_prefix_ || trimmed_.contains(local)) {
      pages->emplace_back(Status(StatusCode::kTrimmed));
      continue;
    }
    auto it = pages_.find(local);
    if (it == pages_.end()) {
      pages->emplace_back(Status(StatusCode::kUnwritten));
      continue;
    }
    pages->emplace_back(it->second);
  }
  return Status::Ok();
}

Result<LogOffset> MemoryBackend::Seal(Epoch epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch <= sealed_epoch_) {
    return Status(StatusCode::kSealedEpoch, "seal epoch not newer");
  }
  sealed_epoch_ = epoch;
  return local_tail_;
}

Status MemoryBackend::Trim(Epoch epoch, LogOffset local) {
  std::lock_guard<std::mutex> lock(mu_);
  TANGO_RETURN_IF_ERROR(CheckEpochLocked(epoch));
  if (local < trim_prefix_) {
    return Status::Ok();  // already gone
  }
  if (pages_.erase(local) > 0) {
    ++trimmed_count_;
  }
  trimmed_[local] = true;
  return Status::Ok();
}

Status MemoryBackend::TrimPrefix(Epoch epoch, LogOffset limit) {
  std::lock_guard<std::mutex> lock(mu_);
  TANGO_RETURN_IF_ERROR(CheckEpochLocked(epoch));
  if (limit <= trim_prefix_) {
    return Status::Ok();
  }
  for (LogOffset o = trim_prefix_; o < limit; ++o) {
    if (pages_.erase(o) > 0) {
      ++trimmed_count_;
    }
    trimmed_.erase(o);
  }
  trim_prefix_ = limit;
  return Status::Ok();
}

Result<LogOffset> MemoryBackend::LocalTail(Epoch epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  TANGO_RETURN_IF_ERROR(CheckEpochLocked(epoch));
  return local_tail_;
}

Epoch MemoryBackend::sealed_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_epoch_;
}

size_t MemoryBackend::PageCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.size();
}

uint64_t MemoryBackend::trimmed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trimmed_count_;
}

}  // namespace corfu::storage
