// StorageBackend: the persistence engine under a StorageNode.
//
// The CORFU protocol shell (epoch fencing wire format, RPC handlers, media
// simulation, metrics) lives in corfu::StorageNode; everything that must
// survive a crash — the write-once page index, the sealed epoch, trim
// state and the local tail — lives behind this interface.  Two engines
// implement it:
//
//   - MemoryBackend       (memory_backend.h): the original in-memory
//     FlashSegment map.  No durability of its own (the StorageNode's legacy
//     journal can sit on top); keeps benches and most tests fast.
//   - SegmentStoreBackend (segment_store.h): a log-structured segment store
//     with CRC32C-checksummed records, group-flushed writes with fsync
//     batching, segment-granularity GC, and crash-consistent recovery.
//
// Contract notes:
//   - All methods are thread-safe; epoch checks are atomic with the state
//     mutation (a Put cannot be admitted after a Seal that fenced it).
//   - Put enforces write-once (kWritten) and trim fencing (kTrimmed).
//   - A durable backend's Put returns only once the record is recoverable
//     after a process kill (handed to the kernel); fsync batching governs
//     the media-loss window, and Sync() forces it closed.

#ifndef SRC_STORAGE_BACKEND_H_
#define SRC_STORAGE_BACKEND_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/corfu/types.h"
#include "src/util/status.h"

namespace corfu::storage {

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  // Human-readable engine name ("memory", "segment") for logs and stats.
  virtual const char* name() const = 0;

  // Write-once durable put.  kSealedEpoch if `epoch` is stale, kTrimmed if
  // the offset was trimmed, kWritten if already written, kUnavailable if the
  // engine cannot persist (a failed durable engine is fail-stop for writes
  // but keeps serving reads).
  virtual tango::Status Put(Epoch epoch, LogOffset local,
                            std::span<const uint8_t> bytes) = 0;

  // kUnwritten / kTrimmed / kSealedEpoch as per the protocol.  Corrupt
  // on-media records are never served: they read as kUnwritten (the chain's
  // other replica has the data — that is why entries are mirrored).
  virtual tango::Result<std::vector<uint8_t>> Get(Epoch epoch,
                                                  LogOffset local) = 0;

  // Vectored read under one epoch check, atomic with respect to seals and
  // trims.  Appends one Result per offset to *pages, in order; the call
  // fails only on a stale epoch.
  virtual tango::Status GetBatch(
      Epoch epoch, const std::vector<LogOffset>& locals,
      std::vector<tango::Result<std::vector<uint8_t>>>* pages) = 0;

  // Durably raises the sealed epoch (strictly increasing) and returns the
  // local tail at the instant of sealing.
  virtual tango::Result<LogOffset> Seal(Epoch epoch) = 0;

  virtual tango::Status Trim(Epoch epoch, LogOffset local) = 0;
  virtual tango::Status TrimPrefix(Epoch epoch, LogOffset limit) = 0;

  // Local tail (one past the highest written offset), fenced by epoch.
  virtual tango::Result<LogOffset> LocalTail(Epoch epoch) = 0;

  // Durability barrier: on return, everything previously accepted is on
  // media (no-op for the in-memory engine).
  virtual tango::Status Sync() = 0;

  virtual Epoch sealed_epoch() const = 0;
  virtual size_t PageCount() const = 0;
  virtual uint64_t trimmed_count() const = 0;
};

}  // namespace corfu::storage

#endif  // SRC_STORAGE_BACKEND_H_
