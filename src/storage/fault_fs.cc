#include "src/storage/fault_fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <algorithm>

namespace corfu::storage {

using tango::Result;
using tango::Status;
using tango::StatusCode;

namespace {

Status Errno(const char* what) {
  return Status(StatusCode::kUnavailable,
                std::string(what) + ": " + std::strerror(errno));
}

class PosixFile : public File {
 public:
  explicit PosixFile(int fd) : fd_(fd) {}
  ~PosixFile() override { ::close(fd_); }

  Result<size_t> Append(std::span<const uint8_t> bytes) override {
    ssize_t n = ::write(fd_, bytes.data(), bytes.size());
    if (n < 0) {
      return Errno("write");
    }
    return static_cast<size_t>(n);
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Errno("fsync");
    }
    return Status::Ok();
  }

  Result<size_t> ReadAt(uint64_t offset, std::span<uint8_t> out) override {
    size_t done = 0;
    while (done < out.size()) {
      ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                          static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return Errno("pread");
      }
      if (n == 0) {
        break;  // EOF
      }
      done += static_cast<size_t>(n);
    }
    return done;
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Errno("ftruncate");
    }
    // O_APPEND keeps subsequent writes at the (new) end of file.
    return Status::Ok();
  }

  Result<uint64_t> Size() override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Errno("fstat");
    }
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  int fd_;
};

class PosixFs : public FileSystem {
 public:
  Result<std::unique_ptr<File>> Open(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
    if (fd < 0) {
      return Errno("open");
    }
    return std::unique_ptr<File>(new PosixFile(fd));
  }

  Result<std::vector<std::string>> List(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      return Errno("opendir");
    }
    std::vector<std::string> names;
    while (struct dirent* e = ::readdir(d)) {
      std::string name = e->d_name;
      if (name != "." && name != "..") {
        names.push_back(std::move(name));
      }
    }
    ::closedir(d);
    return names;
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return Errno("unlink");
    }
    return Status::Ok();
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir");
    }
    return Status::Ok();
  }

  bool Exists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }
};

}  // namespace

// Namespace-scope (not anonymous) so FaultInjectingFs can befriend it.
class FaultInjectingFile : public File {
 public:
  FaultInjectingFile(FaultInjectingFs* fs, std::unique_ptr<File> base)
      : fs_(fs), base_(std::move(base)) {}

  Result<size_t> Append(std::span<const uint8_t> bytes) override {
    size_t allowed = bytes.size();
    {
      std::lock_guard<std::mutex> lock(fs_->mu_);
      if (fs_->plan_.capacity_bytes > 0) {
        uint64_t remaining =
            fs_->plan_.capacity_bytes > fs_->bytes_written_
                ? fs_->plan_.capacity_bytes - fs_->bytes_written_
                : 0;
        if (remaining == 0) {
          fs_->enospc_failures_.fetch_add(1);
          return Status(StatusCode::kUnavailable, "injected ENOSPC");
        }
        allowed = static_cast<size_t>(
            std::min<uint64_t>(allowed, remaining));
      }
      if (allowed > 1 && fs_->rng_.NextBool(fs_->plan_.short_write_prob)) {
        // A strict prefix, like write(2) under memory pressure or a signal.
        allowed = 1 + static_cast<size_t>(fs_->rng_.NextBelow(allowed - 1));
        fs_->short_writes_.fetch_add(1);
      }
    }
    Result<size_t> written = base_->Append(bytes.subspan(0, allowed));
    if (written.ok()) {
      std::lock_guard<std::mutex> lock(fs_->mu_);
      fs_->bytes_written_ += *written;
    }
    return written;
  }

  Status Sync() override {
    {
      std::lock_guard<std::mutex> lock(fs_->mu_);
      if (fs_->rng_.NextBool(fs_->plan_.sync_fail_prob)) {
        fs_->sync_failures_.fetch_add(1);
        return Status(StatusCode::kUnavailable, "injected fsync failure");
      }
    }
    return base_->Sync();
  }

  Result<size_t> ReadAt(uint64_t offset, std::span<uint8_t> out) override {
    return base_->ReadAt(offset, out);
  }

  Status Truncate(uint64_t size) override { return base_->Truncate(size); }

  Result<uint64_t> Size() override { return base_->Size(); }

 private:
  FaultInjectingFs* fs_;
  std::unique_ptr<File> base_;
};

FileSystem* PosixFileSystem() {
  static PosixFs fs;
  return &fs;
}

FaultInjectingFs::FaultInjectingFs(FileSystem* base, FaultPlan plan)
    : base_(base), plan_(plan), rng_(plan.seed) {}

Result<std::unique_ptr<File>> FaultInjectingFs::Open(const std::string& path) {
  auto base = base_->Open(path);
  if (!base.ok()) {
    return base.status();
  }
  return std::unique_ptr<File>(
      new FaultInjectingFile(this, std::move(*base)));
}

Result<std::vector<std::string>> FaultInjectingFs::List(
    const std::string& dir) {
  return base_->List(dir);
}

Status FaultInjectingFs::Remove(const std::string& path) {
  return base_->Remove(path);
}

Status FaultInjectingFs::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

bool FaultInjectingFs::Exists(const std::string& path) {
  return base_->Exists(path);
}

Status TearFileTail(const std::string& path, uint64_t bytes) {
  auto file = PosixFileSystem()->Open(path);
  if (!file.ok()) {
    return file.status();
  }
  auto size = (*file)->Size();
  if (!size.ok()) {
    return size.status();
  }
  uint64_t keep = *size > bytes ? *size - bytes : 0;
  return (*file)->Truncate(keep);
}

Status FlipFileBit(const std::string& path, uint64_t byte_offset, int bit) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Errno("open");
  }
  uint8_t b = 0;
  if (::pread(fd, &b, 1, static_cast<off_t>(byte_offset)) != 1) {
    ::close(fd);
    return Status(StatusCode::kInvalidArgument, "flip offset out of range");
  }
  b ^= static_cast<uint8_t>(1u << bit);
  if (::pwrite(fd, &b, 1, static_cast<off_t>(byte_offset)) != 1) {
    ::close(fd);
    return Errno("pwrite");
  }
  ::close(fd);
  return Status::Ok();
}

}  // namespace corfu::storage
