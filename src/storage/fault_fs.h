// Pluggable file abstraction for the segment store, with fault injection.
//
// The durable backend never touches POSIX directly: it goes through a
// FileSystem, so tests can interpose a FaultInjectingFs that injects short
// writes, fsync failures and ENOSPC deterministically by seed, plus
// post-crash corruption helpers (torn tails, bit flips) that operate on the
// real files between a simulated crash and the restart.  This is how the
// recovery suite drives the storage engine through every failure mode a
// disk can produce without needing a failing disk.

#ifndef SRC_STORAGE_FAULT_FS_H_
#define SRC_STORAGE_FAULT_FS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/util/random.h"
#include "src/util/status.h"

namespace corfu::storage {

// An append-only-writable, random-readable file.  One writer at a time; the
// segment store serializes writes itself.
class File {
 public:
  virtual ~File() = default;

  // Appends at the current end of file.  May write fewer bytes than asked
  // (a short write, as write(2) is allowed to); returns the number written.
  virtual tango::Result<size_t> Append(std::span<const uint8_t> bytes) = 0;

  // Durability barrier (fsync).
  virtual tango::Status Sync() = 0;

  // Reads up to out.size() bytes at `offset`; returns the number read (short
  // at EOF).
  virtual tango::Result<size_t> ReadAt(uint64_t offset,
                                       std::span<uint8_t> out) = 0;

  // Truncates to `size` bytes; subsequent Appends continue from there.
  virtual tango::Status Truncate(uint64_t size) = 0;

  virtual tango::Result<uint64_t> Size() = 0;
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  // Opens for append+read, creating if absent.
  virtual tango::Result<std::unique_ptr<File>> Open(const std::string& path) = 0;
  // File names (not paths) in `dir`, unsorted.  Missing dir is an error.
  virtual tango::Result<std::vector<std::string>> List(
      const std::string& dir) = 0;
  virtual tango::Status Remove(const std::string& path) = 0;
  virtual tango::Status CreateDir(const std::string& path) = 0;
  virtual bool Exists(const std::string& path) = 0;
};

// The real thing.  Process-wide singleton; stateless.
FileSystem* PosixFileSystem();

// Knobs for FaultInjectingFs.  All probabilities in [0, 1]; draws come from
// one seeded Rng so a (plan, op sequence) pair replays identically.
struct FaultPlan {
  uint64_t seed = 1;
  double short_write_prob = 0;   // Append writes a random strict prefix
  double sync_fail_prob = 0;     // Sync returns kUnavailable
  // Total bytes the fs will accept across all files before injecting
  // ENOSPC-style failures; 0 = unlimited.
  uint64_t capacity_bytes = 0;
};

// Wraps a base FileSystem and injects faults per the plan.  Thread-safe.
class FaultInjectingFs : public FileSystem {
 public:
  FaultInjectingFs(FileSystem* base, FaultPlan plan);

  tango::Result<std::unique_ptr<File>> Open(const std::string& path) override;
  tango::Result<std::vector<std::string>> List(const std::string& dir) override;
  tango::Status Remove(const std::string& path) override;
  tango::Status CreateDir(const std::string& path) override;
  bool Exists(const std::string& path) override;

  uint64_t short_writes() const { return short_writes_.load(); }
  uint64_t sync_failures() const { return sync_failures_.load(); }
  uint64_t enospc_failures() const { return enospc_failures_.load(); }

 private:
  friend class FaultInjectingFile;

  FileSystem* base_;
  FaultPlan plan_;
  std::mutex mu_;  // guards rng_ and bytes_written_
  tango::Rng rng_;
  uint64_t bytes_written_ = 0;
  std::atomic<uint64_t> short_writes_{0};
  std::atomic<uint64_t> sync_failures_{0};
  std::atomic<uint64_t> enospc_failures_{0};
};

// Post-crash corruption helpers (deterministic given their arguments).
// These act on real files through PosixFileSystem, simulating what a torn
// or bit-rotted tail looks like after power loss.

// Chops `bytes` off the end of `path`.
tango::Status TearFileTail(const std::string& path, uint64_t bytes);

// Flips bit `bit` (0-7) of the byte at `byte_offset` in `path`.
tango::Status FlipFileBit(const std::string& path, uint64_t byte_offset,
                          int bit);

}  // namespace corfu::storage

#endif  // SRC_STORAGE_FAULT_FS_H_
