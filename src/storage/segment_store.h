// SegmentStoreBackend: a durable, log-structured segment store.
//
// The write-once page space of one storage node is persisted as an ordered
// sequence of fixed-size segment files (<dir>/seg-XXXXXXXX.log) holding
// length-prefixed, CRC32C-checksummed records:
//
//   u32 len     bytes covered by the crc (13-byte body header + payload)
//   u32 crc     CRC32C over the `len` bytes that follow
//   u8  type    1=page write  2=seal  3=trim  4=trim-prefix  5=checkpoint
//   u32 epoch   epoch the operation was admitted under
//   u64 local   page offset / trim limit / 0
//   ...         payload (page bytes for writes, state snapshot for checkpoints)
//
// Write path (the LogBase/PersistentLog shape): Put admits the record under
// the store mutex (write-once + trim + epoch checks, index update), appends
// it to a group write buffer, then waits for durability *outside* the admit
// lock.  One thread at a time drains the buffer with a single write(2)
// (group flush — concurrent appenders share the syscall) and one thread at
// a time fsyncs (group commit — an fsync covers every record written before
// it).  `fsync_batch` N batches fsyncs: an append is acked once its bytes
// reach the kernel (crash-consistent against kill -9) and the store fsyncs
// every Nth record (bounding the power-loss window); N=1 fsyncs every
// append.  A background flusher closes the window by time as well.  Seals
// always fsync — fencing must not be reorderable with a power cut.
//
// Recovery: Open scans the segments in order, replaying records to rebuild
// the page index, sealed epoch, trim state and local tail.  A short or
// CRC-mismatched record in the final segment is a torn tail: the file is
// truncated back to the last good boundary and the store continues from
// there.  A corrupt record in an earlier segment is surfaced (counted,
// logged) and never served — the affected pages read as kUnwritten so the
// chain's other replica serves them; bytes are re-verified against the CRC
// on every read, so bit rot after recovery is also caught.
//
// GC is segment-granular: trims decrement per-segment live-page counts, and
// a sealed segment whose pages are all dead is deleted after a checkpoint
// record (sealed epoch, trim watermarks, tail, live trim set) is made
// durable in the active segment, so recovery never needs the deleted file.
//
// Media errors (failed write(2), failed fsync, ENOSPC) fail the store stop:
// subsequent mutations return kUnavailable while reads keep serving — the
// health monitor routes around a fail-stopped node exactly like a dead one.

#ifndef SRC_STORAGE_SEGMENT_STORE_H_
#define SRC_STORAGE_SEGMENT_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/obs/metrics.h"
#include "src/storage/backend.h"
#include "src/storage/fault_fs.h"

namespace corfu::storage {

struct SegmentStoreOptions {
  std::string dir;
  // File abstraction; nullptr uses the real PosixFileSystem().  Tests pass a
  // FaultInjectingFs here.
  FileSystem* fs = nullptr;
  // Roll to a new segment file once the active one reaches this size.
  uint64_t segment_bytes = 8ull << 20;
  // fsync every Nth record (group commit); 1 = every record.  Acks are
  // kill-9-safe at any setting; N bounds the media-power-loss window.
  uint32_t fsync_batch = 64;
  // Background flush+fsync cadence in ms; 0 disables the thread.
  uint32_t flush_interval_ms = 20;
  // Backpressure: bound on bytes sitting in the group write buffer (admitted
  // but not yet handed to the kernel).  Once exceeded, Put sheds with kBusy
  // and a retry-after hint instead of queuing unboundedly behind a slow
  // device.  0 = unbounded (the pre-overload behavior).
  uint64_t max_buffer_bytes = 0;
};

class SegmentStoreBackend : public StorageBackend {
 public:
  struct RecoveryStats {
    uint64_t segments_scanned = 0;
    uint64_t records_replayed = 0;
    uint64_t pages_recovered = 0;
    uint64_t torn_bytes_truncated = 0;  // tail bytes dropped from last segment
    uint64_t corrupt_records = 0;       // CRC-rejected complete records
    uint64_t skipped_bytes = 0;         // unreachable bytes after corruption
  };

  // Scans `options.dir` (created if absent) and recovers the store.
  static tango::Result<std::unique_ptr<SegmentStoreBackend>> Open(
      SegmentStoreOptions options);

  ~SegmentStoreBackend() override;

  SegmentStoreBackend(const SegmentStoreBackend&) = delete;
  SegmentStoreBackend& operator=(const SegmentStoreBackend&) = delete;

  const char* name() const override { return "segment"; }

  tango::Status Put(Epoch epoch, LogOffset local,
                    std::span<const uint8_t> bytes) override;
  tango::Result<std::vector<uint8_t>> Get(Epoch epoch,
                                          LogOffset local) override;
  tango::Status GetBatch(
      Epoch epoch, const std::vector<LogOffset>& locals,
      std::vector<tango::Result<std::vector<uint8_t>>>* pages) override;
  tango::Result<LogOffset> Seal(Epoch epoch) override;
  tango::Status Trim(Epoch epoch, LogOffset local) override;
  tango::Status TrimPrefix(Epoch epoch, LogOffset limit) override;
  tango::Result<LogOffset> LocalTail(Epoch epoch) override;
  tango::Status Sync() override;

  Epoch sealed_epoch() const override;
  size_t PageCount() const override;
  uint64_t trimmed_count() const override;

  // Introspection for tests and stats.
  const RecoveryStats& recovery_stats() const { return recovery_; }
  size_t segment_count() const;
  bool failed() const;
  uint64_t fsyncs() const { return fsyncs_.load(); }
  uint64_t group_flushes() const { return flushes_.load(); }
  uint64_t gc_deleted_segments() const { return gc_deleted_.load(); }
  uint64_t corrupt_reads() const { return corrupt_reads_.load(); }

  // On-disk framing constants, shared with tests that build or corrupt
  // record images by hand.
  static constexpr size_t kFrameHeader = 8;   // len + crc
  static constexpr size_t kBodyHeader = 13;   // type + epoch + local
  static constexpr uint8_t kRecWrite = 1;
  static constexpr uint8_t kRecSeal = 2;
  static constexpr uint8_t kRecTrim = 3;
  static constexpr uint8_t kRecTrimPrefix = 4;
  static constexpr uint8_t kRecCheckpoint = 5;

  static std::string SegmentFileName(uint32_t id);

 private:
  struct PageRef {
    uint32_t segment;
    uint64_t record_off;  // offset of the frame header in the segment file
    uint32_t record_len;  // full record size: frame header + body
  };

  struct Segment {
    std::unique_ptr<File> file;
    uint64_t end = 0;        // logical size including buffered bytes
    uint64_t live_pages = 0;
  };

  explicit SegmentStoreBackend(SegmentStoreOptions options);

  tango::Status Recover();
  tango::Status ApplyRecord(uint32_t segment, uint64_t record_off,
                            uint64_t record_len, uint8_t type, Epoch epoch,
                            LogOffset local,
                            std::span<const uint8_t> payload);

  std::string SegmentPath(uint32_t id) const;
  tango::Status CheckEpochLocked(Epoch epoch) const;
  // Shared by runtime TrimPrefix, recovery replay and checkpoint replay.
  void ApplyTrimPrefixLocked(LogOffset limit);

  // Rolls the active segment if `record_size` would overflow it.  May drop
  // the lock (roll waits for the in-flight flush), so protocol checks must
  // happen AFTER this returns.
  tango::Status EnsureRoomLocked(size_t record_size,
                                 std::unique_lock<std::mutex>& lk);
  // Serializes one record into the group buffer without dropping the lock
  // and returns its commit sequence number; *ref (may be null) receives the
  // record's on-disk location.
  uint64_t AdmitRecordLocked(uint8_t type, Epoch epoch, LogOffset local,
                             std::span<const uint8_t> payload, PageRef* ref);
  // Group flush: returns once every record up to `seq` has reached the
  // kernel (write(2) completed).
  tango::Status FlushToSeqLocked(uint64_t seq, std::unique_lock<std::mutex>& lk);
  // Group commit: returns once every record up to `seq` is fsynced.
  tango::Status SyncToSeqLocked(uint64_t seq, std::unique_lock<std::mutex>& lk);
  // Applies the fsync-batch policy after a flush.
  tango::Status WaitDurableLocked(uint64_t seq,
                                  std::unique_lock<std::mutex>& lk);
  // Rolls to a fresh segment (flushes + fsyncs the old one).
  tango::Status RollSegmentLocked(std::unique_lock<std::mutex>& lk);
  // Deletes sealed segments with zero live pages (after a checkpoint).
  void MaybeGcLocked(std::unique_lock<std::mutex>& lk);
  // Reads a record back and CRC-verifies it; serves the payload.
  tango::Result<std::vector<uint8_t>> ReadPageLocked(const PageRef& ref,
                                                     LogOffset local);

  void FlusherLoop();

  SegmentStoreOptions options_;
  FileSystem* fs_;

  mutable std::mutex mu_;
  std::condition_variable cv_;

  // Durable state (mirrors MemoryBackend).
  Epoch sealed_epoch_ = 0;
  std::unordered_map<LogOffset, PageRef> pages_;
  LogOffset trim_prefix_ = 0;
  std::unordered_map<LogOffset, bool> trimmed_;
  LogOffset local_tail_ = 0;
  uint64_t trimmed_count_ = 0;

  // Segment files.
  std::map<uint32_t, Segment> segments_;  // ordered by id
  uint32_t active_id_ = 0;

  // Group write buffer for the active segment.
  std::vector<uint8_t> buf_;
  uint64_t accepted_seq_ = 0;  // records admitted
  uint64_t written_seq_ = 0;   // records handed to the kernel
  uint64_t synced_seq_ = 0;    // records fsynced
  bool writer_active_ = false;
  bool syncer_active_ = false;
  bool rolling_ = false;  // a roll is switching the active segment
  bool failed_ = false;

  RecoveryStats recovery_;
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> gc_deleted_{0};
  std::atomic<uint64_t> corrupt_reads_{0};

  // Background flusher.
  std::thread flusher_;
  std::mutex flusher_mu_;
  std::condition_variable flusher_cv_;
  bool stop_flusher_ = false;

  // Registry instruments (process-wide).
  tango::obs::Counter* m_records_;
  tango::obs::Counter* m_bytes_;
  tango::obs::Counter* m_fsyncs_;
  tango::obs::Counter* m_flushes_;
  tango::obs::Counter* m_gc_deleted_;
  tango::obs::Counter* m_corrupt_;
  tango::obs::Counter* m_failstop_;
  tango::obs::Counter* m_wbuf_shed_;
  tango::obs::Gauge* m_wbuf_bytes_;
};

}  // namespace corfu::storage

#endif  // SRC_STORAGE_SEGMENT_STORE_H_
