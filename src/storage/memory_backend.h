// MemoryBackend: the original in-memory "flash segment" page store.
//
// Exactly the semantics StorageNode had before the backend split: an
// unordered page map with write-once enforcement, a prefix trim watermark
// plus an individual-trim set, and a sealed epoch.  No durability — the
// StorageNode's legacy journal (or a chain replica) provides it when needed.
// This is the engine benches use, so its hot paths must stay a map lookup
// under an uncontended mutex.

#ifndef SRC_STORAGE_MEMORY_BACKEND_H_
#define SRC_STORAGE_MEMORY_BACKEND_H_

#include <mutex>
#include <unordered_map>

#include "src/storage/backend.h"

namespace corfu::storage {

class MemoryBackend : public StorageBackend {
 public:
  MemoryBackend() = default;

  const char* name() const override { return "memory"; }

  tango::Status Put(Epoch epoch, LogOffset local,
                    std::span<const uint8_t> bytes) override;
  tango::Result<std::vector<uint8_t>> Get(Epoch epoch,
                                          LogOffset local) override;
  tango::Status GetBatch(
      Epoch epoch, const std::vector<LogOffset>& locals,
      std::vector<tango::Result<std::vector<uint8_t>>>* pages) override;
  tango::Result<LogOffset> Seal(Epoch epoch) override;
  tango::Status Trim(Epoch epoch, LogOffset local) override;
  tango::Status TrimPrefix(Epoch epoch, LogOffset limit) override;
  tango::Result<LogOffset> LocalTail(Epoch epoch) override;
  tango::Status Sync() override { return tango::Status::Ok(); }

  Epoch sealed_epoch() const override;
  size_t PageCount() const override;
  uint64_t trimmed_count() const override;

 private:
  tango::Status CheckEpochLocked(Epoch epoch) const;

  mutable std::mutex mu_;
  Epoch sealed_epoch_ = 0;
  std::unordered_map<LogOffset, std::vector<uint8_t>> pages_;
  // Offsets below this are trimmed wholesale (prefix trim).
  LogOffset trim_prefix_ = 0;
  // Individually trimmed offsets at or above trim_prefix_.
  std::unordered_map<LogOffset, bool> trimmed_;
  LogOffset local_tail_ = 0;  // one past the highest written local offset
  uint64_t trimmed_count_ = 0;
};

}  // namespace corfu::storage

#endif  // SRC_STORAGE_MEMORY_BACKEND_H_
