// Distributed two-phase locking baseline (§6.2, Figure 10 middle).
//
// This is the comparison protocol the paper implements inside EndTX: a
// Percolator-style design with a centralized timestamp oracle and
// per-client lock managers, but providing serializability (not snapshot
// isolation) for a direct comparison with Tango:
//
//   1. acquire a timestamp ts from the oracle — the transaction's version;
//   2. try-lock the read-set items (hosted locally) and validate that none
//      changed since they were read;
//   3. try-lock each write-set item at its owner and fetch its version; any
//      version above ts (write-write conflict) or unavailable lock aborts
//      the attempt, unlocks everything, and retries with a fresh timestamp
//      (no waiting, hence no deadlock — at the cost of retries);
//   4. send commit to every owner: install values at version ts and unlock.
//
// Items are (key -> versioned value) pairs; each ItemStore hosts a partition
// and serves Lock/Commit/Abort RPCs over the shared Transport.

#ifndef SRC_BASELINE_TWO_PHASE_LOCKING_H_
#define SRC_BASELINE_TWO_PHASE_LOCKING_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/transport.h"
#include "src/util/status.h"

namespace twopl {

using TxTimestamp = uint64_t;

// Centralized timestamp oracle (the paper reuses the CORFU sequencer for
// this role; we give it its own tiny service).
class TimestampOracle {
 public:
  TimestampOracle(tango::Transport* transport, tango::NodeId node);
  ~TimestampOracle();

  TimestampOracle(const TimestampOracle&) = delete;
  TimestampOracle& operator=(const TimestampOracle&) = delete;

 private:
  tango::Transport* transport_;
  tango::NodeId node_;
  std::atomic<TxTimestamp> next_{1};
  tango::RpcDispatcher dispatcher_;
};

tango::Result<TxTimestamp> FetchTimestamp(tango::Transport* transport,
                                          tango::NodeId oracle);

// One partition of items, owned by one client, serving lock RPCs.
class ItemStore {
 public:
  ItemStore(tango::Transport* transport, tango::NodeId node);
  ~ItemStore();

  ItemStore(const ItemStore&) = delete;
  ItemStore& operator=(const ItemStore&) = delete;

  tango::NodeId node() const { return node_; }

  // Local (same-process) accessors used for the read phase.
  struct VersionedValue {
    int64_t value = 0;
    TxTimestamp version = 0;
  };
  VersionedValue Read(uint64_t key);

  // Try-locks `key` for `txid`; returns its current version, or kUnavailable
  // if locked by another transaction.  Idempotent per (txid, key).
  tango::Result<TxTimestamp> Lock(uint64_t txid, uint64_t key);
  void Unlock(uint64_t txid, uint64_t key);
  // Installs `value` at version `ts` and releases the lock.
  tango::Status Commit(uint64_t txid, uint64_t key, int64_t value,
                       TxTimestamp ts);

 private:
  struct Item {
    int64_t value = 0;
    TxTimestamp version = 0;
    uint64_t locked_by = 0;  // 0 = unlocked
  };

  tango::Status HandleLock(tango::ByteReader& req, tango::ByteWriter& resp);
  tango::Status HandleCommit(tango::ByteReader& req, tango::ByteWriter& resp);
  tango::Status HandleAbort(tango::ByteReader& req, tango::ByteWriter& resp);

  tango::Transport* transport_;
  tango::NodeId node_;
  std::mutex mu_;
  std::unordered_map<uint64_t, Item> items_;
  tango::RpcDispatcher dispatcher_;
};

// Executes transactions against a set of ItemStores.
class TwoPhaseLockingClient {
 public:
  struct WriteIntent {
    tango::NodeId owner;   // node id of the owning ItemStore
    uint64_t key;
    int64_t value;
  };
  struct ReadIntent {
    uint64_t key;          // always local to `local_store`
  };

  TwoPhaseLockingClient(tango::Transport* transport, tango::NodeId oracle,
                        ItemStore* local_store, uint64_t client_id);

  // Runs one serializable transaction.  Returns OK on commit, kAborted when
  // the retry budget is exhausted by conflicts.
  tango::Status ExecuteTx(const std::vector<ReadIntent>& reads,
                          const std::vector<WriteIntent>& writes,
                          int max_retries = 64);

  uint64_t retries() const { return retries_; }

 private:
  tango::Status TryOnce(const std::vector<ReadIntent>& reads,
                        const std::vector<WriteIntent>& writes);

  tango::Transport* transport_;
  tango::NodeId oracle_;
  ItemStore* local_store_;
  uint64_t client_id_;
  uint64_t tx_seq_ = 1;
  uint64_t retries_ = 0;
};

}  // namespace twopl

#endif  // SRC_BASELINE_TWO_PHASE_LOCKING_H_
