#include "src/baseline/two_phase_locking.h"

#include <algorithm>
#include <atomic>

#include "src/corfu/types.h"
#include "src/util/logging.h"

namespace twopl {

using corfu::kLockAbort;
using corfu::kLockAcquire;
using corfu::kLockCommit;
using corfu::kTimestampNext;
using tango::ByteReader;
using tango::ByteWriter;
using tango::NodeId;
using tango::Result;
using tango::Status;
using tango::StatusCode;

TimestampOracle::TimestampOracle(tango::Transport* transport, NodeId node)
    : transport_(transport), node_(node) {
  dispatcher_.Register(kTimestampNext,
                       [this](ByteReader& /*req*/, ByteWriter& resp) {
                         resp.PutU64(next_.fetch_add(1));
                         return Status::Ok();
                       });
  transport_->RegisterNode(node_, dispatcher_.AsHandler());
}

TimestampOracle::~TimestampOracle() { transport_->UnregisterNode(node_); }

Result<TxTimestamp> FetchTimestamp(tango::Transport* transport,
                                   NodeId oracle) {
  std::vector<uint8_t> resp;
  Status st = transport->Call(oracle, kTimestampNext, {}, &resp);
  if (!st.ok()) {
    return st;
  }
  ByteReader r(resp);
  TxTimestamp ts = r.GetU64();
  if (!r.ok()) {
    return Status(StatusCode::kInternal, "malformed timestamp");
  }
  return ts;
}

ItemStore::ItemStore(tango::Transport* transport, NodeId node)
    : transport_(transport), node_(node) {
  dispatcher_.Register(kLockAcquire, [this](ByteReader& q, ByteWriter& p) {
    return HandleLock(q, p);
  });
  dispatcher_.Register(kLockCommit, [this](ByteReader& q, ByteWriter& p) {
    return HandleCommit(q, p);
  });
  dispatcher_.Register(kLockAbort, [this](ByteReader& q, ByteWriter& p) {
    return HandleAbort(q, p);
  });
  transport_->RegisterNode(node_, dispatcher_.AsHandler());
}

ItemStore::~ItemStore() { transport_->UnregisterNode(node_); }

ItemStore::VersionedValue ItemStore::Read(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  const Item& item = items_[key];
  return VersionedValue{item.value, item.version};
}

Result<TxTimestamp> ItemStore::Lock(uint64_t txid, uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  Item& item = items_[key];
  if (item.locked_by != 0 && item.locked_by != txid) {
    return Status(StatusCode::kUnavailable, "item locked");
  }
  item.locked_by = txid;
  return item.version;
}

void ItemStore::Unlock(uint64_t txid, uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = items_.find(key);
  if (it != items_.end() && it->second.locked_by == txid) {
    it->second.locked_by = 0;
  }
}

Status ItemStore::Commit(uint64_t txid, uint64_t key, int64_t value,
                         TxTimestamp ts) {
  std::lock_guard<std::mutex> lock(mu_);
  Item& item = items_[key];
  if (item.locked_by != txid) {
    return Status(StatusCode::kFailedPrecondition, "commit without lock");
  }
  item.value = value;
  item.version = ts;
  item.locked_by = 0;
  return Status::Ok();
}

Status ItemStore::HandleLock(ByteReader& req, ByteWriter& resp) {
  uint64_t txid = req.GetU64();
  uint64_t key = req.GetU64();
  if (!req.ok()) {
    return Status(StatusCode::kInvalidArgument, "malformed lock");
  }
  Result<TxTimestamp> version = Lock(txid, key);
  if (!version.ok()) {
    return version.status();
  }
  resp.PutU64(*version);
  return Status::Ok();
}

Status ItemStore::HandleCommit(ByteReader& req, ByteWriter& /*resp*/) {
  uint64_t txid = req.GetU64();
  uint64_t key = req.GetU64();
  int64_t value = req.GetI64();
  TxTimestamp ts = req.GetU64();
  if (!req.ok()) {
    return Status(StatusCode::kInvalidArgument, "malformed commit");
  }
  return Commit(txid, key, value, ts);
}

Status ItemStore::HandleAbort(ByteReader& req, ByteWriter& /*resp*/) {
  uint64_t txid = req.GetU64();
  uint64_t key = req.GetU64();
  if (!req.ok()) {
    return Status(StatusCode::kInvalidArgument, "malformed abort");
  }
  Unlock(txid, key);
  return Status::Ok();
}

TwoPhaseLockingClient::TwoPhaseLockingClient(tango::Transport* transport,
                                             NodeId oracle,
                                             ItemStore* local_store,
                                             uint64_t client_id)
    : transport_(transport),
      oracle_(oracle),
      local_store_(local_store),
      client_id_(client_id) {}

Status TwoPhaseLockingClient::ExecuteTx(const std::vector<ReadIntent>& reads,
                                        const std::vector<WriteIntent>& writes,
                                        int max_retries) {
  for (int attempt = 0; attempt < max_retries; ++attempt) {
    Status st = TryOnce(reads, writes);
    if (st.ok() || st != StatusCode::kAborted) {
      return st;
    }
    ++retries_;
  }
  return Status(StatusCode::kAborted, "2PL retries exhausted");
}

Status TwoPhaseLockingClient::TryOnce(const std::vector<ReadIntent>& reads,
                                      const std::vector<WriteIntent>& writes) {
  uint64_t txid = (client_id_ << 32) | tx_seq_++;

  // Phase 0: read the (local) read set optimistically.
  std::vector<std::pair<uint64_t, TxTimestamp>> observed;
  observed.reserve(reads.size());
  for (const ReadIntent& read : reads) {
    observed.emplace_back(read.key, local_store_->Read(read.key).version);
  }

  // Phase 1a: timestamp = this transaction's version.
  Result<TxTimestamp> ts = FetchTimestamp(transport_, oracle_);
  if (!ts.ok()) {
    return ts.status();
  }

  struct Held {
    NodeId owner;
    uint64_t key;
    bool local;
  };
  std::vector<Held> held;
  auto unlock_all = [&] {
    for (const Held& h : held) {
      if (h.local) {
        local_store_->Unlock(txid, h.key);
      } else {
        ByteWriter w(16);
        w.PutU64(txid);
        w.PutU64(h.key);
        (void)transport_->Call(h.owner, kLockAbort, w.bytes(), nullptr);
      }
    }
    held.clear();
  };

  // Phase 1b: lock + validate the read set.
  for (const auto& [key, version] : observed) {
    Result<TxTimestamp> current = local_store_->Lock(txid, key);
    if (!current.ok()) {
      unlock_all();
      return Status(StatusCode::kAborted, "read lock unavailable");
    }
    held.push_back(Held{local_store_->node(), key, true});
    if (*current != version) {
      unlock_all();
      return Status(StatusCode::kAborted, "read-set item changed");
    }
  }

  // Phase 2: lock the write set at its owners, checking for write-write
  // conflicts (any version above our timestamp).
  for (const WriteIntent& write : writes) {
    TxTimestamp version;
    if (write.owner == local_store_->node()) {
      Result<TxTimestamp> v = local_store_->Lock(txid, write.key);
      if (!v.ok()) {
        unlock_all();
        return Status(StatusCode::kAborted, "write lock unavailable");
      }
      version = *v;
      held.push_back(Held{write.owner, write.key, true});
    } else {
      ByteWriter w(16);
      w.PutU64(txid);
      w.PutU64(write.key);
      std::vector<uint8_t> resp;
      Status st = transport_->Call(write.owner, kLockAcquire, w.bytes(), &resp);
      if (!st.ok()) {
        unlock_all();
        return st == StatusCode::kUnavailable
                   ? Status(StatusCode::kAborted, "write lock unavailable")
                   : st;
      }
      ByteReader r(resp);
      version = r.GetU64();
      held.push_back(Held{write.owner, write.key, false});
    }
    if (version > *ts) {
      unlock_all();
      return Status(StatusCode::kAborted, "write-write conflict");
    }
  }

  // Phase 3: commit everywhere (installs values at version ts and unlocks).
  for (const WriteIntent& write : writes) {
    if (write.owner == local_store_->node()) {
      Status st = local_store_->Commit(txid, write.key, write.value, *ts);
      if (!st.ok()) {
        return st;
      }
    } else {
      ByteWriter w(32);
      w.PutU64(txid);
      w.PutU64(write.key);
      w.PutI64(write.value);
      w.PutU64(*ts);
      Status st = transport_->Call(write.owner, kLockCommit, w.bytes(),
                                   nullptr);
      if (!st.ok()) {
        return st;
      }
    }
  }
  // Release read locks (reads are not version-bumped).
  for (const Held& h : held) {
    bool written = std::any_of(writes.begin(), writes.end(),
                               [&](const WriteIntent& w) {
                                 return w.owner == h.owner && w.key == h.key;
                               });
    if (!written && h.local) {
      local_store_->Unlock(txid, h.key);
    }
  }
  return Status::Ok();
}

}  // namespace twopl
