#include "src/obs/trace.h"

#include <algorithm>
#include <sstream>

#include "src/obs/metrics.h"
#include "src/util/threading.h"

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#define TANGO_TRACE_TSC 1
#endif

namespace tango::obs {

namespace {

thread_local TraceContext t_current;

// Ids are handed out in thread-local blocks so the per-span cost is one
// thread-local increment instead of a contended fetch_add.
constexpr uint64_t kIdBlock = 1 << 12;

// Scratch batch size: one request's spans almost always fit; a larger trace
// spills to the shared ring mid-request (provisionally, like every span did
// before batching) and loses nothing.
constexpr uint32_t kScratchCap = 128;

uint32_t ThreadIndex() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

// splitmix64: a full-period 64-bit mixer, the standard cheap way to turn a
// counter-ish id into uniform bits for the sampling decision.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Span timestamps.  clock_gettime costs ~20ns per call even through the
// vDSO — two calls per span would be most of a span's budget — so on x86 the
// hot path reads the TSC and conversion to microseconds happens at flush
// time (once per retained trace, not per span).  Calibration against the
// monotonic clock runs once, from SetEnabled/SetSampling, so it never lands
// inside a measured region; the function-local static guard gives every
// later reader a happens-before edge.
struct TraceClock {
  uint64_t base_ticks = 0;
  uint64_t base_us = 0;
  double us_per_tick = 1e-3;
};

#if defined(TANGO_TRACE_TSC)
inline uint64_t TraceTicks() { return __rdtsc(); }

const TraceClock& Calibrated() {
  static TraceClock clock = [] {
    uint64_t t0 = __rdtsc();
    uint64_t n0 = NowNanos();
    uint64_t n1 = n0;
    while (n1 - n0 < 2'000'000) {  // 2ms spin: ~1e-5 frequency error
      n1 = NowNanos();
    }
    uint64_t t1 = __rdtsc();
    TraceClock c;
    c.us_per_tick = static_cast<double>(n1 - n0) / 1000.0 /
                    static_cast<double>(t1 - t0);
    c.base_ticks = t0;
    c.base_us = n0 / 1000;
    return c;
  }();
  return clock;
}
#else
inline uint64_t TraceTicks() { return NowNanos(); }

const TraceClock& Calibrated() {
  static TraceClock clock;  // ticks are nanoseconds; us_per_tick = 1e-3
  return clock;
}
#endif

// Signed conversions: a span that started before calibration (tracing used
// without SetEnabled first) or cross-core TSC skew must clamp, not wrap.
uint64_t TicksToWallMicros(const TraceClock& clk, uint64_t ticks) {
  int64_t rel = static_cast<int64_t>(ticks - clk.base_ticks);
  int64_t us = static_cast<int64_t>(clk.base_us) +
               static_cast<int64_t>(static_cast<double>(rel) * clk.us_per_tick);
  return us > 0 ? static_cast<uint64_t>(us) : 0;
}

uint64_t TicksToDurationMicros(const TraceClock& clk, uint64_t start,
                               uint64_t end) {
  int64_t d = static_cast<int64_t>(end - start);
  if (d <= 0) {
    return 0;
  }
  return static_cast<uint64_t>(static_cast<double>(d) * clk.us_per_tick);
}

void AppendJsonString(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\';
    }
    out << c;
  }
  out << '"';
}

// Cumulative counters surfaced through the registry only at collection
// time: push the delta since the last export so the span path never touches
// a registry instrument.
void ExportCounterDelta(Counter* counter, uint64_t total,
                        std::atomic<uint64_t>* exported) {
  uint64_t prev = exported->exchange(total, std::memory_order_relaxed);
  if (total > prev) {
    counter->Add(total - prev);
  }
}

}  // namespace

// One span buffered in the calling thread's private batch, timestamps still
// raw ticks.  Plain fields: nothing outside the owning thread ever reads a
// scratch record.
struct Tracer::TickRec {
  uint64_t trace_id;
  uint64_t span_id;
  uint64_t parent_id;
  const char* name;
  uint64_t start_ticks;
  uint64_t end_ticks;
  uint32_t node;
  bool adopted;
};

struct Tracer::Scratch {
  Tracer* owner = nullptr;
  uint32_t n = 0;
  TickRec recs[kScratchCap];
};

TraceContext CurrentTrace() { return t_current; }

void SetCurrentTrace(TraceContext ctx) { t_current = ctx; }

uint32_t CurrentThreadIndex() { return ThreadIndex(); }

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::EnsureInstruments() {
  std::call_once(instruments_once_, [this] {
    MetricsRegistry& reg = MetricsRegistry::Default();
    m_dropped_ = reg.GetCounter("obs.trace.dropped");
    m_head_out_ = reg.GetCounter("obs.trace.head_sampled_out");
    m_tail_retained_ = reg.GetCounter("obs.trace.tail_retained");
    m_ring_spans_ = reg.GetGauge("obs.trace.ring_spans");
    m_retained_traces_ = reg.GetGauge("obs.trace.retained_traces");
    // Everything refreshes at registry-snapshot time, so span loss and
    // sampling decisions are visible in every stats dump without any
    // registry update on the hot path.
    reg.AddCollectionHook([this] {
      m_ring_spans_->Set(static_cast<int64_t>(RingSpans()));
      {
        std::lock_guard<std::mutex> lock(retained_mu_);
        m_retained_traces_->Set(static_cast<int64_t>(retained_.size()));
      }
      ExportCounterDelta(m_dropped_, dropped(), &exported_dropped_);
      ExportCounterDelta(m_head_out_, head_sampled_out(), &exported_head_out_);
      ExportCounterDelta(m_tail_retained_, tail_retained(), &exported_tail_);
    });
  });
}

uint64_t Tracer::NewId() {
  thread_local struct {
    Tracer* owner = nullptr;
    uint64_t next = 0;
    uint64_t end = 0;
  } block;
  if (block.owner != this || block.next == block.end) {
    block.owner = this;
    block.next = next_id_block_.fetch_add(kIdBlock, std::memory_order_relaxed);
    block.end = block.next + kIdBlock;
  }
  return block.next++;
}

uint64_t Tracer::NewTraceId() { return NewId(); }

uint64_t Tracer::NewSpanId() { return NewId(); }

void Tracer::SetEnabled(bool enabled) {
  if (enabled) {
    Calibrated();  // pay TSC calibration here, not under the first span
  }
  enabled_.store(enabled, std::memory_order_relaxed);
}

void Tracer::SetSampling(SamplingPolicy policy) {
  if (policy.sample_every == 0) {
    policy.sample_every = 1;
  }
  // Resolve the registry instruments now so an idle daemon's /metrics
  // already carries the obs.trace.* schema before the first span records.
  EnsureInstruments();
  Calibrated();
  policy_sample_every_.store(policy.sample_every, std::memory_order_relaxed);
  policy_slow_us_.store(policy.slow_us, std::memory_order_relaxed);
  policy_seed_.store(policy.seed, std::memory_order_relaxed);
}

SamplingPolicy Tracer::sampling() const {
  SamplingPolicy p;
  p.sample_every = policy_sample_every_.load(std::memory_order_relaxed);
  p.slow_us = policy_slow_us_.load(std::memory_order_relaxed);
  p.seed = policy_seed_.load(std::memory_order_relaxed);
  return p;
}

bool Tracer::WouldHeadSample(uint64_t trace_id) const {
  uint64_t every = policy_sample_every_.load(std::memory_order_relaxed);
  if (every <= 1) {
    return true;
  }
  uint64_t mixed =
      Mix64(trace_id ^ policy_seed_.load(std::memory_order_relaxed));
  if ((every & (every - 1)) == 0) {  // the common 1/2^k case: skip the div
    return (mixed & (every - 1)) == 0;
  }
  return mixed % every == 0;
}

Tracer::ThreadRing* Tracer::LocalRing() {
  // Fast path: this thread already resolved its ring for this tracer.
  thread_local struct {
    Tracer* owner = nullptr;
    ThreadRing* ring = nullptr;
  } cache;
  if (cache.owner == this) {
    return cache.ring;
  }
  // Slow path (first flush on this thread, or a second Tracer instance in
  // tests): look the ring up — or create it — under the registry lock.
  // Rings are keyed by thread index and never freed, mirroring how the
  // registry keeps instrument pointers stable forever.
  EnsureInstruments();
  uint32_t me = ThreadIndex();
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (ThreadRing* ring : rings_) {
    if (ring->owner_thread == me) {
      cache = {this, ring};
      return ring;
    }
  }
  auto* ring = new ThreadRing();
  ring->owner_thread = me;
  rings_.push_back(ring);
  cache = {this, ring};
  return ring;
}

Tracer::Scratch& Tracer::LocalScratch() {
  thread_local Scratch scratch;
  if (scratch.owner != this) {
    scratch.owner = this;
    scratch.n = 0;
  }
  return scratch;
}

Tracer::SlotArray* Tracer::ResizeRing(ThreadRing* ring, size_t want) {
  SlotArray* old = ring->arr.load(std::memory_order_acquire);
  auto* arr = new SlotArray();
  arr->cap = want;  // always a power of two (see set_capacity)
  arr->slots = new Slot[want];
  uint64_t kept = 0;
  if (old != nullptr) {
    // Keep the newest records that fit, oldest first (matches the old
    // truncate-on-set_capacity semantics).
    uint64_t head = ring->head.load(std::memory_order_relaxed);
    uint64_t live = std::min<uint64_t>(head, old->cap);
    uint64_t take = std::min<uint64_t>(live, want);
    for (uint64_t i = head - take; i < head; ++i) {
      const Slot& src = old->slots[i & (old->cap - 1)];
      Slot& dst = arr->slots[kept++];
      dst.trace_id.store(src.trace_id.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      dst.span_id.store(src.span_id.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      dst.parent_id.store(src.parent_id.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      dst.name.store(src.name.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
      dst.start_us.store(src.start_us.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      dst.duration_us.store(src.duration_us.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
      dst.node.store(src.node.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
      dst.thread.store(src.thread.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      dst.adopted.store(src.adopted.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
  }
  // Publish head before the array: a reader pairing the new array with the
  // old (larger) head would walk unwritten slots.
  ring->head.store(kept, std::memory_order_release);
  ring->arr.store(arr, std::memory_order_release);
  if (old != nullptr) {
    // Park, don't free: a concurrent exporter may still be walking it.
    std::lock_guard<std::mutex> lock(rings_mu_);
    retired_arrays_.push_back(old);
  }
  return arr;
}

void Tracer::AppendToRing(const Rec& rec) {
  ThreadRing* ring = LocalRing();
  SlotArray* arr = ring->arr.load(std::memory_order_relaxed);
  size_t want = ring_capacity_.load(std::memory_order_relaxed);
  if (arr == nullptr || arr->cap != want) {
    arr = ResizeRing(ring, want);
  }
  uint64_t h = ring->head.load(std::memory_order_relaxed);
  if (h >= arr->cap) {
    // Overwriting the oldest record.  Single-writer counter: a plain
    // load+store is enough (exporters only read).
    ring->dropped.store(ring->dropped.load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  }
  Slot& s = arr->slots[h & (arr->cap - 1)];
  s.trace_id.store(rec.trace_id, std::memory_order_relaxed);
  s.span_id.store(rec.span_id, std::memory_order_relaxed);
  s.parent_id.store(rec.parent_id, std::memory_order_relaxed);
  s.name.store(rec.name, std::memory_order_relaxed);
  s.start_us.store(rec.start_us, std::memory_order_relaxed);
  s.duration_us.store(rec.duration_us, std::memory_order_relaxed);
  s.node.store(rec.node, std::memory_order_relaxed);
  s.thread.store(rec.thread, std::memory_order_relaxed);
  s.adopted.store(rec.adopted ? 1 : 0, std::memory_order_relaxed);
  ring->head.store(h + 1, std::memory_order_release);
}

void Tracer::RecordSpan(const Rec& rec) {
  if (rec.adopted) {
    // The root (and its sampling decision) live in the caller's process;
    // retain locally so kStatsDump exports the server half of the trace.
    MarkRetained(rec.trace_id);
  }
  AppendToRing(rec);
}

void Tracer::FlushScratch(Scratch* s, uint64_t retain_trace_id) {
  if (retain_trace_id != 0) {
    MarkRetained(retain_trace_id);
  }
  const TraceClock& clk = Calibrated();
  uint32_t thread = ThreadIndex();
  for (uint32_t i = 0; i < s->n; ++i) {
    const TickRec& t = s->recs[i];
    Rec rec;
    rec.trace_id = t.trace_id;
    rec.span_id = t.span_id;
    rec.parent_id = t.parent_id;
    rec.name = t.name;
    rec.start_us = TicksToWallMicros(clk, t.start_ticks);
    rec.duration_us = TicksToDurationMicros(clk, t.start_ticks, t.end_ticks);
    rec.node = t.node;
    rec.thread = thread;
    rec.adopted = t.adopted;
    AppendToRing(rec);
  }
  s->n = 0;
}

void Tracer::RecordScoped(uint64_t trace_id, uint64_t span_id,
                          uint64_t parent_id, const char* name, uint32_t node,
                          bool adopted, uint64_t start_ticks,
                          uint64_t end_ticks, bool top) {
  Scratch& s = LocalScratch();
  if (s.n == kScratchCap) {
    // A trace wider than the scratch spills to the ring provisionally —
    // exactly where every span used to go; the retained-set filter at
    // export time still applies.
    FlushScratch(&s, 0);
  }
  TickRec& r = s.recs[s.n++];
  r.trace_id = trace_id;
  r.span_id = span_id;
  r.parent_id = parent_id;
  r.name = name;
  r.start_ticks = start_ticks;
  r.end_ticks = end_ticks;
  r.node = node;
  r.adopted = adopted;
  if (!top) {
    return;
  }
  // Top of the request's scope stack on this thread: decide the batch.
  if (adopted) {
    // The sampling decision belongs to the root's process; always keep the
    // server-side half.
    FlushScratch(&s, trace_id);
    return;
  }
  const TraceClock& clk = Calibrated();
  uint64_t duration_us = TicksToDurationMicros(clk, start_ticks, end_ticks);
  if (FinishRoot(trace_id, WouldHeadSample(trace_id), duration_us)) {
    FlushScratch(&s, 0);  // FinishRoot already marked the trace retained
  } else {
    s.n = 0;  // head-dropped and fast: the whole batch evaporates
  }
}

bool Tracer::FinishRoot(uint64_t trace_id, bool head_sampled,
                        uint64_t duration_us) {
  if (head_sampled) {
    MarkRetained(trace_id);
    return true;
  }
  uint64_t slow = policy_slow_us_.load(std::memory_order_relaxed);
  if (slow != 0 && duration_us >= slow) {
    tail_retained_.fetch_add(1, std::memory_order_relaxed);
    MarkRetained(trace_id);
    return true;
  }
  head_sampled_out_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void Tracer::MarkRetained(uint64_t trace_id) {
  std::lock_guard<std::mutex> lock(retained_mu_);
  if (!retained_.insert(trace_id).second) {
    return;
  }
  retained_order_.push_back(trace_id);
  while (retained_order_.size() > retained_cap_) {
    retained_.erase(retained_order_.front());
    retained_order_.pop_front();
  }
}

bool Tracer::IsRetained(uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(retained_mu_);
  return retained_.count(trace_id) != 0;
}

void Tracer::SnapshotRing(const ThreadRing* ring, std::vector<Rec>* out) {
  const SlotArray* arr = ring->arr.load(std::memory_order_acquire);
  if (arr == nullptr || arr->cap == 0) {
    return;
  }
  uint64_t head = ring->head.load(std::memory_order_acquire);
  uint64_t n = std::min<uint64_t>(head, arr->cap);
  for (uint64_t i = head - n; i < head; ++i) {
    const Slot& s = arr->slots[i & (arr->cap - 1)];
    Rec r;
    r.trace_id = s.trace_id.load(std::memory_order_relaxed);
    if (r.trace_id == 0) {
      continue;  // unpublished slot (reader raced a resize)
    }
    r.span_id = s.span_id.load(std::memory_order_relaxed);
    r.parent_id = s.parent_id.load(std::memory_order_relaxed);
    const char* name = s.name.load(std::memory_order_relaxed);
    r.name = name != nullptr ? name : "";
    r.start_us = s.start_us.load(std::memory_order_relaxed);
    r.duration_us = s.duration_us.load(std::memory_order_relaxed);
    r.node = s.node.load(std::memory_order_relaxed);
    r.thread = s.thread.load(std::memory_order_relaxed);
    r.adopted = s.adopted.load(std::memory_order_relaxed) != 0;
    out->push_back(r);
  }
}

std::vector<Tracer::Rec> Tracer::SnapshotRecs() const {
  std::vector<ThreadRing*> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings = rings_;
  }
  std::vector<Rec> recs;
  for (const ThreadRing* ring : rings) {
    SnapshotRing(ring, &recs);
  }
  return recs;
}

uint64_t Tracer::RingSpans() const {
  std::vector<ThreadRing*> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings = rings_;
  }
  uint64_t total = 0;
  for (const ThreadRing* ring : rings) {
    const SlotArray* arr = ring->arr.load(std::memory_order_acquire);
    if (arr == nullptr) {
      continue;
    }
    total += std::min<uint64_t>(ring->head.load(std::memory_order_acquire),
                                arr->cap);
  }
  return total;
}

uint64_t Tracer::dropped() const {
  std::vector<ThreadRing*> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings = rings_;
  }
  uint64_t total = 0;
  for (const ThreadRing* ring : rings) {
    total += ring->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<Span> Tracer::Spans() const {
  std::vector<Rec> recs = SnapshotRecs();
  std::vector<Span> spans;
  spans.reserve(recs.size());
  std::lock_guard<std::mutex> lock(retained_mu_);
  for (const Rec& r : recs) {
    if (retained_.count(r.trace_id) == 0) {
      continue;
    }
    Span s;
    s.trace_id = r.trace_id;
    s.span_id = r.span_id;
    s.parent_id = r.parent_id;
    s.name = r.name;
    s.start_us = r.start_us;
    s.duration_us = r.duration_us;
    s.node = r.node;
    s.thread = r.thread;
    spans.push_back(std::move(s));
  }
  return spans;
}

std::vector<Span> Tracer::SlowSpans(uint64_t min_duration_us,
                                    size_t limit) const {
  std::vector<Span> slow;
  for (Span& s : Spans()) {
    if (s.duration_us >= min_duration_us) {
      slow.push_back(std::move(s));
    }
  }
  std::sort(slow.begin(), slow.end(), [](const Span& a, const Span& b) {
    return a.duration_us > b.duration_us;
  });
  if (slow.size() > limit) {
    slow.resize(limit);
  }
  return slow;
}

std::string Tracer::ExportChromeJson() const {
  std::vector<Span> spans = Spans();
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const Span& s : spans) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"ph\":\"X\",\"name\":";
    AppendJsonString(out, s.name);
    out << ",\"cat\":\"tango\",\"pid\":" << s.node << ",\"tid\":" << s.thread
        << ",\"ts\":" << s.start_us << ",\"dur\":" << s.duration_us
        << ",\"args\":{\"trace_id\":" << s.trace_id
        << ",\"span_id\":" << s.span_id << ",\"parent_id\":" << s.parent_id
        << "}}";
  }
  out << "]\n";
  return out.str();
}

void Tracer::Clear() {
  std::vector<ThreadRing*> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings = rings_;
  }
  for (ThreadRing* ring : rings) {
    ring->head.store(0, std::memory_order_release);
    ring->dropped.store(0, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(retained_mu_);
    retained_.clear();
    retained_order_.clear();
  }
  head_sampled_out_.store(0, std::memory_order_relaxed);
  tail_retained_.store(0, std::memory_order_relaxed);
}

void Tracer::set_capacity(size_t capacity) {
  capacity = RoundUpPow2(std::max<size_t>(capacity, 1));
  ring_capacity_.store(capacity, std::memory_order_relaxed);
  // Reshape every existing ring now (exact truncate-to-newest semantics);
  // rings created later pick the capacity up on their first record.
  std::vector<ThreadRing*> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings = rings_;
  }
  for (ThreadRing* ring : rings) {
    SlotArray* arr = ring->arr.load(std::memory_order_acquire);
    if (arr != nullptr && arr->cap != capacity) {
      ResizeRing(ring, capacity);
    }
  }
}

TraceScope::TraceScope(const char* name, uint32_t node) {
  Tracer& tracer = Tracer::Default();
  if (!tracer.enabled()) {
    return;
  }
  Begin(tracer, name, t_current, node, /*adopted=*/false);
}

TraceScope::TraceScope(const char* name, TraceContext incoming, uint32_t node) {
  Tracer& tracer = Tracer::Default();
  if (!tracer.enabled() || !incoming.active()) {
    return;
  }
  Begin(tracer, name, incoming, node, /*adopted=*/true);
}

void TraceScope::Begin(Tracer& tracer, const char* name, TraceContext parent,
                       uint32_t node, bool adopted) {
  active_ = true;
  adopted_ = adopted;
  saved_ = t_current;
  if (parent.active()) {
    trace_id_ = parent.trace_id;
    parent_id_ = parent.span_id;
  } else {
    trace_id_ = tracer.NewTraceId();
    parent_id_ = 0;
    root_ = true;
  }
  span_id_ = tracer.NewSpanId();
  name_ = name;
  node_ = node;
  start_ticks_ = TraceTicks();
  t_current = TraceContext{trace_id_, span_id_};
}

TraceScope::~TraceScope() {
  if (!active_) {
    return;
  }
  uint64_t end_ticks = TraceTicks();
  t_current = saved_;
  Tracer::Default().RecordScoped(trace_id_, span_id_, parent_id_, name_, node_,
                                 adopted_, start_ticks_, end_ticks,
                                 /*top=*/root_ || adopted_);
}

}  // namespace tango::obs
