#include "src/obs/trace.h"

#include <algorithm>
#include <sstream>

#include "src/util/threading.h"

namespace tango::obs {

namespace {

thread_local TraceContext t_current;

uint32_t ThreadIndex() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

void AppendJsonString(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\';
    }
    out << c;
  }
  out << '"';
}

}  // namespace

TraceContext CurrentTrace() { return t_current; }

void SetCurrentTrace(TraceContext ctx) { t_current = ctx; }

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

uint64_t Tracer::NewTraceId() {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Tracer::NewSpanId() {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::RecordSpan(Span span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= capacity_) {
    spans_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  spans_.push_back(std::move(span));
}

std::vector<Span> Tracer::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {spans_.begin(), spans_.end()};
}

std::vector<Span> Tracer::SlowSpans(uint64_t min_duration_us,
                                    size_t limit) const {
  std::vector<Span> slow;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Span& s : spans_) {
      if (s.duration_us >= min_duration_us) {
        slow.push_back(s);
      }
    }
  }
  std::sort(slow.begin(), slow.end(), [](const Span& a, const Span& b) {
    return a.duration_us > b.duration_us;
  });
  if (slow.size() > limit) {
    slow.resize(limit);
  }
  return slow;
}

std::string Tracer::ExportChromeJson() const {
  std::vector<Span> spans = Spans();
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const Span& s : spans) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"ph\":\"X\",\"name\":";
    AppendJsonString(out, s.name);
    out << ",\"cat\":\"tango\",\"pid\":" << s.node << ",\"tid\":" << s.thread
        << ",\"ts\":" << s.start_us << ",\"dur\":" << s.duration_us
        << ",\"args\":{\"trace_id\":" << s.trace_id
        << ",\"span_id\":" << s.span_id << ",\"parent_id\":" << s.parent_id
        << "}}";
  }
  out << "]\n";
  return out.str();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

void Tracer::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<size_t>(capacity, 1);
  while (spans_.size() > capacity_) {
    spans_.pop_front();
  }
}

TraceScope::TraceScope(const char* name, uint32_t node) {
  if (!Tracer::Default().enabled()) {
    return;
  }
  Begin(name, t_current, node, /*require_parent=*/false);
}

TraceScope::TraceScope(const char* name, TraceContext incoming, uint32_t node) {
  if (!Tracer::Default().enabled() || !incoming.active()) {
    return;
  }
  Begin(name, incoming, node, /*require_parent=*/true);
}

void TraceScope::Begin(const char* name, TraceContext parent, uint32_t node,
                       bool require_parent) {
  Tracer& tracer = Tracer::Default();
  active_ = true;
  saved_ = t_current;
  span_.trace_id = parent.active() ? parent.trace_id : tracer.NewTraceId();
  span_.parent_id = parent.active() ? parent.span_id : 0;
  (void)require_parent;
  span_.span_id = tracer.NewSpanId();
  span_.name = name;
  span_.node = node;
  span_.thread = ThreadIndex();
  span_.start_us = NowMicros();
  t_current = TraceContext{span_.trace_id, span_.span_id};
}

TraceScope::~TraceScope() {
  if (!active_) {
    return;
  }
  span_.duration_us = NowMicros() - span_.start_us;
  t_current = saved_;
  Tracer::Default().RecordSpan(std::move(span_));
}

}  // namespace tango::obs
