// Trace-context propagation and span collection.
//
// A trace is a tree of timed spans sharing one 64-bit trace id.  The current
// context (trace id + active span id) lives in a thread-local; TraceScope
// pushes a child span on construction and records it (with its measured
// duration) on destruction.  RPC boundaries propagate the context:
//   * InProcTransport dispatches handlers on the caller's thread, so the
//     thread-local flows through untouched and server-side spans parent
//     correctly for free.
//   * TcpTransport carries {trace_id, parent_span_id} in the request frame
//     (16 bytes after the method id — see tcp_transport.h) and the server
//     adopts it around the handler via the adopting TraceScope constructor.
//
// Tracing is off by default (zero spans recorded, scopes are inert); the
// registry of finished spans is a bounded ring so a long traced run degrades
// to keeping the most recent spans rather than growing without bound.
//
// Export: Chrome trace_event JSON ("X" complete events, chrome://tracing or
// https://ui.perfetto.dev), with pid = NodeId the span executed on and tid =
// a dense per-thread index.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace tango::obs {

struct TraceContext {
  uint64_t trace_id = 0;  // 0 = not tracing
  uint64_t span_id = 0;
  bool active() const { return trace_id != 0; }
};

// The calling thread's current context (all-zero when not tracing).
TraceContext CurrentTrace();
void SetCurrentTrace(TraceContext ctx);

struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root
  std::string name;
  uint64_t start_us = 0;     // NowMicros at construction
  uint64_t duration_us = 0;
  uint32_t node = 0;    // NodeId the span executed on (0 = client/runtime)
  uint32_t thread = 0;  // dense thread index, for trace-viewer lanes
};

class Tracer {
 public:
  static Tracer& Default();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void RecordSpan(Span span);

  // Finished spans, oldest first (bounded by capacity; see dropped()).
  std::vector<Span> Spans() const;
  // Spans with duration >= min_duration_us, slowest first, at most `limit`.
  std::vector<Span> SlowSpans(uint64_t min_duration_us, size_t limit) const;

  // Chrome trace_event JSON array of complete ("X") events.
  std::string ExportChromeJson() const;

  void Clear();
  void set_capacity(size_t capacity);
  // Spans discarded because the ring was full.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  uint64_t NewTraceId();
  uint64_t NewSpanId();

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mu_;
  size_t capacity_ = 1 << 16;
  std::deque<Span> spans_;
};

// RAII span.  Inert (no allocation, no clock reads) unless the default
// tracer is enabled.  The first constructor starts a new root trace when the
// calling thread has no active context, otherwise parents under it.  The
// adopting constructor joins an incoming RPC context instead — inert when the
// incoming context is empty (untraced caller).
class TraceScope {
 public:
  explicit TraceScope(const char* name, uint32_t node = 0);
  TraceScope(const char* name, TraceContext incoming, uint32_t node);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  bool active() const { return active_; }

 private:
  void Begin(const char* name, TraceContext parent, uint32_t node,
             bool require_parent);

  bool active_ = false;
  TraceContext saved_;
  Span span_;
};

}  // namespace tango::obs

#endif  // SRC_OBS_TRACE_H_
