// Trace-context propagation and always-on sampled span collection.
//
// A trace is a tree of timed spans sharing one 64-bit trace id.  The current
// context (trace id + active span id) lives in a thread-local; TraceScope
// pushes a child span on construction and records it (with its measured
// duration) on destruction.  RPC boundaries propagate the context:
//   * InProcTransport dispatches handlers on the caller's thread, so the
//     thread-local flows through untouched and server-side spans parent
//     correctly for free.
//   * TcpTransport carries {trace_id, parent_span_id} in the request frame
//     (16 bytes after the method id — see tcp_transport.h) and the server
//     adopts it around the handler via the adopting TraceScope constructor.
//
// Sampling model (production shape — tracing can stay enabled under load):
//   * Head sampling: each new root trace is kept with probability
//     1/sample_every, decided by a seeded hash of the trace id so the
//     decision is deterministic for a fixed seed.
//   * Hindsight/tail retention: spans of *every* trace are provisionally
//     buffered; when a root span finishes slower than `slow_us`, its trace
//     is retained even if head sampling would have dropped it.  The slow
//     request you could not predict is the one you get to keep.
//   * Exemplars: obs::Histogram::Record snapshots the active trace id into a
//     per-bucket-range exemplar slot, so a p99 bucket in a metrics dump
//     links to a concrete retained trace (see metrics.h).
//
// Always-on means the recording path has to be nearly free: the budget
// (DESIGN.md) is < 3% on the fig_append/readpath analogue cells, a few tens
// of nanoseconds per span.  The hot path therefore takes no locks and
// performs no syscalls:
//   * A closing span appends to a small plain (non-atomic) thread-local
//     scratch batch — an L1-resident buffer no other thread ever reads.
//     When the top scope of the request closes, the batch is either flushed
//     to the shared rings (trace retained) or discarded (head-dropped and
//     fast), so the common not-retained request never touches shared memory
//     at all beyond three counters.
//   * The shared per-thread rings that exporters read are arrays of
//     all-atomic slots: the owner stores relaxed (plain MOVs on x86),
//     exporters load relaxed — concurrent overwrite tears a record but is
//     never a data race.
//   * The sampling policy is three relaxed atomics, not a mutex-guarded
//     struct.
//   * Trace/span ids come from thread-local blocks carved off one global
//     counter, so id allocation is a thread-local increment.
//   * Timestamps are raw TSC reads (x86); conversion to microseconds — and
//     the one-time calibration against the monotonic clock — happens at
//     flush time, never per span.
// The only lock on a recording path is the retained-set mutex, touched once
// per *retained* trace (1/1024 of roots under the production policy) —
// never per span.
//
// Rings are bounded, so a long traced run degrades to keeping the most
// recent spans; overwrites are counted and exported as `obs.trace.dropped`.
//
// Spans whose root lives in another process (adopted via the TCP envelope)
// are always retained locally — the sampling decision belongs to the root's
// process, which this process cannot see.
//
// Export: Chrome trace_event JSON ("X" complete events, chrome://tracing or
// https://ui.perfetto.dev), with pid = NodeId the span executed on and tid =
// a dense per-thread index.  Only retained traces are exported.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

namespace tango::obs {

class Counter;
class Gauge;

struct TraceContext {
  uint64_t trace_id = 0;  // 0 = not tracing
  uint64_t span_id = 0;
  bool active() const { return trace_id != 0; }
};

// The calling thread's current context (all-zero when not tracing).
TraceContext CurrentTrace();
void SetCurrentTrace(TraceContext ctx);

// The calling thread's dense index (1-based, assigned at first use) — the
// `tid` lane in trace exports; the flight recorder reuses it so crash dumps
// and traces agree on thread identity.
uint32_t CurrentThreadIndex();

struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root
  std::string name;
  uint64_t start_us = 0;     // monotonic-clock microseconds at construction
  uint64_t duration_us = 0;
  uint32_t node = 0;    // NodeId the span executed on (0 = client/runtime)
  uint32_t thread = 0;  // dense thread index, for trace-viewer lanes
};

// Head-sampling + tail-retention policy.  The default keeps every trace,
// which is what tests and the --demo tools want; production deployments run
// e.g. {1024, 10'000, seed} — one trace in 1024 plus everything slower than
// 10 ms.
struct SamplingPolicy {
  uint64_t sample_every = 1;  // keep 1 in N new root traces (0 and 1 = all)
  uint64_t slow_us = 0;       // also keep roots >= this duration (0 = off)
  uint64_t seed = 0;          // head-sampling hash seed (fixes decisions)
};

class Tracer {
 public:
  static Tracer& Default();

  void SetEnabled(bool enabled);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void SetSampling(SamplingPolicy policy);
  SamplingPolicy sampling() const;

  // The head-sampling decision for a root trace id under the current policy.
  // Pure: same policy + same id => same answer (sampler determinism).
  bool WouldHeadSample(uint64_t trace_id) const;

  // Internal span record: `name` must have static storage duration (string
  // literals), so the hot path never allocates.
  struct Rec {
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    uint64_t parent_id = 0;
    const char* name = "";
    uint64_t start_us = 0;
    uint64_t duration_us = 0;
    uint32_t node = 0;
    uint32_t thread = 0;
    bool adopted = false;  // root lives in another process: always retain
  };
  // Appends directly to the calling thread's shared ring (timestamps already
  // in microseconds).  TraceScope does not use this — it goes through the
  // scratch-batch path below — but flushes land here, and it remains the
  // entry point for synthetic records.
  void RecordSpan(const Rec& rec);

  // Hot-path entry used by TraceScope: buffers the closing span (timestamps
  // still raw ticks) in the calling thread's private scratch batch.  When
  // `top` is set (the request's root or an adopted server-side scope), the
  // whole batch is flushed to the rings if the trace is retained — adopted,
  // head-sampled, or slower than the policy threshold — and discarded
  // otherwise.
  void RecordScoped(uint64_t trace_id, uint64_t span_id, uint64_t parent_id,
                    const char* name, uint32_t node, bool adopted,
                    uint64_t start_ticks, uint64_t end_ticks, bool top);

  // Applies head sampling and tail retention to a closing root; returns
  // whether the trace is retained (and records it if so).
  bool FinishRoot(uint64_t trace_id, bool head_sampled, uint64_t duration_us);

  // Finished spans of retained traces, per-thread-ring order (oldest first
  // within a ring; single-threaded tests therefore see completion order).
  std::vector<Span> Spans() const;
  // Spans with duration >= min_duration_us, slowest first, at most `limit`.
  std::vector<Span> SlowSpans(uint64_t min_duration_us, size_t limit) const;
  // True if the trace survived sampling (head-kept, tail-retained or
  // adopted).
  bool IsRetained(uint64_t trace_id) const;

  // Chrome trace_event JSON array of complete ("X") events.
  std::string ExportChromeJson() const;

  void Clear();
  // Per-thread ring capacity in spans (the old global-capacity knob).
  // Applied lazily: each ring reshapes on its owner's next RecordSpan.
  void set_capacity(size_t capacity);
  // Spans discarded because a thread ring was full (also exported as the
  // `obs.trace.dropped` registry counter at every collection).
  uint64_t dropped() const;
  // Root traces discarded by head sampling (not slow enough to retain).
  uint64_t head_sampled_out() const {
    return head_sampled_out_.load(std::memory_order_relaxed);
  }
  // Root traces kept only because they crossed the slow threshold.
  uint64_t tail_retained() const {
    return tail_retained_.load(std::memory_order_relaxed);
  }
  // Spans currently buffered across all thread rings.
  uint64_t RingSpans() const;

  uint64_t NewTraceId();
  uint64_t NewSpanId();

 private:
  // One buffered span, every field individually atomic: the owning thread
  // stores with relaxed order (plain MOVs on x86) and concurrent exporters
  // load the same way, so overwrite-during-export is tearing, not UB.
  struct Slot {
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> span_id{0};
    std::atomic<uint64_t> parent_id{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> start_us{0};
    std::atomic<uint64_t> duration_us{0};
    std::atomic<uint32_t> node{0};
    std::atomic<uint32_t> thread{0};
    std::atomic<uint8_t> adopted{0};
  };
  // Capacity and storage swap together behind one pointer so readers never
  // see a mismatched (cap, slots) pair.  Arrays are never freed — exporters
  // and late writers may still hold the old one.
  struct SlotArray {
    size_t cap = 0;
    Slot* slots = nullptr;
  };
  struct alignas(64) ThreadRing {
    uint32_t owner_thread = 0;  // dense thread index that records here
    std::atomic<uint64_t> head{0};     // total records pushed since reset
    std::atomic<uint64_t> dropped{0};  // overwrites (single-writer counter)
    std::atomic<SlotArray*> arr{nullptr};
  };

  struct TickRec;  // scratch record, timestamps in raw ticks (trace.cc)
  struct Scratch;  // per-thread plain batch buffer (trace.cc)

  ThreadRing* LocalRing();
  SlotArray* ResizeRing(ThreadRing* ring, size_t want);
  Scratch& LocalScratch();
  // Converts the batch to microseconds and appends it to the shared ring;
  // marks `retain_trace_id` retained when nonzero.
  void FlushScratch(Scratch* s, uint64_t retain_trace_id);
  void AppendToRing(const Rec& rec);
  void MarkRetained(uint64_t trace_id);
  void EnsureInstruments();
  // Appends `ring`'s live records, oldest first, to `out` (lock-free;
  // records mid-overwrite may come out mixed).
  static void SnapshotRing(const ThreadRing* ring, std::vector<Rec>* out);
  std::vector<Rec> SnapshotRecs() const;
  uint64_t NewId();

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_block_{1};
  std::atomic<uint64_t> head_sampled_out_{0};
  std::atomic<uint64_t> tail_retained_{0};
  std::atomic<size_t> ring_capacity_{1 << 13};

  // Sampling policy as three relaxed atomics: WouldHeadSample/FinishRoot
  // run per root and must not take a lock.
  std::atomic<uint64_t> policy_sample_every_{1};
  std::atomic<uint64_t> policy_slow_us_{0};
  std::atomic<uint64_t> policy_seed_{0};

  mutable std::mutex rings_mu_;
  std::vector<ThreadRing*> rings_;  // never freed; one per recording thread
  // Replaced slot arrays parked here instead of freed: a concurrent
  // exporter may still be walking one, and keeping them reachable also
  // keeps leak checkers quiet.
  std::vector<SlotArray*> retired_arrays_;

  // Bounded FIFO of retained trace ids; spans of evicted traces fall out of
  // exports (their ring slots recycle anyway).
  mutable std::mutex retained_mu_;
  std::unordered_set<uint64_t> retained_;
  std::deque<uint64_t> retained_order_;
  size_t retained_cap_ = 1 << 14;

  // Registry instruments (resolved once; see EnsureInstruments).  The
  // counters mirror the tracer's own totals via delta export from the
  // collection hook, keeping registry traffic off the span path.
  std::once_flag instruments_once_;
  Counter* m_dropped_ = nullptr;
  Counter* m_head_out_ = nullptr;
  Counter* m_tail_retained_ = nullptr;
  Gauge* m_ring_spans_ = nullptr;
  Gauge* m_retained_traces_ = nullptr;
  std::atomic<uint64_t> exported_dropped_{0};
  std::atomic<uint64_t> exported_head_out_{0};
  std::atomic<uint64_t> exported_tail_{0};
};

// RAII span.  Inert (no allocation, no clock reads) unless the default
// tracer is enabled.  The first constructor starts a new root trace when the
// calling thread has no active context, otherwise parents under it.  The
// adopting constructor joins an incoming RPC context instead — inert when the
// incoming context is empty (untraced caller).
//
// `name` must point at storage that outlives the tracer (string literals).
class TraceScope {
 public:
  explicit TraceScope(const char* name, uint32_t node = 0);
  TraceScope(const char* name, TraceContext incoming, uint32_t node);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  bool active() const { return active_; }

 private:
  void Begin(Tracer& tracer, const char* name, TraceContext parent,
             uint32_t node, bool adopted);

  bool active_ = false;
  bool root_ = false;
  bool adopted_ = false;
  TraceContext saved_;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t start_ticks_ = 0;  // TSC (or ns fallback); converted at flush
  const char* name_ = "";
  uint32_t node_ = 0;
};

}  // namespace tango::obs

#endif  // SRC_OBS_TRACE_H_
