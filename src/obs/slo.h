// SLO accounting: per-operation latency objectives with windowed burn rates.
//
// Each tracked operation (append, read, txn-commit) carries an objective —
// "p(latency <= objective_us) >= target", e.g. 99.9% of appends under 5 ms.
// Every completed operation is scored against its objective; the error
// budget is (1 - target), and the burn rate over a window is
//
//   burn = breach_fraction_in_window / error_budget
//
// so burn == 1 means the budget is being consumed exactly as provisioned,
// and burn >= 14.4 over 1 h is the classic page-now threshold.  We keep
// short windows (1 m and 5 m) sized for bench runs and smoke tests rather
// than the multi-hour alerting windows a production deployment would add.
//
// Mechanics: per-op lifetime counters (total / breached, relaxed atomics)
// plus a ring of one-second slots.  Record() CAS-claims the slot for the
// current second and bumps it; window queries sum the slots still inside
// the window.  Everything is lock-free and wait-free except the CAS retry
// on second-boundary races.
//
// Exposure: a MetricsRegistry collection hook refreshes slo.* counters and
// burn-rate gauges on every Snap() (so they appear in kStatsDump and
// /metrics), and RenderJson() feeds the /slo endpoint and kSloJson RPC.

#ifndef SRC_OBS_SLO_H_
#define SRC_OBS_SLO_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace tango::obs {

enum class SloOp : uint8_t {
  kAppend = 0,
  kRead = 1,
  kTxnCommit = 2,
  // Admission outcome at the shedding tiers (sequencer grants, storage
  // writes): admitted requests record ~0, shed requests record their
  // retry-after hint, so the burn rate tracks the shed fraction and the
  // severity of the backoff the cluster is asking for.
  kAdmission = 3,
};
inline constexpr int kNumSloOps = 4;

const char* SloOpName(SloOp op);

struct SloObjective {
  uint64_t objective_us = 0;  // latency bound the op must meet
  double target = 0.999;      // required fraction of ops meeting the bound
};

class SloTracker {
 public:
  // The process-wide tracker wired into the log client and runtime; its
  // constructor registers the metrics collection hook.
  static SloTracker& Default();

  SloTracker();

  // Replaces an op's objective (tests, bench setup, logd flags).
  void SetObjective(SloOp op, SloObjective objective);
  SloObjective objective(SloOp op) const;

  // Scores one completed operation.  ~3 relaxed atomic ops on the hot path.
  void Record(SloOp op, uint64_t latency_us);

  struct OpStats {
    uint64_t total = 0;
    uint64_t breached = 0;      // ops over objective_us, lifetime
    double burn_rate_1m = 0.0;  // breach fraction / error budget, last 60 s
    double burn_rate_5m = 0.0;  // same over the last 300 s
  };
  OpStats Stats(SloOp op) const;

  // {"append":{"objective_us":...,"target":...,"total":...,"breached":...,
  //   "burn_rate_1m":...,"burn_rate_5m":...}, "read":{...}, ...}
  std::string RenderJson() const;

  // Zeroes counters and windows; objectives stay.  For tests and benches.
  void Reset();

  // Publishes slo.<op>.* counters and burn-rate gauges into the default
  // registry (called by the collection hook; callable directly in tests).
  void ExportToRegistry();

 private:
  // One second of per-op accounting.  `epoch_sec` tags which wall second
  // the slot currently holds; a recorder seeing a stale tag CAS-resets it.
  struct Slot {
    std::atomic<uint64_t> epoch_sec{0};
    std::atomic<uint64_t> total{0};
    std::atomic<uint64_t> breached{0};
  };
  static constexpr int kSlots = 512;  // > 300 s window + slack

  struct PerOp {
    std::atomic<uint64_t> objective_us{0};
    std::atomic<uint64_t> target_millis{999};  // target * 1000
    std::atomic<uint64_t> total{0};
    std::atomic<uint64_t> breached{0};
    std::array<Slot, kSlots> slots;
  };

  // Sums window slots newer than now-window_secs into total/breached.
  void WindowSums(const PerOp& op, uint64_t window_secs, uint64_t* total,
                  uint64_t* breached) const;
  double BurnRate(const PerOp& op, uint64_t window_secs) const;

  std::array<PerOp, kNumSloOps> ops_;
};

}  // namespace tango::obs

#endif  // SRC_OBS_SLO_H_
