#include "src/obs/http.h"

#include <pthread.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"

namespace tango::obs {

namespace {

// Same full-buffer write loop as tcp_transport.cc, minus the result enum —
// a diagnostics response either lands or the connection is abandoned.
bool WriteAll(int fd, const void* buf, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  while (len > 0) {
    ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

void SetTimeouts(int fd, uint32_t ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// Reads until the end of the request head ("\r\n\r\n") or `cap` bytes.
// Request bodies are ignored — every endpoint is a GET.
std::string ReadRequestHead(int fd, size_t cap) {
  std::string head;
  char buf[1024];
  while (head.size() < cap) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      break;
    }
    head.append(buf, static_cast<size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      break;
    }
  }
  return head;
}

void WriteResponse(int fd, int code, const char* reason,
                   const std::string& content_type, const std::string& body) {
  std::ostringstream head;
  head << "HTTP/1.1 " << code << " " << reason << "\r\n"
       << "Content-Type: " << content_type << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n";
  std::string h = head.str();
  if (WriteAll(fd, h.data(), h.size())) {
    WriteAll(fd, body.data(), body.size());
  }
}

}  // namespace

Status ObsHttpServer::Start(const Options& options) {
  if (running_.load(std::memory_order_acquire)) {
    return Status(StatusCode::kFailedPrecondition, "obs http already running");
  }

  // Built-in endpoints; Handle() registrations (e.g. /flight) ride along.
  handlers_["/metrics"] = [] {
    return MetricsRegistry::Default().RenderPrometheus();
  };
  handlers_["/vars"] = [] { return MetricsRegistry::Default().RenderJson(); };
  handlers_["/traces"] = [] { return Tracer::Default().ExportChromeJson(); };
  handlers_["/slo"] = [] { return SloTracker::Default().RenderJson(); };
  // Touch the tracker now: its constructor registers the collection hook
  // that puts slo.* gauges into /metrics, and a monitoring stack should see
  // the full schema from the first scrape, not from the first request.
  SloTracker::Default();
  handlers_["/healthz"] = [] { return std::string("ok\n"); };

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status(StatusCode::kUnavailable, "socket() failed");
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, options.address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status(StatusCode::kInvalidArgument,
                  "bad obs http address: " + options.address);
  }
  addr.sin_port = htons(options.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return Status(StatusCode::kUnavailable,
                  "obs http bind/listen failed on " + options.address + ":" +
                      std::to_string(options.port));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void ObsHttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  // shutdown() unblocks a parked accept() (EINVAL); the fd itself is
  // closed only after the join so the accept thread never reads a
  // reassigned listen_fd_ — or worse, accepts on a recycled fd number.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void ObsHttpServer::Handle(const std::string& path,
                           std::function<std::string()> handler) {
  handlers_[path] = std::move(handler);
}

void ObsHttpServer::AcceptLoop() {
  // obs sits below util in the layering; name the thread directly.
  pthread_setname_np(pthread_self(), "tgo-http");
  while (running_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listener closed by Stop()
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SetTimeouts(fd, 5000);
    // Scrapes are rare and the payloads small; serving inline on the accept
    // thread keeps the server to one thread and bounds concurrent work.
    ServeConnection(fd);
    ::close(fd);
  }
}

void ObsHttpServer::ServeConnection(int fd) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::string head = ReadRequestHead(fd, 8192);
  // Request line: METHOD SP PATH SP VERSION.
  size_t sp1 = head.find(' ');
  size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                        : head.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) {
    WriteResponse(fd, 400, "Bad Request", "text/plain", "bad request\n");
    return;
  }
  std::string method = head.substr(0, sp1);
  std::string path = head.substr(sp1 + 1, sp2 - sp1 - 1);
  if (size_t q = path.find('?'); q != std::string::npos) {
    path.resize(q);  // no endpoint takes query params
  }
  if (method != "GET" && method != "HEAD") {
    WriteResponse(fd, 405, "Method Not Allowed", "text/plain",
                  "GET only\n");
    return;
  }
  auto it = handlers_.find(path);
  if (it == handlers_.end()) {
    std::ostringstream body;
    body << "not found; endpoints:\n";
    for (const auto& [p, unused] : handlers_) {
      body << "  " << p << "\n";
    }
    WriteResponse(fd, 404, "Not Found", "text/plain", body.str());
    return;
  }
  std::string body = it->second();
  const char* type = "text/plain; version=0.0.4";  // Prometheus-compatible
  if (!body.empty() && (body[0] == '{' || body[0] == '[')) {
    type = "application/json";
  }
  if (method == "HEAD") {
    body.clear();
  }
  WriteResponse(fd, 200, "OK", type, body);
}

Result<std::string> HttpGet(const std::string& host, uint16_t port,
                            const std::string& path, uint32_t timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status(StatusCode::kUnavailable, "socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  std::string ip = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status(StatusCode::kInvalidArgument, "bad host: " + host);
  }
  SetTimeouts(fd, timeout_ms == 0 ? 5000 : timeout_ms);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status(StatusCode::kUnavailable,
                  "connect failed: " + host + ":" + std::to_string(port));
  }
  std::string req = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                    "\r\nConnection: close\r\n\r\n";
  if (!WriteAll(fd, req.data(), req.size())) {
    ::close(fd);
    return Status(StatusCode::kUnavailable, "send failed");
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;
    }
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t eol = resp.find("\r\n");
  if (eol == std::string::npos || resp.compare(0, 5, "HTTP/") != 0) {
    return Status(StatusCode::kUnavailable, "malformed http response");
  }
  // Status line: HTTP/1.1 SP CODE SP REASON.
  size_t sp = resp.find(' ');
  int code = sp == std::string::npos ? 0 : std::atoi(resp.c_str() + sp + 1);
  size_t body_at = resp.find("\r\n\r\n");
  if (body_at == std::string::npos) {
    return Status(StatusCode::kUnavailable, "truncated http response");
  }
  if (code != 200) {
    return Status(StatusCode::kNotFound,
                  "http " + std::to_string(code) + " for " + path);
  }
  return resp.substr(body_at + 4);
}

}  // namespace tango::obs
