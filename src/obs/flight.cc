#include "src/obs/flight.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <sstream>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/threading.h"

namespace tango::obs {

namespace {

// u64 -> decimal into `buf`, returning the length.  The signal path cannot
// use snprintf (not async-signal-safe on all libcs).
size_t FormatU64(uint64_t v, char* buf) {
  char tmp[20];
  size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (size_t i = 0; i < n; ++i) {
    buf[i] = tmp[n - 1 - i];
  }
  return n;
}

void WriteStr(int fd, const char* s) {
  size_t len = ::strlen(s);
  while (len > 0) {
    ssize_t n = ::write(fd, s, len);
    if (n <= 0) {
      return;
    }
    s += n;
    len -= static_cast<size_t>(n);
  }
}

void WriteU64(int fd, uint64_t v) {
  char buf[20];
  size_t n = FormatU64(v, buf);
  ::write(fd, buf, n);
}

volatile sig_atomic_t g_handler_installed = 0;

void FatalSignalHandler(int signo) {
  FlightRecorder& rec = FlightRecorder::Default();
  rec.Record(FlightKind::kSignal, "fatal signal",
             static_cast<uint64_t>(signo));
  WriteStr(2, "\n=== tango flight recorder (signal ");
  WriteU64(2, static_cast<uint64_t>(signo));
  WriteStr(2, ") ===\n");
  rec.DumpToFd(2);
  WriteStr(2, "=== end flight recorder ===\n");
  // Restore default disposition and re-raise: exit status and core dumps
  // look exactly as they would without the recorder.
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

const char* FlightKindName(FlightKind kind) {
  switch (kind) {
    case FlightKind::kSeal:
      return "seal";
    case FlightKind::kReconfig:
      return "reconfig";
    case FlightKind::kGc:
      return "gc";
    case FlightKind::kRecovery:
      return "recovery";
    case FlightKind::kPipelineStall:
      return "pipeline_stall";
    case FlightKind::kFailstop:
      return "failstop";
    case FlightKind::kSignal:
      return "signal";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::Default() {
  static FlightRecorder* recorder = [] {
    auto* r = new FlightRecorder();
    MetricsRegistry::Default().AddCollectionHook([r] {
      MetricsRegistry::Default()
          .GetGauge("obs.flight.events")
          ->Set(static_cast<int64_t>(r->events()));
    });
    return r;
  }();
  return *recorder;
}

FlightRecorder::Ring* FlightRecorder::LocalRing() {
  thread_local struct Cache {
    FlightRecorder* owner = nullptr;
    Ring* ring = nullptr;
  } cache;
  if (cache.owner == this && cache.ring != nullptr) {
    return cache.ring;
  }
  uint32_t me = CurrentThreadIndex();
  int n = num_rings_.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) {
    Ring* r = rings_[i].load(std::memory_order_acquire);
    if (r != nullptr && r->thread == me) {
      cache = {this, r};
      return r;
    }
  }
  auto* ring = new Ring();  // immortal: the signal handler may walk it
  ring->thread = me;
  int slot = num_rings_.fetch_add(1, std::memory_order_acq_rel);
  if (slot >= kMaxThreads) {
    // Table full (pathological thread churn): record into the last ring
    // rather than dropping — shared slots tear, but events survive.
    num_rings_.store(kMaxThreads, std::memory_order_release);
    delete ring;
    Ring* shared = rings_[kMaxThreads - 1].load(std::memory_order_acquire);
    cache = {this, shared};
    return shared;
  }
  rings_[slot].store(ring, std::memory_order_release);
  cache = {this, ring};
  return ring;
}

void FlightRecorder::Record(FlightKind kind, const char* msg, uint64_t a,
                            uint64_t b, uint32_t node) {
  Ring* ring = LocalRing();
  uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  uint64_t idx = ring->next.fetch_add(1, std::memory_order_relaxed);
  Event& e = ring->events[idx % kRingEvents];
  // Mark in-flight first so racing readers skip rather than mix old/new.
  e.seq.store(0, std::memory_order_release);
  e.time_us.store(NowMicros(), std::memory_order_relaxed);
  e.msg.store(msg, std::memory_order_relaxed);
  e.a.store(a, std::memory_order_relaxed);
  e.b.store(b, std::memory_order_relaxed);
  e.node.store(node, std::memory_order_relaxed);
  e.kind.store(static_cast<uint8_t>(kind), std::memory_order_relaxed);
  e.seq.store(seq, std::memory_order_release);
}

std::string FlightRecorder::Dump() const {
  struct Row {
    uint64_t seq;
    uint64_t time_us;
    uint64_t a;
    uint64_t b;
    const char* msg;
    uint32_t node;
    uint32_t thread;
    uint8_t kind;
  };
  std::vector<Row> rows;
  int n = std::min(num_rings_.load(std::memory_order_acquire),
                   static_cast<int>(kMaxThreads));
  for (int i = 0; i < n; ++i) {
    const Ring* ring = rings_[i].load(std::memory_order_acquire);
    if (ring == nullptr) {
      continue;
    }
    for (const Event& e : ring->events) {
      uint64_t seq = e.seq.load(std::memory_order_acquire);
      if (seq == 0) {
        continue;  // empty or in-flight
      }
      rows.push_back({seq, e.time_us.load(std::memory_order_relaxed),
                      e.a.load(std::memory_order_relaxed),
                      e.b.load(std::memory_order_relaxed),
                      e.msg.load(std::memory_order_relaxed),
                      e.node.load(std::memory_order_relaxed), ring->thread,
                      e.kind.load(std::memory_order_relaxed)});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& x, const Row& y) { return x.seq < y.seq; });
  std::ostringstream out;
  for (const Row& r : rows) {
    out << "seq=" << r.seq << " t_us=" << r.time_us << " thread=" << r.thread
        << " node=" << r.node << " kind="
        << FlightKindName(static_cast<FlightKind>(r.kind)) << " a=" << r.a
        << " b=" << r.b << " msg=" << (r.msg != nullptr ? r.msg : "") << "\n";
  }
  return out.str();
}

void FlightRecorder::DumpToFd(int fd) const {
  int n = std::min(num_rings_.load(std::memory_order_acquire),
                   static_cast<int>(kMaxThreads));
  for (int i = 0; i < n; ++i) {
    const Ring* ring = rings_[i].load(std::memory_order_acquire);
    if (ring == nullptr) {
      continue;
    }
    for (const Event& e : ring->events) {
      uint64_t seq = e.seq.load(std::memory_order_acquire);
      if (seq == 0) {
        continue;
      }
      WriteStr(fd, "seq=");
      WriteU64(fd, seq);
      WriteStr(fd, " t_us=");
      WriteU64(fd, e.time_us.load(std::memory_order_relaxed));
      WriteStr(fd, " thread=");
      WriteU64(fd, ring->thread);
      WriteStr(fd, " node=");
      WriteU64(fd, e.node.load(std::memory_order_relaxed));
      WriteStr(fd, " kind=");
      WriteStr(fd, FlightKindName(static_cast<FlightKind>(
                       e.kind.load(std::memory_order_relaxed))));
      WriteStr(fd, " a=");
      WriteU64(fd, e.a.load(std::memory_order_relaxed));
      WriteStr(fd, " b=");
      WriteU64(fd, e.b.load(std::memory_order_relaxed));
      WriteStr(fd, " msg=");
      const char* msg = e.msg.load(std::memory_order_relaxed);
      if (msg != nullptr) {
        WriteStr(fd, msg);
      }
      WriteStr(fd, "\n");
    }
  }
}

void FlightRecorder::InstallFatalSignalHandler() {
  if (g_handler_installed != 0) {
    return;
  }
  g_handler_installed = 1;
  Default();  // force construction outside the signal path
  struct sigaction sa{};
  sa.sa_handler = FatalSignalHandler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  for (int signo : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    ::sigaction(signo, &sa, nullptr);
  }
}

void FlightRecorder::Clear() {
  int n = std::min(num_rings_.load(std::memory_order_acquire),
                   static_cast<int>(kMaxThreads));
  for (int i = 0; i < n; ++i) {
    Ring* ring = rings_[i].load(std::memory_order_acquire);
    if (ring == nullptr) {
      continue;
    }
    ring->next.store(0, std::memory_order_relaxed);
    for (Event& e : ring->events) {
      e.seq.store(0, std::memory_order_release);
    }
  }
}

}  // namespace tango::obs
