// StatsService: exposes the serving process's metrics registry and trace
// buffer over the Transport RPC contract (method kStatsDump), so an external
// inspector — tools/tango_stat --connect — can attach to a live deployment
// such as tango_logd.
//
// Wire contract (kStatsDump):
//   request:  u8 kind (StatsKind)
//   response: string payload (text, metrics JSON, or Chrome trace JSON)
//
// Only depends on the header-only Transport interface, so tango_obs stays
// below tango_net in the link order.

#ifndef SRC_OBS_STATS_SERVICE_H_
#define SRC_OBS_STATS_SERVICE_H_

#include <string>

#include "src/net/transport.h"

namespace tango::obs {

enum class StatsKind : uint8_t {
  kMetricsText = 1,
  kMetricsJson = 2,
  kChromeTrace = 3,
  kFlightRecorder = 4,  // flight-recorder event log (src/obs/flight.h)
  kSloJson = 5,         // SLO burn-rate accounting (src/obs/slo.h)
  kPrometheus = 6,      // /metrics payload over RPC instead of HTTP
};

class StatsService {
 public:
  // Registers the service on `transport` as `node`; unregisters on
  // destruction.
  StatsService(Transport* transport, NodeId node);
  ~StatsService();

  StatsService(const StatsService&) = delete;
  StatsService& operator=(const StatsService&) = delete;

 private:
  Transport* transport_;
  NodeId node_;
  RpcDispatcher dispatcher_;
};

// Client side: fetches a stats payload from a StatsService at `node`.
Result<std::string> FetchStats(Transport* transport, NodeId node,
                               StatsKind kind);

}  // namespace tango::obs

#endif  // SRC_OBS_STATS_SERVICE_H_
