// Embedded observability HTTP server: the smallest HTTP/1.1 surface that
// lets standard tooling look inside a running tango process.
//
// Endpoints (GET only):
//   /metrics  Prometheus text exposition of the default MetricsRegistry,
//             with trace exemplars on histogram buckets (curl/Prometheus).
//   /vars     RenderJson() snapshot of the same registry.
//   /traces   Chrome trace_event JSON of the retained traces
//             (chrome://tracing, ui.perfetto.dev).
//   /slo      SLO burn-rate accounting as JSON (src/obs/slo.h).
//   /healthz  "ok\n" — liveness probe.
//
// Deliberately dependency-free: one accept thread, one short-lived handler
// per connection (read request line, respond, close).  This is a diagnostics
// port, not a web server — no keep-alive, no TLS, no request bodies.  Binds
// 127.0.0.1 by default; opening it wider is an explicit operator decision.

#ifndef SRC_OBS_HTTP_H_
#define SRC_OBS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/util/status.h"

namespace tango::obs {

class ObsHttpServer {
 public:
  struct Options {
    std::string address = "127.0.0.1";
    uint16_t port = 0;  // 0 = kernel-assigned (read back via port())
  };

  ObsHttpServer() = default;
  ~ObsHttpServer() { Stop(); }

  ObsHttpServer(const ObsHttpServer&) = delete;
  ObsHttpServer& operator=(const ObsHttpServer&) = delete;

  // Binds and starts the accept thread.  Fails (kUnavailable) when the
  // address/port cannot be bound.
  Status Start(const Options& options);
  // Closes the listener and joins the accept thread; idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port (after Start with port 0 this is the kernel's pick).
  uint16_t port() const { return port_; }

  // Registers an extra GET endpoint ("/flight", ...) before Start.  The
  // handler returns the response body; content type is text/plain unless
  // the body starts with '{' or '[' (then application/json).
  void Handle(const std::string& path, std::function<std::string()> handler);

  // Requests served (all endpoints, including 404s).
  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  std::map<std::string, std::function<std::string()>> handlers_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
};

// Blocking one-shot HTTP GET against `host:port` (IPv4 dotted quad or
// "localhost"), returning the response body on 200 and a non-OK status on
// connect failure, timeout, or any other response code.  The client half of
// tango_stat --http / --watch and the CI smoke scrape.
Result<std::string> HttpGet(const std::string& host, uint16_t port,
                            const std::string& path, uint32_t timeout_ms);

}  // namespace tango::obs

#endif  // SRC_OBS_HTTP_H_
