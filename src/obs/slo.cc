#include "src/obs/slo.h"

#include <cstdio>
#include <sstream>

#include "src/obs/metrics.h"
#include "src/util/threading.h"

namespace tango::obs {

namespace {

uint64_t NowSecs() { return NowMicros() / 1'000'000; }

// Default objectives: generous enough that healthy in-process and
// local-TCP runs stay inside budget, tight enough that injected stalls
// (bench slow-request runs, chaos partitions) show up as burn.
constexpr uint64_t kDefaultAppendUs = 5'000;
constexpr uint64_t kDefaultReadUs = 2'000;
constexpr uint64_t kDefaultTxnUs = 10'000;
// Admission records 0 on admit and the retry-after hint on shed, so the
// objective is effectively "was the request shed with a nontrivial hint".
constexpr uint64_t kDefaultAdmissionUs = 1'000;

}  // namespace

const char* SloOpName(SloOp op) {
  switch (op) {
    case SloOp::kAppend:
      return "append";
    case SloOp::kRead:
      return "read";
    case SloOp::kTxnCommit:
      return "txn_commit";
    case SloOp::kAdmission:
      return "admission";
  }
  return "unknown";
}

SloTracker& SloTracker::Default() {
  static SloTracker* tracker = [] {
    auto* t = new SloTracker();
    MetricsRegistry::Default().AddCollectionHook(
        [t] { t->ExportToRegistry(); });
    return t;
  }();
  return *tracker;
}

SloTracker::SloTracker() {
  SetObjective(SloOp::kAppend, {kDefaultAppendUs, 0.999});
  SetObjective(SloOp::kRead, {kDefaultReadUs, 0.999});
  SetObjective(SloOp::kTxnCommit, {kDefaultTxnUs, 0.999});
  SetObjective(SloOp::kAdmission, {kDefaultAdmissionUs, 0.999});
}

void SloTracker::SetObjective(SloOp op, SloObjective objective) {
  PerOp& o = ops_[static_cast<int>(op)];
  o.objective_us.store(objective.objective_us, std::memory_order_relaxed);
  o.target_millis.store(static_cast<uint64_t>(objective.target * 1000.0),
                        std::memory_order_relaxed);
}

SloObjective SloTracker::objective(SloOp op) const {
  const PerOp& o = ops_[static_cast<int>(op)];
  SloObjective out;
  out.objective_us = o.objective_us.load(std::memory_order_relaxed);
  out.target =
      static_cast<double>(o.target_millis.load(std::memory_order_relaxed)) /
      1000.0;
  return out;
}

void SloTracker::Record(SloOp op, uint64_t latency_us) {
  PerOp& o = ops_[static_cast<int>(op)];
  bool breach = latency_us > o.objective_us.load(std::memory_order_relaxed);
  o.total.fetch_add(1, std::memory_order_relaxed);
  if (breach) {
    o.breached.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t sec = NowSecs();
  Slot& slot = o.slots[sec % kSlots];
  uint64_t tagged = slot.epoch_sec.load(std::memory_order_acquire);
  while (tagged != sec) {
    // The slot still holds a lapped second: first claimer resets it.  A
    // loser of the CAS re-reads and joins whoever won.
    if (slot.epoch_sec.compare_exchange_weak(tagged, sec,
                                             std::memory_order_acq_rel)) {
      slot.total.store(0, std::memory_order_relaxed);
      slot.breached.store(0, std::memory_order_relaxed);
      break;
    }
  }
  slot.total.fetch_add(1, std::memory_order_relaxed);
  if (breach) {
    slot.breached.fetch_add(1, std::memory_order_relaxed);
  }
}

void SloTracker::WindowSums(const PerOp& op, uint64_t window_secs,
                            uint64_t* total, uint64_t* breached) const {
  *total = 0;
  *breached = 0;
  uint64_t now = NowSecs();
  uint64_t oldest = now >= window_secs ? now - window_secs + 1 : 0;
  for (int i = 0; i < kSlots; ++i) {
    const Slot& slot = op.slots[i];
    uint64_t sec = slot.epoch_sec.load(std::memory_order_acquire);
    if (sec >= oldest && sec <= now) {
      *total += slot.total.load(std::memory_order_relaxed);
      *breached += slot.breached.load(std::memory_order_relaxed);
    }
  }
}

double SloTracker::BurnRate(const PerOp& op, uint64_t window_secs) const {
  uint64_t total = 0;
  uint64_t breached = 0;
  WindowSums(op, window_secs, &total, &breached);
  if (total == 0) {
    return 0.0;
  }
  double target =
      static_cast<double>(op.target_millis.load(std::memory_order_relaxed)) /
      1000.0;
  double budget = 1.0 - target;
  if (budget <= 0.0) {
    budget = 1e-6;  // a 100% target burns instantly on any breach
  }
  return (static_cast<double>(breached) / static_cast<double>(total)) / budget;
}

SloTracker::OpStats SloTracker::Stats(SloOp op) const {
  const PerOp& o = ops_[static_cast<int>(op)];
  OpStats s;
  s.total = o.total.load(std::memory_order_relaxed);
  s.breached = o.breached.load(std::memory_order_relaxed);
  s.burn_rate_1m = BurnRate(o, 60);
  s.burn_rate_5m = BurnRate(o, 300);
  return s;
}

std::string SloTracker::RenderJson() const {
  std::ostringstream out;
  out << "{";
  for (int i = 0; i < kNumSloOps; ++i) {
    SloOp op = static_cast<SloOp>(i);
    SloObjective obj = objective(op);
    OpStats s = Stats(op);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\"%s\":{\"objective_us\":%llu,\"target\":%.4f,"
                  "\"total\":%llu,\"breached\":%llu,"
                  "\"burn_rate_1m\":%.3f,\"burn_rate_5m\":%.3f}",
                  SloOpName(op),
                  static_cast<unsigned long long>(obj.objective_us),
                  obj.target, static_cast<unsigned long long>(s.total),
                  static_cast<unsigned long long>(s.breached), s.burn_rate_1m,
                  s.burn_rate_5m);
    out << (i > 0 ? "," : "") << buf;
  }
  out << "}";
  return out.str();
}

void SloTracker::Reset() {
  for (PerOp& o : ops_) {
    o.total.store(0, std::memory_order_relaxed);
    o.breached.store(0, std::memory_order_relaxed);
    for (Slot& slot : o.slots) {
      slot.epoch_sec.store(0, std::memory_order_release);
      slot.total.store(0, std::memory_order_relaxed);
      slot.breached.store(0, std::memory_order_relaxed);
    }
  }
}

void SloTracker::ExportToRegistry() {
  MetricsRegistry& reg = MetricsRegistry::Default();
  for (int i = 0; i < kNumSloOps; ++i) {
    SloOp op = static_cast<SloOp>(i);
    OpStats s = Stats(op);
    std::string prefix = std::string("slo.") + SloOpName(op);
    // Gauges, not counters: these mirror tracker state rather than count
    // events of their own, and Set() is idempotent across hooks.
    reg.GetGauge(prefix + ".total")->Set(static_cast<int64_t>(s.total));
    reg.GetGauge(prefix + ".breached")->Set(static_cast<int64_t>(s.breached));
    reg.GetGauge(prefix + ".burn_rate_1m_x1000")
        ->Set(static_cast<int64_t>(s.burn_rate_1m * 1000.0));
    reg.GetGauge(prefix + ".burn_rate_5m_x1000")
        ->Set(static_cast<int64_t>(s.burn_rate_5m * 1000.0));
  }
}

}  // namespace tango::obs
