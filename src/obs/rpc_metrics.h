// Per-RPC-method instrumentation: every transport resolves one RpcMethodStats
// bundle per method id and records calls, latency, failures and injected
// drops on it.  The bundles live in a static table indexed by a dense slot
// per known method, so the hot path is one switch plus relaxed atomics — no
// name lookups per call.

#ifndef SRC_OBS_RPC_METRICS_H_
#define SRC_OBS_RPC_METRICS_H_

#include <cstdint>

#include "src/obs/metrics.h"

namespace tango::obs {

// Short dotted name for a method id, e.g. "storage.write"; "other" for ids
// outside the table in src/corfu/types.h.
const char* RpcMethodName(uint16_t method);

struct RpcMethodStats {
  // "rpc:<name>" with static storage, for span labels.
  const char* span_name;
  Counter* calls;        // rpc.<name>.calls
  Counter* failures;     // rpc.<name>.failures (non-OK status returned)
  Counter* drops;        // rpc.<name>.drops (injected / transport loss)
  Histogram* latency_us; // rpc.<name>.latency_us (successful dispatch+reply)
};

// The bundle for `method` (unknown ids share the "other" bundle).  The
// returned reference is valid forever.
RpcMethodStats& RpcStatsFor(uint16_t method);

}  // namespace tango::obs

#endif  // SRC_OBS_RPC_METRICS_H_
