// Crash flight recorder: the last few hundred control-plane events, kept in
// lock-free per-thread rings, dumpable from a fatal-signal handler.
//
// When a node dies — assert, segfault, kill signal during a chaos run — the
// metrics registry and trace rings die with it.  The flight recorder is the
// black box that survives to the core of the crash report: every seal,
// reconfiguration, GC pass, recovery step and pipeline stall is appended as
// a fixed-size structured event, and the fatal-signal handler writes the
// rings to stderr with nothing but write(2) and integer formatting (no
// malloc, no locks, no snprintf — the handler must work with the heap in an
// arbitrary state).
//
// Recording contract: Record() is wait-free (one relaxed fetch_add + plain
// stores into an owned slot) and `msg` must have static storage duration.
// Each thread's ring is registered into a fixed-capacity global table on
// first use and never freed, so the signal handler walks a stable array.
//
// Readers (Dump(), the kFlightRecorder stats kind, /flight) tolerate torn
// in-flight events: a slot's fields are published relaxed and read racily;
// the seq tag makes ordering best-effort by construction.  That is the
// right trade — the recorder exists for the moment everything else is
// already wrong.

#ifndef SRC_OBS_FLIGHT_H_
#define SRC_OBS_FLIGHT_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace tango::obs {

enum class FlightKind : uint8_t {
  kSeal = 1,          // storage node sealed an epoch
  kReconfig = 2,      // projection change installed
  kGc = 3,            // segment GC / trim activity
  kRecovery = 4,      // recovery step (journal replay, rebuild, ...)
  kPipelineStall = 5, // append pipeline blocked on its window
  kFailstop = 6,      // injected or detected fail-stop
  kSignal = 7,        // fatal signal (written by the handler itself)
};

const char* FlightKindName(FlightKind kind);

class FlightRecorder {
 public:
  static constexpr int kRingEvents = 256;   // per thread
  static constexpr int kMaxThreads = 256;

  // The process-wide recorder (all instrumentation points use it).
  static FlightRecorder& Default();

  // Appends one event.  `msg` must be a string literal (or otherwise
  // immortal); a/b are event-specific payloads (epoch, address, ...).
  void Record(FlightKind kind, const char* msg, uint64_t a = 0,
              uint64_t b = 0, uint32_t node = 0);

  // Human-readable dump of every ring, one "seq= t= thread= kind= msg a b
  // node" line per event, globally sorted by seq.  For the kFlightRecorder
  // stats kind and the /flight endpoint.
  std::string Dump() const;

  // Async-signal-safe dump to `fd` (unsorted, ring order).  Only write(2)
  // and stack formatting; callable from a SIGSEGV handler.
  void DumpToFd(int fd) const;

  // Installs a handler for SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL that writes
  // the recorder to stderr, then restores the default action and re-raises
  // so exit codes and core dumps are unchanged.  Idempotent.
  static void InstallFatalSignalHandler();

  // Total events ever recorded (exported as obs.flight.events).
  uint64_t events() const { return seq_.load(std::memory_order_relaxed); }

  // Drops all recorded events (rings stay registered).  For tests.
  void Clear();

 private:
  struct Event {
    std::atomic<uint64_t> seq{0};  // 0 = empty; global order tag
    std::atomic<uint64_t> time_us{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    std::atomic<const char*> msg{nullptr};
    std::atomic<uint32_t> node{0};
    std::atomic<uint8_t> kind{0};
  };

  struct Ring {
    uint32_t thread = 0;          // dense thread index (trace.cc's)
    std::atomic<uint64_t> next{0};  // slots claimed in this ring
    Event events[kRingEvents];
  };

  Ring* LocalRing();

  std::atomic<uint64_t> seq_{1};
  std::atomic<int> num_rings_{0};
  std::atomic<Ring*> rings_[kMaxThreads];  // filled once, never freed
};

}  // namespace tango::obs

#endif  // SRC_OBS_FLIGHT_H_
