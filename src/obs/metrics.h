// Process-wide metrics registry: named counters, gauges and histograms with a
// lock-free hot path.
//
// Every subsystem resolves its instruments once (a mutex-guarded name lookup)
// and then updates them with single relaxed atomic operations.  Returned
// pointers are stable for the life of the process — the registry never
// deletes an instrument, so instrumented code may cache them freely.
//
// Naming scheme: dot-separated "<component>.<event>[.<detail>]", e.g.
// "sequencer.tokens", "storage.read.unwritten", "rpc.storage.write.latency_us".
// Histograms record microseconds unless the name says otherwise.
//
// Metrics are enabled by default.  SetMetricsEnabled(false) turns every
// update into a single relaxed atomic load + branch, which is the overhead
// budget the benches hold the registry to (<3% on the read path — see
// DESIGN.md "Observability").

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/util/histogram.h"

namespace tango::obs {

namespace internal {
inline std::atomic<bool> g_metrics_enabled{true};
}  // namespace internal

inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}
inline void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

// A monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (MetricsEnabled()) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A point-in-time signed level (queue depth, lag, stream count).
class Gauge {
 public:
  void Set(int64_t v) {
    if (MetricsEnabled()) {
      value_.store(v, std::memory_order_relaxed);
    }
  }
  void Add(int64_t n) {
    if (MetricsEnabled()) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A concurrent histogram sharing tango::Histogram's bucket layout.  Record()
// is safe from any number of threads (per-bucket relaxed atomics plus CAS
// loops for min/max); Snapshot() materializes a plain tango::Histogram whose
// totals are internally consistent (count is derived from the bucket sweep;
// sum/min/max may lag by in-flight records).
//
// Exemplars: when the recording thread has an active trace context
// (src/obs/trace.h), the value and its trace id are stamped into one of
// kExemplarSlots slots, each covering a contiguous range of buckets — so a
// tail-latency bucket in a metrics dump links to a concrete trace.  Slots
// hold the latest exemplar for their range; value/trace pairs are published
// as independent relaxed atomics, so a reader racing a writer may see a
// freshly-mixed pair (both halves are always real recorded data).
class Histogram {
 public:
  static constexpr int kExemplarSlots = 8;

  struct Exemplar {
    uint64_t value = 0;
    uint64_t trace_id = 0;
  };

  Histogram();

  void Record(uint64_t value);
  tango::Histogram Snapshot() const;
  void Reset();

  // The exemplar slot index covering `value` (by bucket range).
  static int ExemplarSlotFor(uint64_t value);
  // Populated exemplars, ascending by slot (empty slots omitted).
  std::vector<Exemplar> Exemplars() const;
  // The exemplar covering `value`'s slot, falling back to the nearest
  // populated lower slot; all-zero when none recorded yet.
  Exemplar ExemplarNear(uint64_t value) const;

 private:
  struct ExemplarSlot {
    std::atomic<uint64_t> value{0};
    std::atomic<uint64_t> trace_id{0};
  };

  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~0ULL};
  std::atomic<uint64_t> max_{0};
  std::array<ExemplarSlot, kExemplarSlots> exemplars_;
};

// RAII stage timer: records the scope's elapsed microseconds into `hist` at
// destruction.  When metrics are disabled at construction the clock is never
// read, so a dormant timer costs one relaxed load.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist)
      : hist_(MetricsEnabled() ? hist : nullptr),
        start_(hist_ != nullptr ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start_)
              .count()));
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

class MetricsRegistry {
 public:
  // The process-wide registry every subsystem reports into.
  static MetricsRegistry& Default();

  // Resolve-or-create by name.  The same name always yields the same
  // instrument; the pointer stays valid forever.  Counters, gauges and
  // histograms live in separate namespaces.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, tango::Histogram> histograms;
    // Trace exemplars per histogram name (absent when none recorded).
    std::map<std::string, std::vector<Histogram::Exemplar>> exemplars;
  };
  Snapshot Snap() const;

  // Runs `hook` at the start of every Snap() (before the registry lock is
  // taken), so lazily-computed instruments — tracer ring occupancy, SLO burn
  // rates — refresh in every dump.  Hooks must not call Snap() themselves.
  void AddCollectionHook(std::function<void()> hook);

  // Human-readable dump: one "name value" line per counter/gauge, one
  // "name n=... p50=..." line per histogram, sorted by name.
  std::string RenderText() const;
  // {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,p50,p90,
  // p99,max}}} — the payload tango_stat and the bench snapshot helper emit.
  std::string RenderJson() const;
  // Prometheus text exposition format (the /metrics payload): counters and
  // gauges as-is, histograms as cumulative per-octave le-buckets with
  // OpenMetrics-style trace exemplars, plus derived _p50/_p99 gauges so a
  // scraper-less poller (tango_stat --watch) sees percentile movement.
  std::string RenderPrometheus() const;

  // Zeroes every instrument (pointers stay valid).  For benches and tests
  // that want per-phase deltas without process restarts.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  mutable std::mutex hooks_mu_;
  std::vector<std::function<void()>> hooks_;
};

// Renders a registry snapshot as the JSON object RenderJson() produces.
std::string RenderSnapshotJson(const MetricsRegistry::Snapshot& snap);

// Renders a registry snapshot in Prometheus text exposition format.
std::string RenderSnapshotPrometheus(const MetricsRegistry::Snapshot& snap);

// Background thread that appends a RenderText() dump to `path` (or stderr
// when empty) every `interval_ms`.  The stats-dump hook for long benches and
// daemons; stops and joins in the destructor.
class PeriodicStatsDumper {
 public:
  explicit PeriodicStatsDumper(uint32_t interval_ms, std::string path = "");
  ~PeriodicStatsDumper();

  PeriodicStatsDumper(const PeriodicStatsDumper&) = delete;
  PeriodicStatsDumper& operator=(const PeriodicStatsDumper&) = delete;

  // Number of dumps written so far.
  uint64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }

 private:
  void Loop(uint32_t interval_ms);

  std::string path_;
  std::atomic<uint64_t> dumps_{0};
  std::atomic<bool> stop_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
};

}  // namespace tango::obs

#endif  // SRC_OBS_METRICS_H_
