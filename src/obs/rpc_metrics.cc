#include "src/obs/rpc_metrics.h"

#include <array>
#include <string>

#include "src/corfu/types.h"

namespace tango::obs {

namespace {

struct MethodEntry {
  uint16_t id;
  const char* name;
  const char* span_name;
};

// Keep in sync with corfu::RpcMethod (src/corfu/types.h).
constexpr MethodEntry kMethods[] = {
    {corfu::kStorageWrite, "storage.write", "rpc:storage.write"},
    {corfu::kStorageRead, "storage.read", "rpc:storage.read"},
    {corfu::kStorageSeal, "storage.seal", "rpc:storage.seal"},
    {corfu::kStorageTrim, "storage.trim", "rpc:storage.trim"},
    {corfu::kStorageTrimPrefix, "storage.trim_prefix",
     "rpc:storage.trim_prefix"},
    {corfu::kStorageLocalTail, "storage.local_tail", "rpc:storage.local_tail"},
    {corfu::kStorageReadBatch, "storage.read_batch", "rpc:storage.read_batch"},
    {corfu::kSequencerNext, "sequencer.next", "rpc:sequencer.next"},
    {corfu::kSequencerTail, "sequencer.tail", "rpc:sequencer.tail"},
    {corfu::kSequencerBootstrap, "sequencer.bootstrap",
     "rpc:sequencer.bootstrap"},
    {corfu::kSequencerDump, "sequencer.dump", "rpc:sequencer.dump"},
    {corfu::kProjectionGet, "projection.get", "rpc:projection.get"},
    {corfu::kProjectionPropose, "projection.propose",
     "rpc:projection.propose"},
    {corfu::kLockAcquire, "lock.acquire", "rpc:lock.acquire"},
    {corfu::kLockCommit, "lock.commit", "rpc:lock.commit"},
    {corfu::kLockAbort, "lock.abort", "rpc:lock.abort"},
    {corfu::kTimestampNext, "timestamp.next", "rpc:timestamp.next"},
    {corfu::kStatsDump, "stats.dump", "rpc:stats.dump"},
};

constexpr int kNumKnown = static_cast<int>(std::size(kMethods));
constexpr int kNumSlots = kNumKnown + 1;  // + "other"

int SlotFor(uint16_t method) {
  for (int i = 0; i < kNumKnown; ++i) {
    if (kMethods[i].id == method) {
      return i;
    }
  }
  return kNumKnown;
}

std::array<RpcMethodStats, kNumSlots> BuildSlots() {
  std::array<RpcMethodStats, kNumSlots> slots;
  MetricsRegistry& reg = MetricsRegistry::Default();
  auto fill = [&reg](RpcMethodStats* s, const char* name,
                     const char* span_name) {
    std::string prefix = std::string("rpc.") + name;
    s->span_name = span_name;
    s->calls = reg.GetCounter(prefix + ".calls");
    s->failures = reg.GetCounter(prefix + ".failures");
    s->drops = reg.GetCounter(prefix + ".drops");
    s->latency_us = reg.GetHistogram(prefix + ".latency_us");
  };
  for (int i = 0; i < kNumKnown; ++i) {
    fill(&slots[i], kMethods[i].name, kMethods[i].span_name);
  }
  fill(&slots[kNumKnown], "other", "rpc:other");
  return slots;
}

}  // namespace

const char* RpcMethodName(uint16_t method) {
  int slot = SlotFor(method);
  return slot < kNumKnown ? kMethods[slot].name : "other";
}

RpcMethodStats& RpcStatsFor(uint16_t method) {
  static std::array<RpcMethodStats, kNumSlots> slots = BuildSlots();
  return slots[SlotFor(method)];
}

}  // namespace tango::obs
