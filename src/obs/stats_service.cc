#include "src/obs/stats_service.h"

#include "src/corfu/types.h"
#include "src/obs/flight.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"

namespace tango::obs {

StatsService::StatsService(Transport* transport, NodeId node)
    : transport_(transport), node_(node) {
  dispatcher_.Register(
      corfu::kStatsDump, [](ByteReader& req, ByteWriter& resp) {
        uint8_t kind = req.GetU8();
        if (!req.ok()) {
          return Status(StatusCode::kInvalidArgument, "bad stats request");
        }
        switch (static_cast<StatsKind>(kind)) {
          case StatsKind::kMetricsText:
            resp.PutString(MetricsRegistry::Default().RenderText());
            return Status::Ok();
          case StatsKind::kMetricsJson:
            resp.PutString(MetricsRegistry::Default().RenderJson());
            return Status::Ok();
          case StatsKind::kChromeTrace:
            resp.PutString(Tracer::Default().ExportChromeJson());
            return Status::Ok();
          case StatsKind::kFlightRecorder:
            resp.PutString(FlightRecorder::Default().Dump());
            return Status::Ok();
          case StatsKind::kSloJson:
            resp.PutString(SloTracker::Default().RenderJson());
            return Status::Ok();
          case StatsKind::kPrometheus:
            resp.PutString(MetricsRegistry::Default().RenderPrometheus());
            return Status::Ok();
        }
        return Status(StatusCode::kInvalidArgument, "unknown stats kind");
      });
  transport_->RegisterNode(node_, dispatcher_.AsHandler());
}

StatsService::~StatsService() { transport_->UnregisterNode(node_); }

Result<std::string> FetchStats(Transport* transport, NodeId node,
                               StatsKind kind) {
  ByteWriter req;
  req.PutU8(static_cast<uint8_t>(kind));
  std::vector<uint8_t> resp;
  TANGO_RETURN_IF_ERROR(
      transport->Call(node, corfu::kStatsDump, req.bytes(), &resp));
  ByteReader reader(resp);
  std::string payload = reader.GetString();
  if (!reader.ok()) {
    return Status(StatusCode::kInternal, "bad stats response");
  }
  return payload;
}

}  // namespace tango::obs
