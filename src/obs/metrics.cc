#include "src/obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "src/util/logging.h"

namespace tango::obs {

Histogram::Histogram() : buckets_(tango::Histogram::kNumBuckets) {}

void Histogram::Record(uint64_t value) {
  if (!MetricsEnabled()) {
    return;
  }
  buckets_[tango::Histogram::BucketFor(value)].fetch_add(
      1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

tango::Histogram Histogram::Snapshot() const {
  std::vector<uint64_t> buckets(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return tango::Histogram::FromParts(buckets,
                                     sum_.load(std::memory_order_relaxed),
                                     min_.load(std::memory_order_relaxed),
                                     max_.load(std::memory_order_relaxed));
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ULL, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters[name] = c->Value();
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges[name] = g->Value();
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->Snapshot();
  }
  return snap;
}

std::string MetricsRegistry::RenderText() const {
  Snapshot snap = Snap();
  std::ostringstream out;
  for (const auto& [name, v] : snap.counters) {
    out << name << " " << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    out << name << " " << v << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    out << name << " " << h.Summary() << "\n";
  }
  return out.str();
}

namespace {

void AppendJsonString(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\';
    }
    out << c;
  }
  out << '"';
}

}  // namespace

std::string RenderSnapshotJson(const MetricsRegistry::Snapshot& snap) {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out << ",";
    first = false;
    AppendJsonString(out, name);
    out << ":" << v;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) out << ",";
    first = false;
    AppendJsonString(out, name);
    out << ":" << v;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out << ",";
    first = false;
    AppendJsonString(out, name);
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  ":{\"count\":%llu,\"mean\":%.1f,\"p50\":%llu,\"p90\":%llu,"
                  "\"p99\":%llu,\"max\":%llu}",
                  static_cast<unsigned long long>(h.count()), h.Mean(),
                  static_cast<unsigned long long>(h.Percentile(0.50)),
                  static_cast<unsigned long long>(h.Percentile(0.90)),
                  static_cast<unsigned long long>(h.Percentile(0.99)),
                  static_cast<unsigned long long>(h.max()));
    out << buf;
  }
  out << "}}";
  return out.str();
}

std::string MetricsRegistry::RenderJson() const { return RenderSnapshotJson(Snap()); }

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    g->Reset();
  }
  for (auto& [name, h] : histograms_) {
    h->Reset();
  }
}

PeriodicStatsDumper::PeriodicStatsDumper(uint32_t interval_ms, std::string path)
    : path_(std::move(path)),
      thread_([this, interval_ms] { Loop(interval_ms); }) {}

PeriodicStatsDumper::~PeriodicStatsDumper() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true);
  }
  cv_.notify_all();
  thread_.join();
}

void PeriodicStatsDumper::Loop(uint32_t interval_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_.load()) {
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                 [this] { return stop_.load(); });
    if (stop_.load()) {
      return;
    }
    std::string text = MetricsRegistry::Default().RenderText();
    if (path_.empty()) {
      std::fprintf(stderr, "--- tango stats ---\n%s", text.c_str());
    } else {
      FILE* f = std::fopen(path_.c_str(), "a");
      if (f == nullptr) {
        TANGO_LOG(kWarning) << "stats dump: cannot open " << path_;
        continue;
      }
      std::fprintf(f, "--- tango stats ---\n%s", text.c_str());
      std::fclose(f);
    }
    dumps_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace tango::obs
