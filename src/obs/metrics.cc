#include "src/obs/metrics.h"

#include <pthread.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "src/obs/trace.h"
#include "src/util/logging.h"

namespace tango::obs {

Histogram::Histogram() : buckets_(tango::Histogram::kNumBuckets) {}

int Histogram::ExemplarSlotFor(uint64_t value) {
  return tango::Histogram::BucketFor(value) * kExemplarSlots /
         tango::Histogram::kNumBuckets;
}

void Histogram::Record(uint64_t value) {
  if (!MetricsEnabled()) {
    return;
  }
  buckets_[tango::Histogram::BucketFor(value)].fetch_add(
      1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  TraceContext ctx = CurrentTrace();
  if (ctx.active()) {
    ExemplarSlot& slot = exemplars_[ExemplarSlotFor(value)];
    slot.value.store(value, std::memory_order_relaxed);
    slot.trace_id.store(ctx.trace_id, std::memory_order_relaxed);
  }
}

std::vector<Histogram::Exemplar> Histogram::Exemplars() const {
  std::vector<Exemplar> out;
  for (const ExemplarSlot& slot : exemplars_) {
    uint64_t trace = slot.trace_id.load(std::memory_order_relaxed);
    if (trace != 0) {
      out.push_back({slot.value.load(std::memory_order_relaxed), trace});
    }
  }
  return out;
}

Histogram::Exemplar Histogram::ExemplarNear(uint64_t value) const {
  for (int slot = ExemplarSlotFor(value); slot >= 0; --slot) {
    uint64_t trace = exemplars_[slot].trace_id.load(std::memory_order_relaxed);
    if (trace != 0) {
      return {exemplars_[slot].value.load(std::memory_order_relaxed), trace};
    }
  }
  return {};
}

tango::Histogram Histogram::Snapshot() const {
  std::vector<uint64_t> buckets(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return tango::Histogram::FromParts(buckets,
                                     sum_.load(std::memory_order_relaxed),
                                     min_.load(std::memory_order_relaxed),
                                     max_.load(std::memory_order_relaxed));
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ULL, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (ExemplarSlot& slot : exemplars_) {
    slot.value.store(0, std::memory_order_relaxed);
    slot.trace_id.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

void MetricsRegistry::AddCollectionHook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(hooks_mu_);
  hooks_.push_back(std::move(hook));
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  // Hooks run before the registry lock: they typically Set() gauges, which
  // re-enters GetGauge's resolved pointers but never the registry mutex.
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(hooks_mu_);
    hooks = hooks_;
  }
  for (const auto& hook : hooks) {
    hook();
  }
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters[name] = c->Value();
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges[name] = g->Value();
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->Snapshot();
    std::vector<Histogram::Exemplar> ex = h->Exemplars();
    if (!ex.empty()) {
      snap.exemplars[name] = std::move(ex);
    }
  }
  return snap;
}

std::string MetricsRegistry::RenderText() const {
  Snapshot snap = Snap();
  std::ostringstream out;
  for (const auto& [name, v] : snap.counters) {
    out << name << " " << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    out << name << " " << v << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    out << name << " " << h.Summary() << "\n";
  }
  return out.str();
}

namespace {

void AppendJsonString(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\';
    }
    out << c;
  }
  out << '"';
}

}  // namespace

std::string RenderSnapshotJson(const MetricsRegistry::Snapshot& snap) {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out << ",";
    first = false;
    AppendJsonString(out, name);
    out << ":" << v;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) out << ",";
    first = false;
    AppendJsonString(out, name);
    out << ":" << v;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out << ",";
    first = false;
    AppendJsonString(out, name);
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  ":{\"count\":%llu,\"mean\":%.1f,\"p50\":%llu,\"p90\":%llu,"
                  "\"p99\":%llu,\"max\":%llu",
                  static_cast<unsigned long long>(h.count()), h.Mean(),
                  static_cast<unsigned long long>(h.Percentile(0.50)),
                  static_cast<unsigned long long>(h.Percentile(0.90)),
                  static_cast<unsigned long long>(h.Percentile(0.99)),
                  static_cast<unsigned long long>(h.max()));
    out << buf;
    auto ex = snap.exemplars.find(name);
    if (ex != snap.exemplars.end()) {
      out << ",\"exemplars\":[";
      bool ex_first = true;
      for (const Histogram::Exemplar& e : ex->second) {
        if (!ex_first) out << ",";
        ex_first = false;
        out << "{\"value\":" << e.value << ",\"trace_id\":" << e.trace_id
            << "}";
      }
      out << "]";
    }
    out << "}";
  }
  out << "}}";
  return out.str();
}

std::string RenderSnapshotPrometheus(const MetricsRegistry::Snapshot& snap) {
  // Metric names allow [a-zA-Z0-9_:]; the registry's dotted names map 1:1
  // by replacing every other character with '_', under a tango_ prefix.
  auto prom_name = [](const std::string& name) {
    std::string out = "tango_";
    for (char c : name) {
      bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '_';
      out.push_back(ok ? c : '_');
    }
    return out;
  };
  std::ostringstream out;
  for (const auto& [name, v] : snap.counters) {
    std::string pn = prom_name(name);
    out << "# TYPE " << pn << " counter\n" << pn << " " << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    std::string pn = prom_name(name);
    out << "# TYPE " << pn << " gauge\n" << pn << " " << v << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    std::string pn = prom_name(name);
    const std::vector<Histogram::Exemplar>* exemplars = nullptr;
    if (auto it = snap.exemplars.find(name); it != snap.exemplars.end()) {
      exemplars = &it->second;
    }
    out << "# TYPE " << pn << " histogram\n";
    // Fold the 2048 log-linear buckets into one cumulative le-bucket per
    // octave (32 sub-buckets each); stop once the running total covers every
    // record, then close with +Inf.  Exemplars attach to the first bucket
    // whose le covers their value (OpenMetrics "# {labels} value" syntax).
    constexpr int kFold = 1 << tango::Histogram::kSubBucketBits;
    const std::vector<uint64_t>& buckets = h.bucket_counts();
    uint64_t cumulative = 0;
    uint64_t prev_le = 0;
    for (int i = 0; i < tango::Histogram::kNumBuckets; i += kFold) {
      for (int j = i; j < i + kFold; ++j) {
        cumulative += buckets[j];
      }
      uint64_t le = tango::Histogram::BucketUpperBound(i + kFold - 1);
      out << pn << "_bucket{le=\"" << le << "\"} " << cumulative;
      if (exemplars != nullptr) {
        for (const Histogram::Exemplar& e : *exemplars) {
          if (e.value <= le && (i == 0 || e.value > prev_le)) {
            char hexid[32];
            std::snprintf(hexid, sizeof(hexid), "%llx",
                          static_cast<unsigned long long>(e.trace_id));
            out << " # {trace_id=\"" << hexid << "\"} " << e.value;
            break;
          }
        }
      }
      out << "\n";
      prev_le = le;
      if (cumulative >= h.count()) {
        break;
      }
    }
    out << pn << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
    out << pn << "_sum " << h.sum() << "\n";
    out << pn << "_count " << h.count() << "\n";
    // Derived percentile gauges: non-standard but invaluable for pollers
    // that read one scrape at a time (tango_stat --watch).
    out << pn << "_p50 " << h.Percentile(0.50) << "\n";
    out << pn << "_p99 " << h.Percentile(0.99) << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::RenderPrometheus() const {
  return RenderSnapshotPrometheus(Snap());
}

std::string MetricsRegistry::RenderJson() const { return RenderSnapshotJson(Snap()); }

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    g->Reset();
  }
  for (auto& [name, h] : histograms_) {
    h->Reset();
  }
}

PeriodicStatsDumper::PeriodicStatsDumper(uint32_t interval_ms, std::string path)
    : path_(std::move(path)),
      thread_([this, interval_ms] { Loop(interval_ms); }) {}

PeriodicStatsDumper::~PeriodicStatsDumper() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true);
  }
  cv_.notify_all();
  thread_.join();
}

void PeriodicStatsDumper::Loop(uint32_t interval_ms) {
  // obs sits below util in the layering; name the thread directly.
  pthread_setname_np(pthread_self(), "tgo-stats");
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_.load()) {
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                 [this] { return stop_.load(); });
    if (stop_.load()) {
      return;
    }
    std::string text = MetricsRegistry::Default().RenderText();
    if (path_.empty()) {
      std::fprintf(stderr, "--- tango stats ---\n%s", text.c_str());
    } else {
      FILE* f = std::fopen(path_.c_str(), "a");
      if (f == nullptr) {
        TANGO_LOG(kWarning) << "stats dump: cannot open " << path_;
        continue;
      }
      std::fprintf(f, "--- tango stats ---\n%s", text.c_str());
      std::fclose(f);
    }
    dumps_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace tango::obs
