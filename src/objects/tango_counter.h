// TangoCounter: a replicated counter supporting atomic increments.  Unlike a
// register, increments are commutative deltas, so concurrent Add calls from
// different clients all take effect (the log orders them).

#ifndef SRC_OBJECTS_TANGO_COUNTER_H_
#define SRC_OBJECTS_TANGO_COUNTER_H_

#include <atomic>
#include <cstdint>

#include "src/runtime/object.h"
#include "src/runtime/runtime.h"

namespace tango {

class TangoCounter : public TangoObject {
 public:
  TangoCounter(TangoRuntime* runtime, ObjectId oid,
               ObjectConfig config = ObjectConfig{});
  ~TangoCounter() override;

  TangoCounter(const TangoCounter&) = delete;
  TangoCounter& operator=(const TangoCounter&) = delete;

  Status Add(int64_t delta);
  Result<int64_t> Get();

  // Linearizable fetch-and-add: returns the counter value immediately before
  // this increment took effect, via a small transaction.
  Result<int64_t> Next();

  ObjectId oid() const { return oid_; }

  // --- TangoObject ---
  void Apply(std::span<const uint8_t> update, corfu::LogOffset offset) override;
  void Clear() override;
  bool SupportsCheckpoint() const override { return true; }
  std::vector<uint8_t> Checkpoint() const override;
  void Restore(std::span<const uint8_t> state) override;

 private:
  TangoRuntime* runtime_;
  ObjectId oid_;
  std::atomic<int64_t> state_{0};
};

}  // namespace tango

#endif  // SRC_OBJECTS_TANGO_COUNTER_H_
