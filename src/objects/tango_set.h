// TangoSet: a replicated set of strings (the HashSet/TreeSet analogue from
// the paper's Collections bindings).  Membership operations use fine-grained
// per-element versioning, so transactions on disjoint elements commute.

#ifndef SRC_OBJECTS_TANGO_SET_H_
#define SRC_OBJECTS_TANGO_SET_H_

#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/runtime/object.h"
#include "src/runtime/runtime.h"

namespace tango {

class TangoSet : public TangoObject {
 public:
  TangoSet(TangoRuntime* runtime, ObjectId oid,
           ObjectConfig config = ObjectConfig{});
  ~TangoSet() override;

  TangoSet(const TangoSet&) = delete;
  TangoSet& operator=(const TangoSet&) = delete;

  Status Add(const std::string& element);
  Status Remove(const std::string& element);
  Result<bool> Contains(const std::string& element);
  Result<size_t> Size();
  Result<std::vector<std::string>> Elements();

  ObjectId oid() const { return oid_; }

  // --- TangoObject ---
  void Apply(std::span<const uint8_t> update, corfu::LogOffset offset) override;
  void Clear() override;
  bool SupportsCheckpoint() const override { return true; }
  std::vector<uint8_t> Checkpoint() const override;
  void Restore(std::span<const uint8_t> state) override;

 private:
  enum Op : uint8_t { kAdd = 1, kRemove = 2 };

  TangoRuntime* runtime_;
  ObjectId oid_;

  mutable std::mutex mu_;
  std::set<std::string> elements_;
};

}  // namespace tango

#endif  // SRC_OBJECTS_TANGO_SET_H_
