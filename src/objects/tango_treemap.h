// TangoTreeMap: an ordered replicated map (the TreeSet/TreeMap analogue from
// the paper's Collections bindings).  Supports the ordered queries a plain
// hash map cannot serve efficiently — first/last, floor/ceiling and range
// scans — motivating the paper's point that metadata services need data
// structures tailored to their workloads (§2).
//
// A TangoTreeMap can share a stream with a TangoMap (same OID, same update
// format) to provide two differently shaped views over the same history
// (§3.1: "objects with different in-memory data structures can share the
// same data on the log").

#ifndef SRC_OBJECTS_TANGO_TREEMAP_H_
#define SRC_OBJECTS_TANGO_TREEMAP_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/runtime/object.h"
#include "src/runtime/runtime.h"

namespace tango {

class TangoTreeMap : public TangoObject {
 public:
  TangoTreeMap(TangoRuntime* runtime, ObjectId oid,
               ObjectConfig config = ObjectConfig{});
  ~TangoTreeMap() override;

  TangoTreeMap(const TangoTreeMap&) = delete;
  TangoTreeMap& operator=(const TangoTreeMap&) = delete;

  Status Put(const std::string& key, const std::string& value);
  Status Remove(const std::string& key);
  Result<std::string> Get(const std::string& key);
  Result<size_t> Size();

  // Ordered queries (linearizable; recorded as whole-object reads in a tx).
  Result<std::pair<std::string, std::string>> First();
  Result<std::pair<std::string, std::string>> Last();
  // Greatest key <= `key` / smallest key >= `key`.
  Result<std::pair<std::string, std::string>> Floor(const std::string& key);
  Result<std::pair<std::string, std::string>> Ceiling(const std::string& key);
  // All pairs with key in [from, to).
  Result<std::vector<std::pair<std::string, std::string>>> Range(
      const std::string& from, const std::string& to);
  // All pairs whose key starts with `prefix` ("list all files starting with
  // the letter B").
  Result<std::vector<std::pair<std::string, std::string>>> PrefixScan(
      const std::string& prefix);

  ObjectId oid() const { return oid_; }

  // --- TangoObject ---
  void Apply(std::span<const uint8_t> update, corfu::LogOffset offset) override;
  void Clear() override;
  bool SupportsCheckpoint() const override { return true; }
  std::vector<uint8_t> Checkpoint() const override;
  void Restore(std::span<const uint8_t> state) override;

 private:
  enum Op : uint8_t { kPut = 1, kRemove = 2 };

  std::optional<uint64_t> VersionKey(const std::string& key) const;

  TangoRuntime* runtime_;
  ObjectId oid_;

  mutable std::mutex mu_;
  std::map<std::string, std::string> map_;
};

}  // namespace tango

#endif  // SRC_OBJECTS_TANGO_TREEMAP_H_
