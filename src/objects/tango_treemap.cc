#include "src/objects/tango_treemap.h"

#include "src/util/logging.h"
#include "src/util/serialize.h"

namespace tango {

TangoTreeMap::TangoTreeMap(TangoRuntime* runtime, ObjectId oid,
                           ObjectConfig config)
    : runtime_(runtime), oid_(oid) {
  Status st = runtime_->RegisterObject(oid_, this, config);
  TANGO_CHECK(st.ok()) << "register object failed: " << st.ToString();
}

TangoTreeMap::~TangoTreeMap() { (void)runtime_->UnregisterObject(oid_); }

std::optional<uint64_t> TangoTreeMap::VersionKey(
    const std::string& key) const {
  return std::hash<std::string>{}(key);
}

Status TangoTreeMap::Put(const std::string& key, const std::string& value) {
  ByteWriter w(16 + key.size() + value.size());
  w.PutU8(kPut);
  w.PutString(key);
  w.PutString(value);
  return runtime_->UpdateHelper(oid_, w.bytes(), VersionKey(key));
}

Status TangoTreeMap::Remove(const std::string& key) {
  ByteWriter w(8 + key.size());
  w.PutU8(kRemove);
  w.PutString(key);
  return runtime_->UpdateHelper(oid_, w.bytes(), VersionKey(key));
}

Result<std::string> TangoTreeMap::Get(const std::string& key) {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, VersionKey(key)));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    return Status(StatusCode::kNotFound, "no such key");
  }
  return it->second;
}

Result<size_t> TangoTreeMap::Size() {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

Result<std::pair<std::string, std::string>> TangoTreeMap::First() {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.empty()) {
    return Status(StatusCode::kNotFound, "tree map empty");
  }
  return std::make_pair(map_.begin()->first, map_.begin()->second);
}

Result<std::pair<std::string, std::string>> TangoTreeMap::Last() {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.empty()) {
    return Status(StatusCode::kNotFound, "tree map empty");
  }
  return std::make_pair(map_.rbegin()->first, map_.rbegin()->second);
}

Result<std::pair<std::string, std::string>> TangoTreeMap::Floor(
    const std::string& key) {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.upper_bound(key);
  if (it == map_.begin()) {
    return Status(StatusCode::kNotFound, "no key at or below");
  }
  auto prev = std::prev(it);
  return std::make_pair(prev->first, prev->second);
}

Result<std::pair<std::string, std::string>> TangoTreeMap::Ceiling(
    const std::string& key) {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.lower_bound(key);
  if (it == map_.end()) {
    return Status(StatusCode::kNotFound, "no key at or above");
  }
  return std::make_pair(it->first, it->second);
}

Result<std::vector<std::pair<std::string, std::string>>> TangoTreeMap::Range(
    const std::string& from, const std::string& to) {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::string>> out;
  for (auto it = map_.lower_bound(from);
       it != map_.end() && it->first < to; ++it) {
    out.push_back(*it);
  }
  return out;
}

Result<std::vector<std::pair<std::string, std::string>>>
TangoTreeMap::PrefixScan(const std::string& prefix) {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::string>> out;
  for (auto it = map_.lower_bound(prefix); it != map_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    out.push_back(*it);
  }
  return out;
}

void TangoTreeMap::Apply(std::span<const uint8_t> update,
                         corfu::LogOffset /*offset*/) {
  ByteReader r(update);
  Op op = static_cast<Op>(r.GetU8());
  std::lock_guard<std::mutex> lock(mu_);
  switch (op) {
    case kPut: {
      std::string key = r.GetString();
      std::string value = r.GetString();
      if (r.ok()) {
        map_[std::move(key)] = std::move(value);
      }
      return;
    }
    case kRemove: {
      std::string key = r.GetString();
      if (r.ok()) {
        map_.erase(key);
      }
      return;
    }
  }
}

void TangoTreeMap::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
}

std::vector<uint8_t> TangoTreeMap::Checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(map_.size()));
  for (const auto& [key, value] : map_) {
    w.PutString(key);
    w.PutString(value);
  }
  return w.Take();
}

void TangoTreeMap::Restore(std::span<const uint8_t> state) {
  ByteReader r(state);
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  uint32_t count = r.GetU32();
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    std::string key = r.GetString();
    std::string value = r.GetString();
    map_.emplace(std::move(key), std::move(value));
  }
}

}  // namespace tango
