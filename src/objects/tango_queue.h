// TangoQueue: a replicated FIFO queue with exactly-once dequeue.
//
// Enqueue is a plain logged update (and works as a *remote write*: a
// producer can feed a queue it does not host, §4.1 B).  Dequeue must return
// the element it removes, so it runs as a small transaction: read the head,
// append a conditional pop; if another consumer won the race the transaction
// aborts and the caller retries on the new head.

#ifndef SRC_OBJECTS_TANGO_QUEUE_H_
#define SRC_OBJECTS_TANGO_QUEUE_H_

#include <atomic>
#include <deque>
#include <mutex>
#include <string>

#include "src/runtime/object.h"
#include "src/runtime/runtime.h"

namespace tango {

class TangoQueue : public TangoObject {
 public:
  TangoQueue(TangoRuntime* runtime, ObjectId oid,
             ObjectConfig config = ObjectConfig{});
  ~TangoQueue() override;

  TangoQueue(const TangoQueue&) = delete;
  TangoQueue& operator=(const TangoQueue&) = delete;

  Status Enqueue(const std::string& value);

  // Removes and returns the head.  kNotFound if the queue is empty at the
  // linearization point; kTimeout if contention exhausts the retry budget.
  Result<std::string> Dequeue();

  // Returns the head without removing it.
  Result<std::string> Peek();
  Result<size_t> Size();

  ObjectId oid() const { return oid_; }

  // --- TangoObject ---
  void Apply(std::span<const uint8_t> update, corfu::LogOffset offset) override;
  void Clear() override;
  bool SupportsCheckpoint() const override { return true; }
  std::vector<uint8_t> Checkpoint() const override;
  void Restore(std::span<const uint8_t> state) override;

 private:
  enum Op : uint8_t { kEnqueue = 1, kPop = 2 };

  struct Item {
    uint64_t id;
    std::string value;
  };

  TangoRuntime* runtime_;
  ObjectId oid_;

  mutable std::mutex mu_;
  std::deque<Item> items_;
  uint64_t enqueue_seq_ = 0;  // deterministic item ids, assigned at apply
};

}  // namespace tango

#endif  // SRC_OBJECTS_TANGO_QUEUE_H_
