// TangoGraph: a replicated directed graph.
//
// The paper's introduction lists provenance graphs and network topologies
// among the metadata structures services need (§1); this object provides
// them.  Nodes carry labels; edges are directed.  Structural mutations that
// need preconditions (edges require both endpoints) run as transactions, so
// two clients racing to add an edge and delete its endpoint serialize
// correctly.  Fine-grained versioning is per node id, so operations on
// disjoint regions of the graph never conflict.
//
// Provenance queries (Ancestors/Descendants) are linearizable reads over the
// transitive closure.

#ifndef SRC_OBJECTS_TANGO_GRAPH_H_
#define SRC_OBJECTS_TANGO_GRAPH_H_

#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/runtime/object.h"
#include "src/runtime/runtime.h"

namespace tango {

class TangoGraph : public TangoObject {
 public:
  TangoGraph(TangoRuntime* runtime, ObjectId oid,
             ObjectConfig config = ObjectConfig{});
  ~TangoGraph() override;

  TangoGraph(const TangoGraph&) = delete;
  TangoGraph& operator=(const TangoGraph&) = delete;

  // Creates a node (kAlreadyExists if present).
  Status AddNode(const std::string& id, const std::string& label);
  // Removes a node and all its edges (kFailedPrecondition if it has edges
  // unless `force`).
  Status RemoveNode(const std::string& id, bool force = false);
  // Adds a directed edge; both endpoints must exist (kNotFound otherwise).
  Status AddEdge(const std::string& from, const std::string& to);
  Status RemoveEdge(const std::string& from, const std::string& to);

  Result<bool> HasNode(const std::string& id);
  Result<std::string> Label(const std::string& id);
  Result<std::vector<std::string>> Successors(const std::string& id);
  Result<std::vector<std::string>> Predecessors(const std::string& id);
  Result<size_t> NodeCount();
  Result<size_t> EdgeCount();

  // Provenance: every node reachable by following edges backward from `id`
  // (its transitive inputs), excluding `id` itself.
  Result<std::vector<std::string>> Ancestors(const std::string& id);
  // Impact: every node reachable forward from `id`.
  Result<std::vector<std::string>> Descendants(const std::string& id);

  ObjectId oid() const { return oid_; }

  // --- TangoObject ---
  void Apply(std::span<const uint8_t> update, corfu::LogOffset offset) override;
  void Clear() override;
  bool SupportsCheckpoint() const override { return true; }
  std::vector<uint8_t> Checkpoint() const override;
  void Restore(std::span<const uint8_t> state) override;

 private:
  enum Op : uint8_t {
    kAddNode = 1,
    kRemoveNode = 2,
    kAddEdge = 3,
    kRemoveEdge = 4,
  };

  struct Node {
    std::string label;
    std::set<std::string> out;
    std::set<std::string> in;
  };

  static uint64_t NodeKey(const std::string& id);
  Status RunTx(const std::function<Status()>& stage);
  Result<std::vector<std::string>> Reach(const std::string& id, bool forward);

  TangoRuntime* runtime_;
  ObjectId oid_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Node> nodes_;
  size_t edge_count_ = 0;
};

}  // namespace tango

#endif  // SRC_OBJECTS_TANGO_GRAPH_H_
