#include "src/objects/tango_graph.h"

#include <deque>

#include "src/util/logging.h"
#include "src/util/serialize.h"

namespace tango {

namespace {
constexpr int kTxRetries = 64;
}  // namespace

TangoGraph::TangoGraph(TangoRuntime* runtime, ObjectId oid,
                       ObjectConfig config)
    : runtime_(runtime), oid_(oid) {
  Status st = runtime_->RegisterObject(oid_, this, config);
  TANGO_CHECK(st.ok()) << "register object failed: " << st.ToString();
}

TangoGraph::~TangoGraph() { (void)runtime_->UnregisterObject(oid_); }

uint64_t TangoGraph::NodeKey(const std::string& id) {
  return std::hash<std::string>{}(id);
}

Status TangoGraph::RunTx(const std::function<Status()>& stage) {
  for (int attempt = 0; attempt < kTxRetries; ++attempt) {
    TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));  // sync to tail
    TANGO_RETURN_IF_ERROR(runtime_->BeginTx());
    Status st = stage();
    if (!st.ok()) {
      runtime_->AbortTx();
      return st;
    }
    st = runtime_->EndTx();
    if (st.ok()) {
      return st;
    }
    if (st != StatusCode::kAborted) {
      return st;
    }
  }
  return Status(StatusCode::kTimeout, "graph op retries exhausted");
}

Status TangoGraph::AddNode(const std::string& id, const std::string& label) {
  return RunTx([&]() -> Status {
    TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, NodeKey(id)));
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (nodes_.contains(id)) {
        return Status(StatusCode::kAlreadyExists, "node exists");
      }
    }
    ByteWriter w(16 + id.size() + label.size());
    w.PutU8(kAddNode);
    w.PutString(id);
    w.PutString(label);
    return runtime_->UpdateHelper(oid_, w.bytes(), NodeKey(id));
  });
}

Status TangoGraph::RemoveNode(const std::string& id, bool force) {
  return RunTx([&]() -> Status {
    TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, NodeKey(id)));
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = nodes_.find(id);
      if (it == nodes_.end()) {
        return Status(StatusCode::kNotFound, "no such node");
      }
      if (!force && (!it->second.out.empty() || !it->second.in.empty())) {
        return Status(StatusCode::kFailedPrecondition, "node has edges");
      }
    }
    ByteWriter w(8 + id.size());
    w.PutU8(kRemoveNode);
    w.PutString(id);
    return runtime_->UpdateHelper(oid_, w.bytes(), NodeKey(id));
  });
}

Status TangoGraph::AddEdge(const std::string& from, const std::string& to) {
  return RunTx([&]() -> Status {
    TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, NodeKey(from)));
    TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, NodeKey(to)));
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!nodes_.contains(from) || !nodes_.contains(to)) {
        return Status(StatusCode::kNotFound, "missing endpoint");
      }
      if (nodes_[from].out.contains(to)) {
        return Status(StatusCode::kAlreadyExists, "edge exists");
      }
    }
    ByteWriter w(16 + from.size() + to.size());
    w.PutU8(kAddEdge);
    w.PutString(from);
    w.PutString(to);
    TANGO_RETURN_IF_ERROR(
        runtime_->UpdateHelper(oid_, w.bytes(), NodeKey(from)));
    // The edge also mutates the target's in-set: touch its version key so
    // concurrent operations on `to` conflict correctly.
    ByteWriter touch(8 + to.size());
    touch.PutU8(kAddEdge);  // replayed idempotently; see Apply
    touch.PutString("");    // empty from: marker only
    touch.PutString(to);
    return runtime_->UpdateHelper(oid_, touch.bytes(), NodeKey(to));
  });
}

Status TangoGraph::RemoveEdge(const std::string& from, const std::string& to) {
  return RunTx([&]() -> Status {
    TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, NodeKey(from)));
    TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, NodeKey(to)));
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = nodes_.find(from);
      if (it == nodes_.end() || !it->second.out.contains(to)) {
        return Status(StatusCode::kNotFound, "no such edge");
      }
    }
    ByteWriter w(16 + from.size() + to.size());
    w.PutU8(kRemoveEdge);
    w.PutString(from);
    w.PutString(to);
    return runtime_->UpdateHelper(oid_, w.bytes(), NodeKey(from));
  });
}

Result<bool> TangoGraph::HasNode(const std::string& id) {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, NodeKey(id)));
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_.contains(id);
}

Result<std::string> TangoGraph::Label(const std::string& id) {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, NodeKey(id)));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status(StatusCode::kNotFound, "no such node");
  }
  return it->second.label;
}

Result<std::vector<std::string>> TangoGraph::Successors(
    const std::string& id) {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, NodeKey(id)));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status(StatusCode::kNotFound, "no such node");
  }
  return std::vector<std::string>(it->second.out.begin(),
                                  it->second.out.end());
}

Result<std::vector<std::string>> TangoGraph::Predecessors(
    const std::string& id) {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, NodeKey(id)));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status(StatusCode::kNotFound, "no such node");
  }
  return std::vector<std::string>(it->second.in.begin(), it->second.in.end());
}

Result<size_t> TangoGraph::NodeCount() {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_.size();
}

Result<size_t> TangoGraph::EdgeCount() {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
  std::lock_guard<std::mutex> lock(mu_);
  return edge_count_;
}

Result<std::vector<std::string>> TangoGraph::Reach(const std::string& id,
                                                   bool forward) {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));  // whole-graph read
  std::lock_guard<std::mutex> lock(mu_);
  if (!nodes_.contains(id)) {
    return Status(StatusCode::kNotFound, "no such node");
  }
  std::set<std::string> seen;
  std::deque<std::string> frontier{id};
  while (!frontier.empty()) {
    std::string current = std::move(frontier.front());
    frontier.pop_front();
    auto it = nodes_.find(current);
    if (it == nodes_.end()) {
      continue;
    }
    const std::set<std::string>& next =
        forward ? it->second.out : it->second.in;
    for (const std::string& neighbor : next) {
      if (seen.insert(neighbor).second) {
        frontier.push_back(neighbor);
      }
    }
  }
  seen.erase(id);  // a node is not its own ancestor unless on a cycle
  return std::vector<std::string>(seen.begin(), seen.end());
}

Result<std::vector<std::string>> TangoGraph::Ancestors(const std::string& id) {
  return Reach(id, /*forward=*/false);
}

Result<std::vector<std::string>> TangoGraph::Descendants(
    const std::string& id) {
  return Reach(id, /*forward=*/true);
}

void TangoGraph::Apply(std::span<const uint8_t> update,
                       corfu::LogOffset /*offset*/) {
  ByteReader r(update);
  Op op = static_cast<Op>(r.GetU8());
  std::lock_guard<std::mutex> lock(mu_);
  switch (op) {
    case kAddNode: {
      std::string id = r.GetString();
      std::string label = r.GetString();
      if (r.ok() && !nodes_.contains(id)) {
        Node node;
        node.label = std::move(label);
        nodes_.emplace(std::move(id), std::move(node));
      }
      return;
    }
    case kRemoveNode: {
      std::string id = r.GetString();
      if (!r.ok()) {
        return;
      }
      auto it = nodes_.find(id);
      if (it == nodes_.end()) {
        return;
      }
      for (const std::string& to : it->second.out) {
        auto target = nodes_.find(to);
        if (target != nodes_.end()) {
          target->second.in.erase(id);
          --edge_count_;
        }
      }
      for (const std::string& from : it->second.in) {
        auto source = nodes_.find(from);
        if (source != nodes_.end()) {
          source->second.out.erase(id);
          --edge_count_;
        }
      }
      nodes_.erase(it);
      return;
    }
    case kAddEdge: {
      std::string from = r.GetString();
      std::string to = r.GetString();
      if (!r.ok() || from.empty()) {
        return;  // empty `from` is the version-touch marker
      }
      auto source = nodes_.find(from);
      auto target = nodes_.find(to);
      if (source == nodes_.end() || target == nodes_.end()) {
        return;
      }
      if (source->second.out.insert(to).second) {
        target->second.in.insert(from);
        ++edge_count_;
      }
      return;
    }
    case kRemoveEdge: {
      std::string from = r.GetString();
      std::string to = r.GetString();
      if (!r.ok()) {
        return;
      }
      auto source = nodes_.find(from);
      auto target = nodes_.find(to);
      if (source != nodes_.end() && source->second.out.erase(to) > 0) {
        if (target != nodes_.end()) {
          target->second.in.erase(from);
        }
        --edge_count_;
      }
      return;
    }
  }
}

void TangoGraph::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  nodes_.clear();
  edge_count_ = 0;
}

std::vector<uint8_t> TangoGraph::Checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(nodes_.size()));
  for (const auto& [id, node] : nodes_) {
    w.PutString(id);
    w.PutString(node.label);
    w.PutU32(static_cast<uint32_t>(node.out.size()));
    for (const std::string& to : node.out) {
      w.PutString(to);
    }
  }
  return w.Take();
}

void TangoGraph::Restore(std::span<const uint8_t> state) {
  ByteReader r(state);
  std::lock_guard<std::mutex> lock(mu_);
  nodes_.clear();
  edge_count_ = 0;
  uint32_t count = r.GetU32();
  std::vector<std::pair<std::string, std::string>> edges;
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    std::string id = r.GetString();
    Node node;
    node.label = r.GetString();
    uint32_t out = r.GetU32();
    for (uint32_t j = 0; j < out && r.ok(); ++j) {
      edges.emplace_back(id, r.GetString());
    }
    nodes_.emplace(std::move(id), std::move(node));
  }
  for (auto& [from, to] : edges) {
    auto source = nodes_.find(from);
    auto target = nodes_.find(to);
    if (source != nodes_.end() && target != nodes_.end() &&
        source->second.out.insert(to).second) {
      target->second.in.insert(from);
      ++edge_count_;
    }
  }
}

}  // namespace tango
