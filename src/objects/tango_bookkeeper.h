// TangoBk: the BookKeeper single-writer ledger abstraction as a Tango object
// (§6.3; the paper's 300-line TangoBK).
//
// A ledger is an append-only sequence of entries owned by a single writer.
// Ledger writes translate directly into stream appends with a little
// metadata enforcing the single-writer property: each append carries the
// writer's token, and appends from a stale or fenced writer are dropped
// deterministically by every view.  A reader opens a ledger with fencing,
// which atomically revokes the writer — the BookKeeper recovery idiom.

#ifndef SRC_OBJECTS_TANGO_BOOKKEEPER_H_
#define SRC_OBJECTS_TANGO_BOOKKEEPER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/runtime/object.h"
#include "src/runtime/runtime.h"

namespace tango {

class TangoBk : public TangoObject {
 public:
  using LedgerId = uint64_t;

  struct LedgerHandle {
    LedgerId id = 0;
    uint64_t writer_token = 0;
  };

  TangoBk(TangoRuntime* runtime, ObjectId oid,
          ObjectConfig config = ObjectConfig{});
  ~TangoBk() override;

  TangoBk(const TangoBk&) = delete;
  TangoBk& operator=(const TangoBk&) = delete;

  // Creates a new ledger and returns the writer's handle.
  Result<LedgerHandle> CreateLedger();

  // Appends an entry; returns its id within the ledger.  Fails with
  // kFailedPrecondition if the ledger was fenced or closed under the writer.
  Result<uint64_t> AddEntry(const LedgerHandle& handle,
                            const std::string& data);

  // Seals the ledger; no more entries will be accepted.
  Status CloseLedger(const LedgerHandle& handle);

  // Opens a ledger for reading and *fences* it: after this commits, no
  // in-flight or future write from the original writer can be accepted.
  // Returns the last entry id (kInvalid if empty, i.e. returns count).
  Result<uint64_t> OpenAndFence(LedgerId id);

  Result<std::string> ReadEntry(LedgerId id, uint64_t entry_id);
  Result<uint64_t> EntryCount(LedgerId id);
  Result<bool> IsClosed(LedgerId id);

  ObjectId oid() const { return oid_; }

  // --- TangoObject ---
  void Apply(std::span<const uint8_t> update, corfu::LogOffset offset) override;
  void Clear() override;
  bool SupportsCheckpoint() const override { return true; }
  std::vector<uint8_t> Checkpoint() const override;
  void Restore(std::span<const uint8_t> state) override;

 private:
  enum Op : uint8_t {
    kCreateLedger = 1,
    kAddEntry = 2,
    kCloseLedger = 3,
    kFence = 4,
  };

  enum class LedgerState : uint8_t { kOpen = 0, kFenced = 1, kClosed = 2 };

  struct Ledger {
    uint64_t writer_token = 0;
    LedgerState state = LedgerState::kOpen;
    std::vector<std::string> entries;
  };

  TangoRuntime* runtime_;
  ObjectId oid_;

  mutable std::mutex mu_;
  std::unordered_map<LedgerId, Ledger> ledgers_;
  LedgerId next_ledger_ = 1;

  // Writer-side: entries successfully staged per handle, to assign entry ids
  // without a sync (valid because the ledger is single-writer).
  std::mutex writer_mu_;
  std::unordered_map<uint64_t, uint64_t> writer_counts_;  // token -> count
};

}  // namespace tango

#endif  // SRC_OBJECTS_TANGO_BOOKKEEPER_H_
