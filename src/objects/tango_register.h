// TangoRegister: the paper's canonical example (Figure 3) — a linearizable,
// highly available, persistent 64-bit register in a few dozen lines.

#ifndef SRC_OBJECTS_TANGO_REGISTER_H_
#define SRC_OBJECTS_TANGO_REGISTER_H_

#include <atomic>
#include <cstdint>

#include "src/runtime/object.h"
#include "src/runtime/runtime.h"

namespace tango {

class TangoRegister : public TangoObject {
 public:
  // Registers the object on `runtime` under `oid`; unregisters on destruction.
  TangoRegister(TangoRuntime* runtime, ObjectId oid,
                ObjectConfig config = ObjectConfig{});
  ~TangoRegister() override;

  TangoRegister(const TangoRegister&) = delete;
  TangoRegister& operator=(const TangoRegister&) = delete;

  // Mutator: funnels the new value through the shared log.
  Status Write(int64_t value);
  // Accessor: syncs the view with the log, then returns the value.
  Result<int64_t> Read();

  ObjectId oid() const { return oid_; }

  // --- TangoObject ---
  void Apply(std::span<const uint8_t> update, corfu::LogOffset offset) override;
  void Clear() override;
  bool SupportsCheckpoint() const override { return true; }
  std::vector<uint8_t> Checkpoint() const override;
  void Restore(std::span<const uint8_t> state) override;

 private:
  TangoRuntime* runtime_;
  ObjectId oid_;
  std::atomic<int64_t> state_{0};
};

}  // namespace tango

#endif  // SRC_OBJECTS_TANGO_REGISTER_H_
