#include "src/objects/tango_list.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/serialize.h"

namespace tango {

TangoList::TangoList(TangoRuntime* runtime, ObjectId oid, ObjectConfig config)
    : runtime_(runtime), oid_(oid) {
  Status st = runtime_->RegisterObject(oid_, this, config);
  TANGO_CHECK(st.ok()) << "register object failed: " << st.ToString();
}

TangoList::~TangoList() { (void)runtime_->UnregisterObject(oid_); }

Status TangoList::Add(const std::string& item) {
  ByteWriter w(8 + item.size());
  w.PutU8(kAdd);
  w.PutString(item);
  return runtime_->UpdateHelper(oid_, w.bytes());
}

Status TangoList::RemoveFirst(const std::string& item) {
  ByteWriter w(8 + item.size());
  w.PutU8(kRemoveFirst);
  w.PutString(item);
  return runtime_->UpdateHelper(oid_, w.bytes());
}

Result<std::string> TangoList::Get(size_t index) {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= items_.size()) {
    return Status(StatusCode::kOutOfRange, "list index out of range");
  }
  return items_[index];
}

Result<size_t> TangoList::Size() {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

Result<std::vector<std::string>> TangoList::All() {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
  std::lock_guard<std::mutex> lock(mu_);
  return items_;
}

Result<bool> TangoList::Contains(const std::string& item) {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
  std::lock_guard<std::mutex> lock(mu_);
  return std::find(items_.begin(), items_.end(), item) != items_.end();
}

void TangoList::Apply(std::span<const uint8_t> update,
                      corfu::LogOffset /*offset*/) {
  ByteReader r(update);
  Op op = static_cast<Op>(r.GetU8());
  std::string item = r.GetString();
  if (!r.ok()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  switch (op) {
    case kAdd:
      items_.push_back(std::move(item));
      return;
    case kRemoveFirst: {
      auto it = std::find(items_.begin(), items_.end(), item);
      if (it != items_.end()) {
        items_.erase(it);
      }
      return;
    }
  }
}

void TangoList::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  items_.clear();
}

std::vector<uint8_t> TangoList::Checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(items_.size()));
  for (const std::string& item : items_) {
    w.PutString(item);
  }
  return w.Take();
}

void TangoList::Restore(std::span<const uint8_t> state) {
  ByteReader r(state);
  std::lock_guard<std::mutex> lock(mu_);
  items_.clear();
  uint32_t count = r.GetU32();
  items_.reserve(count);
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    items_.push_back(r.GetString());
  }
}

}  // namespace tango
