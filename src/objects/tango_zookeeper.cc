#include "src/objects/tango_zookeeper.h"

#include <cinttypes>
#include <cstdio>

#include "src/util/logging.h"
#include "src/util/serialize.h"

namespace tango {

namespace {
constexpr int kTxRetries = 64;
}  // namespace

TangoZk::TangoZk(TangoRuntime* runtime, ObjectId oid, ObjectConfig config)
    : runtime_(runtime), oid_(oid) {
  Status st = runtime_->RegisterObject(oid_, this, config);
  TANGO_CHECK(st.ok()) << "register object failed: " << st.ToString();
  Clear();  // installs the root znode
}

TangoZk::~TangoZk() { (void)runtime_->UnregisterObject(oid_); }

std::string TangoZk::ParentOf(const std::string& path) {
  size_t slash = path.rfind('/');
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

uint64_t TangoZk::PathKey(const std::string& path) {
  return std::hash<std::string>{}(path);
}

bool TangoZk::ValidPath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return false;
  }
  if (path.size() == 1) {
    return true;  // root
  }
  if (path.back() == '/') {
    return false;
  }
  return path.find("//") == std::string::npos;
}

// --- staging (runs inside an ambient transaction) ---------------------------

Status TangoZk::StageCreate(const std::string& path, const std::string& data) {
  if (!ValidPath(path) || path == "/") {
    return Status(StatusCode::kInvalidArgument, "bad znode path");
  }
  std::string parent = ParentOf(path);
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, PathKey(path)));
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, PathKey(parent)));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (nodes_.contains(path)) {
      return Status(StatusCode::kAlreadyExists, "znode exists");
    }
    if (!nodes_.contains(parent)) {
      return Status(StatusCode::kNotFound, "parent does not exist");
    }
  }
  ByteWriter w(16 + path.size() + data.size());
  w.PutU8(kCreate);
  w.PutString(path);
  w.PutString(data);
  TANGO_RETURN_IF_ERROR(runtime_->UpdateHelper(oid_, w.bytes(), PathKey(path)));
  ByteWriter t(8 + parent.size());
  t.PutU8(kTouchParent);
  t.PutString(parent);
  return runtime_->UpdateHelper(oid_, t.bytes(), PathKey(parent));
}

Status TangoZk::StageDelete(const std::string& path,
                            int32_t expected_version) {
  if (!ValidPath(path) || path == "/") {
    return Status(StatusCode::kInvalidArgument, "bad znode path");
  }
  std::string parent = ParentOf(path);
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, PathKey(path)));
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, PathKey(parent)));
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = nodes_.find(path);
    if (it == nodes_.end()) {
      return Status(StatusCode::kNotFound, "no such znode");
    }
    if (expected_version != -1 && it->second.stat.version != expected_version) {
      return Status(StatusCode::kFailedPrecondition, "version mismatch");
    }
    if (it->second.num_children > 0) {
      return Status(StatusCode::kFailedPrecondition, "znode has children");
    }
  }
  ByteWriter w(8 + path.size());
  w.PutU8(kDelete);
  w.PutString(path);
  TANGO_RETURN_IF_ERROR(runtime_->UpdateHelper(oid_, w.bytes(), PathKey(path)));
  ByteWriter t(8 + parent.size());
  t.PutU8(kTouchParent);
  t.PutString(parent);
  return runtime_->UpdateHelper(oid_, t.bytes(), PathKey(parent));
}

Status TangoZk::StageSetData(const std::string& path, const std::string& data,
                             int32_t expected_version) {
  if (!ValidPath(path)) {
    return Status(StatusCode::kInvalidArgument, "bad znode path");
  }
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, PathKey(path)));
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = nodes_.find(path);
    if (it == nodes_.end()) {
      return Status(StatusCode::kNotFound, "no such znode");
    }
    if (expected_version != -1 && it->second.stat.version != expected_version) {
      return Status(StatusCode::kFailedPrecondition, "version mismatch");
    }
  }
  ByteWriter w(16 + path.size() + data.size());
  w.PutU8(kSetData);
  w.PutString(path);
  w.PutString(data);
  return runtime_->UpdateHelper(oid_, w.bytes(), PathKey(path));
}

Status TangoZk::RunTx(const std::function<Status()>& stage) {
  for (int attempt = 0; attempt < kTxRetries; ++attempt) {
    TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));  // sync to tail
    TANGO_RETURN_IF_ERROR(runtime_->BeginTx());
    Status st = stage();
    if (!st.ok()) {
      runtime_->AbortTx();
      return st;  // semantic failure at a consistent snapshot
    }
    st = runtime_->EndTx();
    if (st.ok()) {
      return st;
    }
    if (st != StatusCode::kAborted) {
      return st;
    }
  }
  return Status(StatusCode::kTimeout, "znode op retries exhausted");
}

// --- public mutators ---------------------------------------------------------

Status TangoZk::Create(const std::string& path, const std::string& data) {
  return RunTx([&] { return StageCreate(path, data); });
}

Result<std::string> TangoZk::CreateSequential(const std::string& path_prefix,
                                              const std::string& data) {
  if (!ValidPath(path_prefix + "0") || path_prefix.back() == '/') {
    return Status(StatusCode::kInvalidArgument, "bad sequential prefix");
  }
  std::string final_path;
  Status st = RunTx([&]() -> Status {
    std::string parent = ParentOf(path_prefix);
    TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, PathKey(parent)));
    uint64_t seq;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = nodes_.find(parent);
      if (it == nodes_.end()) {
        return Status(StatusCode::kNotFound, "parent does not exist");
      }
      seq = it->second.next_seq;
    }
    char suffix[16];
    std::snprintf(suffix, sizeof(suffix), "%010" PRIu64, seq);
    final_path = path_prefix + suffix;
    return StageCreate(final_path, data);
  });
  if (!st.ok()) {
    return st;
  }
  return final_path;
}

Status TangoZk::Delete(const std::string& path, int32_t expected_version) {
  return RunTx([&] { return StageDelete(path, expected_version); });
}

Status TangoZk::SetData(const std::string& path, const std::string& data,
                        int32_t expected_version) {
  return RunTx([&] { return StageSetData(path, data, expected_version); });
}

Status TangoZk::Multi(const std::vector<MultiOp>& ops) {
  return RunTx([&]() -> Status {
    for (const MultiOp& op : ops) {
      switch (op.kind) {
        case MultiOp::kCreateOp:
          TANGO_RETURN_IF_ERROR(StageCreate(op.path, op.data));
          break;
        case MultiOp::kDeleteOp:
          TANGO_RETURN_IF_ERROR(StageDelete(op.path, op.expected_version));
          break;
        case MultiOp::kSetDataOp:
          TANGO_RETURN_IF_ERROR(
              StageSetData(op.path, op.data, op.expected_version));
          break;
      }
    }
    return Status::Ok();
  });
}

Status TangoZk::MoveTo(const std::string& src_path, TangoZk& dst,
                       const std::string& dst_path) {
  // Both instances must run on the same runtime (they do in practice; the
  // transaction needs local views of both read sets, §4.1 D).
  if (dst.runtime_ != runtime_) {
    return Status(StatusCode::kInvalidArgument,
                  "cross-runtime move is not supported");
  }
  for (int attempt = 0; attempt < kTxRetries; ++attempt) {
    TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
    TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(dst.oid_));
    TANGO_RETURN_IF_ERROR(runtime_->BeginTx());
    std::string data;
    Status st = [&]() -> Status {
      TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, PathKey(src_path)));
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = nodes_.find(src_path);
        if (it == nodes_.end()) {
          return Status(StatusCode::kNotFound, "no such znode");
        }
        if (it->second.num_children > 0) {
          return Status(StatusCode::kFailedPrecondition, "znode has children");
        }
        data = it->second.data;
      }
      TANGO_RETURN_IF_ERROR(StageDelete(src_path, -1));
      return dst.StageCreate(dst_path, data);
    }();
    if (!st.ok()) {
      runtime_->AbortTx();
      return st;
    }
    st = runtime_->EndTx();
    if (st.ok()) {
      return st;
    }
    if (st != StatusCode::kAborted) {
      return st;
    }
  }
  return Status(StatusCode::kTimeout, "move retries exhausted");
}

// --- accessors ----------------------------------------------------------------

Result<std::pair<std::string, TangoZk::Stat>> TangoZk::GetData(
    const std::string& path) {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, PathKey(path)));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(path);
  if (it == nodes_.end()) {
    return Status(StatusCode::kNotFound, "no such znode");
  }
  return std::make_pair(it->second.data, it->second.stat);
}

Result<bool> TangoZk::Exists(const std::string& path) {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, PathKey(path)));
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_.contains(path);
}

Result<std::vector<std::string>> TangoZk::GetChildren(
    const std::string& path) {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, PathKey(path)));
  std::lock_guard<std::mutex> lock(mu_);
  if (!nodes_.contains(path)) {
    return Status(StatusCode::kNotFound, "no such znode");
  }
  std::vector<std::string> children;
  std::string prefix = path == "/" ? "/" : path + "/";
  for (auto it = nodes_.lower_bound(prefix); it != nodes_.end(); ++it) {
    const std::string& candidate = it->first;
    if (candidate.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    if (candidate.size() > prefix.size() &&
        candidate.find('/', prefix.size()) == std::string::npos) {
      children.push_back(candidate.substr(prefix.size()));
    }
  }
  return children;
}

// --- replication upcalls --------------------------------------------------------

std::vector<std::pair<std::string, TangoZk::WatchCallback>>
TangoZk::TakeWatches(const std::string& path) {
  std::vector<std::pair<std::string, WatchCallback>> fired;
  auto [begin, end] = watches_.equal_range(path);
  for (auto it = begin; it != end; ++it) {
    fired.emplace_back(path, std::move(it->second));
  }
  watches_.erase(begin, end);
  return fired;
}

void TangoZk::Watch(const std::string& path, WatchCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  watches_.emplace(path, std::move(callback));
}

void TangoZk::Apply(std::span<const uint8_t> update, corfu::LogOffset offset) {
  ByteReader r(update);
  Op op = static_cast<Op>(r.GetU8());
  // Watches fired by this change; invoked after mu_ is released (one-shot,
  // ZooKeeper-style).
  std::vector<std::pair<std::string, WatchCallback>> fired;
  {
  std::lock_guard<std::mutex> lock(mu_);
  switch (op) {
    case kCreate: {
      std::string path = r.GetString();
      std::string data = r.GetString();
      if (!r.ok() || nodes_.contains(path)) {
        return;
      }
      auto parent = nodes_.find(ParentOf(path));
      if (parent == nodes_.end()) {
        return;  // committed transactions validated this; replay guard only
      }
      Znode node;
      node.data = std::move(data);
      node.stat.mzxid = offset;
      std::string created = path;
      nodes_.emplace(std::move(path), std::move(node));
      parent->second.num_children++;
      parent->second.next_seq++;
      parent->second.stat.cversion++;
      fired = TakeWatches(created);
      for (auto& watch : TakeWatches(ParentOf(created))) {
        fired.push_back(std::move(watch));
      }
      break;
    }
    case kDelete: {
      std::string path = r.GetString();
      if (!r.ok()) {
        return;
      }
      auto it = nodes_.find(path);
      if (it == nodes_.end() || it->second.num_children > 0) {
        return;
      }
      nodes_.erase(it);
      auto parent = nodes_.find(ParentOf(path));
      if (parent != nodes_.end()) {
        parent->second.num_children--;
        parent->second.stat.cversion++;
      }
      fired = TakeWatches(path);
      for (auto& watch : TakeWatches(ParentOf(path))) {
        fired.push_back(std::move(watch));
      }
      break;
    }
    case kSetData: {
      std::string path = r.GetString();
      std::string data = r.GetString();
      if (!r.ok()) {
        return;
      }
      auto it = nodes_.find(path);
      if (it != nodes_.end()) {
        it->second.data = std::move(data);
        it->second.stat.version++;
        it->second.stat.mzxid = offset;
        fired = TakeWatches(path);
      }
      break;
    }
    case kTouchParent:
      // Structural-change marker: version bookkeeping happens in the runtime
      // (this write's key is the parent's), the child bookkeeping happens in
      // the create/delete apply.  Nothing to do here.
      break;
  }
  }  // mu_ released
  for (auto& [path, callback] : fired) {
    callback(path);
  }
}

void TangoZk::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  nodes_.clear();
  nodes_.emplace("/", Znode{});
}

std::vector<uint8_t> TangoZk::Checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(nodes_.size()));
  for (const auto& [path, node] : nodes_) {
    w.PutString(path);
    w.PutString(node.data);
    w.PutU32(static_cast<uint32_t>(node.stat.version));
    w.PutU32(static_cast<uint32_t>(node.stat.cversion));
    w.PutU64(node.stat.mzxid);
    w.PutU64(node.next_seq);
    w.PutU32(static_cast<uint32_t>(node.num_children));
  }
  return w.Take();
}

void TangoZk::Restore(std::span<const uint8_t> state) {
  ByteReader r(state);
  std::lock_guard<std::mutex> lock(mu_);
  nodes_.clear();
  uint32_t count = r.GetU32();
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    std::string path = r.GetString();
    Znode node;
    node.data = r.GetString();
    node.stat.version = static_cast<int32_t>(r.GetU32());
    node.stat.cversion = static_cast<int32_t>(r.GetU32());
    node.stat.mzxid = r.GetU64();
    node.next_seq = r.GetU64();
    node.num_children = static_cast<int32_t>(r.GetU32());
    nodes_.emplace(std::move(path), std::move(node));
  }
  if (!nodes_.contains("/")) {
    nodes_.emplace("/", Znode{});
  }
}

}  // namespace tango
