// TangoList: a replicated append-ordered list (the paper's Figure 4 builds a
// single-writer list from a TangoMap and a TangoList in a transaction).

#ifndef SRC_OBJECTS_TANGO_LIST_H_
#define SRC_OBJECTS_TANGO_LIST_H_

#include <mutex>
#include <string>
#include <vector>

#include "src/runtime/object.h"
#include "src/runtime/runtime.h"

namespace tango {

class TangoList : public TangoObject {
 public:
  TangoList(TangoRuntime* runtime, ObjectId oid,
            ObjectConfig config = ObjectConfig{});
  ~TangoList() override;

  TangoList(const TangoList&) = delete;
  TangoList& operator=(const TangoList&) = delete;

  Status Add(const std::string& item);
  // Removes the first occurrence of `item` (no-op if absent).
  Status RemoveFirst(const std::string& item);
  Result<std::string> Get(size_t index);
  Result<size_t> Size();
  Result<std::vector<std::string>> All();
  Result<bool> Contains(const std::string& item);

  ObjectId oid() const { return oid_; }

  // --- TangoObject ---
  void Apply(std::span<const uint8_t> update, corfu::LogOffset offset) override;
  void Clear() override;
  bool SupportsCheckpoint() const override { return true; }
  std::vector<uint8_t> Checkpoint() const override;
  void Restore(std::span<const uint8_t> state) override;

 private:
  enum Op : uint8_t { kAdd = 1, kRemoveFirst = 2 };

  TangoRuntime* runtime_;
  ObjectId oid_;

  mutable std::mutex mu_;
  std::vector<std::string> items_;
};

}  // namespace tango

#endif  // SRC_OBJECTS_TANGO_LIST_H_
