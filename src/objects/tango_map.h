// TangoMap: a replicated hash map with optional fine-grained per-key
// versioning (§3.2, Versioning) and an optional "index mode" in which the
// view stores log offsets instead of values, acting as an index over
// log-structured storage (§3.1, Durability).

#ifndef SRC_OBJECTS_TANGO_MAP_H_
#define SRC_OBJECTS_TANGO_MAP_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/runtime/object.h"
#include "src/runtime/runtime.h"

namespace tango {

class TangoMap : public TangoObject {
 public:
  struct MapConfig {
    ObjectConfig object;
    // Record per-key versions so transactions touching disjoint keys do not
    // conflict.  Large maps want this on (Figure 9's keys sweep).
    bool fine_grained_versions = true;
    // Store log offsets in the view and fetch values from the log on Get.
    bool index_mode = false;
  };

  TangoMap(TangoRuntime* runtime, ObjectId oid)
      : TangoMap(runtime, oid, MapConfig{}) {}
  TangoMap(TangoRuntime* runtime, ObjectId oid, MapConfig config);
  ~TangoMap() override;

  TangoMap(const TangoMap&) = delete;
  TangoMap& operator=(const TangoMap&) = delete;

  Status Put(const std::string& key, const std::string& value);
  Status Remove(const std::string& key);
  Result<std::string> Get(const std::string& key);
  Result<bool> Contains(const std::string& key);
  Result<size_t> Size();
  Result<std::vector<std::string>> Keys();

  ObjectId oid() const { return oid_; }

  // --- TangoObject ---
  void Apply(std::span<const uint8_t> update, corfu::LogOffset offset) override;
  void Clear() override;
  bool SupportsCheckpoint() const override { return true; }
  std::vector<uint8_t> Checkpoint() const override;
  void Restore(std::span<const uint8_t> state) override;

 private:
  enum Op : uint8_t { kPut = 1, kRemove = 2 };

  struct Slot {
    std::string value;               // inline value (normal mode)
    corfu::LogOffset offset = 0;     // log position (index mode)
  };

  std::optional<uint64_t> VersionKey(const std::string& key) const;
  // Index mode: pulls the put value for (oid, key) back out of the log
  // entry at `offset`.
  Result<std::string> FetchFromLog(corfu::LogOffset offset,
                                   const std::string& key);

  TangoRuntime* runtime_;
  ObjectId oid_;
  MapConfig config_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Slot> map_;
};

}  // namespace tango

#endif  // SRC_OBJECTS_TANGO_MAP_H_
