#include "src/objects/tango_set.h"

#include "src/util/logging.h"
#include "src/util/serialize.h"

namespace tango {

TangoSet::TangoSet(TangoRuntime* runtime, ObjectId oid, ObjectConfig config)
    : runtime_(runtime), oid_(oid) {
  Status st = runtime_->RegisterObject(oid_, this, config);
  TANGO_CHECK(st.ok()) << "register object failed: " << st.ToString();
}

TangoSet::~TangoSet() { (void)runtime_->UnregisterObject(oid_); }

Status TangoSet::Add(const std::string& element) {
  ByteWriter w(8 + element.size());
  w.PutU8(kAdd);
  w.PutString(element);
  return runtime_->UpdateHelper(oid_, w.bytes(),
                                std::hash<std::string>{}(element));
}

Status TangoSet::Remove(const std::string& element) {
  ByteWriter w(8 + element.size());
  w.PutU8(kRemove);
  w.PutString(element);
  return runtime_->UpdateHelper(oid_, w.bytes(),
                                std::hash<std::string>{}(element));
}

Result<bool> TangoSet::Contains(const std::string& element) {
  TANGO_RETURN_IF_ERROR(
      runtime_->QueryHelper(oid_, std::hash<std::string>{}(element)));
  std::lock_guard<std::mutex> lock(mu_);
  return elements_.contains(element);
}

Result<size_t> TangoSet::Size() {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
  std::lock_guard<std::mutex> lock(mu_);
  return elements_.size();
}

Result<std::vector<std::string>> TangoSet::Elements() {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::string>(elements_.begin(), elements_.end());
}

void TangoSet::Apply(std::span<const uint8_t> update,
                     corfu::LogOffset /*offset*/) {
  ByteReader r(update);
  Op op = static_cast<Op>(r.GetU8());
  std::string element = r.GetString();
  if (!r.ok()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  switch (op) {
    case kAdd:
      elements_.insert(std::move(element));
      return;
    case kRemove:
      elements_.erase(element);
      return;
  }
}

void TangoSet::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  elements_.clear();
}

std::vector<uint8_t> TangoSet::Checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(elements_.size()));
  for (const std::string& element : elements_) {
    w.PutString(element);
  }
  return w.Take();
}

void TangoSet::Restore(std::span<const uint8_t> state) {
  ByteReader r(state);
  std::lock_guard<std::mutex> lock(mu_);
  elements_.clear();
  uint32_t count = r.GetU32();
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    elements_.insert(r.GetString());
  }
}

}  // namespace tango
