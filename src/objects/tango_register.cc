#include "src/objects/tango_register.h"

#include "src/util/logging.h"
#include "src/util/serialize.h"

namespace tango {

TangoRegister::TangoRegister(TangoRuntime* runtime, ObjectId oid,
                             ObjectConfig config)
    : runtime_(runtime), oid_(oid) {
  Status st = runtime_->RegisterObject(oid_, this, config);
  TANGO_CHECK(st.ok()) << "register object failed: " << st.ToString();
}

TangoRegister::~TangoRegister() { (void)runtime_->UnregisterObject(oid_); }

Status TangoRegister::Write(int64_t value) {
  ByteWriter w(8);
  w.PutI64(value);
  return runtime_->UpdateHelper(oid_, w.bytes());
}

Result<int64_t> TangoRegister::Read() {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
  return state_.load(std::memory_order_acquire);
}

void TangoRegister::Apply(std::span<const uint8_t> update,
                          corfu::LogOffset /*offset*/) {
  ByteReader r(update);
  int64_t value = r.GetI64();
  if (r.ok()) {
    state_.store(value, std::memory_order_release);
  }
}

void TangoRegister::Clear() { state_.store(0, std::memory_order_release); }

std::vector<uint8_t> TangoRegister::Checkpoint() const {
  ByteWriter w(8);
  w.PutI64(state_.load(std::memory_order_acquire));
  return w.Take();
}

void TangoRegister::Restore(std::span<const uint8_t> state) {
  ByteReader r(state);
  int64_t value = r.GetI64();
  if (r.ok()) {
    state_.store(value, std::memory_order_release);
  }
}

}  // namespace tango
