// TangoZk: the ZooKeeper interface implemented as a Tango object (§6.3).
//
// A hierarchical namespace of znodes, each with a data payload, a data
// version and a child-sequence counter (for sequential nodes).  Every
// mutator runs as a Tango transaction, which buys exactly the guarantees
// ZooKeeper implements with a custom protocol: linearizable conditional
// updates, atomic multi-ops — and one thing ZooKeeper cannot do at all:
// atomic moves *across* TangoZk instances (namespaces), because two
// instances share the same shared log (the paper's headline §6.3 result).
//
// Fine-grained versioning: each znode maps to a version key (hash of its
// path), and structural changes also touch the parent's key, so transactions
// on disjoint subtrees never conflict.
//
// Watches are supported with ZooKeeper's one-shot semantics: a watch set on
// a path fires at most once, on the first subsequent change to that znode
// (data change, creation, deletion, or child-set change), as observed in
// this view's playback order.  Callbacks run on whichever application thread
// drives playback and MUST NOT call back into Tango synchronously.
//
// Omissions relative to Apache ZooKeeper, matching the paper's own scope:
// ACLs and ephemeral nodes are not implemented (the paper's 1K-line TangoZK
// also excluded ACLs and ancillary interface-compat code).

#ifndef SRC_OBJECTS_TANGO_ZOOKEEPER_H_
#define SRC_OBJECTS_TANGO_ZOOKEEPER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/runtime/object.h"
#include "src/runtime/runtime.h"

namespace tango {

class TangoZk : public TangoObject {
 public:
  struct Stat {
    int32_t version = 0;       // data version (bumped by SetData)
    int32_t cversion = 0;      // child version (bumped by create/delete)
    uint64_t mzxid = 0;        // log offset of the last modification
  };

  TangoZk(TangoRuntime* runtime, ObjectId oid,
          ObjectConfig config = ObjectConfig{});
  ~TangoZk() override;

  TangoZk(const TangoZk&) = delete;
  TangoZk& operator=(const TangoZk&) = delete;

  // Creates a znode.  Fails with kAlreadyExists / kNotFound (missing parent).
  Status Create(const std::string& path, const std::string& data);

  // Creates a znode named `path_prefix` + zero-padded sequence number drawn
  // from the parent's child counter; returns the final path.
  Result<std::string> CreateSequential(const std::string& path_prefix,
                                       const std::string& data);

  // Conditional delete; `expected_version` of -1 skips the version check.
  // Fails with kFailedPrecondition on version mismatch or if children exist.
  Status Delete(const std::string& path, int32_t expected_version = -1);

  // Conditional write; bumps the data version.
  Status SetData(const std::string& path, const std::string& data,
                 int32_t expected_version = -1);

  Result<std::pair<std::string, Stat>> GetData(const std::string& path);
  Result<bool> Exists(const std::string& path);
  Result<std::vector<std::string>> GetChildren(const std::string& path);

  // Atomic multi-op (ZooKeeper's `multi`): all ops succeed or none do.
  struct MultiOp {
    enum Kind { kCreateOp, kDeleteOp, kSetDataOp } kind;
    std::string path;
    std::string data;
    int32_t expected_version = -1;
  };
  Status Multi(const std::vector<MultiOp>& ops);

  // Atomically moves a znode (and its data) from this instance to `dst` —
  // possible because both instances live on one shared log.  The znode must
  // be a leaf.
  Status MoveTo(const std::string& src_path, TangoZk& dst,
                const std::string& dst_path);

  // One-shot watch: `callback(path)` fires on the first change touching
  // `path` that this view applies after registration.  See the class comment
  // for threading constraints.
  using WatchCallback = std::function<void(const std::string& path)>;
  void Watch(const std::string& path, WatchCallback callback);

  ObjectId oid() const { return oid_; }

  // --- TangoObject ---
  void Apply(std::span<const uint8_t> update, corfu::LogOffset offset) override;
  void Clear() override;
  bool SupportsCheckpoint() const override { return true; }
  std::vector<uint8_t> Checkpoint() const override;
  void Restore(std::span<const uint8_t> state) override;

 private:
  enum Op : uint8_t {
    kCreate = 1,
    kDelete = 2,
    kSetData = 3,
    kTouchParent = 4,  // structural change marker on the parent's key
  };

  struct Znode {
    std::string data;
    Stat stat;
    uint64_t next_seq = 0;  // sequential-child counter
    int32_t num_children = 0;
  };

  static std::string ParentOf(const std::string& path);
  static uint64_t PathKey(const std::string& path);
  static bool ValidPath(const std::string& path);

  // Buffers the create/delete/set into the ambient transaction (adds read
  // deps and write ops).  Must run inside a BeginTx.
  Status StageCreate(const std::string& path, const std::string& data);
  Status StageDelete(const std::string& path, int32_t expected_version);
  Status StageSetData(const std::string& path, const std::string& data,
                      int32_t expected_version);

  // Runs `stage` inside a fresh transaction with sync + bounded retries.
  Status RunTx(const std::function<Status()>& stage);

  // Collects watches triggered by a path change (caller holds mu_); the
  // returned callbacks are invoked after mu_ is released.
  std::vector<std::pair<std::string, WatchCallback>> TakeWatches(
      const std::string& path);

  TangoRuntime* runtime_;
  ObjectId oid_;

  mutable std::mutex mu_;
  std::map<std::string, Znode> nodes_;
  std::multimap<std::string, WatchCallback> watches_;
};

}  // namespace tango

#endif  // SRC_OBJECTS_TANGO_ZOOKEEPER_H_
