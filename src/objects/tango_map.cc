#include "src/objects/tango_map.h"

#include "src/runtime/record.h"
#include "src/util/logging.h"
#include "src/util/serialize.h"

namespace tango {

TangoMap::TangoMap(TangoRuntime* runtime, ObjectId oid, MapConfig config)
    : runtime_(runtime), oid_(oid), config_(config) {
  Status st = runtime_->RegisterObject(oid_, this, config_.object);
  TANGO_CHECK(st.ok()) << "register object failed: " << st.ToString();
}

TangoMap::~TangoMap() { (void)runtime_->UnregisterObject(oid_); }

std::optional<uint64_t> TangoMap::VersionKey(const std::string& key) const {
  if (!config_.fine_grained_versions) {
    return std::nullopt;
  }
  return std::hash<std::string>{}(key);
}

Status TangoMap::Put(const std::string& key, const std::string& value) {
  ByteWriter w(16 + key.size() + value.size());
  w.PutU8(kPut);
  w.PutString(key);
  w.PutString(value);
  return runtime_->UpdateHelper(oid_, w.bytes(), VersionKey(key));
}

Status TangoMap::Remove(const std::string& key) {
  ByteWriter w(8 + key.size());
  w.PutU8(kRemove);
  w.PutString(key);
  return runtime_->UpdateHelper(oid_, w.bytes(), VersionKey(key));
}

Result<std::string> TangoMap::Get(const std::string& key) {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, VersionKey(key)));
  corfu::LogOffset offset = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      return Status(StatusCode::kNotFound, "no such key");
    }
    if (!config_.index_mode) {
      return it->second.value;
    }
    offset = it->second.offset;
  }
  // Index mode: one random read against the shared log.
  return FetchFromLog(offset, key);
}

Result<bool> TangoMap::Contains(const std::string& key) {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, VersionKey(key)));
  std::lock_guard<std::mutex> lock(mu_);
  return map_.contains(key);
}

Result<size_t> TangoMap::Size() {
  // Size depends on the whole map, not one key: record an object-level read.
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

Result<std::vector<std::string>> TangoMap::Keys() {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(map_.size());
  for (const auto& [key, slot] : map_) {
    keys.push_back(key);
  }
  return keys;
}

Result<std::string> TangoMap::FetchFromLog(corfu::LogOffset offset,
                                           const std::string& key) {
  Result<corfu::LogEntry> entry = runtime_->log()->Read(offset);
  if (!entry.ok()) {
    return entry.status();
  }
  Result<std::vector<Record>> records = DecodeRecords(entry->payload);
  if (!records.ok()) {
    return records.status();
  }
  // The entry may batch several records and a commit may carry writes to
  // several objects; find the last put for our (oid, key).
  Result<std::string> value(Status(StatusCode::kNotFound, "value not in entry"));
  auto consider = [&](const WriteOp& w) {
    if (w.oid != oid_) {
      return;
    }
    ByteReader r(w.data);
    if (static_cast<Op>(r.GetU8()) != kPut) {
      return;
    }
    std::string k = r.GetString();
    std::string v = r.GetString();
    if (r.ok() && k == key) {
      value = std::move(v);
    }
  };
  for (const Record& record : *records) {
    if (record.type == RecordType::kUpdate) {
      consider(record.update.write);
    } else if (record.type == RecordType::kCommit) {
      for (const WriteOp& w : record.commit.writes) {
        consider(w);
      }
    }
  }
  return value;
}

void TangoMap::Apply(std::span<const uint8_t> update,
                     corfu::LogOffset offset) {
  ByteReader r(update);
  Op op = static_cast<Op>(r.GetU8());
  std::lock_guard<std::mutex> lock(mu_);
  switch (op) {
    case kPut: {
      std::string key = r.GetString();
      std::string value = r.GetString();
      if (!r.ok()) {
        return;
      }
      Slot& slot = map_[std::move(key)];
      if (config_.index_mode) {
        slot.offset = offset;
        slot.value.clear();
      } else {
        slot.value = std::move(value);
      }
      return;
    }
    case kRemove: {
      std::string key = r.GetString();
      if (r.ok()) {
        map_.erase(key);
      }
      return;
    }
  }
}

void TangoMap::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
}

std::vector<uint8_t> TangoMap::Checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(map_.size()));
  for (const auto& [key, slot] : map_) {
    w.PutString(key);
    w.PutString(slot.value);
    w.PutU64(slot.offset);
  }
  return w.Take();
}

void TangoMap::Restore(std::span<const uint8_t> state) {
  ByteReader r(state);
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  uint32_t count = r.GetU32();
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    std::string key = r.GetString();
    Slot slot;
    slot.value = r.GetString();
    slot.offset = r.GetU64();
    map_.emplace(std::move(key), std::move(slot));
  }
}

}  // namespace tango
