#include "src/objects/tango_counter.h"

#include "src/util/logging.h"
#include "src/util/serialize.h"

namespace tango {

TangoCounter::TangoCounter(TangoRuntime* runtime, ObjectId oid,
                           ObjectConfig config)
    : runtime_(runtime), oid_(oid) {
  Status st = runtime_->RegisterObject(oid_, this, config);
  TANGO_CHECK(st.ok()) << "register object failed: " << st.ToString();
}

TangoCounter::~TangoCounter() { (void)runtime_->UnregisterObject(oid_); }

Status TangoCounter::Add(int64_t delta) {
  ByteWriter w(8);
  w.PutI64(delta);
  return runtime_->UpdateHelper(oid_, w.bytes());
}

Result<int64_t> TangoCounter::Get() {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
  return state_.load(std::memory_order_acquire);
}

Result<int64_t> TangoCounter::Next() {
  // Optimistic loop: read the counter and conditionally bump it.  Most
  // callers use this for unique id allocation (e.g. the job scheduler
  // example), where contention is modest.
  for (int attempt = 0; attempt < 64; ++attempt) {
    TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));  // sync first
    TANGO_RETURN_IF_ERROR(runtime_->BeginTx());
    TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));  // read-set entry
    int64_t seen = state_.load(std::memory_order_acquire);
    Status st = Add(1);  // buffered into the transaction
    if (!st.ok()) {
      runtime_->AbortTx();
      return st;
    }
    st = runtime_->EndTx();
    if (st.ok()) {
      return seen;
    }
    if (st != StatusCode::kAborted) {
      return st;
    }
  }
  return Status(StatusCode::kTimeout, "fetch-and-add retries exhausted");
}

void TangoCounter::Apply(std::span<const uint8_t> update,
                         corfu::LogOffset /*offset*/) {
  ByteReader r(update);
  int64_t delta = r.GetI64();
  if (r.ok()) {
    state_.fetch_add(delta, std::memory_order_acq_rel);
  }
}

void TangoCounter::Clear() { state_.store(0, std::memory_order_release); }

std::vector<uint8_t> TangoCounter::Checkpoint() const {
  ByteWriter w(8);
  w.PutI64(state_.load(std::memory_order_acquire));
  return w.Take();
}

void TangoCounter::Restore(std::span<const uint8_t> state) {
  ByteReader r(state);
  int64_t value = r.GetI64();
  if (r.ok()) {
    state_.store(value, std::memory_order_release);
  }
}

}  // namespace tango
