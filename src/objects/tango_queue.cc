#include "src/objects/tango_queue.h"

#include "src/util/logging.h"
#include "src/util/serialize.h"

namespace tango {

TangoQueue::TangoQueue(TangoRuntime* runtime, ObjectId oid,
                       ObjectConfig config)
    : runtime_(runtime), oid_(oid) {
  Status st = runtime_->RegisterObject(oid_, this, config);
  TANGO_CHECK(st.ok()) << "register object failed: " << st.ToString();
}

TangoQueue::~TangoQueue() { (void)runtime_->UnregisterObject(oid_); }

Status TangoQueue::Enqueue(const std::string& value) {
  ByteWriter w(8 + value.size());
  w.PutU8(kEnqueue);
  w.PutString(value);
  return runtime_->UpdateHelper(oid_, w.bytes());
}

Result<std::string> TangoQueue::Peek() {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
  std::lock_guard<std::mutex> lock(mu_);
  if (items_.empty()) {
    return Status(StatusCode::kNotFound, "queue empty");
  }
  return items_.front().value;
}

Result<size_t> TangoQueue::Size() {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

Result<std::string> TangoQueue::Dequeue() {
  for (int attempt = 0; attempt < 64; ++attempt) {
    // Sync, then transactionally pop the head we observed.
    TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
    TANGO_RETURN_IF_ERROR(runtime_->BeginTx());
    TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));  // read-set entry
    uint64_t head_id;
    std::string head_value;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) {
        runtime_->AbortTx();
        return Status(StatusCode::kNotFound, "queue empty");
      }
      head_id = items_.front().id;
      head_value = items_.front().value;
    }
    ByteWriter w(16);
    w.PutU8(kPop);
    w.PutU64(head_id);
    Status st = runtime_->UpdateHelper(oid_, w.bytes());
    if (!st.ok()) {
      runtime_->AbortTx();
      return st;
    }
    st = runtime_->EndTx();
    if (st.ok()) {
      return head_value;
    }
    if (st != StatusCode::kAborted) {
      return st;
    }
    // Another consumer got there first; retry on the new head.
  }
  return Status(StatusCode::kTimeout, "dequeue retries exhausted");
}

void TangoQueue::Apply(std::span<const uint8_t> update,
                       corfu::LogOffset /*offset*/) {
  ByteReader r(update);
  Op op = static_cast<Op>(r.GetU8());
  std::lock_guard<std::mutex> lock(mu_);
  switch (op) {
    case kEnqueue: {
      std::string value = r.GetString();
      if (r.ok()) {
        items_.push_back(Item{enqueue_seq_++, std::move(value)});
      }
      return;
    }
    case kPop: {
      uint64_t id = r.GetU64();
      // The pop is conditioned on the head identity; the transaction's read
      // set makes a stale pop abort, so a mismatch here is only possible in
      // replay edge cases and must be a no-op.
      if (r.ok() && !items_.empty() && items_.front().id == id) {
        items_.pop_front();
      }
      return;
    }
  }
}

void TangoQueue::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  items_.clear();
  enqueue_seq_ = 0;
}

std::vector<uint8_t> TangoQueue::Checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  ByteWriter w;
  w.PutU64(enqueue_seq_);
  w.PutU32(static_cast<uint32_t>(items_.size()));
  for (const Item& item : items_) {
    w.PutU64(item.id);
    w.PutString(item.value);
  }
  return w.Take();
}

void TangoQueue::Restore(std::span<const uint8_t> state) {
  ByteReader r(state);
  std::lock_guard<std::mutex> lock(mu_);
  items_.clear();
  enqueue_seq_ = r.GetU64();
  uint32_t count = r.GetU32();
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    Item item;
    item.id = r.GetU64();
    item.value = r.GetString();
    items_.push_back(std::move(item));
  }
}

}  // namespace tango
