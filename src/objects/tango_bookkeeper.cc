#include "src/objects/tango_bookkeeper.h"

#include <atomic>

#include "src/util/logging.h"
#include "src/util/serialize.h"

namespace tango {

namespace {
constexpr int kTxRetries = 64;
std::atomic<uint64_t> g_next_writer_token{1};
}  // namespace

TangoBk::TangoBk(TangoRuntime* runtime, ObjectId oid, ObjectConfig config)
    : runtime_(runtime), oid_(oid) {
  Status st = runtime_->RegisterObject(oid_, this, config);
  TANGO_CHECK(st.ok()) << "register object failed: " << st.ToString();
}

TangoBk::~TangoBk() { (void)runtime_->UnregisterObject(oid_); }

Result<TangoBk::LedgerHandle> TangoBk::CreateLedger() {
  uint64_t token = g_next_writer_token.fetch_add(1);
  for (int attempt = 0; attempt < kTxRetries; ++attempt) {
    TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_));
    TANGO_RETURN_IF_ERROR(runtime_->BeginTx());
    // Read the allocation counter (object-level dep) and claim the next id.
    TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, uint64_t{0}));
    LedgerId id;
    {
      std::lock_guard<std::mutex> lock(mu_);
      id = next_ledger_;
    }
    ByteWriter w(32);
    w.PutU8(kCreateLedger);
    w.PutU64(id);
    w.PutU64(token);
    Status st = runtime_->UpdateHelper(oid_, w.bytes(), uint64_t{0});
    if (!st.ok()) {
      runtime_->AbortTx();
      return st;
    }
    st = runtime_->EndTx();
    if (st.ok()) {
      return LedgerHandle{id, token};
    }
    if (st != StatusCode::kAborted) {
      return st;
    }
  }
  return Status(StatusCode::kTimeout, "ledger creation retries exhausted");
}

Result<uint64_t> TangoBk::AddEntry(const LedgerHandle& handle,
                                   const std::string& data) {
  // Single-writer fast path: a raw stream append, no transaction, no sync.
  // The entry id is the writer's local count — correct while this handle is
  // the sole accepted writer; if the ledger has been fenced, the append is a
  // deterministic no-op everywhere and we report it on the *next* call once
  // the view catches up (mirrors BookKeeper's asynchronous fencing error).
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ledgers_.find(handle.id);
    if (it != ledgers_.end() &&
        (it->second.state != LedgerState::kOpen ||
         it->second.writer_token != handle.writer_token)) {
      return Status(StatusCode::kFailedPrecondition, "ledger fenced or closed");
    }
  }
  ByteWriter w(32 + data.size());
  w.PutU8(kAddEntry);
  w.PutU64(handle.id);
  w.PutU64(handle.writer_token);
  w.PutString(data);
  TANGO_RETURN_IF_ERROR(
      runtime_->UpdateHelper(oid_, w.bytes(), handle.id));
  std::lock_guard<std::mutex> lock(writer_mu_);
  return writer_counts_[handle.writer_token]++;
}

Status TangoBk::CloseLedger(const LedgerHandle& handle) {
  ByteWriter w(24);
  w.PutU8(kCloseLedger);
  w.PutU64(handle.id);
  w.PutU64(handle.writer_token);
  TANGO_RETURN_IF_ERROR(runtime_->UpdateHelper(oid_, w.bytes(), handle.id));
  // Make the close visible locally before returning.
  return runtime_->QueryHelper(oid_, handle.id);
}

Result<uint64_t> TangoBk::OpenAndFence(LedgerId id) {
  ByteWriter w(16);
  w.PutU8(kFence);
  w.PutU64(id);
  TANGO_RETURN_IF_ERROR(runtime_->UpdateHelper(oid_, w.bytes(), id));
  // Linearization point: once the fence record is applied, no later append
  // by the old writer can be accepted; the entry count is now stable.
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, id));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ledgers_.find(id);
  if (it == ledgers_.end()) {
    return Status(StatusCode::kNotFound, "no such ledger");
  }
  return static_cast<uint64_t>(it->second.entries.size());
}

Result<std::string> TangoBk::ReadEntry(LedgerId id, uint64_t entry_id) {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, id));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ledgers_.find(id);
  if (it == ledgers_.end()) {
    return Status(StatusCode::kNotFound, "no such ledger");
  }
  if (entry_id >= it->second.entries.size()) {
    return Status(StatusCode::kOutOfRange, "no such entry");
  }
  return it->second.entries[entry_id];
}

Result<uint64_t> TangoBk::EntryCount(LedgerId id) {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, id));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ledgers_.find(id);
  if (it == ledgers_.end()) {
    return Status(StatusCode::kNotFound, "no such ledger");
  }
  return static_cast<uint64_t>(it->second.entries.size());
}

Result<bool> TangoBk::IsClosed(LedgerId id) {
  TANGO_RETURN_IF_ERROR(runtime_->QueryHelper(oid_, id));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ledgers_.find(id);
  if (it == ledgers_.end()) {
    return Status(StatusCode::kNotFound, "no such ledger");
  }
  return it->second.state != LedgerState::kOpen;
}

void TangoBk::Apply(std::span<const uint8_t> update,
                    corfu::LogOffset /*offset*/) {
  ByteReader r(update);
  Op op = static_cast<Op>(r.GetU8());
  std::lock_guard<std::mutex> lock(mu_);
  switch (op) {
    case kCreateLedger: {
      LedgerId id = r.GetU64();
      uint64_t token = r.GetU64();
      if (!r.ok() || ledgers_.contains(id)) {
        return;
      }
      Ledger ledger;
      ledger.writer_token = token;
      ledgers_.emplace(id, std::move(ledger));
      if (id >= next_ledger_) {
        next_ledger_ = id + 1;
      }
      return;
    }
    case kAddEntry: {
      LedgerId id = r.GetU64();
      uint64_t token = r.GetU64();
      std::string data = r.GetString();
      if (!r.ok()) {
        return;
      }
      auto it = ledgers_.find(id);
      if (it == ledgers_.end() || it->second.state != LedgerState::kOpen ||
          it->second.writer_token != token) {
        return;  // stale or fenced writer: dropped deterministically
      }
      it->second.entries.push_back(std::move(data));
      return;
    }
    case kCloseLedger: {
      LedgerId id = r.GetU64();
      uint64_t token = r.GetU64();
      if (!r.ok()) {
        return;
      }
      auto it = ledgers_.find(id);
      if (it != ledgers_.end() && it->second.writer_token == token &&
          it->second.state == LedgerState::kOpen) {
        it->second.state = LedgerState::kClosed;
      }
      return;
    }
    case kFence: {
      LedgerId id = r.GetU64();
      if (!r.ok()) {
        return;
      }
      auto it = ledgers_.find(id);
      if (it != ledgers_.end() && it->second.state == LedgerState::kOpen) {
        it->second.state = LedgerState::kFenced;
      }
      return;
    }
  }
}

void TangoBk::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ledgers_.clear();
  next_ledger_ = 1;
}

std::vector<uint8_t> TangoBk::Checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  ByteWriter w;
  w.PutU64(next_ledger_);
  w.PutU32(static_cast<uint32_t>(ledgers_.size()));
  for (const auto& [id, ledger] : ledgers_) {
    w.PutU64(id);
    w.PutU64(ledger.writer_token);
    w.PutU8(static_cast<uint8_t>(ledger.state));
    w.PutU32(static_cast<uint32_t>(ledger.entries.size()));
    for (const std::string& entry : ledger.entries) {
      w.PutString(entry);
    }
  }
  return w.Take();
}

void TangoBk::Restore(std::span<const uint8_t> state) {
  ByteReader r(state);
  std::lock_guard<std::mutex> lock(mu_);
  ledgers_.clear();
  next_ledger_ = r.GetU64();
  uint32_t count = r.GetU32();
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    LedgerId id = r.GetU64();
    Ledger ledger;
    ledger.writer_token = r.GetU64();
    ledger.state = static_cast<LedgerState>(r.GetU8());
    uint32_t entries = r.GetU32();
    ledger.entries.reserve(entries);
    for (uint32_t j = 0; j < entries && r.ok(); ++j) {
      ledger.entries.push_back(r.GetString());
    }
    ledgers_.emplace(id, std::move(ledger));
  }
}

}  // namespace tango
