// Sharded namespaces: TangoZK partitioned across clients with atomic
// cross-shard moves (§4.1, §6.3, Figure 5(d)).
//
// Two application servers each own one shard of a filesystem-like namespace
// (users a-m on shard 0, n-z on shard 1).  Each server answers lookups for
// its shard from its local view, scaling the service horizontally — but
// because both shards live on one shared log, a file can be moved between
// shards in a single atomic transaction, something a conventionally sharded
// ZooKeeper deployment cannot do at all.
//
// Run:  ./build/examples/namespace_shard

#include <cstdio>
#include <string>

#include "src/corfu/cluster.h"
#include "src/net/inproc_transport.h"
#include "src/objects/tango_zookeeper.h"
#include "src/runtime/runtime.h"

namespace {

constexpr tango::ObjectId kShardA = 1;  // users a-m
constexpr tango::ObjectId kShardB = 2;  // users n-z

}  // namespace

int main() {
  tango::InProcTransport transport;
  corfu::CorfuCluster::Options options;
  options.num_storage_nodes = 6;
  options.replication_factor = 2;
  corfu::CorfuCluster cluster(&transport, options);

  // The migration client hosts both shards (a mover needs both read sets);
  // the two serving clients host one shard each.  Because a server may host
  // one shard without the other — i.e. without a cross-shard transaction's
  // full read set — the shards are marked as requiring decision records
  // (§4.1: "we require developers to mark objects").
  tango::ObjectConfig sharded;
  sharded.needs_decision_records = true;

  auto mover_client = cluster.MakeClient();
  tango::TangoRuntime mover_rt(mover_client.get());
  tango::TangoZk mover_a(&mover_rt, kShardA, sharded);
  tango::TangoZk mover_b(&mover_rt, kShardB, sharded);

  auto server_a_client = cluster.MakeClient();
  tango::TangoRuntime server_a_rt(server_a_client.get());
  tango::TangoZk shard_a(&server_a_rt, kShardA, sharded);

  auto server_b_client = cluster.MakeClient();
  tango::TangoRuntime server_b_rt(server_b_client.get());
  tango::TangoZk shard_b(&server_b_rt, kShardB, sharded);

  // Populate both shards.
  (void)mover_a.Create("/home", "");
  (void)mover_a.Create("/home/alice", "");
  (void)mover_a.Create("/home/alice/notes.txt", "alice's notes");
  (void)mover_b.Create("/home", "");
  (void)mover_b.Create("/home/nina", "");

  std::printf("shard A serves /home/alice, shard B serves /home/nina\n");

  // Each server answers from its own shard.
  auto notes = shard_a.GetData("/home/alice/notes.txt");
  std::printf("[server A] read %s -> '%s'\n", "/home/alice/notes.txt",
              notes.ok() ? notes->first.c_str() : "MISSING");

  // Sequential nodes: a work queue under shard B.
  (void)mover_b.Create("/queue", "");
  for (int i = 0; i < 3; ++i) {
    auto path = mover_b.CreateSequential("/queue/task-", "payload");
    if (path.ok()) {
      std::printf("[mover] enqueued %s\n", path->c_str());
    }
  }

  // Alice changes her username to Nadia and moves shards: one atomic
  // transaction deletes the file in shard A and creates it in shard B.
  tango::Status moved = mover_a.MoveTo("/home/alice/notes.txt", mover_b,
                                       "/home/nina/notes.txt");
  std::printf("[mover] cross-shard move: %s\n",
              moved.ok() ? "committed atomically" : moved.ToString().c_str());

  // Both serving views observe the move through the log.
  auto gone = shard_a.Exists("/home/alice/notes.txt");
  auto arrived = shard_b.GetData("/home/nina/notes.txt");
  std::printf("[server A] source exists: %s\n",
              gone.ok() && !*gone ? "no (deleted)" : "YES (bug!)");
  std::printf("[server B] destination: '%s'\n",
              arrived.ok() ? arrived->first.c_str() : "MISSING");

  // A multi-op on one shard: rename via create+delete, atomically.
  std::vector<tango::TangoZk::MultiOp> rename;
  rename.push_back({tango::TangoZk::MultiOp::kCreateOp,
                    "/home/nina/renamed.txt", arrived.ok() ? arrived->first : "",
                    -1});
  rename.push_back(
      {tango::TangoZk::MultiOp::kDeleteOp, "/home/nina/notes.txt", "", -1});
  tango::Status multi = shard_b.Multi(rename);
  std::printf("[server B] atomic rename: %s\n",
              multi.ok() ? "ok" : multi.ToString().c_str());

  auto children = shard_b.GetChildren("/home/nina");
  if (children.ok()) {
    std::printf("[server B] /home/nina children:");
    for (const std::string& child : *children) {
      std::printf(" %s", child.c_str());
    }
    std::printf("\n");
  }

  bool ok = moved.ok() && multi.ok() && gone.ok() && !*gone && arrived.ok();
  std::printf("namespace_shard %s\n", ok ? "done" : "FAILED");
  return ok ? 0 : 1;
}
