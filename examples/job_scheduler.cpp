// Job scheduler: the paper's running example of a fully replicated metadata
// service (§1, §4, Figure 5(a) and 5(c)).
//
// The scheduler's state is three Tango objects multiplexed on one shared
// log, discovered through the Tango directory:
//   * "FreeNodeList"  — a TangoList of idle compute nodes;
//   * "JobAssignments"— a TangoMap from job id to compute node;
//   * "JobIds"        — a TangoCounter allocating unique job ids.
//
// Scheduling a job is a transaction: atomically take a node off the free
// list and record the assignment — "moving a node from a free list to an
// allocation table" is the paper's canonical multi-object update.  Two
// scheduler replicas run against the same log for high availability, and a
// *backup service* (a different application) shares only the free list —
// layered partitioning of shared state without a shared deployment.
//
// Run:  ./build/examples/job_scheduler

#include <cstdio>
#include <string>

#include "src/corfu/cluster.h"
#include "src/net/inproc_transport.h"
#include "src/objects/tango_counter.h"
#include "src/objects/tango_list.h"
#include "src/objects/tango_map.h"
#include "src/runtime/directory.h"
#include "src/runtime/runtime.h"

namespace {

// One scheduler replica: a full copy of the service on one client.
class Scheduler {
 public:
  Scheduler(corfu::CorfuCluster& cluster, const char* name)
      : name_(name),
        client_(cluster.MakeClient()),
        runtime_(client_.get()),
        directory_(&runtime_) {
    free_oid_ = *directory_.Open("FreeNodeList");
    jobs_oid_ = *directory_.Open("JobAssignments");
    ids_oid_ = *directory_.Open("JobIds");
    free_list_ = std::make_unique<tango::TangoList>(&runtime_, free_oid_);
    jobs_ = std::make_unique<tango::TangoMap>(&runtime_, jobs_oid_);
    ids_ = std::make_unique<tango::TangoCounter>(&runtime_, ids_oid_);
  }

  void AddNode(const std::string& node) { (void)free_list_->Add(node); }

  // Transactionally assigns the next free node to a new job.
  tango::Result<std::string> Schedule() {
    for (int attempt = 0; attempt < 32; ++attempt) {
      auto id = ids_->Next();  // unique job id via fetch-and-add
      if (!id.ok()) {
        return id.status();
      }
      std::string job = "job-" + std::to_string(*id);

      (void)free_list_->Size();  // sync views before transacting
      (void)runtime_.BeginTx();
      auto nodes = free_list_->All();
      if (!nodes.ok() || nodes->empty()) {
        runtime_.AbortTx();
        return tango::Status(tango::StatusCode::kNotFound, "no free nodes");
      }
      std::string node = nodes->front();
      (void)free_list_->RemoveFirst(node);  // free list -> allocation table
      (void)jobs_->Put(job, node);
      tango::Status tx = runtime_.EndTx();
      if (tx.ok()) {
        std::printf("[%s] scheduled %s on %s\n", name_, job.c_str(),
                    node.c_str());
        return job;
      }
      if (tx != tango::StatusCode::kAborted) {
        return tx;
      }
      // Another replica grabbed the node first; retry on fresh state.
    }
    return tango::Status(tango::StatusCode::kTimeout, "too much contention");
  }

  tango::Result<std::string> WhereIs(const std::string& job) {
    return jobs_->Get(job);
  }

  size_t FreeNodes() { return free_list_->Size().value_or(0); }

  tango::TangoDirectory& directory() { return directory_; }

 private:
  const char* name_;
  std::unique_ptr<corfu::CorfuClient> client_;
  tango::TangoRuntime runtime_;
  tango::TangoDirectory directory_;
  tango::ObjectId free_oid_, jobs_oid_, ids_oid_;
  std::unique_ptr<tango::TangoList> free_list_;
  std::unique_ptr<tango::TangoMap> jobs_;
  std::unique_ptr<tango::TangoCounter> ids_;
};

// The backup service (Figure 5(c)): a different application, hosting *only*
// the shared free list — it does not replay the scheduler's other objects.
class BackupService {
 public:
  BackupService(corfu::CorfuCluster& cluster)
      : client_(cluster.MakeClient()),
        runtime_(client_.get()),
        directory_(&runtime_) {
    free_oid_ = *directory_.Open("FreeNodeList");
    free_list_ = std::make_unique<tango::TangoList>(&runtime_, free_oid_);
  }

  // Takes a node offline for backup and returns it afterwards.
  tango::Status BackUpOneNode() {
    (void)free_list_->Size();
    (void)runtime_.BeginTx();
    auto nodes = free_list_->All();
    if (!nodes.ok() || nodes->empty()) {
      runtime_.AbortTx();
      return tango::Status(tango::StatusCode::kNotFound, "nothing to back up");
    }
    std::string node = nodes->back();
    (void)free_list_->RemoveFirst(node);
    tango::Status tx = runtime_.EndTx();
    if (!tx.ok()) {
      return tx;
    }
    std::printf("[backup] imaging %s ...\n", node.c_str());
    (void)free_list_->Add(node);  // back online
    std::printf("[backup] %s returned to the free list\n", node.c_str());
    return tango::Status::Ok();
  }

 private:
  std::unique_ptr<corfu::CorfuClient> client_;
  tango::TangoRuntime runtime_;
  tango::TangoDirectory directory_;
  tango::ObjectId free_oid_;
  std::unique_ptr<tango::TangoList> free_list_;
};

}  // namespace

int main() {
  tango::InProcTransport transport;
  corfu::CorfuCluster::Options options;
  options.num_storage_nodes = 6;
  options.replication_factor = 2;
  corfu::CorfuCluster cluster(&transport, options);

  // Two replicas of the scheduler service, one backup service.
  Scheduler primary(cluster, "primary");
  Scheduler secondary(cluster, "secondary");
  BackupService backup(cluster);

  for (int i = 0; i < 4; ++i) {
    primary.AddNode("node-" + std::to_string(i));
  }
  std::printf("registered 4 compute nodes\n");

  // Both replicas schedule concurrently against the same free list.
  auto job1 = primary.Schedule();
  auto job2 = secondary.Schedule();
  if (!job1.ok() || !job2.ok()) {
    std::fprintf(stderr, "scheduling failed\n");
    return 1;
  }

  // The secondary can answer queries for jobs the primary scheduled —
  // replicas converge through the log.
  auto where = secondary.WhereIs(*job1);
  std::printf("[secondary] %s runs on %s\n", job1->c_str(),
              where.value_or("???").c_str());

  // The backup service shares just the free list.
  (void)backup.BackUpOneNode();

  std::printf("free nodes remaining: %zu (scheduled 2 of 4)\n",
              primary.FreeNodes());
  return primary.FreeNodes() == 2 ? 0 : 1;
}
