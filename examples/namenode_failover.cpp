// Namenode failover: the paper's fidelity test, recreated (§6.3).
//
// The paper ran the HDFS namenode over TangoZK + TangoBK and demonstrated
// recovery from a namenode reboot and fail-over to a backup.  This example
// drives an equivalent workload: a "namenode" journals file operations into
// a TangoBK ledger while maintaining the namespace in a TangoZk tree.  We
// then:
//   1. crash the primary namenode (destroy its client, views and all);
//   2. fail over to a standby that has been passively following the log;
//   3. fence the primary's edit ledger so a zombie primary cannot journal;
//   4. reboot a cold namenode from nothing and verify full state recovery;
//   5. replace the CORFU sequencer mid-flight to show the substrate's own
//      fail-over underneath the application.
//
// Run:  ./build/examples/namenode_failover

#include <cstdio>
#include <memory>
#include <string>

#include "src/corfu/cluster.h"
#include "src/net/inproc_transport.h"
#include "src/objects/tango_bookkeeper.h"
#include "src/objects/tango_zookeeper.h"
#include "src/runtime/runtime.h"

namespace {

constexpr tango::ObjectId kNamespaceOid = 1;
constexpr tango::ObjectId kJournalOid = 2;

// A namenode instance: namespace view + edit journal writer.
class Namenode {
 public:
  Namenode(corfu::CorfuCluster& cluster, const char* name)
      : name_(name),
        client_(cluster.MakeClient()),
        runtime_(client_.get()),
        ns_(&runtime_, kNamespaceOid),
        journal_(&runtime_, kJournalOid) {}

  tango::Status BecomeActive() {
    auto ledger = journal_.CreateLedger();
    if (!ledger.ok()) {
      return ledger.status();
    }
    ledger_ = *ledger;
    std::printf("[%s] active with edit ledger %llu\n", name_,
                static_cast<unsigned long long>(ledger_.id));
    return tango::Status::Ok();
  }

  tango::Status CreateFile(const std::string& path, const std::string& data) {
    TANGO_RETURN_IF_ERROR(ns_.Create(path, data));
    auto entry = journal_.AddEntry(ledger_, "CREATE " + path);
    return entry.status();
  }

  tango::Result<std::string> Read(const std::string& path) {
    auto data = ns_.GetData(path);
    if (!data.ok()) {
      return data.status();
    }
    return data->first;
  }

  tango::Result<uint64_t> JournaledEdits(tango::TangoBk::LedgerId id) {
    return journal_.EntryCount(id);
  }

  // Fences another (presumed dead) namenode's ledger before taking over.
  tango::Result<uint64_t> FenceLedger(tango::TangoBk::LedgerId id) {
    return journal_.OpenAndFence(id);
  }

  tango::TangoBk::LedgerHandle ledger() const { return ledger_; }
  size_t FileCount() {
    auto children = ns_.GetChildren("/");
    return children.ok() ? children->size() : 0;
  }

 private:
  const char* name_;
  std::unique_ptr<corfu::CorfuClient> client_;
  tango::TangoRuntime runtime_;
  tango::TangoZk ns_;
  tango::TangoBk journal_;
  tango::TangoBk::LedgerHandle ledger_;
};

}  // namespace

int main() {
  tango::InProcTransport transport;
  corfu::CorfuCluster::Options options;
  options.num_storage_nodes = 6;
  options.replication_factor = 2;
  corfu::CorfuCluster cluster(&transport, options);

  // Primary serves; standby passively follows the same objects.
  auto primary = std::make_unique<Namenode>(cluster, "primary");
  Namenode standby(cluster, "standby");
  if (!primary->BecomeActive().ok()) {
    return 1;
  }
  tango::TangoBk::LedgerHandle primary_ledger = primary->ledger();

  for (int i = 0; i < 5; ++i) {
    std::string path = "/file" + std::to_string(i);
    if (!primary->CreateFile(path, "contents-" + std::to_string(i)).ok()) {
      std::fprintf(stderr, "create failed\n");
      return 1;
    }
  }
  std::printf("[primary] created 5 files, journaled 5 edits\n");

  // --- substrate fail-over: replace the sequencer mid-flight -----------------
  {
    auto admin = cluster.MakeClient();
    if (!cluster.ReplaceSequencer(admin.get()).ok()) {
      std::fprintf(stderr, "sequencer replacement failed\n");
      return 1;
    }
    std::printf("[cluster] sequencer replaced (epoch bumped); service "
                "continues\n");
  }
  if (!primary->CreateFile("/file5", "post-reconfig").ok()) {
    std::fprintf(stderr, "create after reconfiguration failed\n");
    return 1;
  }

  // --- primary crash ----------------------------------------------------------
  primary.reset();
  std::printf("[primary] CRASHED (views and runtime destroyed)\n");

  // --- fail-over --------------------------------------------------------------
  // The standby fences the dead primary's ledger: any in-flight journal
  // append from a zombie primary is now rejected deterministically.
  auto sealed_edits = standby.FenceLedger(primary_ledger.id);
  if (!sealed_edits.ok()) {
    std::fprintf(stderr, "fencing failed\n");
    return 1;
  }
  std::printf("[standby] fenced primary ledger at %llu edits\n",
              static_cast<unsigned long long>(*sealed_edits));

  if (!standby.BecomeActive().ok()) {
    return 1;
  }
  auto recovered = standby.Read("/file3");
  std::printf("[standby] serves /file3 -> '%s' (%zu files visible)\n",
              recovered.value_or("MISSING").c_str(), standby.FileCount());
  if (!standby.CreateFile("/file6", "from-standby").ok()) {
    std::fprintf(stderr, "standby create failed\n");
    return 1;
  }

  // --- cold reboot ------------------------------------------------------------
  Namenode rebooted(cluster, "rebooted");
  size_t files = rebooted.FileCount();
  auto edits = rebooted.JournaledEdits(primary_ledger.id);
  std::printf("[rebooted] replayed namespace: %zu files, primary ledger has "
              "%llu edits\n",
              files, static_cast<unsigned long long>(edits.value_or(0)));

  bool ok = files == 7 && edits.ok() && *edits == *sealed_edits;
  std::printf("namenode_failover %s\n", ok ? "done" : "FAILED");
  return ok ? 0 : 1;
}
