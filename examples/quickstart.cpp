// Quickstart: the smallest complete Tango program.
//
// Builds an in-process CORFU deployment (storage nodes + sequencer +
// projection store on one transport), attaches two independent clients, and
// shows the core ideas from the paper in order:
//   1. a TangoRegister is persistent, consistent and highly available with
//      no distributed-protocol code (Figure 3);
//   2. views on different clients converge through the shared log;
//   3. transactions span objects with plain Begin/EndTX brackets (Figure 4);
//   4. the whole history is replayable: a brand-new client reconstructs
//      every view from the log.
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "src/corfu/cluster.h"
#include "src/net/inproc_transport.h"
#include "src/objects/tango_list.h"
#include "src/objects/tango_map.h"
#include "src/objects/tango_register.h"
#include "src/runtime/runtime.h"

int main() {
  // --- the shared log --------------------------------------------------------
  tango::InProcTransport transport;
  corfu::CorfuCluster::Options options;
  options.num_storage_nodes = 6;   // 3 replica sets of 2
  options.replication_factor = 2;
  corfu::CorfuCluster cluster(&transport, options);

  // --- client A: writes ------------------------------------------------------
  auto client_a = cluster.MakeClient();
  tango::TangoRuntime runtime_a(client_a.get());
  tango::TangoRegister reg_a(&runtime_a, /*oid=*/1);

  if (!reg_a.Write(42).ok()) {
    std::fprintf(stderr, "write failed\n");
    return 1;
  }
  std::printf("client A wrote 42 to the register\n");

  // --- client B: a second view of the same object -----------------------------
  auto client_b = cluster.MakeClient();
  tango::TangoRuntime runtime_b(client_b.get());
  tango::TangoRegister reg_b(&runtime_b, /*oid=*/1);

  auto value = reg_b.Read();  // linearizable: checks the tail, plays forward
  std::printf("client B read %lld (via the shared log, no messages between "
              "clients)\n",
              static_cast<long long>(value.value_or(-1)));

  // --- a transaction across two objects ---------------------------------------
  tango::TangoMap owners(&runtime_a, /*oid=*/2);
  tango::TangoList items(&runtime_a, /*oid=*/3);
  (void)owners.Put("ledger-1", "me");
  (void)owners.Get("ledger-1");  // sync the view before transacting

  (void)runtime_a.BeginTx();
  auto owner = owners.Get("ledger-1");       // records a read-set entry
  if (owner.ok() && *owner == "me") {
    (void)items.Add("item-0");               // buffered, not yet in the log
  }
  tango::Status tx = runtime_a.EndTx();      // append commit record, validate
  std::printf("transaction: %s\n", tx.ok() ? "committed" : tx.ToString().c_str());

  // --- durability: a cold client rebuilds everything from the log -------------
  auto client_c = cluster.MakeClient();
  tango::TangoRuntime runtime_c(client_c.get());
  tango::TangoRegister reg_c(&runtime_c, 1);
  tango::TangoMap owners_c(&runtime_c, 2);
  tango::TangoList items_c(&runtime_c, 3);

  auto replayed = reg_c.Read();
  auto size = items_c.Size();
  std::printf("cold client replayed: register=%lld, list size=%zu\n",
              static_cast<long long>(replayed.value_or(-1)),
              size.value_or(0));

  std::printf("quickstart done\n");
  return 0;
}
