// Observability overhead and hindsight retention.
//
// Part 1 — the sampled-tracing budget: the read path (cold replay, batch
// 32) and the append path, each measured with tracing fully disabled vs
// always-on tracing under the production policy (1/1024 head sampling +
// slow-trace retention).  Enabled/disabled runs interleave and the reported
// regression is the median per-pair delta.  Like the fig_readpath and
// fig_appendpath analogues, each path is measured at two simulated link
// latencies:
//   * the 50us cell — the analogue benches' realistic-network cell — is
//     the budget cell: DESIGN.md holds the tracer to < 3% here;
//   * the 0us cell is a stress cell (every request is a ~2us in-memory
//     round trip, hundreds of times faster than any real Tango deployment);
//     it is reported as absolute added nanoseconds per op, which on this
//     hardware is dominated by two TSC reads per span (~17ns each under
//     virtualization).
//
// Part 2 — hindsight: with head sampling set to drop everything, a burst
// of slow appends (injected link latency) must still be retained by the
// tail-latency rule, and the append-latency histogram's p99 exemplar must
// link to one of those retained traces.  This is the property that makes
// always-on sampling livable: the trace you need after an incident is the
// one the sampler could not have chosen in advance.
//
// --json=FILE writes BENCH_obs.json for EXPERIMENTS.md.

#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/corfu/stream.h"
#include "src/obs/trace.h"

namespace tangobench {
namespace {

// The policy the daemon defaults to (tango_logd --trace-sample-every).
constexpr uint64_t kSampleEvery = 1024;
constexpr uint64_t kSlowUs = 10'000;
constexpr uint64_t kSeed = 42;

struct Overhead {
  double enabled_ops = 0;   // best ops/sec with sampled tracing on
  double disabled_ops = 0;  // best ops/sec with tracing off
  double overhead_pct = 0;  // median per-pair delta
  // Absolute cost per op, from the best runs (meaningful in the 0us cell
  // where the pair is not sleep-dominated).
  double added_ns_per_op() const {
    if (enabled_ops <= 0 || disabled_ops <= 0) {
      return 0;
    }
    return 1e9 / enabled_ops - 1e9 / disabled_ops;
  }
};

// Interleaved A/B harness: `run_once` returns ops/sec for one rep; the
// tracer state is toggled around it.
Overhead MeasureOverhead(int reps, const std::function<double()>& run_once) {
  tango::obs::Tracer& tracer = tango::obs::Tracer::Default();
  run_once();  // warmup

  Overhead result;
  std::vector<double> overheads;
  for (int r = 0; r < reps; ++r) {
    double enabled_ops, disabled_ops;
    auto enabled_run = [&] {
      tracer.Clear();
      tracer.SetSampling({kSampleEvery, kSlowUs, kSeed});
      tracer.SetEnabled(true);
      double ops = run_once();
      tracer.SetEnabled(false);
      return ops;
    };
    auto disabled_run = [&] {
      tracer.SetEnabled(false);
      return run_once();
    };
    if (r % 2 == 0) {
      enabled_ops = enabled_run();
      disabled_ops = disabled_run();
    } else {
      disabled_ops = disabled_run();
      enabled_ops = enabled_run();
    }
    result.enabled_ops = std::max(result.enabled_ops, enabled_ops);
    result.disabled_ops = std::max(result.disabled_ops, disabled_ops);
    overheads.push_back((disabled_ops - enabled_ops) * 100.0 / disabled_ops);
  }
  tracer.Clear();
  std::sort(overheads.begin(), overheads.end());
  result.overhead_pct = overheads[overheads.size() / 2];
  return result;
}

Overhead MeasureReadPath(int entries, int reps, uint32_t latency_us) {
  const corfu::StreamId stream = 7;
  const std::vector<uint8_t> payload(64, 0xab);

  Testbed bed(6, 2, 0);
  auto writer = bed.MakeClient();
  corfu::StreamStore wstore(writer.get());
  for (int i = 0; i < entries; ++i) {
    if (!wstore.Append(stream, payload).ok()) {
      std::fprintf(stderr, "append failed\n");
      std::exit(1);
    }
  }
  auto reader = bed.MakeClient();
  corfu::StreamStore::Options opt;
  opt.readahead = 32;
  opt.cache_capacity = static_cast<size_t>(entries) + 1;
  corfu::StreamStore rstore(reader.get(), opt);
  if (!rstore.Sync(stream).ok()) {
    std::fprintf(stderr, "sync failed\n");
    std::exit(1);
  }
  // Fill ran at zero latency (the write path is not under test); the
  // measured replay sees the cell's simulated network.
  bed.transport.set_link_latency_us(latency_us);

  return MeasureOverhead(reps, [&]() -> double {
    rstore.ClearEntryCache();
    rstore.ResetCursor(stream);
    Stopwatch timer;
    int replayed = 0;
    while (true) {
      tango::Result<corfu::StreamEntry> e = rstore.ReadNext(stream);
      if (!e.ok()) {
        if (e.status() == tango::StatusCode::kUnwritten) {
          break;
        }
        std::fprintf(stderr, "replay failed: %s\n",
                     e.status().ToString().c_str());
        std::exit(1);
      }
      ++replayed;
    }
    if (replayed != entries) {
      std::fprintf(stderr, "replayed %d of %d entries\n", replayed, entries);
      std::exit(1);
    }
    return replayed / (static_cast<double>(timer.ElapsedUs()) / 1e6);
  });
}

Overhead MeasureAppendPath(int appends, int reps, uint32_t latency_us) {
  const corfu::StreamId stream = 9;
  const std::vector<uint8_t> payload(64, 0xcd);

  Testbed bed(6, 2, 0);
  auto client = bed.MakeClient();
  corfu::StreamStore store(client.get());
  bed.transport.set_link_latency_us(latency_us);

  return MeasureOverhead(reps, [&]() -> double {
    Stopwatch timer;
    for (int i = 0; i < appends; ++i) {
      if (!store.Append(stream, payload).ok()) {
        std::fprintf(stderr, "append failed\n");
        std::exit(1);
      }
    }
    return appends / (static_cast<double>(timer.ElapsedUs()) / 1e6);
  });
}

struct Hindsight {
  uint64_t slow_appends = 0;
  uint64_t tail_retained = 0;       // traces kept only by the slow rule
  bool slow_trace_retained = false; // a slow append's trace survived
  uint64_t p99_exemplar_trace = 0;  // trace id linked from the p99 bucket
  bool exemplar_retained = false;   // ... and that trace was retained
};

Hindsight MeasureHindsight(int fast_appends, int slow_appends) {
  const corfu::StreamId stream = 11;
  const std::vector<uint8_t> payload(64, 0xef);

  Testbed bed(6, 2, 0);
  auto client = bed.MakeClient();
  corfu::StreamStore store(client.get());

  tango::obs::Tracer& tracer = tango::obs::Tracer::Default();
  tango::obs::MetricsRegistry& reg = tango::obs::MetricsRegistry::Default();
  reg.ResetAll();
  tracer.Clear();
  // Head sampling set to (practically) never: everything this run keeps,
  // it keeps because the slow rule fired.
  tracer.SetSampling({1ULL << 40, kSlowUs, kSeed});
  tracer.SetEnabled(true);

  for (int i = 0; i < fast_appends; ++i) {
    if (!store.Append(stream, payload).ok()) {
      std::fprintf(stderr, "append failed\n");
      std::exit(1);
    }
  }

  // The incident: a burst of appends with the network suddenly slow enough
  // that each crosses the retention threshold.
  bed.transport.set_link_latency_us(static_cast<uint32_t>(kSlowUs / 2));
  for (int i = 0; i < slow_appends; ++i) {
    if (!store.Append(stream, payload).ok()) {
      std::fprintf(stderr, "slow append failed\n");
      std::exit(1);
    }
  }
  bed.transport.set_link_latency_us(0);
  tracer.SetEnabled(false);

  Hindsight h;
  h.slow_appends = static_cast<uint64_t>(slow_appends);
  h.tail_retained = tracer.tail_retained();

  // A slow append's root span must be in the retained set.
  for (const tango::obs::Span& s : tracer.Spans()) {
    if (s.name == "log.append" && s.duration_us >= kSlowUs &&
        tracer.IsRetained(s.trace_id)) {
      h.slow_trace_retained = true;
      break;
    }
  }

  // The p99 bucket of the append histogram must carry an exemplar that
  // links to a retained trace.
  auto snap = reg.Snap();
  auto it = snap.histograms.find("log.append.latency_us");
  if (it != snap.histograms.end()) {
    uint64_t p99 = it->second.Percentile(0.99);
    tango::obs::Histogram::Exemplar ex =
        reg.GetHistogram("log.append.latency_us")->ExemplarNear(p99);
    h.p99_exemplar_trace = ex.trace_id;
    h.exemplar_retained = ex.trace_id != 0 && tracer.IsRetained(ex.trace_id);
  }
  tracer.Clear();
  return h;
}

void Run(const Flags& flags) {
  const int entries = static_cast<int>(flags.GetInt("entries", 10000));
  const int appends = static_cast<int>(flags.GetInt("appends", 4000));
  const int reps = static_cast<int>(flags.GetInt("reps", 9));
  const std::string json_path = flags.GetString("json", "");
  // The analogue benches' realistic-network cell (fig_appendpath and
  // fig_readpath both sweep {0, 50}); sleeps dominate, so far fewer ops
  // are needed for a stable ratio.
  const uint32_t kNetLatencyUs = 50;
  const int net_entries = std::max(entries / 5, 500);
  const int net_appends = std::max(appends / 20, 100);

  std::printf(
      "Observability: sampled-tracing overhead and hindsight retention\n"
      "(policy: 1/%llu head sampling, slow threshold %llu us)\n\n",
      static_cast<unsigned long long>(kSampleEvery),
      static_cast<unsigned long long>(kSlowUs));

  Overhead read = MeasureReadPath(net_entries, reps, kNetLatencyUs);
  std::printf(
      "read path,   50us links (%d entries, median of %d pairs): traced "
      "%.0f/s vs off %.0f/s -> %.2f%% (budget < 3%%)\n",
      net_entries, reps, read.enabled_ops, read.disabled_ops,
      read.overhead_pct);

  Overhead append = MeasureAppendPath(net_appends, reps, kNetLatencyUs);
  std::printf(
      "append path, 50us links (%d appends, median of %d pairs): traced "
      "%.0f/s vs off %.0f/s -> %.2f%% (budget < 3%%)\n",
      net_appends, reps, append.enabled_ops, append.disabled_ops,
      append.overhead_pct);

  Overhead read_fast = MeasureReadPath(entries, reps, 0);
  std::printf(
      "read path,   0us stress (%d entries): traced %.0f/s vs off %.0f/s "
      "-> %.2f%%, +%.0f ns/op\n",
      entries, read_fast.enabled_ops, read_fast.disabled_ops,
      read_fast.overhead_pct, read_fast.added_ns_per_op());

  Overhead append_fast = MeasureAppendPath(appends, reps, 0);
  std::printf(
      "append path, 0us stress (%d appends): traced %.0f/s vs off %.0f/s "
      "-> %.2f%%, +%.0f ns/op\n\n",
      appends, append_fast.enabled_ops, append_fast.disabled_ops,
      append_fast.overhead_pct, append_fast.added_ns_per_op());

  Hindsight h = MeasureHindsight(/*fast_appends=*/2000, /*slow_appends=*/45);
  std::printf(
      "hindsight (%llu slow appends injected): %llu traces tail-retained, "
      "slow trace retained: %s, p99 exemplar trace %llx retained: %s\n",
      static_cast<unsigned long long>(h.slow_appends),
      static_cast<unsigned long long>(h.tail_retained),
      h.slow_trace_retained ? "yes" : "NO",
      static_cast<unsigned long long>(h.p99_exemplar_trace),
      h.exemplar_retained ? "yes" : "NO");

  bool ok = h.slow_trace_retained && h.exemplar_retained;
  if (!ok) {
    std::fprintf(stderr, "fig_obs: hindsight retention check FAILED\n");
  }

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      std::exit(1);
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"fig_obs\",\n"
                 "  \"policy\": {\"sample_every\": %llu, \"slow_us\": %llu},\n",
                 static_cast<unsigned long long>(kSampleEvery),
                 static_cast<unsigned long long>(kSlowUs));
    std::fprintf(f,
                 "  \"read_overhead\": {\"link_latency_us\": %u, "
                 "\"traced_ops_per_sec\": %.1f, "
                 "\"disabled_ops_per_sec\": %.1f, \"overhead_pct\": %.2f},\n",
                 kNetLatencyUs, read.enabled_ops, read.disabled_ops,
                 read.overhead_pct);
    std::fprintf(f,
                 "  \"append_overhead\": {\"link_latency_us\": %u, "
                 "\"traced_ops_per_sec\": %.1f, "
                 "\"disabled_ops_per_sec\": %.1f, \"overhead_pct\": %.2f},\n",
                 kNetLatencyUs, append.enabled_ops, append.disabled_ops,
                 append.overhead_pct);
    std::fprintf(f,
                 "  \"read_fastpath\": {\"link_latency_us\": 0, "
                 "\"traced_ops_per_sec\": %.1f, "
                 "\"disabled_ops_per_sec\": %.1f, \"overhead_pct\": %.2f, "
                 "\"added_ns_per_op\": %.1f},\n",
                 read_fast.enabled_ops, read_fast.disabled_ops,
                 read_fast.overhead_pct, read_fast.added_ns_per_op());
    std::fprintf(f,
                 "  \"append_fastpath\": {\"link_latency_us\": 0, "
                 "\"traced_ops_per_sec\": %.1f, "
                 "\"disabled_ops_per_sec\": %.1f, \"overhead_pct\": %.2f, "
                 "\"added_ns_per_op\": %.1f},\n",
                 append_fast.enabled_ops, append_fast.disabled_ops,
                 append_fast.overhead_pct, append_fast.added_ns_per_op());
    std::fprintf(f,
                 "  \"hindsight\": {\"slow_appends\": %llu, "
                 "\"tail_retained\": %llu, \"slow_trace_retained\": %s, "
                 "\"p99_exemplar_trace\": \"%llx\", \"exemplar_retained\": "
                 "%s},\n",
                 static_cast<unsigned long long>(h.slow_appends),
                 static_cast<unsigned long long>(h.tail_retained),
                 h.slow_trace_retained ? "true" : "false",
                 static_cast<unsigned long long>(h.p99_exemplar_trace),
                 h.exemplar_retained ? "true" : "false");
    WriteRunInfoField(f);
    std::fprintf(f, "  \"reps\": %d\n}\n", reps);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!ok) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace tangobench

int main(int argc, char** argv) {
  tangobench::Flags flags(argc, argv);
  tangobench::Run(flags);
  return 0;
}
