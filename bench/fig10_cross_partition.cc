// Figure 10 (middle): cross-partition transactions, Tango vs 2PL.
//
// The partitioned setup from fig10_partitioned, with a fraction of
// transactions writing to a remote partition as well as the local one (the
// "move a key between maps" pattern).  The comparison point is the
// distributed two-phase-locking protocol of §6.2.  The shape to reproduce:
// both degrade gracefully as the cross-partition percentage doubles, with
// similar scaling characteristics — Tango's advantage is fault-tolerance
// (no locks to strand, no coordinator to crash), not raw speed.

#include "bench/bench_common.h"
#include "src/baseline/two_phase_locking.h"
#include "src/objects/tango_map.h"
#include "src/runtime/runtime.h"

namespace tangobench {
namespace {

struct TangoNode {
  std::unique_ptr<corfu::CorfuClient> client;
  std::unique_ptr<tango::TangoRuntime> runtime;
  std::unique_ptr<tango::TangoMap> map;
};

double RunTango(Testbed& bed, int num_nodes, double cross_fraction,
                int duration_ms) {
  std::vector<TangoNode> nodes(num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    nodes[i].client = bed.MakeClient();
    nodes[i].runtime =
        std::make_unique<tango::TangoRuntime>(nodes[i].client.get());
    nodes[i].map = std::make_unique<tango::TangoMap>(
        nodes[i].runtime.get(), static_cast<tango::ObjectId>(i + 1));
    (void)nodes[i].map->Put("seed", "0");
    (void)nodes[i].map->Size();
  }

  RunResult result = RunWorkers(
      num_nodes, duration_ms,
      [&](int t, std::atomic<bool>* stop, WorkerCounts* counts) {
        TangoNode& node = nodes[t];
        tango::Rng rng(5000 + t);
        while (!stop->load(std::memory_order_relaxed)) {
          bool cross = rng.NextBool(cross_fraction);
          (void)node.runtime->BeginTx();
          std::string key = "key" + std::to_string(rng.NextBelow(100000));
          (void)node.map->Get(key);
          (void)node.map->Put(key, "v");
          if (cross) {
            // Remote write to another partition's map (a raw kPut record on
            // the remote object's stream) — the move-key pattern.
            int peer = static_cast<int>(rng.NextBelow(num_nodes));
            if (peer == t) {
              peer = (t + 1) % num_nodes;
            }
            tango::ByteWriter w;
            w.PutU8(1);  // TangoMap::kPut
            w.PutString(key);
            w.PutString("moved");
            (void)node.runtime->UpdateHelper(
                static_cast<tango::ObjectId>(peer + 1), w.bytes(),
                std::hash<std::string>{}(key));
          }
          counts->total++;
          if (node.runtime->EndTx().ok()) {
            counts->good++;
          }
        }
      });
  return result.good_ops_per_sec;
}

double RunTwoPl(int num_nodes, double cross_fraction, int duration_ms,
                uint32_t link_latency_us) {
  tango::InProcTransport::Options net;
  net.link_latency_us = link_latency_us;
  tango::InProcTransport transport(net);
  twopl::TimestampOracle oracle(&transport, 1);
  std::vector<std::unique_ptr<twopl::ItemStore>> stores;
  std::vector<std::unique_ptr<twopl::TwoPhaseLockingClient>> clients;
  for (int i = 0; i < num_nodes; ++i) {
    stores.push_back(std::make_unique<twopl::ItemStore>(&transport, 10 + i));
    clients.push_back(std::make_unique<twopl::TwoPhaseLockingClient>(
        &transport, 1, stores.back().get(), 100 + i));
  }

  RunResult result = RunWorkers(
      num_nodes, duration_ms,
      [&](int t, std::atomic<bool>* stop, WorkerCounts* counts) {
        tango::Rng rng(6000 + t);
        while (!stop->load(std::memory_order_relaxed)) {
          bool cross = rng.NextBool(cross_fraction);
          uint64_t key = rng.NextBelow(100000);
          std::vector<twopl::TwoPhaseLockingClient::ReadIntent> reads{{key}};
          std::vector<twopl::TwoPhaseLockingClient::WriteIntent> writes{
              {static_cast<tango::NodeId>(10 + t), key, 1}};
          if (cross) {
            int peer = static_cast<int>(rng.NextBelow(num_nodes));
            if (peer == t) {
              peer = (t + 1) % num_nodes;
            }
            writes.push_back({static_cast<tango::NodeId>(10 + peer), key, 2});
          }
          counts->total++;
          if (clients[t]->ExecuteTx(reads, writes, 8).ok()) {
            counts->good++;
          }
        }
      });
  return result.good_ops_per_sec;
}

void Run(const Flags& flags) {
  const int duration_ms = static_cast<int>(flags.GetInt("duration-ms", 300));
  const int num_nodes = static_cast<int>(flags.GetInt("nodes", 8));
  // Both protocols pay the same simulated per-hop cost, so the comparison
  // reflects protocol structure (RPC counts, aborts), not the fact that the
  // 2PL baseline happens to touch fewer simulated components.
  const uint32_t link_latency_us =
      static_cast<uint32_t>(flags.GetInt("link-latency-us", 20));

  std::printf(
      "Figure 10 (middle): %% cross-partition transactions, Tango vs 2PL "
      "(%d nodes, %uus links)\n\n",
      num_nodes, link_latency_us);
  PrintHeader({"cross_pct", "tango_Ktx/s", "twopl_Ktx/s"});

  for (int pct : {0, 1, 2, 4, 8, 16, 32, 64, 100}) {
    double fraction = pct / 100.0;
    tango::InProcTransport::Options net;
    net.link_latency_us = link_latency_us;
    Testbed bed(18, 2, 0, net);
    double tango_tput =
        RunTango(bed, num_nodes, fraction, duration_ms) / 1000.0;
    double twopl_tput =
        RunTwoPl(num_nodes, fraction, duration_ms, link_latency_us) / 1000.0;
    PrintRow({std::to_string(pct), Fmt(tango_tput, 2), Fmt(twopl_tput, 2)});
  }
}

}  // namespace
}  // namespace tangobench

int main(int argc, char** argv) {
  tangobench::Flags flags(argc, argv);
  tangobench::Run(flags);
  return 0;
}
