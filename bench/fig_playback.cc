// Parallel playback: replay throughput vs worker count, dependency window
// and link latency.
//
// A writer fills several object streams with keyed updates (mostly-disjoint
// access sets, the shape parallel playback exploits), then a cold runtime
// replays the whole log with the playback engine configured per cell.  The
// per-update apply cost is simulated with a blocking wait (--apply-us,
// default 50us) standing in for applies that touch something slower than
// memory — a durable index, a materialized view, a downstream cache — which
// is the regime where overlap pays even on one core.  --apply-mode=spin
// burns CPU instead, measuring compute scaling (needs as many free cores as
// workers to show a win).
//
// Shape to reproduce: throughput scales with workers until the dispatcher
// (decode + dependency tracking + scheduling) becomes the bottleneck;
// workers=0 is the sequential reference path, and the 4-vs-1 worker speedup
// under 50us link latency is the headline number (target >= 3x — the window
// column shows the fetch/apply overlap contribution).  --json=FILE dumps the
// grid for EXPERIMENTS.md.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/runtime/record.h"
#include "src/runtime/runtime.h"
#include "src/util/threading.h"

namespace tangobench {
namespace {

// Burns roughly `us` microseconds of CPU; volatile sink defeats hoisting.
void SpinFor(uint64_t us) {
  uint64_t deadline = tango::NowNanos() + us * 1000;
  volatile uint64_t sink = 0;
  while (tango::NowNanos() < deadline) {
    sink = sink + 1;
  }
}

class CostObject : public tango::TangoObject {
 public:
  CostObject(uint64_t apply_us, bool spin)
      : apply_us_(apply_us), spin_(spin) {}

  void Apply(std::span<const uint8_t> /*update*/,
             corfu::LogOffset /*offset*/) override {
    if (apply_us_ > 0) {
      if (spin_) {
        SpinFor(apply_us_);
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(apply_us_));
      }
    }
    applied_.fetch_add(1, std::memory_order_relaxed);
  }

  void Clear() override { applied_.store(0, std::memory_order_relaxed); }

  uint64_t applied() const { return applied_.load(std::memory_order_relaxed); }

 private:
  uint64_t apply_us_;
  bool spin_;
  std::atomic<uint64_t> applied_{0};
};

struct Cell {
  uint32_t latency_us = 0;
  int workers = 0;
  size_t window = 0;
  double replay_ms = 0;
  double entries_eps = 0;  // entries applied per second
};

Cell MeasureCell(int entries, int num_objects, uint64_t apply_us, bool spin,
                 uint32_t latency_us, int workers, size_t window) {
  Testbed bed(6, 2, 0);

  // Fill phase at zero link latency: the append path is not under test.
  // Keyed updates round-robin across objects and 16 slots per object, so
  // consecutive log entries almost always commute.
  auto writer = bed.MakeClient();
  for (int i = 0; i < entries; ++i) {
    tango::ObjectId oid = 1 + static_cast<tango::ObjectId>(i % num_objects);
    uint64_t slot = static_cast<uint64_t>(i / num_objects) % 16;
    std::vector<uint8_t> payload(32, static_cast<uint8_t>(i));
    tango::Record record =
        tango::MakeUpdateRecord(oid, payload, slot);
    auto appended = writer->AppendToStreams(tango::EncodeRecord(record), {oid});
    if (!appended.ok()) {
      std::fprintf(stderr, "append failed: %s\n",
                   appended.status().ToString().c_str());
      std::exit(1);
    }
  }
  auto tail = writer->CheckTail();
  if (!tail.ok()) {
    std::fprintf(stderr, "CheckTail failed\n");
    std::exit(1);
  }

  auto reader = bed.MakeClient();
  tango::TangoRuntime::Options options;
  options.playback_workers = workers;
  options.playback_window = window;
  tango::TangoRuntime runtime(reader.get(), options);
  std::vector<std::unique_ptr<CostObject>> objects;
  for (int i = 0; i < num_objects; ++i) {
    objects.push_back(std::make_unique<CostObject>(apply_us, spin));
    tango::ObjectId oid = 1 + static_cast<tango::ObjectId>(i);
    if (!runtime.RegisterObject(oid, objects.back().get()).ok()) {
      std::fprintf(stderr, "RegisterObject failed\n");
      std::exit(1);
    }
  }

  // Warm the stream metadata (backpointer walk / offset discovery) at zero
  // latency: cold sync is fig_readpath's subject, steady-state replay is
  // ours.  SyncTo(0) backfills every stream's offset list without playing
  // or fetching any entry.
  if (!runtime.SyncTo(0).ok()) {
    std::fprintf(stderr, "metadata warmup failed\n");
    std::exit(1);
  }

  bed.transport.set_link_latency_us(latency_us);

  Cell cell;
  cell.latency_us = latency_us;
  cell.workers = workers;
  cell.window = window;

  Stopwatch timer;
  tango::Status st = runtime.SyncTo(*tail);
  if (!st.ok()) {
    std::fprintf(stderr, "SyncTo failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  cell.replay_ms = static_cast<double>(timer.ElapsedUs()) / 1000.0;
  bed.transport.set_link_latency_us(0);

  uint64_t applied = 0;
  for (const auto& object : objects) {
    applied += object->applied();
  }
  if (applied != static_cast<uint64_t>(entries)) {
    std::fprintf(stderr, "applied %llu of %d entries\n",
                 static_cast<unsigned long long>(applied), entries);
    std::exit(1);
  }
  cell.entries_eps = entries / (cell.replay_ms / 1000.0);
  return cell;
}

void Run(const Flags& flags) {
  const int entries = static_cast<int>(flags.GetInt("entries", 2000));
  const int num_objects = static_cast<int>(flags.GetInt("objects", 8));
  const uint64_t apply_us =
      static_cast<uint64_t>(flags.GetInt("apply-us", 50));
  const bool spin = flags.GetString("apply-mode", "sleep") == "spin";
  const std::string json_path = flags.GetString("json", "");
  auto stats_dumper = MaybeStartStatsDumper(flags);

  std::printf(
      "Parallel playback: replay throughput vs workers x window x link "
      "latency\n"
      "(%d keyed updates over %d objects, %lluus %s apply; workers 0 "
      "= sequential reference)\n\n",
      entries, num_objects, static_cast<unsigned long long>(apply_us),
      spin ? "spinning" : "blocking");
  PrintHeader({"latency_us", "workers", "window", "replay_ms", "Kentries/s"});

  std::vector<Cell> cells;
  double eps_1w_50 = 0;   // workers=1 at 50us, window 32
  double eps_4w_50 = 0;   // workers=4 at 50us, window 32
  for (uint32_t latency_us : {0u, 50u}) {
    for (int workers : {0, 1, 2, 4, 8}) {
      for (size_t window : {size_t{8}, size_t{32}, size_t{128}}) {
        if (workers == 0 && window != 32) {
          continue;  // the sequential path has no window knob
        }
        Cell cell = MeasureCell(entries, num_objects, apply_us, spin,
                                latency_us, workers, window);
        PrintRow({std::to_string(latency_us), std::to_string(workers),
                  std::to_string(window), Fmt(cell.replay_ms, 1),
                  Fmt(cell.entries_eps / 1000.0)});
        cells.push_back(cell);
        if (latency_us == 50 && window == 32) {
          if (workers == 1) {
            eps_1w_50 = cell.entries_eps;
          } else if (workers == 4) {
            eps_4w_50 = cell.entries_eps;
          }
        }
      }
    }
    std::printf("\n");
  }

  double speedup = eps_1w_50 > 0 ? eps_4w_50 / eps_1w_50 : 0.0;
  std::printf(
      "4-vs-1 worker speedup at 50us link latency (window 32): %.2fx "
      "(target >= 3x)\n\n",
      speedup);

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      std::exit(1);
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"fig_playback\",\n  \"entries\": %d,\n"
                 "  \"objects\": %d,\n  \"apply_us\": %llu,\n"
                 "  \"apply_mode\": \"%s\",\n"
                 "  \"speedup_4w_vs_1w_50us\": %.3f,\n",
                 entries, num_objects,
                 static_cast<unsigned long long>(apply_us),
                 spin ? "spin" : "sleep", speedup);
    WriteRunInfoField(f);
    WriteMetricsField(f);
    std::fprintf(f, "  \"cells\": [\n");
    for (size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(f,
                   "    {\"latency_us\": %u, \"workers\": %d, \"window\": "
                   "%zu, \"replay_ms\": %.2f, \"entries_per_sec\": %.1f}%s\n",
                   c.latency_us, c.workers, c.window, c.replay_ms,
                   c.entries_eps, i + 1 == cells.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace tangobench

int main(int argc, char** argv) {
  tangobench::Flags flags(argc, argv);
  tangobench::Run(flags);
  return 0;
}
