// Figure 8 (left): latency/throughput on a single TangoRegister view.
//
// The paper sweeps the write ratio {0, .1, .5, .9, 1} and the window of
// outstanding operations (8..256), showing sub-millisecond reads at high
// throughput and ~2x costlier writes.  Our client API is synchronous, so the
// window is modeled as closed-loop concurrency (threads = outstanding ops).
// Shape to reproduce: read-heavy mixes reach higher throughput at lower
// latency; latency grows along each curve as the window widens.

#include "bench/bench_common.h"
#include "src/objects/tango_register.h"
#include "src/runtime/runtime.h"

namespace tangobench {
namespace {

void Run(const Flags& flags) {
  const int duration_ms = static_cast<int>(flags.GetInt("duration-ms", 250));
  const uint32_t storage_latency_us =
      static_cast<uint32_t>(flags.GetInt("storage-latency-us", 0));

  std::printf(
      "Figure 8 (left): single view latency vs throughput\n"
      "(window = closed-loop concurrency)\n\n");
  PrintHeader(
      {"write_ratio", "window", "Kops/s", "mean_us", "p50us", "p99us"});

  for (double write_ratio : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    for (int window : {1, 4, 16, 64}) {
      Testbed bed(18, 2, storage_latency_us);
      auto client = bed.MakeClient();
      tango::TangoRuntime runtime(client.get());
      tango::TangoRegister reg(&runtime, 1);
      (void)reg.Write(0);
      (void)reg.Read();

      RunResult result = RunWorkers(
          window, duration_ms,
          [&](int t, std::atomic<bool>* stop, WorkerCounts* counts) {
            tango::Rng rng(1000 + t);
            while (!stop->load(std::memory_order_relaxed)) {
              Stopwatch timer;
              bool ok;
              if (rng.NextBool(write_ratio)) {
                ok = reg.Write(static_cast<int64_t>(rng.Next())).ok();
              } else {
                ok = reg.Read().ok();
              }
              counts->total++;
              if (ok) {
                counts->good++;
                counts->latency_us.Record(timer.ElapsedUs());
              }
            }
          });

      PrintRow({Fmt(write_ratio, 1), std::to_string(window),
                Fmt(result.good_ops_per_sec / 1000.0),
                Fmt(result.latency_us.Mean(), 0),
                std::to_string(result.latency_us.Percentile(0.50)),
                std::to_string(result.latency_us.Percentile(0.99))});
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace tangobench

int main(int argc, char** argv) {
  tangobench::Flags flags(argc, argv);
  tangobench::Run(flags);
  return 0;
}
