// §6.3 (BookKeeper): ledger writes run at the speed of the shared log.
//
// Each writer owns a ledger and appends entries; an append is one raw stream
// append (no transaction), so aggregate throughput tracks the raw log append
// rate measured alongside.  Shape to reproduce: TangoBK adds negligible
// overhead over the log itself, and scales with writers until the log is
// the bottleneck.

#include "bench/bench_common.h"
#include "src/objects/tango_bookkeeper.h"
#include "src/runtime/runtime.h"

namespace tangobench {
namespace {

void Run(const Flags& flags) {
  const int duration_ms = static_cast<int>(flags.GetInt("duration-ms", 300));
  const int entry_bytes = static_cast<int>(flags.GetInt("entry-bytes", 256));

  std::printf(
      "Section 6.3: TangoBK ledger appends vs raw log appends "
      "(%dB entries)\n\n",
      entry_bytes);
  PrintHeader({"writers", "ledger_Kw/s", "rawlog_Kw/s", "overhead%"});

  const std::string payload(entry_bytes, 'x');
  for (int writers : {1, 2, 4, 8}) {
    double ledger_rate;
    {
      Testbed bed(18, 2, 0);
      struct Writer {
        std::unique_ptr<corfu::CorfuClient> client;
        std::unique_ptr<tango::TangoRuntime> runtime;
        std::unique_ptr<tango::TangoBk> bk;
        tango::TangoBk::LedgerHandle handle;
      };
      std::vector<Writer> pool(writers);
      for (int i = 0; i < writers; ++i) {
        pool[i].client = bed.MakeClient();
        pool[i].runtime =
            std::make_unique<tango::TangoRuntime>(pool[i].client.get());
        pool[i].bk = std::make_unique<tango::TangoBk>(pool[i].runtime.get(),
                                                      1);
        auto handle = pool[i].bk->CreateLedger();
        if (!handle.ok()) {
          std::fprintf(stderr, "ledger creation failed\n");
          std::exit(1);
        }
        pool[i].handle = *handle;
      }
      RunResult result = RunWorkers(
          writers, duration_ms,
          [&](int t, std::atomic<bool>* stop, WorkerCounts* counts) {
            while (!stop->load(std::memory_order_relaxed)) {
              counts->total++;
              if (pool[t].bk->AddEntry(pool[t].handle, payload).ok()) {
                counts->good++;
              }
            }
          });
      ledger_rate = result.good_ops_per_sec;
    }

    double raw_rate;
    {
      Testbed bed(18, 2, 0);
      std::vector<std::unique_ptr<corfu::CorfuClient>> clients;
      for (int i = 0; i < writers; ++i) {
        clients.push_back(bed.MakeClient());
      }
      std::vector<uint8_t> bytes(payload.begin(), payload.end());
      RunResult result = RunWorkers(
          writers, duration_ms,
          [&](int t, std::atomic<bool>* stop, WorkerCounts* counts) {
            while (!stop->load(std::memory_order_relaxed)) {
              counts->total++;
              if (clients[t]
                      ->AppendToStreams(bytes,
                                        {static_cast<corfu::StreamId>(t + 1)})
                      .ok()) {
                counts->good++;
              }
            }
          });
      raw_rate = result.good_ops_per_sec;
    }

    double overhead =
        raw_rate > 0 ? 100.0 * (raw_rate - ledger_rate) / raw_rate : 0;
    PrintRow({std::to_string(writers), Fmt(ledger_rate / 1000.0, 2),
              Fmt(raw_rate / 1000.0, 2), Fmt(overhead)});
  }
}

}  // namespace
}  // namespace tangobench

int main(int argc, char** argv) {
  tangobench::Flags flags(argc, argv);
  tangobench::Run(flags);
  return 0;
}
