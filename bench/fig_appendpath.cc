// Append path: single-client append throughput vs pipeline window and
// grant-batch size.
//
// Sweeps the simulated per-call transport latency {0, 50}us against the
// append pipeline's window {1, 4, 16} and sequencer grant batch {1, 8}.
// The (window 1, grant 1) cell is the synchronous baseline: one sequencer
// round trip plus one blocking chain write per append.  Shape to reproduce:
// with nonzero transport latency, throughput scales with the window (chain
// writes overlap) and the grant batch (sequencer round trips amortize)
// until the pipeline saturates the simulated links; at zero latency the
// pipeline is roughly neutral.  Every cell also checks the junk-fill
// invariant: after Shutdown no offset below the tail is unwritten, and the
// pipeline's token accounting balances.  --json=FILE dumps the grid (with a
// speedup-vs-sync column) for EXPERIMENTS.md.

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/corfu/append_pipeline.h"
#include "src/corfu/log_client.h"

namespace tangobench {
namespace {

struct Cell {
  uint32_t latency_us = 0;
  uint32_t window = 1;
  uint32_t grant = 1;
  double appends_per_sec = 0;
  double speedup = 1.0;  // vs the (window 1, grant 1) cell at this latency
  uint64_t grant_rpcs = 0;
  uint64_t tokens_granted = 0;
  uint64_t tokens_filled = 0;
};

Cell MeasureCell(int appends, uint32_t latency_us, uint32_t window,
                 uint32_t grant) {
  const corfu::StreamId stream = 7;
  const std::vector<uint8_t> payload(64, 0xab);

  Testbed bed(6, 2, 0);
  corfu::CorfuClient::Options options;
  options.hole_timeout_ms = 10;
  options.pipeline.window = window;
  options.pipeline.grant_batch = grant;
  auto client = bed.cluster->MakeClient(options);

  bed.transport.set_link_latency_us(latency_us);

  // One submitter thread; the pipeline window is the only concurrency.
  Stopwatch timer;
  std::vector<corfu::AppendPipeline::Handle> handles;
  handles.reserve(static_cast<size_t>(appends));
  for (int i = 0; i < appends; ++i) {
    handles.push_back(client->AppendAsync(payload, {stream}));
  }
  client->pipeline().Drain();
  double elapsed_s = static_cast<double>(timer.ElapsedUs()) / 1e6;

  for (int i = 0; i < appends; ++i) {
    if (!handles[i].Wait().ok()) {
      std::fprintf(stderr, "append %d failed: %s\n", i,
                   handles[i].Wait().ToString().c_str());
      std::exit(1);
    }
  }

  // Teardown at full speed, then audit the junk-fill invariant: the token
  // accounting balances and no offset below the tail is left unwritten.
  bed.transport.set_link_latency_us(0);
  client->pipeline().Shutdown();
  corfu::AppendPipeline::Stats stats = client->pipeline().stats();
  if (stats.completed_ok != static_cast<uint64_t>(appends) ||
      stats.fill_failures != 0 ||
      stats.tokens_abandoned != stats.tokens_filled ||
      stats.tokens_granted !=
          stats.completed_ok + stats.tokens_lost + stats.tokens_abandoned) {
    std::fprintf(stderr, "token accounting broken at w=%u g=%u\n", window,
                 grant);
    std::exit(1);
  }
  auto reader = bed.MakeClient();
  auto tail = reader->CheckTail();
  if (!tail.ok()) {
    std::fprintf(stderr, "CheckTail failed\n");
    std::exit(1);
  }
  std::vector<corfu::LogOffset> offsets;
  for (corfu::LogOffset o = 0; o < *tail; ++o) {
    offsets.push_back(o);
  }
  auto batch = reader->ReadBatch(offsets);
  if (!batch.ok()) {
    std::fprintf(stderr, "ReadBatch failed\n");
    std::exit(1);
  }
  for (corfu::LogOffset o = 0; o < *tail; ++o) {
    if ((*batch)[o].status.code() == tango::StatusCode::kUnwritten) {
      std::fprintf(stderr,
                   "junk-fill invariant violated: offset %llu unwritten "
                   "(w=%u g=%u)\n",
                   static_cast<unsigned long long>(o), window, grant);
      std::exit(1);
    }
  }

  Cell cell;
  cell.latency_us = latency_us;
  cell.window = window;
  cell.grant = grant;
  cell.appends_per_sec = appends / elapsed_s;
  cell.grant_rpcs = stats.grant_rpcs;
  cell.tokens_granted = stats.tokens_granted;
  cell.tokens_filled = stats.tokens_filled;
  return cell;
}

void Run(const Flags& flags) {
  const int appends = static_cast<int>(flags.GetInt("appends", 400));
  const std::string json_path = flags.GetString("json", "");
  auto stats_dumper = MaybeStartStatsDumper(flags);

  std::printf(
      "Append path: single-client throughput vs pipeline window x grant "
      "batch\n"
      "(%d appends of 64B, 6 storage nodes, replication 2; window 1 / grant "
      "1 = synchronous baseline)\n\n",
      appends);
  PrintHeader({"latency_us", "window", "grant", "Kappend/s", "speedup",
               "grant_rpcs"});

  std::vector<Cell> cells;
  for (uint32_t latency_us : {0u, 50u}) {
    double baseline = 0;
    for (uint32_t window : {1u, 4u, 16u}) {
      for (uint32_t grant : {1u, 8u}) {
        if (window == 1 && grant == 8) {
          continue;  // a window of 1 cannot use a batch; skip the dup cell
        }
        Cell cell = MeasureCell(appends, latency_us, window, grant);
        if (window == 1 && grant == 1) {
          baseline = cell.appends_per_sec;
        }
        cell.speedup = baseline > 0 ? cell.appends_per_sec / baseline : 1.0;
        PrintRow({std::to_string(latency_us), std::to_string(window),
                  std::to_string(grant), Fmt(cell.appends_per_sec / 1000.0),
                  Fmt(cell.speedup, 2) + "x",
                  std::to_string(cell.grant_rpcs)});
        cells.push_back(cell);
      }
    }
    std::printf("\n");
  }

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      std::exit(1);
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"fig_appendpath\",\n  \"appends\": %d,\n",
                 appends);
    WriteRunInfoField(f);
    WriteMetricsField(f);
    std::fprintf(f, "  \"cells\": [\n");
    for (size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(f,
                   "    {\"latency_us\": %u, \"window\": %u, \"grant\": %u, "
                   "\"appends_per_sec\": %.1f, \"speedup_vs_sync\": %.2f, "
                   "\"grant_rpcs\": %llu, \"tokens_granted\": %llu, "
                   "\"tokens_filled\": %llu}%s\n",
                   c.latency_us, c.window, c.grant, c.appends_per_sec,
                   c.speedup, static_cast<unsigned long long>(c.grant_rpcs),
                   static_cast<unsigned long long>(c.tokens_granted),
                   static_cast<unsigned long long>(c.tokens_filled),
                   i + 1 == cells.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace tangobench

int main(int argc, char** argv) {
  tangobench::Flags flags(argc, argv);
  tangobench::Run(flags);
  return 0;
}
