// Figure 8 (right): elasticity of linearizable reads.
//
// Read throughput scales by adding read-only views against a fixed write
// load, until the shared log saturates.  The paper contrasts an 18-server
// log (scales to 180K reads/s with 18 readers, each issuing 10K reads/s)
// with a 2-server log (ceiling ~120K).  Following the paper, each reader
// view is paced at a fixed rate; saturation appears as achieved aggregate
// throughput falling below the target and read latency blowing up.  We
// bound per-server IOPS with serialized simulated media latency, so the
// 2-server log's single tail node becomes the fetch bottleneck while the
// 18-server log spreads playback reads over nine replica sets.

#include "bench/bench_common.h"
#include "src/objects/tango_register.h"
#include "src/runtime/runtime.h"

namespace tangobench {
namespace {

void Run(const Flags& flags) {
  const int duration_ms = static_cast<int>(flags.GetInt("duration-ms", 400));
  const uint32_t storage_latency_us =
      static_cast<uint32_t>(flags.GetInt("storage-latency-us", 100));
  const double write_rate = flags.GetDouble("writes-per-sec", 1000);
  const double reads_per_view = flags.GetDouble("reads-per-view", 2000);

  std::printf(
      "Figure 8 (right): paced readers (%g reads/s per view), %g writes/s\n"
      "(storage latency %uus bounds per-server IOPS)\n\n",
      reads_per_view, write_rate, storage_latency_us);
  PrintHeader({"log_servers", "readers", "target_Ks", "achieved_Ks",
               "read_p99us"});

  for (int servers : {2, 18}) {
    for (int readers : {1, 2, 4, 8, 12}) {
      Testbed bed(servers, 2, storage_latency_us);

      auto writer_client = bed.MakeClient();
      tango::TangoRuntime writer_rt(writer_client.get());
      tango::TangoRegister writer_view(&writer_rt, 1);
      (void)writer_view.Write(0);

      std::vector<std::unique_ptr<corfu::CorfuClient>> clients;
      std::vector<std::unique_ptr<tango::TangoRuntime>> runtimes;
      std::vector<std::unique_ptr<tango::TangoRegister>> views;
      for (int r = 0; r < readers; ++r) {
        clients.push_back(bed.MakeClient());
        runtimes.push_back(
            std::make_unique<tango::TangoRuntime>(clients.back().get()));
        views.push_back(
            std::make_unique<tango::TangoRegister>(runtimes.back().get(), 1));
        (void)views.back()->Read();
      }

      RunResult result = RunWorkers(
          1 + readers, duration_ms,
          [&](int t, std::atomic<bool>* stop, WorkerCounts* counts) {
            if (t == 0) {
              Pacer pacer(write_rate);
              while (pacer.Wait(*stop)) {
                (void)writer_view.Write(1);
              }
              return;
            }
            tango::TangoRegister& view = *views[t - 1];
            Pacer pacer(reads_per_view);
            while (pacer.Wait(*stop)) {
              Stopwatch timer;
              if (view.Read().ok()) {
                counts->good++;
                counts->latency_us.Record(timer.ElapsedUs());
              }
              counts->total++;
            }
          });

      PrintRow({std::to_string(servers), std::to_string(readers),
                Fmt(readers * reads_per_view / 1000.0),
                Fmt(result.good_ops_per_sec / 1000.0),
                std::to_string(result.latency_us.Percentile(0.99))});
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace tangobench

int main(int argc, char** argv) {
  tangobench::Flags flags(argc, argv);
  tangobench::Run(flags);
  return 0;
}
