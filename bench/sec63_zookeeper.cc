// §6.3 (ZooKeeper): TangoZK performance tracks TangoMap; cross-namespace
// moves run at an order of magnitude lower but *exist at all* — ZooKeeper
// cannot move a file between instances atomically.
//
// N nodes each run an independent TangoZk namespace; a fraction of
// operations atomically move a znode to the next node's namespace (which
// requires hosting both views, so every node also hosts its neighbor's
// namespace).  Shapes: independent-namespace throughput scales like
// fig10_partitioned; move throughput is much lower but non-zero.

#include "bench/bench_common.h"
#include "src/objects/tango_zookeeper.h"
#include "src/runtime/runtime.h"

namespace tangobench {
namespace {

void Run(const Flags& flags) {
  const int duration_ms = static_cast<int>(flags.GetInt("duration-ms", 300));
  const int num_nodes = static_cast<int>(flags.GetInt("nodes", 4));

  std::printf(
      "Section 6.3: TangoZK — independent namespaces vs cross-namespace "
      "moves (%d nodes)\n\n",
      num_nodes);
  PrintHeader({"move_pct", "Kops/s", "Kgood/s"});

  for (int pct : {0, 1, 10, 50, 100}) {
    double fraction = pct / 100.0;
    Testbed bed(18, 2, 0);

    struct Node {
      std::unique_ptr<corfu::CorfuClient> client;
      std::unique_ptr<tango::TangoRuntime> runtime;
      std::unique_ptr<tango::TangoZk> own;
      std::unique_ptr<tango::TangoZk> neighbor;  // next node's namespace
    };
    std::vector<Node> nodes(num_nodes);
    // Namespaces are hosted by two nodes each without their full read sets
    // being co-hosted everywhere, so they are marked as requiring decision
    // records (§4.1).
    tango::ObjectConfig needs_decision;
    needs_decision.needs_decision_records = true;
    for (int i = 0; i < num_nodes; ++i) {
      nodes[i].client = bed.MakeClient();
      nodes[i].runtime =
          std::make_unique<tango::TangoRuntime>(nodes[i].client.get());
      nodes[i].own = std::make_unique<tango::TangoZk>(
          nodes[i].runtime.get(), static_cast<tango::ObjectId>(i + 1),
          needs_decision);
      nodes[i].neighbor = std::make_unique<tango::TangoZk>(
          nodes[i].runtime.get(),
          static_cast<tango::ObjectId>((i + 1) % num_nodes + 1),
          needs_decision);
    }
    for (int i = 0; i < num_nodes; ++i) {
      (void)nodes[i].own->Create("/data", "");
      (void)nodes[i].own->Create("/inbox", "");
    }

    RunResult result = RunWorkers(
        num_nodes, duration_ms,
        [&](int t, std::atomic<bool>* stop, WorkerCounts* counts) {
          Node& node = nodes[t];
          tango::Rng rng(3000 + t);
          uint64_t seq = 0;
          while (!stop->load(std::memory_order_relaxed)) {
            counts->total++;
            if (rng.NextBool(fraction)) {
              // Create a node, then atomically move it to the neighbor's
              // namespace (two ops; count the move as the op of record).
              std::string path = "/data/m" + std::to_string(t) + "-" +
                                 std::to_string(seq++);
              if (!node.own->Create(path, "payload").ok()) {
                continue;
              }
              std::string dst = "/inbox/m" + std::to_string(t) + "-" +
                                std::to_string(seq);
              if (node.own->MoveTo(path, *node.neighbor, dst).ok()) {
                counts->good++;
              }
            } else {
              std::string path =
                  "/data/n" + std::to_string(rng.NextBelow(1000));
              tango::Status st = node.own->SetData(path, "v");
              if (st.code() == tango::StatusCode::kNotFound) {
                st = node.own->Create(path, "v");
              }
              if (st.ok()) {
                counts->good++;
              }
            }
          }
        });

    PrintRow({std::to_string(pct), Fmt(result.ops_per_sec / 1000.0, 2),
              Fmt(result.good_ops_per_sec / 1000.0, 2)});
  }
}

}  // namespace
}  // namespace tangobench

int main(int argc, char** argv) {
  tangobench::Flags flags(argc, argv);
  tangobench::Run(flags);
  return 0;
}
