// Ablation (§5): cost of stream metadata reconstruction vs the backpointer
// redundancy factor K, and the price of junk dead-ends.
//
// A cold client rebuilds an N-entry stream's linked list by striding
// backward: ~N/K reads.  Higher K means fewer reads (longer strides) but
// bigger entry headers.  Junk entries (filled holes) break the chain; when
// the last K grants of a stream are all junk, the reader degrades to a
// backward scan.

#include "bench/bench_common.h"
#include "src/corfu/stream.h"

namespace tangobench {
namespace {

void Run(const Flags& flags) {
  const int entries = static_cast<int>(flags.GetInt("entries", 400));
  const int noise = static_cast<int>(flags.GetInt("noise-entries", 400));

  std::printf(
      "Ablation: stream reconstruction cost vs backpointer count K\n"
      "(%d stream entries interleaved with %d entries of other streams)\n\n",
      entries, noise);
  PrintHeader({"K", "recon_reads", "reads/entry", "sync_us"});

  for (uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
    tango::InProcTransport transport;
    corfu::CorfuCluster::Options options;
    options.num_storage_nodes = 6;
    options.replication_factor = 2;
    options.backpointer_count = k;
    corfu::CorfuCluster cluster(&transport, options);

    auto writer = cluster.MakeClient();
    corfu::StreamStore writer_store(writer.get());
    tango::Rng rng(k);
    std::vector<uint8_t> payload{1, 2, 3};
    int written = 0, noise_written = 0;
    while (written < entries || noise_written < noise) {
      bool pick_stream =
          noise_written >= noise ||
          (written < entries && rng.NextBool(0.5));
      if (pick_stream) {
        (void)writer_store.Append(1, payload);
        ++written;
      } else {
        (void)writer_store.Append(2, payload);
        ++noise_written;
      }
    }

    auto cold = cluster.MakeClient();
    corfu::StreamStore cold_store(cold.get());
    cold_store.Open(1);
    Stopwatch timer;
    if (!cold_store.Sync(1).ok()) {
      std::fprintf(stderr, "sync failed\n");
      std::exit(1);
    }
    uint64_t sync_us = timer.ElapsedUs();
    uint64_t reads = cold_store.reconstruction_reads();
    PrintRow({std::to_string(k), std::to_string(reads),
              Fmt(static_cast<double>(reads) / entries, 3),
              std::to_string(sync_us)});
  }

  std::printf(
      "\nJunk dead-ends: reconstruction cost when the last J grants of the\n"
      "stream were filled holes (K=4; J>=K forces a backward scan)\n\n");
  PrintHeader({"junk_tail", "recon_reads", "sync_us"});
  for (int junk : {0, 1, 3, 4, 8}) {
    tango::InProcTransport transport;
    corfu::CorfuCluster::Options options;
    options.num_storage_nodes = 6;
    options.replication_factor = 2;
    corfu::CorfuCluster cluster(&transport, options);

    auto writer = cluster.MakeClient();
    corfu::StreamStore writer_store(writer.get());
    std::vector<uint8_t> payload{1};
    for (int i = 0; i < 100; ++i) {
      (void)writer_store.Append(1, payload);
      (void)writer_store.Append(2, payload);  // interleaved noise
    }
    for (int j = 0; j < junk; ++j) {
      auto grant = corfu::SequencerNext(&transport,
                                        writer->projection().sequencer,
                                        writer->projection().epoch, 1, {1});
      if (grant.ok()) {
        (void)writer->Fill(grant->start);
      }
    }

    auto cold = cluster.MakeClient();
    corfu::StreamStore cold_store(cold.get());
    cold_store.Open(1);
    Stopwatch timer;
    (void)cold_store.Sync(1);
    PrintRow({std::to_string(junk),
              std::to_string(cold_store.reconstruction_reads()),
              std::to_string(timer.ElapsedUs())});
  }
}

}  // namespace
}  // namespace tangobench

int main(int argc, char** argv) {
  tangobench::Flags flags(argc, argv);
  tangobench::Run(flags);
  return 0;
}
