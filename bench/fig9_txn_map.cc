// Figure 9: transactions on a single fully replicated TangoMap.
//
// Every node hosts a view of the same map; each transaction reads 3 keys and
// writes 3 other keys, with keys drawn zipf (YCSB-a style, theta .99) or
// uniform.  The paper's shapes: goodput approaches throughput as the key
// space grows (less contention); zipf keeps goodput lower than uniform at
// every size; and adding nodes beyond a point does not increase throughput —
// the playback bottleneck, since every client must consume every update.

#include "bench/bench_common.h"
#include "src/objects/tango_map.h"
#include "src/runtime/runtime.h"

namespace tangobench {
namespace {

constexpr tango::ObjectId kMapOid = 1;

struct Node {
  std::unique_ptr<corfu::CorfuClient> client;
  std::unique_ptr<tango::TangoRuntime> runtime;
  std::unique_ptr<tango::TangoMap> map;
};

void Run(const Flags& flags) {
  const int duration_ms = static_cast<int>(flags.GetInt("duration-ms", 300));
  const int reads_per_tx = static_cast<int>(flags.GetInt("reads", 3));
  const int writes_per_tx = static_cast<int>(flags.GetInt("writes", 3));
  // Client-side latency between reading and committing.  On the paper's
  // testbed this window is real network/SSD time (tx latency ~6.5 ms); in
  // one process the threads would otherwise serialize and almost never
  // overlap, hiding contention entirely.
  const int think_us = static_cast<int>(flags.GetInt("think-us", 200));

  std::printf(
      "Figure 9: transactions on one fully replicated TangoMap (3R+3W)\n\n");
  PrintHeader({"dist", "keys", "nodes", "Ktx/s", "Kgood/s", "good%"});

  for (bool zipf : {true, false}) {
    for (uint64_t num_keys : {10ULL, 1000ULL, 100000ULL}) {
      for (int num_nodes : {2, 4, 8}) {
        Testbed bed(18, 2, 0);
        std::vector<Node> nodes(num_nodes);
        for (Node& node : nodes) {
          node.client = bed.MakeClient();
          node.runtime =
              std::make_unique<tango::TangoRuntime>(node.client.get());
          node.map =
              std::make_unique<tango::TangoMap>(node.runtime.get(), kMapOid);
        }
        // Seed a few keys and sync all views.
        (void)nodes[0].map->Put("seed", "0");
        for (Node& node : nodes) {
          (void)node.map->Size();
        }

        RunResult result = RunWorkers(
            num_nodes, duration_ms,
            [&](int t, std::atomic<bool>* stop, WorkerCounts* counts) {
              Node& node = nodes[t];
              tango::ZipfGenerator zgen(num_keys, 0.99, 7000 + t);
              tango::Rng rng(9000 + t);
              auto next_key = [&] {
                uint64_t k = zipf ? zgen.Next() : rng.NextBelow(num_keys);
                return "key" + std::to_string(k);
              };
              while (!stop->load(std::memory_order_relaxed)) {
                (void)node.runtime->BeginTx();
                for (int r = 0; r < reads_per_tx; ++r) {
                  (void)node.map->Get(next_key());
                }
                bool staged = true;
                for (int w = 0; w < writes_per_tx; ++w) {
                  staged &= node.map->Put(next_key(), "v").ok();
                }
                if (think_us > 0) {
                  std::this_thread::sleep_for(
                      std::chrono::microseconds(think_us));
                }
                counts->total++;
                if (staged && node.runtime->EndTx().ok()) {
                  counts->good++;
                } else if (node.runtime->InTx()) {
                  node.runtime->AbortTx();
                }
              }
            });

        double good_pct = result.ops_per_sec > 0
                              ? 100.0 * result.good_ops_per_sec /
                                    result.ops_per_sec
                              : 0;
        PrintRow({zipf ? "zipf" : "uniform", std::to_string(num_keys),
                  std::to_string(num_nodes),
                  Fmt(result.ops_per_sec / 1000.0, 2),
                  Fmt(result.good_ops_per_sec / 1000.0, 2), Fmt(good_pct)});
      }
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace tangobench

int main(int argc, char** argv) {
  tangobench::Flags flags(argc, argv);
  tangobench::Run(flags);
  return 0;
}
