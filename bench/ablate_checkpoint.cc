// Ablation (§3.1, History): view instantiation cost with and without
// checkpoints.
//
// A fresh client instantiates a TangoMap view.  Without a checkpoint it
// replays the whole stream (cost linear in history length); with one it
// restores a snapshot and replays only the suffix.  This is also what makes
// forget/trim possible: the table shows rebuild cost staying flat as history
// grows when checkpoints are taken every `period` updates.

#include "bench/bench_common.h"
#include "src/objects/tango_map.h"
#include "src/runtime/runtime.h"

namespace tangobench {
namespace {

void Run(const Flags& flags) {
  const int checkpoint_period =
      static_cast<int>(flags.GetInt("checkpoint-period", 500));

  std::printf(
      "Ablation: view instantiation time vs history length\n"
      "(checkpoints every %d updates in the checkpointed column)\n\n",
      checkpoint_period);
  PrintHeader({"history", "replay_us", "restore_us", "speedup"});

  for (int history : {100, 500, 1000, 2000, 4000}) {
    // Build two identical histories: one bare, one with periodic checkpoints.
    auto build = [&](bool checkpoints) -> uint64_t {
      Testbed bed(6, 2, 0);
      {
        auto writer_client = bed.MakeClient();
        tango::TangoRuntime writer_rt(writer_client.get());
        tango::TangoMap map(&writer_rt, 1);
        for (int i = 0; i < history; ++i) {
          (void)map.Put("key" + std::to_string(i % 64), "v" + std::to_string(i));
          if (checkpoints && (i + 1) % checkpoint_period == 0) {
            (void)writer_rt.WriteCheckpoint(1);
          }
        }
      }
      auto cold_client = bed.MakeClient();
      tango::TangoRuntime cold_rt(cold_client.get());
      tango::TangoMap cold_map(&cold_rt, 1);
      Stopwatch timer;
      (void)cold_rt.LoadObject(1);
      (void)cold_map.Size();  // plays the (remaining) stream
      return timer.ElapsedUs();
    };

    uint64_t replay_us = build(false);
    uint64_t restore_us = build(true);
    PrintRow({std::to_string(history), std::to_string(replay_us),
              std::to_string(restore_us),
              Fmt(static_cast<double>(replay_us) /
                  std::max<uint64_t>(restore_us, 1), 2)});
  }
}

}  // namespace
}  // namespace tangobench

int main(int argc, char** argv) {
  tangobench::Flags flags(argc, argv);
  tangobench::Run(flags);
  return 0;
}
