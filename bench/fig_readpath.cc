// Read path: playback throughput and sync latency vs read batch size.
//
// Sweeps the simulated per-call transport latency {0, 50, 200}us against the
// read-ahead depth {1, 8, 32, 128} (1 = the unbatched one-RPC-per-entry
// path, i.e. readahead off).  For each cell a writer fills one stream, then
// a cold reader syncs it (backpointer backfill) and replays every entry with
// an empty entry cache.  Shape to reproduce: with nonzero transport latency,
// playback throughput scales near-linearly with batch size until the batch
// amortizes the round trip below the storage/deserialize cost; at zero
// latency batching is roughly neutral.  --json=FILE dumps the grid for
// EXPERIMENTS.md.

#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/corfu/stream.h"

namespace tangobench {
namespace {

struct Cell {
  uint32_t latency_us = 0;
  int batch = 1;
  double sync_ms = 0;        // cold sync: backpointer walk + offset discovery
  double playback_eps = 0;   // entries/sec replaying the synced stream
  uint64_t replay_rpcs = 0;  // transport calls issued during replay
};

Cell MeasureCell(int entries, uint32_t latency_us, int batch) {
  const corfu::StreamId stream = 7;
  const std::vector<uint8_t> payload(64, 0xab);

  Testbed bed(6, 2, 0);
  // Fill phase at zero link latency: the write path is not under test.
  auto writer = bed.MakeClient();
  corfu::StreamStore wstore(writer.get());
  for (int i = 0; i < entries; ++i) {
    if (!wstore.Append(stream, payload).ok()) {
      std::fprintf(stderr, "append failed\n");
      std::exit(1);
    }
  }

  auto reader = bed.MakeClient();
  corfu::StreamStore::Options opt;
  opt.readahead = batch == 1 ? 0 : static_cast<size_t>(batch);
  opt.cache_capacity = static_cast<size_t>(entries) + 1;
  corfu::StreamStore rstore(reader.get(), opt);

  bed.transport.set_link_latency_us(latency_us);

  Cell cell;
  cell.latency_us = latency_us;
  cell.batch = batch;

  Stopwatch sync_timer;
  if (!rstore.Sync(stream).ok()) {
    std::fprintf(stderr, "sync failed\n");
    std::exit(1);
  }
  cell.sync_ms = static_cast<double>(sync_timer.ElapsedUs()) / 1000.0;

  // Replay with a cold cache so every entry crosses the transport.
  rstore.ClearEntryCache();
  rstore.ResetCursor(stream);
  uint64_t rpc_before = bed.transport.call_count();
  Stopwatch replay_timer;
  int replayed = 0;
  while (true) {
    tango::Result<corfu::StreamEntry> e = rstore.ReadNext(stream);
    if (!e.ok()) {
      if (e.status() == tango::StatusCode::kUnwritten) {
        break;  // synced end
      }
      std::fprintf(stderr, "replay failed: %s\n",
                   e.status().ToString().c_str());
      std::exit(1);
    }
    ++replayed;
  }
  double elapsed_s = static_cast<double>(replay_timer.ElapsedUs()) / 1e6;
  cell.playback_eps = replayed > 0 ? replayed / elapsed_s : 0.0;
  cell.replay_rpcs = bed.transport.call_count() - rpc_before;
  bed.transport.set_link_latency_us(0);

  if (replayed != entries) {
    std::fprintf(stderr, "replayed %d of %d entries\n", replayed, entries);
    std::exit(1);
  }
  return cell;
}

// The observability overhead budget: the hot read path with the metrics
// registry live vs SetMetricsEnabled(false), best of `reps` runs each.
// DESIGN.md holds the registry to < 3% on this number.
struct ObsOverhead {
  double enabled_eps = 0;
  double disabled_eps = 0;
  double overhead_pct = 0;
};

ObsOverhead MeasureObsOverhead(int entries, int reps) {
  const corfu::StreamId stream = 7;
  const std::vector<uint8_t> payload(64, 0xab);

  // One shared testbed with interleaved enabled/disabled replays (best of
  // `reps` each), so setup and machine drift cancel out of the comparison.
  Testbed bed(6, 2, 0);
  auto writer = bed.MakeClient();
  corfu::StreamStore wstore(writer.get());
  for (int i = 0; i < entries; ++i) {
    if (!wstore.Append(stream, payload).ok()) {
      std::fprintf(stderr, "append failed\n");
      std::exit(1);
    }
  }
  auto reader = bed.MakeClient();
  corfu::StreamStore::Options opt;
  opt.readahead = 32;
  opt.cache_capacity = static_cast<size_t>(entries) + 1;
  corfu::StreamStore rstore(reader.get(), opt);
  if (!rstore.Sync(stream).ok()) {
    std::fprintf(stderr, "sync failed\n");
    std::exit(1);
  }

  auto replay_once = [&]() -> double {
    rstore.ClearEntryCache();
    rstore.ResetCursor(stream);
    Stopwatch timer;
    int replayed = 0;
    while (true) {
      tango::Result<corfu::StreamEntry> e = rstore.ReadNext(stream);
      if (!e.ok()) {
        if (e.status() == tango::StatusCode::kUnwritten) {
          break;
        }
        std::fprintf(stderr, "replay failed: %s\n",
                     e.status().ToString().c_str());
        std::exit(1);
      }
      ++replayed;
    }
    if (replayed != entries) {
      std::fprintf(stderr, "replayed %d of %d entries\n", replayed, entries);
      std::exit(1);
    }
    return replayed / (static_cast<double>(timer.ElapsedUs()) / 1e6);
  };

  replay_once();  // warmup: page in code and allocator state

  // Each rep measures an (enabled, disabled) pair back to back — order
  // alternating to cancel drift — and the reported overhead is the median
  // of the per-pair deltas, which shrugs off the occasional rep that lands
  // on a scheduler hiccup.
  ObsOverhead result;
  std::vector<double> overheads;
  for (int r = 0; r < reps; ++r) {
    double enabled_eps, disabled_eps;
    if (r % 2 == 0) {
      tango::obs::SetMetricsEnabled(true);
      enabled_eps = replay_once();
      tango::obs::SetMetricsEnabled(false);
      disabled_eps = replay_once();
    } else {
      tango::obs::SetMetricsEnabled(false);
      disabled_eps = replay_once();
      tango::obs::SetMetricsEnabled(true);
      enabled_eps = replay_once();
    }
    result.enabled_eps = std::max(result.enabled_eps, enabled_eps);
    result.disabled_eps = std::max(result.disabled_eps, disabled_eps);
    overheads.push_back((disabled_eps - enabled_eps) * 100.0 / disabled_eps);
  }
  tango::obs::SetMetricsEnabled(true);
  std::sort(overheads.begin(), overheads.end());
  result.overhead_pct = overheads[overheads.size() / 2];
  return result;
}

void Run(const Flags& flags) {
  const int entries = static_cast<int>(flags.GetInt("entries", 2000));
  const int obs_reps = static_cast<int>(flags.GetInt("obs-reps", 9));
  const std::string json_path = flags.GetString("json", "");
  auto stats_dumper = MaybeStartStatsDumper(flags);

  std::printf(
      "Read path: playback throughput vs read batch size\n"
      "(%d entries, 6 storage nodes, replication 2; batch 1 = readahead "
      "off)\n\n",
      entries);
  PrintHeader({"latency_us", "batch", "sync_ms", "Kentries/s", "replay_rpcs"});

  std::vector<Cell> cells;
  for (uint32_t latency_us : {0u, 50u, 200u}) {
    for (int batch : {1, 8, 32, 128}) {
      Cell cell = MeasureCell(entries, latency_us, batch);
      PrintRow({std::to_string(latency_us), std::to_string(batch),
                Fmt(cell.sync_ms, 1), Fmt(cell.playback_eps / 1000.0),
                std::to_string(cell.replay_rpcs)});
      cells.push_back(cell);
    }
    std::printf("\n");
  }

  // Longer runs than the grid cells: the replay must be well past the
  // timer/cache-warmup noise floor for a < 3% comparison to mean anything.
  const int obs_entries = std::max(entries, 10000);
  ObsOverhead obs = MeasureObsOverhead(obs_entries, obs_reps);
  std::printf(
      "metrics-registry overhead (%d entries, latency 0, batch 32, median "
      "of %d pairs):\n"
      "  enabled %.0f entries/s, disabled %.0f entries/s (best) -> %.2f%% "
      "(budget < 3%%)\n\n",
      obs_entries, obs_reps, obs.enabled_eps, obs.disabled_eps,
      obs.overhead_pct);

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      std::exit(1);
    }
    std::fprintf(f, "{\n  \"bench\": \"fig_readpath\",\n  \"entries\": %d,\n",
                 entries);
    std::fprintf(f,
                 "  \"obs_overhead\": {\"enabled_entries_per_sec\": %.1f, "
                 "\"disabled_entries_per_sec\": %.1f, \"overhead_pct\": "
                 "%.2f},\n",
                 obs.enabled_eps, obs.disabled_eps, obs.overhead_pct);
    WriteRunInfoField(f);
    WriteMetricsField(f);
    std::fprintf(f, "  \"cells\": [\n");
    for (size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(f,
                   "    {\"latency_us\": %u, \"batch\": %d, \"sync_ms\": "
                   "%.2f, \"playback_entries_per_sec\": %.1f, "
                   "\"replay_rpcs\": %llu}%s\n",
                   c.latency_us, c.batch, c.sync_ms, c.playback_eps,
                   static_cast<unsigned long long>(c.replay_rpcs),
                   i + 1 == cells.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace tangobench

int main(int argc, char** argv) {
  tangobench::Flags flags(argc, argv);
  tangobench::Run(flags);
  return 0;
}
