// Figure 10 (left): layered partitioning scales until the log saturates.
//
// Each node hosts the view of a *different* TangoMap (its own stream) and
// runs single-object transactions.  Unlike Figure 9, nobody replays anyone
// else's updates, so throughput scales linearly with nodes — until the
// underlying shared log is saturated.  The paper contrasts a 6-server log
// (ceiling ~150K tx/s) with an 18-server one (no ceiling in range); we bound
// per-server IOPS with simulated media latency to expose the same ceiling.

#include "bench/bench_common.h"
#include "src/objects/tango_map.h"
#include "src/runtime/runtime.h"

namespace tangobench {
namespace {

void Run(const Flags& flags) {
  const int duration_ms = static_cast<int>(flags.GetInt("duration-ms", 300));
  const uint32_t storage_latency_us =
      static_cast<uint32_t>(flags.GetInt("storage-latency-us", 200));

  std::printf(
      "Figure 10 (left): partitioned maps, single-partition transactions\n"
      "(storage latency %uus bounds per-server IOPS)\n\n",
      storage_latency_us);
  PrintHeader({"log_servers", "nodes", "Ktx/s", "Kgood/s"});

  for (int servers : {6, 18}) {
    for (int num_nodes : {1, 2, 4, 8, 12}) {
      Testbed bed(servers, 2, storage_latency_us);

      struct Node {
        std::unique_ptr<corfu::CorfuClient> client;
        std::unique_ptr<tango::TangoRuntime> runtime;
        std::unique_ptr<tango::TangoMap> map;
      };
      std::vector<Node> nodes(num_nodes);
      for (int i = 0; i < num_nodes; ++i) {
        nodes[i].client = bed.MakeClient();
        nodes[i].runtime =
            std::make_unique<tango::TangoRuntime>(nodes[i].client.get());
        nodes[i].map = std::make_unique<tango::TangoMap>(
            nodes[i].runtime.get(), static_cast<tango::ObjectId>(i + 1));
        (void)nodes[i].map->Put("seed", "0");
        (void)nodes[i].map->Size();
      }

      RunResult result = RunWorkers(
          num_nodes, duration_ms,
          [&](int t, std::atomic<bool>* stop, WorkerCounts* counts) {
            Node& node = nodes[t];
            tango::Rng rng(4000 + t);
            while (!stop->load(std::memory_order_relaxed)) {
              (void)node.runtime->BeginTx();
              for (int r = 0; r < 3; ++r) {
                (void)node.map->Get(
                    "key" + std::to_string(rng.NextBelow(100000)));
              }
              for (int w = 0; w < 3; ++w) {
                (void)node.map->Put(
                    "key" + std::to_string(rng.NextBelow(100000)), "v");
              }
              counts->total++;
              if (node.runtime->EndTx().ok()) {
                counts->good++;
              }
            }
          });

      PrintRow({std::to_string(servers), std::to_string(num_nodes),
                Fmt(result.ops_per_sec / 1000.0, 2),
                Fmt(result.good_ops_per_sec / 1000.0, 2)});
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace tangobench

int main(int argc, char** argv) {
  tangobench::Flags flags(argc, argv);
  tangobench::Run(flags);
  return 0;
}
