// Ablation (§6 setup): group-commit batch size.
//
// The paper's evaluation batches 4 commit records per 4KB log entry.  This
// sweep quantifies what that buys: appends per log entry rise with the batch
// size (fewer sequencer grants and storage IOPS per record) while per-append
// latency grows by up to the batching window.  Concurrent writer threads on
// one runtime emulate the multi-request application server of the paper.

#include "bench/bench_common.h"
#include "src/objects/tango_map.h"
#include "src/runtime/runtime.h"

namespace tangobench {
namespace {

void Run(const Flags& flags) {
  const int duration_ms = static_cast<int>(flags.GetInt("duration-ms", 300));
  const int writers = static_cast<int>(flags.GetInt("writers", 8));
  const uint32_t storage_latency_us =
      static_cast<uint32_t>(flags.GetInt("storage-latency-us", 100));

  std::printf(
      "Ablation: group-commit batch size (%d writer threads, %uus media)\n\n",
      writers, storage_latency_us);
  PrintHeader({"batch", "Kappend/s", "entries", "rec/entry", "p99us"});

  for (uint32_t batch : {1u, 2u, 4u, 8u}) {
    Testbed bed(6, 2, storage_latency_us);
    auto client = bed.MakeClient();
    tango::TangoRuntime::Options options;
    options.enable_batching = batch > 1;
    options.batch.max_records = batch;
    options.batch.window_us = 300;
    tango::TangoRuntime runtime(client.get(), options);
    tango::TangoMap map(&runtime, 1);
    (void)map.Put("seed", "0");

    auto tail_before = client->CheckTail();
    RunResult result = RunWorkers(
        writers, duration_ms,
        [&](int t, std::atomic<bool>* stop, WorkerCounts* counts) {
          tango::Rng rng(t + 1);
          while (!stop->load(std::memory_order_relaxed)) {
            Stopwatch timer;
            std::string key = "key" + std::to_string(rng.NextBelow(1000));
            if (map.Put(key, "v").ok()) {
              counts->good++;
              counts->latency_us.Record(timer.ElapsedUs());
            }
            counts->total++;
          }
        });
    auto tail_after = client->CheckTail();
    uint64_t entries =
        tail_after.ok() && tail_before.ok() ? *tail_after - *tail_before : 0;
    double records = result.good_ops_per_sec * duration_ms / 1000.0;
    PrintRow({std::to_string(batch), Fmt(result.good_ops_per_sec / 1000.0, 1),
              std::to_string(entries),
              Fmt(entries > 0 ? records / entries : 0, 2),
              std::to_string(result.latency_us.Percentile(0.99))});
  }
}

}  // namespace
}  // namespace tangobench

int main(int argc, char** argv) {
  tangobench::Flags flags(argc, argv);
  tangobench::Run(flags);
  return 0;
}
