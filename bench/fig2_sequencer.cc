// Figure 2: sequencer throughput as clients are added.
//
// The paper shows a centralized sequencer scaling past 500K requests/sec and
// plateauing as clients are added, and notes that batching (batch size 4)
// multiplies throughput at the cost of latency.  We sweep client threads and
// both batch sizes; the shape to reproduce is throughput rising with client
// count and then flattening at the sequencer's service capacity.

#include "bench/bench_common.h"
#include "src/corfu/sequencer.h"

namespace tangobench {
namespace {

void Run(const Flags& flags) {
  const int duration_ms = static_cast<int>(flags.GetInt("duration-ms", 300));
  std::printf("Figure 2: sequencer throughput vs number of clients\n\n");
  PrintHeader({"clients", "batch", "Kreq/s", "Kgrants/s", "p99us"});

  for (uint32_t batch : {1u, 4u}) {
    for (int clients : {1, 2, 4, 8, 16, 24, 36}) {
      tango::InProcTransport transport;
      corfu::Sequencer sequencer(&transport, 1, /*epoch=*/0, /*K=*/4);

      RunResult result = RunWorkers(
          clients, duration_ms,
          [&](int, std::atomic<bool>* stop, WorkerCounts* counts) {
            while (!stop->load(std::memory_order_relaxed)) {
              Stopwatch timer;
              auto grant =
                  corfu::SequencerNext(&transport, 1, 0, batch, {});
              if (grant.ok()) {
                counts->total += 1;
                counts->good += batch;
                counts->latency_us.Record(timer.ElapsedUs());
              }
            }
          });

      PrintRow({std::to_string(clients), std::to_string(batch),
                Fmt(result.ops_per_sec / 1000.0),
                Fmt(result.good_ops_per_sec / 1000.0),
                std::to_string(result.latency_us.Percentile(0.99))});
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace tangobench

int main(int argc, char** argv) {
  tangobench::Flags flags(argc, argv);
  tangobench::Run(flags);
  return 0;
}
