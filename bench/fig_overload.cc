// Overload robustness: timely goodput under an offered-load sweep, with and
// without admission control.
//
// An open-loop generator offers {0.5, 1, 2, 4}x the sequencer's admission
// capacity; an append is "good" only if it succeeds within --slo-ms of its
// *scheduled* start (the honest open-loop latency: a backlogged generator's
// waiting time counts).  Two modes per offered load:
//   * unprotected — admission off.  Past the storage raw capacity the
//     generator backlog grows without bound, scheduled-time latency blows
//     through the SLO, and timely goodput collapses toward zero: classic
//     congestion collapse.
//   * protected — sequencer admission at --capacity tokens/sec.  Excess
//     load is shed in microseconds with kBusy + a retry-after hint (the
//     cooperative-retry client path is exercised by tests/overload_test.cc;
//     here sheds count against goodput), admitted appends finish far inside
//     the SLO, and goodput holds at ~capacity no matter the multiple.
// Throughout every cell a priority-class prober issues a control-plane
// CheckTail every 10 ms; those bypass shedding, so the bench asserts zero
// prober failures.  Shape to reproduce: protected goodput at 4x stays
// within 70% of the protected peak while unprotected goodput collapses.
// --json=FILE dumps the sweep plus the acceptance block (BENCH_overload.json).

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/corfu/log_client.h"
#include "src/corfu/sequencer.h"
#include "src/obs/metrics.h"

namespace tangobench {
namespace {

struct Cell {
  const char* mode = "";
  double multiple = 0;          // offered / capacity
  double offered_per_sec = 0;   // open-loop target rate
  double attempted_per_sec = 0; // ops the generator actually issued
  double goodput_per_sec = 0;   // successes within SLO of scheduled start
  uint64_t sheds = 0;           // overload.sequencer.shed delta
  uint64_t p50_us = 0;          // scheduled-start latency
  uint64_t p99_us = 0;
  uint64_t probe_failures = 0;  // priority-class CheckTail failures
  uint64_t probes = 0;
};

uint64_t ShedCount() {
  return tango::obs::MetricsRegistry::Default()
      .GetCounter("overload.sequencer.shed")
      ->Value();
}

Cell MeasureCell(bool protect, double multiple, uint64_t capacity,
                 int threads, int duration_ms, uint32_t storage_latency_us,
                 uint32_t slo_ms) {
  Testbed bed(6, 2, storage_latency_us);
  if (protect) {
    corfu::SequencerAdmission admission;
    admission.capacity_tokens_per_sec = capacity;
    bed.cluster->sequencer()->set_admission(admission);
  }

  // The generator client cooperates with sheds but stays open-loop: one
  // hinted retry, with a backoff floor small enough that the server's
  // retry-after hint (sub-millisecond at these rates) dominates the sleep.
  // The default 1 ms exponential floor would make every shed cost more
  // than the 4x inter-arrival gap and turn generator backlog — not server
  // overload — into the measured latency.
  corfu::CorfuClient::Options options;
  options.hole_timeout_ms = 10;
  options.max_epoch_retries = 1;
  options.retry.initial_backoff_us = 200;
  options.retry.max_backoff_us = 1000;
  auto client = bed.cluster->MakeClient(options);
  auto prober = bed.MakeClient();

  const double offered = static_cast<double>(capacity) * multiple;
  const uint64_t interval_ns =
      static_cast<uint64_t>(1e9 * threads / std::max(offered, 1.0));
  const uint64_t slo_ns = static_cast<uint64_t>(slo_ms) * 1'000'000;
  const std::vector<uint8_t> payload(64, 0xab);

  uint64_t sheds_before = ShedCount();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> probe_failures{0};
  std::atomic<uint64_t> probes{0};

  // Priority-class prober: control-plane CheckTail bypasses admission and
  // the data-plane queues; it must never fail, no matter the offered load.
  std::thread probe_thread([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      probes.fetch_add(1, std::memory_order_relaxed);
      if (!prober->CheckTail().ok()) {
        probe_failures.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  struct WorkerOut {
    uint64_t total = 0;
    uint64_t good = 0;
    tango::Histogram latency_us;
  };
  std::vector<WorkerOut> outs(threads);
  std::vector<std::thread> pool;
  uint64_t start_ns = tango::NowNanos();
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      WorkerOut& out = outs[t];
      // Stagger the per-thread schedules so the aggregate arrival process
      // is smooth rather than `threads` simultaneous bursts.
      uint64_t next_ns =
          tango::NowNanos() + interval_ns * static_cast<uint64_t>(t) /
                                  static_cast<uint64_t>(threads);
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t now = tango::NowNanos();
        if (now < next_ns) {
          std::this_thread::sleep_for(std::chrono::nanoseconds(
              std::min<uint64_t>(next_ns - now, 200'000)));
          continue;
        }
        uint64_t scheduled_ns = next_ns;
        next_ns += interval_ns;
        tango::Status st = client->Append(payload).status();
        uint64_t done_ns = tango::NowNanos();
        uint64_t latency_us = (done_ns - scheduled_ns) / 1000;
        ++out.total;
        out.latency_us.Record(latency_us);
        if (st.ok() && done_ns - scheduled_ns <= slo_ns) {
          ++out.good;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  for (std::thread& th : pool) {
    th.join();
  }
  probe_thread.join();
  double elapsed_s = static_cast<double>(tango::NowNanos() - start_ns) / 1e9;

  Cell cell;
  cell.mode = protect ? "protected" : "unprotected";
  cell.multiple = multiple;
  cell.offered_per_sec = offered;
  tango::Histogram latency;
  uint64_t total = 0, good = 0;
  for (WorkerOut& out : outs) {
    total += out.total;
    good += out.good;
    latency.Merge(out.latency_us);
  }
  cell.attempted_per_sec = static_cast<double>(total) / elapsed_s;
  cell.goodput_per_sec = static_cast<double>(good) / elapsed_s;
  cell.sheds = ShedCount() - sheds_before;
  cell.p50_us = latency.Percentile(0.5);
  cell.p99_us = latency.Percentile(0.99);
  cell.probe_failures = probe_failures.load();
  cell.probes = probes.load();
  return cell;
}

void Run(const Flags& flags) {
  const uint64_t capacity =
      static_cast<uint64_t>(flags.GetInt("capacity", 3000));
  const int threads = static_cast<int>(flags.GetInt("threads", 32));
  const int duration_ms = static_cast<int>(flags.GetInt("duration-ms", 1000));
  const uint32_t storage_latency_us =
      static_cast<uint32_t>(flags.GetInt("storage-latency-us", 300));
  const uint32_t slo_ms = static_cast<uint32_t>(flags.GetInt("slo-ms", 10));
  const std::string json_path = flags.GetString("json", "");
  auto stats_dumper = MaybeStartStatsDumper(flags);

  std::printf(
      "Overload: timely goodput (success within %u ms of scheduled start) "
      "vs offered load\n"
      "(admission capacity %llu/s, %d open-loop threads, %d ms per cell, "
      "storage latency %u us, 6 nodes x repl 2)\n\n",
      slo_ms, static_cast<unsigned long long>(capacity), threads, duration_ms,
      storage_latency_us);
  PrintHeader({"mode", "offered_x", "offered/s", "goodput/s", "sheds",
               "p50_us", "p99_us", "probe_fail"});

  std::vector<Cell> cells;
  for (bool protect : {false, true}) {
    for (double multiple : {0.5, 1.0, 2.0, 4.0}) {
      Cell cell = MeasureCell(protect, multiple, capacity, threads,
                              duration_ms, storage_latency_us, slo_ms);
      PrintRow({cell.mode, Fmt(cell.multiple), Fmt(cell.offered_per_sec, 0),
                Fmt(cell.goodput_per_sec, 0), std::to_string(cell.sheds),
                std::to_string(cell.p50_us), std::to_string(cell.p99_us),
                std::to_string(cell.probe_failures)});
      cells.push_back(cell);
    }
    std::printf("\n");
  }

  // Acceptance: protected goodput at the highest multiple holds within 70%
  // of the protected peak, and no priority-class probe ever failed.
  double peak = 0, at_4x = 0;
  uint64_t protected_probe_failures = 0;
  for (const Cell& c : cells) {
    if (std::string(c.mode) != "protected") {
      continue;
    }
    peak = std::max(peak, c.goodput_per_sec);
    if (c.multiple == 4.0) {
      at_4x = c.goodput_per_sec;
    }
    protected_probe_failures += c.probe_failures;
  }
  double frac = peak > 0 ? at_4x / peak : 0;
  bool pass_goodput = frac >= 0.7;
  bool pass_priority = protected_probe_failures == 0;
  std::printf("protected 4x goodput: %.0f/s = %.0f%% of peak %.0f/s %s\n",
              at_4x, frac * 100, peak, pass_goodput ? "(PASS)" : "(FAIL)");
  std::printf("priority-class probe failures under protection: %llu %s\n",
              static_cast<unsigned long long>(protected_probe_failures),
              pass_priority ? "(PASS)" : "(FAIL)");

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      std::exit(1);
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"fig_overload\",\n"
                 "  \"capacity_per_sec\": %llu,\n  \"threads\": %d,\n"
                 "  \"duration_ms\": %d,\n  \"storage_latency_us\": %u,\n"
                 "  \"slo_ms\": %u,\n",
                 static_cast<unsigned long long>(capacity), threads,
                 duration_ms, storage_latency_us, slo_ms);
    WriteRunInfoField(f);
    WriteMetricsField(f);
    std::fprintf(f,
                 "  \"acceptance\": {\"peak_goodput_per_sec\": %.1f, "
                 "\"goodput_4x_per_sec\": %.1f, \"goodput_4x_frac_of_peak\": "
                 "%.3f, \"pass_goodput\": %s, \"priority_probe_failures\": "
                 "%llu, \"pass_priority\": %s},\n",
                 peak, at_4x, frac, pass_goodput ? "true" : "false",
                 static_cast<unsigned long long>(protected_probe_failures),
                 pass_priority ? "true" : "false");
    std::fprintf(f, "  \"cells\": [\n");
    for (size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(
          f,
          "    {\"mode\": \"%s\", \"offered_multiple\": %.1f, "
          "\"offered_per_sec\": %.0f, \"attempted_per_sec\": %.1f, "
          "\"goodput_per_sec\": %.1f, \"sheds\": %llu, \"p50_us\": %llu, "
          "\"p99_us\": %llu, \"probes\": %llu, \"probe_failures\": %llu}%s\n",
          c.mode, c.multiple, c.offered_per_sec, c.attempted_per_sec,
          c.goodput_per_sec, static_cast<unsigned long long>(c.sheds),
          static_cast<unsigned long long>(c.p50_us),
          static_cast<unsigned long long>(c.p99_us),
          static_cast<unsigned long long>(c.probes),
          static_cast<unsigned long long>(c.probe_failures),
          i + 1 == cells.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace tangobench

int main(int argc, char** argv) {
  tangobench::Flags flags(argc, argv);
  tangobench::Run(flags);
  return 0;
}
