// Transport connection sweep: sequencer throughput over real TCP sockets as
// client connections grow from the paper's 36-machine testbed to 10k.
//
// The thread-per-connection transport this replaced fell over long before 1k
// connections (one OS thread each); the multiplexed epoll transport holds
// every connection on one loop thread and a fixed handler pool.  The shape to
// verify: throughput at 1k connections is no worse than at 36, and the server
// process sustains the 10k cell with bounded threads.
//
// Each cell forks client fleets out of this same binary (--child mode) so the
// server's fd budget is spent on accepted sockets, not client sockets; every
// child drives up to 2500 closed-loop raw-socket clients off a private epoll
// loop, speaking the v2 wire format (see src/net/tcp_transport.h) directly.
// --json=FILE dumps the sweep plus the acceptance block (BENCH_transport.json).

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>

#include "bench/bench_common.h"
#include "src/corfu/sequencer.h"
#include "src/corfu/storage_node.h"
#include "src/corfu/types.h"
#include "src/net/tcp_transport.h"

namespace tangobench {
namespace {

constexpr int kMaxConnsPerChild = 2500;
constexpr int kConnectWindow = 512;   // outstanding nonblocking connects
constexpr int kConnectDeadlineMs = 20000;

void RaiseFdLimit() {
  struct rlimit rl;
  if (getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    setrlimit(RLIMIT_NOFILE, &rl);
  }
}

int CountOpenFds() {
  DIR* d = opendir("/proc/self/fd");
  if (d == nullptr) {
    return -1;
  }
  int n = 0;
  while (readdir(d) != nullptr) {
    ++n;
  }
  closedir(d);
  return n - 3;  // ".", "..", and the dirfd itself
}

int CountThreads() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return -1;
  }
  char line[256];
  int threads = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "Threads: %d", &threads) == 1) {
      break;
    }
  }
  std::fclose(f);
  return threads;
}

void PutU16Le(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32Le(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64Le(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t GetU32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64Le(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32Le(p)) |
         static_cast<uint64_t>(GetU32Le(p + 4)) << 32;
}

// One v2 request frame carrying a kSequencerNext for a single streamless
// token.  Closed loop = one in flight per connection, so a constant corr id
// is unambiguous.
std::vector<uint8_t> BuildNextFrame(uint64_t client_id) {
  std::vector<uint8_t> payload;
  PutU32Le(&payload, 0);  // epoch
  PutU32Le(&payload, 1);  // count
  PutU16Le(&payload, 0);  // no streams
  PutU64Le(&payload, client_id);

  std::vector<uint8_t> frame;
  PutU32Le(&frame, static_cast<uint32_t>(8 + 2 + 8 + 8 + payload.size()));
  PutU64Le(&frame, 1);  // corr_id
  PutU16Le(&frame, static_cast<uint16_t>(corfu::kSequencerNext));
  PutU64Le(&frame, 0);  // trace_id (untraced)
  PutU64Le(&frame, 0);  // parent_span
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

// --- child mode: a fleet of closed-loop raw-socket clients on one epoll loop.

struct ChildConn {
  int fd = -1;
  enum State { kConnecting, kReady, kDead } state = kConnecting;
  uint32_t interest = 0;
  size_t wr_off = 0;       // bytes of the request frame already sent
  bool sending = false;    // mid-request (wr_off < frame size)
  std::vector<uint8_t> in;
  std::vector<uint8_t> req;
  uint64_t total = 0;
  uint64_t good = 0;
};

struct Child {
  int ep = -1;
  std::vector<ChildConn> conns;
  int connected = 0;
  int dead = 0;

  void SetInterest(size_t idx, uint32_t events) {
    ChildConn& c = conns[idx];
    if (c.interest == events) {
      return;
    }
    struct epoll_event ev;
    ev.events = events;
    ev.data.u64 = idx;
    epoll_ctl(ep, EPOLL_CTL_MOD, c.fd, &ev);
    c.interest = events;
  }

  void Kill(size_t idx) {
    ChildConn& c = conns[idx];
    if (c.fd < 0) {
      return;
    }
    epoll_ctl(ep, EPOLL_CTL_DEL, c.fd, nullptr);
    close(c.fd);
    c.fd = -1;
    if (c.state == ChildConn::kReady) {
      --connected;
    }
    c.state = ChildConn::kDead;
    ++dead;
  }

  // Starts writing the (next) request; switches to EPOLLIN once fully sent.
  void SendRequest(size_t idx) {
    ChildConn& c = conns[idx];
    while (c.wr_off < c.req.size()) {
      ssize_t n = send(c.fd, c.req.data() + c.wr_off, c.req.size() - c.wr_off,
                       MSG_NOSIGNAL);
      if (n > 0) {
        c.wr_off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        c.sending = true;
        SetInterest(idx, EPOLLIN | EPOLLOUT);
        return;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      Kill(idx);
      return;
    }
    c.sending = false;
    c.wr_off = 0;
    SetInterest(idx, EPOLLIN);
  }

  void OnReadable(size_t idx, bool counting) {
    ChildConn& c = conns[idx];
    uint8_t buf[512];
    ssize_t n = recv(c.fd, buf, sizeof(buf), 0);
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR)) {
      Kill(idx);
      return;
    }
    if (n < 0) {
      return;
    }
    c.in.insert(c.in.end(), buf, buf + n);
    while (c.in.size() >= 4) {
      uint32_t len = GetU32Le(c.in.data());
      if (c.in.size() < 4 + len) {
        break;
      }
      if (len < 13) {  // u64 corr + u8 status + u32 retry_after_us
        Kill(idx);
        return;
      }
      if (counting) {
        c.total += 1;
        if (c.in[12] == 0) {  // status byte: 0 == kOk
          c.good += 1;
        }
      }
      c.in.erase(c.in.begin(), c.in.begin() + 4 + len);
      SendRequest(idx);  // closed loop: fire the next request
      if (c.fd < 0) {
        return;
      }
    }
  }
};

int RunChild(const Flags& flags) {
  RaiseFdLimit();
  const uint16_t port = static_cast<uint16_t>(flags.GetInt("port", 0));
  const int want = static_cast<int>(flags.GetInt("conns", 1));
  const int duration_ms = static_cast<int>(flags.GetInt("duration-ms", 1000));
  const uint64_t client_base =
      static_cast<uint64_t>(flags.GetInt("client-base", 1));
  if (port == 0) {
    std::fprintf(stderr, "child: --port is required\n");
    return 2;
  }

  Child child;
  child.ep = epoll_create1(EPOLL_CLOEXEC);
  if (child.ep < 0) {
    std::fprintf(stderr, "child: epoll_create1: %s\n", std::strerror(errno));
    return 1;
  }
  child.conns.resize(static_cast<size_t>(want));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);

  // Connect phase: keep a bounded window of in-flight nonblocking connects so
  // 2500 SYNs don't land on the listen backlog at once.
  int next_connect = 0;
  int connecting = 0;
  const uint64_t connect_deadline =
      tango::NowMicros() + static_cast<uint64_t>(kConnectDeadlineMs) * 1000;
  auto top_up = [&]() {
    while (next_connect < want && connecting < kConnectWindow) {
      size_t idx = static_cast<size_t>(next_connect++);
      ChildConn& c = child.conns[idx];
      c.fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
      if (c.fd < 0) {
        c.state = ChildConn::kDead;
        ++child.dead;
        continue;
      }
      int one = 1;
      setsockopt(c.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      int rc = connect(c.fd, reinterpret_cast<struct sockaddr*>(&addr),
                       sizeof(addr));
      if (rc != 0 && errno != EINPROGRESS) {
        close(c.fd);
        c.fd = -1;
        c.state = ChildConn::kDead;
        ++child.dead;
        continue;
      }
      c.req = BuildNextFrame(client_base + idx);
      struct epoll_event ev;
      ev.events = EPOLLOUT;
      ev.data.u64 = idx;
      epoll_ctl(child.ep, EPOLL_CTL_ADD, c.fd, &ev);
      c.interest = EPOLLOUT;
      ++connecting;
    }
  };

  bool counting = false;
  uint64_t t_start = 0, t_stop = 0;
  struct epoll_event events[256];
  while (true) {
    uint64_t now = tango::NowMicros();
    if (!counting) {
      top_up();
      if (child.connected + child.dead == want || now >= connect_deadline) {
        // Measurement window starts once the fleet is up (stragglers past the
        // deadline are counted as dead); counters are still zero.
        counting = true;
        t_start = now;
        t_stop = t_start + static_cast<uint64_t>(duration_ms) * 1000;
      }
    } else if (now >= t_stop || child.connected == 0) {
      break;
    }
    uint64_t horizon = counting ? t_stop : connect_deadline;
    int timeout_ms = static_cast<int>(
        std::min<uint64_t>((horizon > now ? horizon - now : 0) / 1000 + 1,
                           1000));
    int n = epoll_wait(child.ep, events, 256, timeout_ms);
    for (int i = 0; i < n; ++i) {
      size_t idx = static_cast<size_t>(events[i].data.u64);
      ChildConn& c = child.conns[idx];
      if (c.fd < 0) {
        continue;
      }
      if (c.state == ChildConn::kConnecting) {
        int err = 0;
        socklen_t len = sizeof(err);
        getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0 || err != 0) {
          child.Kill(idx);
          --connecting;
          continue;
        }
        if ((events[i].events & EPOLLOUT) != 0) {
          c.state = ChildConn::kReady;
          ++child.connected;
          --connecting;
          child.SendRequest(idx);  // start the closed loop immediately
        }
        continue;
      }
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        child.Kill(idx);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0 && c.sending) {
        child.SendRequest(idx);
      }
      if (c.fd >= 0 && (events[i].events & EPOLLIN) != 0) {
        child.OnReadable(idx, counting);
      }
    }
  }

  uint64_t total = 0, good = 0;
  for (const ChildConn& c : child.conns) {
    total += c.total;
    good += c.good;
  }
  uint64_t elapsed_us = std::max<uint64_t>(tango::NowMicros() - t_start, 1);
  std::printf("CHILD conns=%d connected=%d total=%" PRIu64 " good=%" PRIu64
              " elapsed_us=%" PRIu64 "\n",
              want, child.connected, total, good, elapsed_us);
  std::fflush(stdout);
  return 0;
}

// --- thread-per-connection baseline: the architecture this bench's mux
// transport replaced.  One blocking OS thread per accepted connection reads a
// frame, runs the sequencer handler inline (via InProcTransport dispatch),
// and writes the response — no multiplexing, no event loop.  Measuring it at
// 36 connections gives the bar the mux must clear at 1k.

bool ReadFully(int fd, uint8_t* buf, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t r = recv(fd, buf + off, n - off, 0);
    if (r > 0) {
      off += static_cast<size_t>(r);
    } else if (r < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

bool WriteFully(int fd, const uint8_t* buf, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t r = send(fd, buf + off, n - off, MSG_NOSIGNAL);
    if (r > 0) {
      off += static_cast<size_t>(r);
    } else if (r < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

class BaselineServer {
 public:
  BaselineServer() : sequencer_(&inproc_, /*node=*/10, /*epoch=*/0, /*K=*/4) {
    listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
        listen(listen_fd_, 1024) != 0) {
      std::fprintf(stderr, "baseline server: bind/listen: %s\n",
                   std::strerror(errno));
      std::exit(1);
    }
    socklen_t len = sizeof(addr);
    getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    accept_thread_ = std::thread([this] { AcceptLoop(); });
  }

  ~BaselineServer() {
    shutdown(listen_fd_, SHUT_RDWR);
    accept_thread_.join();
    close(listen_fd_);
    // Serve() owns and closes each conn fd when its client disconnects; the
    // bench's client fleets always exit first, so the joins below terminate.
    std::lock_guard<std::mutex> lock(mu_);
    for (std::thread& t : conn_threads_) {
      t.join();
    }
  }

  uint16_t port() const { return port_; }

 private:
  void AcceptLoop() {
    while (true) {
      int cfd = accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (cfd < 0) {
        if (errno == EINTR) {
          continue;
        }
        return;  // listen socket shut down
      }
      int one = 1;
      setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      std::lock_guard<std::mutex> lock(mu_);
      conn_threads_.emplace_back([this, cfd] { Serve(cfd); });
    }
  }

  void Serve(int fd) {
    uint8_t hdr[4];
    std::vector<uint8_t> body;
    std::vector<uint8_t> resp;
    std::vector<uint8_t> frame;
    while (ReadFully(fd, hdr, 4)) {
      uint32_t len = GetU32Le(hdr);
      if (len < 26 || len > (64u << 20)) {
        break;
      }
      body.resize(len);
      if (!ReadFully(fd, body.data(), len)) {
        break;
      }
      uint64_t corr = GetU64Le(body.data());
      uint16_t method = static_cast<uint16_t>(body[8]) |
                        static_cast<uint16_t>(body[9]) << 8;
      resp.clear();
      tango::Status st = inproc_.Call(
          10, method, std::span<const uint8_t>(body.data() + 26, len - 26),
          &resp);
      frame.clear();
      PutU32Le(&frame, static_cast<uint32_t>(13 + resp.size()));
      PutU64Le(&frame, corr);
      frame.push_back(static_cast<uint8_t>(st.code()));
      PutU32Le(&frame, st.retry_after_us());
      frame.insert(frame.end(), resp.begin(), resp.end());
      if (!WriteFully(fd, frame.data(), frame.size())) {
        break;
      }
    }
    close(fd);
  }

  tango::InProcTransport inproc_;
  corfu::Sequencer sequencer_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<std::thread> conn_threads_;
};

// --- parent mode: server + child fleets + the sweep itself.

struct Cell {
  const char* mode = "mux";
  int conns = 0;
  int connected = 0;
  int children = 0;
  double ops_per_sec = 0;
  double good_per_sec = 0;
  int server_threads = 0;  // peak over the cell
  int server_fds = 0;      // peak over the cell
};

std::vector<int> ParseConnList(const std::string& s) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) {
      comma = s.size();
    }
    int v = std::atoi(s.substr(pos, comma - pos).c_str());
    if (v > 0) {
      out.push_back(v);
    }
    pos = comma + 1;
  }
  return out;
}

// popen goes through /bin/sh, so "/proc/self/exe" would resolve to the shell;
// resolve our real binary path up front instead.
std::string SelfExePath() {
  char buf[4096];
  ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) {
    std::fprintf(stderr, "readlink(/proc/self/exe): %s\n",
                 std::strerror(errno));
    std::exit(1);
  }
  buf[n] = '\0';
  return std::string(buf);
}

Cell RunCellOnce(const char* mode, int conns, int duration_ms, uint16_t port) {
  Cell cell;
  cell.mode = mode;
  cell.conns = conns;
  cell.children = (conns + kMaxConnsPerChild - 1) / kMaxConnsPerChild;

  std::vector<FILE*> pipes;
  const std::string self = SelfExePath();
  uint64_t client_base = 1;
  int remaining = conns;
  for (int i = 0; i < cell.children; ++i) {
    int share = std::min(remaining, kMaxConnsPerChild);
    remaining -= share;
    char cmd[4352];
    std::snprintf(cmd, sizeof(cmd),
                  "'%s' --child=1 --port=%u --conns=%d "
                  "--duration-ms=%d --client-base=%" PRIu64,
                  self.c_str(), port, share, duration_ms, client_base);
    client_base += static_cast<uint64_t>(share);
    FILE* p = popen(cmd, "r");
    if (p == nullptr) {
      std::fprintf(stderr, "popen failed for child %d\n", i);
      continue;
    }
    pipes.push_back(p);
  }

  // Sample the server process (us) while the fleet runs; report the peaks.
  // Bounded threads under 10k connections is the whole point of the mux.
  std::atomic<bool> sampling{true};
  std::thread sampler([&] {
    while (sampling.load(std::memory_order_relaxed)) {
      cell.server_threads = std::max(cell.server_threads, CountThreads());
      cell.server_fds = std::max(cell.server_fds, CountOpenFds());
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });

  for (FILE* p : pipes) {
    char line[256];
    while (std::fgets(line, sizeof(line), p) != nullptr) {
      int want = 0, connected = 0;
      uint64_t total = 0, good = 0, elapsed_us = 0;
      if (std::sscanf(line,
                      "CHILD conns=%d connected=%d total=%" SCNu64
                      " good=%" SCNu64 " elapsed_us=%" SCNu64,
                      &want, &connected, &total, &good, &elapsed_us) == 5) {
        cell.connected += connected;
        double secs = static_cast<double>(elapsed_us) / 1e6;
        cell.ops_per_sec += static_cast<double>(total) / secs;
        cell.good_per_sec += static_cast<double>(good) / secs;
      }
    }
    pclose(p);
  }
  sampling.store(false);
  sampler.join();
  return cell;
}

// Runs the cell `reps` times and keeps the run with median throughput —
// single runs on a shared/noisy host can swing ±15%.
Cell RunCell(const char* mode, int conns, int duration_ms, uint16_t port,
             int reps) {
  std::vector<Cell> runs;
  for (int r = 0; r < reps; ++r) {
    runs.push_back(RunCellOnce(mode, conns, duration_ms, port));
  }
  std::sort(runs.begin(), runs.end(), [](const Cell& a, const Cell& b) {
    return a.ops_per_sec < b.ops_per_sec;
  });
  return runs[runs.size() / 2];
}

void Run(const Flags& flags) {
  RaiseFdLimit();
  const int duration_ms = static_cast<int>(flags.GetInt("duration-ms", 2000));
  // Default to inline dispatch: the sequencer handler is pure in-memory
  // work, and hopping it through the executor would only measure the
  // handoff.  (The storage node registered below is idle in this bench —
  // children drive the sequencer only.)  Pass --handler-threads=N to
  // measure the pooled path instead.
  const int handler_threads =
      static_cast<int>(flags.GetInt("handler-threads", -1));
  const std::string conn_list =
      flags.GetString("conns", "36,1000,10000");
  const std::string baseline_list = flags.GetString("baseline-conns", "36");
  const std::string json_path = flags.GetString("json", "");
  const int reps = static_cast<int>(flags.GetInt("reps", 1));

  std::vector<int> sweep = ParseConnList(conn_list);
  if (sweep.empty()) {
    std::fprintf(stderr, "bad --conns list: %s\n", conn_list.c_str());
    std::exit(2);
  }
  std::vector<int> baseline_sweep = ParseConnList(baseline_list);

  std::printf("Transport sweep: sequencer Kreq/s vs TCP connections\n"
              "(thread-per-conn baseline = the replaced architecture)\n\n");
  PrintHeader({"mode", "conns", "connected", "children", "Kreq/s", "Kgood/s",
               "srv_thr", "srv_fds"});

  std::vector<Cell> cells;
  {
    BaselineServer baseline;
    for (int conns : baseline_sweep) {
      Cell cell =
          RunCell("thread-per-conn", conns, duration_ms, baseline.port(),
                  reps);
      cells.push_back(cell);
      PrintRow({cell.mode, std::to_string(cell.conns),
                std::to_string(cell.connected), std::to_string(cell.children),
                Fmt(cell.ops_per_sec / 1000.0),
                Fmt(cell.good_per_sec / 1000.0),
                std::to_string(cell.server_threads),
                std::to_string(cell.server_fds)});
    }
  }

  tango::TcpTransport::Options opts;
  opts.handler_threads = handler_threads;
  tango::TcpTransport transport(opts);
  corfu::Sequencer sequencer(&transport, /*node=*/10, /*epoch=*/0, /*K=*/4);
  corfu::StorageNode storage(&transport, /*node=*/100,
                             corfu::StorageNode::Options{});
  const uint16_t port = transport.LocalPort(10);

  for (int conns : sweep) {
    Cell cell = RunCell("mux", conns, duration_ms, port, reps);
    cells.push_back(cell);
    PrintRow({cell.mode, std::to_string(cell.conns),
              std::to_string(cell.connected), std::to_string(cell.children),
              Fmt(cell.ops_per_sec / 1000.0), Fmt(cell.good_per_sec / 1000.0),
              std::to_string(cell.server_threads),
              std::to_string(cell.server_fds)});
  }

  // Acceptance: (a) every mux cell got its full fleet connected and completed
  // work, with server threads bounded (not scaling with connections); (b) mux
  // throughput at 1000 connections is at least the thread-per-connection
  // baseline's 36-connection throughput — the old transport could not hold
  // 1k connections at all, so clearing its 36-conn number while holding 1k
  // is the win the rework claims.
  const Cell* base36 = nullptr;
  const Cell* mux1k = nullptr;
  const Cell* mux_max = nullptr;
  int mux_threads = 0;
  bool pass_sustain = true;
  for (const Cell& c : cells) {
    if (std::string(c.mode) == "thread-per-conn" && c.conns == 36) {
      base36 = &c;
    }
    if (std::string(c.mode) != "mux") {
      continue;
    }
    if (c.conns == 1000) {
      mux1k = &c;
    }
    if (mux_max == nullptr || c.conns > mux_max->conns) {
      mux_max = &c;
    }
    mux_threads = std::max(mux_threads, c.server_threads);
    if (c.connected < c.conns || c.good_per_sec <= 0) {
      pass_sustain = false;
    }
  }
  // Loop + handler pool + main + sampler + slack; never ~1 thread per conn.
  bool pass_threads = mux_threads > 0 && mux_threads <= 64;
  bool pass_scaling = true;
  double ratio = 0;
  if (base36 != nullptr && mux1k != nullptr) {
    ratio = base36->ops_per_sec > 0 ? mux1k->ops_per_sec / base36->ops_per_sec
                                    : 0;
    pass_scaling = ratio >= 1.0;
  }
  if (mux_max != nullptr) {
    std::printf("\nsustained %d conns with %d server threads %s\n",
                mux_max->conns, mux_threads,
                pass_sustain && pass_threads ? "(PASS)" : "(FAIL)");
  }
  if (base36 != nullptr && mux1k != nullptr) {
    std::printf("mux 1k-conn throughput = %.2fx of thread-per-conn 36-conn "
                "%s\n",
                ratio, pass_scaling ? "(PASS)" : "(FAIL)");
  }

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      std::exit(1);
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"fig_transport\",\n"
                 "  \"duration_ms\": %d,\n  \"handler_threads\": %d,\n",
                 duration_ms, handler_threads);
    WriteRunInfoField(f);
    WriteMetricsField(f);
    std::fprintf(
        f,
        "  \"acceptance\": {\"max_conns\": %d, \"max_conns_connected\": %d, "
        "\"mux_server_threads_peak\": %d, \"pass_sustain\": %s, "
        "\"pass_threads\": %s, \"mux_1k_vs_baseline_36\": %.3f, "
        "\"pass_scaling\": %s},\n",
        mux_max != nullptr ? mux_max->conns : 0,
        mux_max != nullptr ? mux_max->connected : 0, mux_threads,
        pass_sustain ? "true" : "false", pass_threads ? "true" : "false",
        ratio, pass_scaling ? "true" : "false");
    std::fprintf(f, "  \"cells\": [\n");
    for (size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(f,
                   "    {\"mode\": \"%s\", \"conns\": %d, \"connected\": %d, "
                   "\"children\": %d, \"ops_per_sec\": %.1f, "
                   "\"good_per_sec\": %.1f, \"server_threads\": %d, "
                   "\"server_fds\": %d}%s\n",
                   c.mode, c.conns, c.connected, c.children, c.ops_per_sec,
                   c.good_per_sec, c.server_threads, c.server_fds,
                   i + 1 == cells.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace tangobench

int main(int argc, char** argv) {
  tangobench::Flags flags(argc, argv);
  if (flags.GetInt("child", 0) != 0) {
    return tangobench::RunChild(flags);
  }
  tangobench::Run(flags);
  return 0;
}
