// Storage backend: durable segment store vs in-memory page map.
//
// Sweeps the segment store's fsync batch {1, 8, 64, 256} against the
// in-memory baseline under a multi-threaded append storm (each Put lands on
// a fresh write-once offset, the storage node's hot path).  Shape to
// reproduce: batch 1 pays one fsync per append and collapses throughput by
// orders of magnitude; larger batches amortize the fsync until the write(2)
// group-flush path, not the disk, is the bottleneck, converging toward (but
// never reaching) the in-memory ceiling.  The fsync and group-flush counters
// in each row show the amortization directly.  --json=FILE dumps the sweep
// as BENCH_storage.json for EXPERIMENTS.md.

#include <cstdlib>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench/bench_common.h"
#include "src/storage/fault_fs.h"
#include "src/storage/memory_backend.h"
#include "src/storage/segment_store.h"

namespace tangobench {
namespace {

struct Cell {
  std::string backend;     // "memory" or "segment"
  uint32_t fsync_batch = 0;  // 0 for the memory backend
  double puts_per_sec = 0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  uint64_t fsyncs = 0;
  uint64_t group_flushes = 0;
};

// Runs `threads` appenders against `backend` for `duration_ms`, each Put
// targeting the next write-once offset from a shared counter.
RunResult Storm(corfu::storage::StorageBackend* backend, int threads,
                int duration_ms, int payload_bytes) {
  const std::vector<uint8_t> payload(static_cast<size_t>(payload_bytes), 0xcd);
  std::atomic<uint64_t> next{0};
  return RunWorkers(
      threads, duration_ms,
      [&](int /*thread*/, std::atomic<bool>* stop, WorkerCounts* counts) {
        while (!stop->load(std::memory_order_relaxed)) {
          corfu::LogOffset off = next.fetch_add(1);
          Stopwatch timer;
          tango::Status status = backend->Put(1, off, payload);
          counts->latency_us.Record(timer.ElapsedUs());
          counts->total++;
          if (status.ok()) {
            counts->good++;
          }
        }
      });
}

void Run(const Flags& flags) {
  const int threads = static_cast<int>(flags.GetInt("threads", 4));
  const int duration_ms = static_cast<int>(flags.GetInt("duration-ms", 300));
  const int payload_bytes =
      static_cast<int>(flags.GetInt("payload-bytes", 128));
  const std::string json_path = flags.GetString("json", "");
  const std::string base_dir = flags.GetString(
      "dir", "/tmp/tango-bench-storage-" + std::to_string(::getpid()));
  auto stats_dumper = MaybeStartStatsDumper(flags);

  std::printf(
      "Storage backend: append throughput, durable segment store vs "
      "in-memory\n"
      "(%d threads, %d ms per cell, %dB payloads; durable cells sweep "
      "fsync_batch)\n\n",
      threads, duration_ms, payload_bytes);
  PrintHeader({"backend", "fsync_batch", "Kput/s", "p50_us", "p99_us",
               "fsyncs", "flushes"});

  std::vector<Cell> cells;

  {
    corfu::storage::MemoryBackend memory;
    RunResult r = Storm(&memory, threads, duration_ms, payload_bytes);
    Cell cell;
    cell.backend = "memory";
    cell.puts_per_sec = r.good_ops_per_sec;
    cell.p50_us = r.latency_us.Percentile(0.5);
    cell.p99_us = r.latency_us.Percentile(0.99);
    PrintRow({"memory", "-", Fmt(cell.puts_per_sec / 1000.0),
              std::to_string(cell.p50_us), std::to_string(cell.p99_us), "-",
              "-"});
    cells.push_back(cell);
  }

  // CreateDir is single-level; make the sweep's parent directory first.
  (void)corfu::storage::PosixFileSystem()->CreateDir(base_dir);
  for (uint32_t batch : {1u, 8u, 64u, 256u}) {
    corfu::storage::SegmentStoreOptions options;
    options.dir = base_dir + "/batch-" + std::to_string(batch);
    options.fsync_batch = batch;
    auto store = corfu::storage::SegmentStoreBackend::Open(options);
    if (!store.ok()) {
      std::fprintf(stderr, "cannot open segment store in %s: %s\n",
                   options.dir.c_str(), store.status().ToString().c_str());
      std::exit(1);
    }
    RunResult r = Storm(store->get(), threads, duration_ms, payload_bytes);
    Cell cell;
    cell.backend = "segment";
    cell.fsync_batch = batch;
    cell.puts_per_sec = r.good_ops_per_sec;
    cell.p50_us = r.latency_us.Percentile(0.5);
    cell.p99_us = r.latency_us.Percentile(0.99);
    cell.fsyncs = (*store)->fsyncs();
    cell.group_flushes = (*store)->group_flushes();
    PrintRow({"segment", std::to_string(batch),
              Fmt(cell.puts_per_sec / 1000.0), std::to_string(cell.p50_us),
              std::to_string(cell.p99_us), std::to_string(cell.fsyncs),
              std::to_string(cell.group_flushes)});
    cells.push_back(cell);
  }

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      std::exit(1);
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"fig_storage\",\n  \"threads\": %d,\n"
                 "  \"duration_ms\": %d,\n  \"payload_bytes\": %d,\n",
                 threads, duration_ms, payload_bytes);
    WriteRunInfoField(f);
    WriteMetricsField(f);
    std::fprintf(f, "  \"cells\": [\n");
    for (size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(f,
                   "    {\"backend\": \"%s\", \"fsync_batch\": %u, "
                   "\"puts_per_sec\": %.1f, \"p50_us\": %llu, "
                   "\"p99_us\": %llu, \"fsyncs\": %llu, "
                   "\"group_flushes\": %llu}%s\n",
                   c.backend.c_str(), c.fsync_batch, c.puts_per_sec,
                   static_cast<unsigned long long>(c.p50_us),
                   static_cast<unsigned long long>(c.p99_us),
                   static_cast<unsigned long long>(c.fsyncs),
                   static_cast<unsigned long long>(c.group_flushes),
                   i + 1 == cells.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  // Scratch segment files are only useful for post-mortem inspection; clean
  // them up unless the caller pinned the directory with --dir.
  if (flags.GetString("dir", "").empty()) {
    std::string cmd = "rm -rf " + base_dir;
    if (std::system(cmd.c_str()) != 0) {
      std::fprintf(stderr, "warning: could not remove %s\n", base_dir.c_str());
    }
  }
}

}  // namespace
}  // namespace tangobench

int main(int argc, char** argv) {
  tangobench::Flags flags(argc, argv);
  tangobench::Run(flags);
  return 0;
}
