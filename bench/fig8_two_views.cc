// Figure 8 (middle): the primary/backup scenario.
//
// Two views of one TangoRegister: all writes go to one client, all reads to
// the other.  As the target write rate rises, the paper shows total
// throughput flattening (~40K ops/s there) while the read-only backup's
// latency climbs — the backup does more playback work per read to catch up
// with the primary.  Either node can serve either role (instant fail-over).

#include "bench/bench_common.h"
#include "src/objects/tango_register.h"
#include "src/runtime/runtime.h"

namespace tangobench {
namespace {

void Run(const Flags& flags) {
  const int duration_ms = static_cast<int>(flags.GetInt("duration-ms", 400));
  const int readers = static_cast<int>(flags.GetInt("readers", 2));

  std::printf(
      "Figure 8 (middle): two views, writes to the primary, reads from the "
      "backup\n\n");
  PrintHeader({"target_wKs", "write_Ks", "read_Ks", "read_p50us",
               "read_p99us"});

  for (double target_writes : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    Testbed bed(18, 2, 0);
    auto writer_client = bed.MakeClient();
    auto reader_client = bed.MakeClient();
    tango::TangoRuntime writer_rt(writer_client.get());
    tango::TangoRuntime reader_rt(reader_client.get());
    tango::TangoRegister primary(&writer_rt, 1);
    tango::TangoRegister backup(&reader_rt, 1);
    (void)primary.Write(0);
    (void)backup.Read();

    // Thread 0 is the paced writer (ops land in `total`); the rest are
    // closed-loop readers (ops land in `good`, latency in the histogram).
    std::atomic<uint64_t> writes{0};
    RunResult result = RunWorkers(
        1 + readers, duration_ms,
        [&](int t, std::atomic<bool>* stop, WorkerCounts* counts) {
          if (t == 0) {
            Pacer pacer(target_writes * 1000.0);
            while (pacer.Wait(*stop)) {
              if (primary.Write(1).ok()) {
                writes.fetch_add(1, std::memory_order_relaxed);
              }
            }
          } else {
            while (!stop->load(std::memory_order_relaxed)) {
              Stopwatch timer;
              if (backup.Read().ok()) {
                counts->good++;
                counts->latency_us.Record(timer.ElapsedUs());
              }
              counts->total++;
            }
          }
        });

    double seconds = duration_ms / 1000.0;
    double write_ks = static_cast<double>(writes.load()) / seconds / 1000.0;
    PrintRow({Fmt(target_writes), Fmt(write_ks),
              Fmt(result.good_ops_per_sec / 1000.0),
              std::to_string(result.latency_us.Percentile(0.50)),
              std::to_string(result.latency_us.Percentile(0.99))});
  }
}

}  // namespace
}  // namespace tangobench

int main(int argc, char** argv) {
  tangobench::Flags flags(argc, argv);
  tangobench::Run(flags);
  return 0;
}
