// Figure 10 (right): transactions on a shared object.
//
// Four nodes each host a private TangoMap plus a view of one *common*
// TangoMap shared by everyone (Figure 5(d)).  A fraction of transactions
// read-write both the private and the shared map.  The paper's shape:
// throughput falls sharply from 0% to 1% shared (suddenly every client must
// replay the shared stream and conflict on it), then degrades gracefully as
// the shared percentage doubles.

#include "bench/bench_common.h"
#include "src/objects/tango_map.h"
#include "src/runtime/runtime.h"

namespace tangobench {
namespace {

void Run(const Flags& flags) {
  const int duration_ms = static_cast<int>(flags.GetInt("duration-ms", 300));
  const int num_nodes = static_cast<int>(flags.GetInt("nodes", 4));
  const uint64_t keys = static_cast<uint64_t>(flags.GetInt("keys", 100000));

  std::printf(
      "Figure 10 (right): %% transactions touching the shared map "
      "(%d nodes)\n\n",
      num_nodes);
  PrintHeader({"shared_pct", "Ktx/s", "Kgood/s", "good%"});

  for (int pct : {0, 1, 2, 4, 8, 16, 32, 64, 100}) {
    double fraction = pct / 100.0;
    Testbed bed(18, 2, 0);

    constexpr tango::ObjectId kSharedOid = 99;
    struct Node {
      std::unique_ptr<corfu::CorfuClient> client;
      std::unique_ptr<tango::TangoRuntime> runtime;
      std::unique_ptr<tango::TangoMap> private_map;
      std::unique_ptr<tango::TangoMap> shared_map;
    };
    std::vector<Node> nodes(num_nodes);
    for (int i = 0; i < num_nodes; ++i) {
      nodes[i].client = bed.MakeClient();
      nodes[i].runtime =
          std::make_unique<tango::TangoRuntime>(nodes[i].client.get());
      nodes[i].private_map = std::make_unique<tango::TangoMap>(
          nodes[i].runtime.get(), static_cast<tango::ObjectId>(i + 1));
      // Everyone hosts the shared map but nobody else hosts this node's
      // private map (the read set), so transactions writing the shared map
      // need decision records (§4.1) — exactly the paper's marking rule.
      tango::TangoMap::MapConfig shared_config;
      shared_config.object.needs_decision_records = true;
      nodes[i].shared_map = std::make_unique<tango::TangoMap>(
          nodes[i].runtime.get(), kSharedOid, shared_config);
      (void)nodes[i].private_map->Put("seed", "0");
      (void)nodes[i].private_map->Size();
      (void)nodes[i].shared_map->Size();
    }

    RunResult result = RunWorkers(
        num_nodes, duration_ms,
        [&](int t, std::atomic<bool>* stop, WorkerCounts* counts) {
          Node& node = nodes[t];
          tango::Rng rng(8000 + t);
          while (!stop->load(std::memory_order_relaxed)) {
            bool shared = rng.NextBool(fraction);
            std::string key = "key" + std::to_string(rng.NextBelow(keys));
            (void)node.runtime->BeginTx();
            (void)node.private_map->Get(key);
            (void)node.private_map->Put(key, "v");
            if (shared) {
              (void)node.shared_map->Get(key);
              (void)node.shared_map->Put(key, "s");
            }
            counts->total++;
            if (node.runtime->EndTx().ok()) {
              counts->good++;
            }
          }
        });

    double good_pct =
        result.ops_per_sec > 0
            ? 100.0 * result.good_ops_per_sec / result.ops_per_sec
            : 0;
    PrintRow({std::to_string(pct), Fmt(result.ops_per_sec / 1000.0, 2),
              Fmt(result.good_ops_per_sec / 1000.0, 2), Fmt(good_pct)});
  }
}

}  // namespace
}  // namespace tangobench

int main(int argc, char** argv) {
  tangobench::Flags flags(argc, argv);
  tangobench::Run(flags);
  return 0;
}
