// Shared infrastructure for the figure-reproduction benchmarks.
//
// Every binary in bench/ regenerates one table or figure from the paper's
// evaluation (§6); see DESIGN.md for the experiment index.  The cluster is
// in-process (the paper's 36-machine testbed is simulated per DESIGN.md), so
// absolute numbers are laptop-scale; the *shapes* are what EXPERIMENTS.md
// compares.  Storage latency injection (--storage-latency-us) models the SSD
// cost so that log-size effects (2- vs 18-server saturation) are visible.

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <sys/utsname.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/corfu/cluster.h"
#include "src/net/inproc_transport.h"
#include "src/obs/metrics.h"
#include "src/util/histogram.h"
#include "src/util/random.h"
#include "src/util/threading.h"

namespace tangobench {

// Parses "--name=value" style flags; unknown flags abort with usage.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      size_t eq = arg.find('=');
      if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
        std::fprintf(stderr, "bad flag: %s (expected --name=value)\n",
                     arg.c_str());
        std::exit(2);
      }
      values_.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
    }
  }

  int64_t GetInt(const std::string& name, int64_t fallback) const {
    for (const auto& [k, v] : values_) {
      if (k == name) {
        return std::stoll(v);
      }
    }
    return fallback;
  }

  double GetDouble(const std::string& name, double fallback) const {
    for (const auto& [k, v] : values_) {
      if (k == name) {
        return std::stod(v);
      }
    }
    return fallback;
  }

  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    for (const auto& [k, v] : values_) {
      if (k == name) {
        return v;
      }
    }
    return fallback;
  }

 private:
  std::vector<std::pair<std::string, std::string>> values_;
};

// One measured cell: operations completed, goodput, latency distribution.
struct RunResult {
  double ops_per_sec = 0;
  double good_ops_per_sec = 0;
  tango::Histogram latency_us;
};

// Runs `worker(thread_index, stop)` on `threads` threads for `duration_ms`.
// The worker returns the number of (good, total) ops it completed.
struct WorkerCounts {
  uint64_t total = 0;
  uint64_t good = 0;
  tango::Histogram latency_us;
};

inline RunResult RunWorkers(
    int threads, int duration_ms,
    const std::function<void(int, std::atomic<bool>*, WorkerCounts*)>& worker) {
  std::vector<WorkerCounts> counts(threads);
  std::atomic<bool> stop{false};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  uint64_t start_ns = tango::NowNanos();
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back(
        [&worker, &stop, &counts, t] { worker(t, &stop, &counts[t]); });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  for (std::thread& th : pool) {
    th.join();
  }
  double elapsed_s =
      static_cast<double>(tango::NowNanos() - start_ns) / 1e9;

  RunResult result;
  uint64_t total = 0, good = 0;
  for (WorkerCounts& c : counts) {
    total += c.total;
    good += c.good;
    result.latency_us.Merge(c.latency_us);
  }
  result.ops_per_sec = static_cast<double>(total) / elapsed_s;
  result.good_ops_per_sec = static_cast<double>(good) / elapsed_s;
  return result;
}

// Paces a worker at `rate` ops/sec (open loop, per thread).
class Pacer {
 public:
  explicit Pacer(double ops_per_sec)
      : interval_ns_(ops_per_sec > 0 ? static_cast<uint64_t>(1e9 / ops_per_sec)
                                     : 0),
        next_ns_(tango::NowNanos()) {}

  // Sleeps until the next slot; returns false if rate is zero (never fire)
  // or the stop flag rises.  A pacer that has fallen behind schedule fires
  // immediately but still honors the stop flag.
  bool Wait(const std::atomic<bool>& stop) {
    if (interval_ns_ == 0 || stop.load(std::memory_order_relaxed)) {
      return false;
    }
    next_ns_ += interval_ns_;
    uint64_t now = tango::NowNanos();
    while (now < next_ns_) {
      if (stop.load(std::memory_order_relaxed)) {
        return false;
      }
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(std::min<uint64_t>(next_ns_ - now, 200000)));
      now = tango::NowNanos();
    }
    return true;
  }

 private:
  uint64_t interval_ns_;
  uint64_t next_ns_;
};

// The standard bench cluster: in-proc transport + CORFU deployment.
struct Testbed {
  tango::InProcTransport transport;
  std::unique_ptr<corfu::CorfuCluster> cluster;

  Testbed(int storage_nodes, int replication, uint32_t storage_latency_us,
          tango::InProcTransport::Options net = {})
      : transport(net) {
    corfu::CorfuCluster::Options options;
    options.num_storage_nodes = storage_nodes;
    options.replication_factor = replication;
    options.storage.write_latency_us = storage_latency_us;
    options.storage.read_latency_us = storage_latency_us;
    cluster = std::make_unique<corfu::CorfuCluster>(&transport, options);
  }

  std::unique_ptr<corfu::CorfuClient> MakeClient() {
    corfu::CorfuClient::Options options;
    options.hole_timeout_ms = 10;
    return cluster->MakeClient(options);
  }
};

// Aligned table output, e.g.:
//   PrintHeader({"clients", "Kreq/s"});
//   PrintRow({"4", "531.2"});
inline void PrintHeader(const std::vector<std::string>& columns) {
  for (const std::string& c : columns) {
    std::printf("%14s", c.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%14s", "------------");
  }
  std::printf("\n");
}

inline void PrintRow(const std::vector<std::string>& cells) {
  for (const std::string& c : cells) {
    std::printf("%14s", c.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

inline std::string Fmt(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

// Writes the process metrics registry as a `"metrics": {...},` JSON field,
// so every BENCH_*.json carries the counter/histogram state that produced
// its numbers (append demands, cache hit ratios, RPC latencies, ...).
inline void WriteMetricsField(FILE* f, const char* indent = "  ") {
  std::fprintf(f, "%s\"metrics\": %s,\n", indent,
               tango::obs::MetricsRegistry::Default().RenderJson().c_str());
}

// Writes a `"run_info": {...},` provenance stamp — git SHA, UTC timestamp,
// host and kernel — so a BENCH_*.json pulled out of a results directory
// months later still says what produced it.  Every field degrades to
// "unknown" rather than failing the bench (e.g. a tarball checkout has no
// git).
inline void WriteRunInfoField(FILE* f, const char* indent = "  ") {
  std::string sha = "unknown";
  if (FILE* git = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64] = {0};
    if (std::fgets(buf, sizeof(buf), git) != nullptr) {
      sha.assign(buf);
      while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
        sha.pop_back();
      }
      if (sha.empty()) {
        sha = "unknown";
      }
    }
    ::pclose(git);
  }

  char when[32] = "unknown";
  std::time_t now = std::time(nullptr);
  if (std::tm* utc = std::gmtime(&now)) {
    std::strftime(when, sizeof(when), "%Y-%m-%dT%H:%M:%SZ", utc);
  }

  char host[256] = "unknown";
  (void)::gethostname(host, sizeof(host) - 1);

  std::string kernel = "unknown";
  utsname un{};
  if (::uname(&un) == 0) {
    kernel = std::string(un.sysname) + " " + un.release + " " + un.machine;
  }

  std::fprintf(f,
               "%s\"run_info\": {\"git_sha\": \"%s\", \"utc_time\": \"%s\", "
               "\"host\": \"%s\", \"kernel\": \"%s\"},\n",
               indent, sha.c_str(), when, host, kernel.c_str());
}

// The periodic stats-dump hook: with --stats-dump-ms=N a background thread
// appends a registry dump every N ms to --stats-dump-file=PATH (stderr when
// unset) for as long as the returned handle lives.  Returns null (no thread)
// when the flag is absent.
inline std::unique_ptr<tango::obs::PeriodicStatsDumper> MaybeStartStatsDumper(
    const Flags& flags) {
  int64_t interval_ms = flags.GetInt("stats-dump-ms", 0);
  if (interval_ms <= 0) {
    return nullptr;
  }
  return std::make_unique<tango::obs::PeriodicStatsDumper>(
      static_cast<uint32_t>(interval_ms),
      flags.GetString("stats-dump-file", ""));
}

// Scoped wall-clock timer in microseconds.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(tango::NowNanos()) {}
  uint64_t ElapsedUs() const { return (tango::NowNanos() - start_ns_) / 1000; }

 private:
  uint64_t start_ns_;
};

}  // namespace tangobench

#endif  // BENCH_BENCH_COMMON_H_
