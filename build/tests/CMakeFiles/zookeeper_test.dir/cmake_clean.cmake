file(REMOVE_RECURSE
  "CMakeFiles/zookeeper_test.dir/zookeeper_test.cc.o"
  "CMakeFiles/zookeeper_test.dir/zookeeper_test.cc.o.d"
  "zookeeper_test"
  "zookeeper_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zookeeper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
