# Empty compiler generated dependencies file for zookeeper_test.
# This may be replaced when dependencies are built.
