# Empty compiler generated dependencies file for deep_runtime_test.
# This may be replaced when dependencies are built.
