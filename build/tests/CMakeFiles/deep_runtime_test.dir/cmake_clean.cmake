file(REMOVE_RECURSE
  "CMakeFiles/deep_runtime_test.dir/deep_runtime_test.cc.o"
  "CMakeFiles/deep_runtime_test.dir/deep_runtime_test.cc.o.d"
  "deep_runtime_test"
  "deep_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
