# Empty dependencies file for storage_node_test.
# This may be replaced when dependencies are built.
