
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/failover_test.cc" "tests/CMakeFiles/failover_test.dir/failover_test.cc.o" "gcc" "tests/CMakeFiles/failover_test.dir/failover_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bindings/CMakeFiles/tango_c.dir/DependInfo.cmake"
  "/root/repo/build/src/objects/CMakeFiles/tango_objects.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tango_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/corfu/CMakeFiles/tango_corfu.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/tango_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tango_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tango_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
