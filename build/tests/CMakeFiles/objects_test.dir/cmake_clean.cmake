file(REMOVE_RECURSE
  "CMakeFiles/objects_test.dir/objects_test.cc.o"
  "CMakeFiles/objects_test.dir/objects_test.cc.o.d"
  "objects_test"
  "objects_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objects_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
