# Empty dependencies file for bookkeeper_test.
# This may be replaced when dependencies are built.
