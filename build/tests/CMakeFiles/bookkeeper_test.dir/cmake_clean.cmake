file(REMOVE_RECURSE
  "CMakeFiles/bookkeeper_test.dir/bookkeeper_test.cc.o"
  "CMakeFiles/bookkeeper_test.dir/bookkeeper_test.cc.o.d"
  "bookkeeper_test"
  "bookkeeper_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bookkeeper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
