# Empty compiler generated dependencies file for log_client_test.
# This may be replaced when dependencies are built.
