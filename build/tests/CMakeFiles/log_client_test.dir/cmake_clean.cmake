file(REMOVE_RECURSE
  "CMakeFiles/log_client_test.dir/log_client_test.cc.o"
  "CMakeFiles/log_client_test.dir/log_client_test.cc.o.d"
  "log_client_test"
  "log_client_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
