file(REMOVE_RECURSE
  "CMakeFiles/batcher_test.dir/batcher_test.cc.o"
  "CMakeFiles/batcher_test.dir/batcher_test.cc.o.d"
  "batcher_test"
  "batcher_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
