file(REMOVE_RECURSE
  "CMakeFiles/fig8_elasticity.dir/fig8_elasticity.cc.o"
  "CMakeFiles/fig8_elasticity.dir/fig8_elasticity.cc.o.d"
  "fig8_elasticity"
  "fig8_elasticity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
