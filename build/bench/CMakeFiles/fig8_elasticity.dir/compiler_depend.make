# Empty compiler generated dependencies file for fig8_elasticity.
# This may be replaced when dependencies are built.
