file(REMOVE_RECURSE
  "CMakeFiles/fig10_shared_object.dir/fig10_shared_object.cc.o"
  "CMakeFiles/fig10_shared_object.dir/fig10_shared_object.cc.o.d"
  "fig10_shared_object"
  "fig10_shared_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_shared_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
