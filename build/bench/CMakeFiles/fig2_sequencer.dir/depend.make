# Empty dependencies file for fig2_sequencer.
# This may be replaced when dependencies are built.
