file(REMOVE_RECURSE
  "CMakeFiles/fig2_sequencer.dir/fig2_sequencer.cc.o"
  "CMakeFiles/fig2_sequencer.dir/fig2_sequencer.cc.o.d"
  "fig2_sequencer"
  "fig2_sequencer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_sequencer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
