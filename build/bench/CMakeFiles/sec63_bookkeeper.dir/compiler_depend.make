# Empty compiler generated dependencies file for sec63_bookkeeper.
# This may be replaced when dependencies are built.
