file(REMOVE_RECURSE
  "CMakeFiles/sec63_bookkeeper.dir/sec63_bookkeeper.cc.o"
  "CMakeFiles/sec63_bookkeeper.dir/sec63_bookkeeper.cc.o.d"
  "sec63_bookkeeper"
  "sec63_bookkeeper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec63_bookkeeper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
