# Empty compiler generated dependencies file for ablate_backpointers.
# This may be replaced when dependencies are built.
