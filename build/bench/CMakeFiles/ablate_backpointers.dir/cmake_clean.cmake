file(REMOVE_RECURSE
  "CMakeFiles/ablate_backpointers.dir/ablate_backpointers.cc.o"
  "CMakeFiles/ablate_backpointers.dir/ablate_backpointers.cc.o.d"
  "ablate_backpointers"
  "ablate_backpointers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_backpointers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
