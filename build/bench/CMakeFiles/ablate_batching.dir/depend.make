# Empty dependencies file for ablate_batching.
# This may be replaced when dependencies are built.
