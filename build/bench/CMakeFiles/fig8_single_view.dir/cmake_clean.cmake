file(REMOVE_RECURSE
  "CMakeFiles/fig8_single_view.dir/fig8_single_view.cc.o"
  "CMakeFiles/fig8_single_view.dir/fig8_single_view.cc.o.d"
  "fig8_single_view"
  "fig8_single_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_single_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
