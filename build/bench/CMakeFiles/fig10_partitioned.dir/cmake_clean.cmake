file(REMOVE_RECURSE
  "CMakeFiles/fig10_partitioned.dir/fig10_partitioned.cc.o"
  "CMakeFiles/fig10_partitioned.dir/fig10_partitioned.cc.o.d"
  "fig10_partitioned"
  "fig10_partitioned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_partitioned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
