# Empty dependencies file for fig10_partitioned.
# This may be replaced when dependencies are built.
