file(REMOVE_RECURSE
  "CMakeFiles/fig8_two_views.dir/fig8_two_views.cc.o"
  "CMakeFiles/fig8_two_views.dir/fig8_two_views.cc.o.d"
  "fig8_two_views"
  "fig8_two_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_two_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
