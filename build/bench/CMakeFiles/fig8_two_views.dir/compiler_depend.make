# Empty compiler generated dependencies file for fig8_two_views.
# This may be replaced when dependencies are built.
