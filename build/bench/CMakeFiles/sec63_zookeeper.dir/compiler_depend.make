# Empty compiler generated dependencies file for sec63_zookeeper.
# This may be replaced when dependencies are built.
