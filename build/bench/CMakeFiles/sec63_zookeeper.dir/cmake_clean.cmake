file(REMOVE_RECURSE
  "CMakeFiles/sec63_zookeeper.dir/sec63_zookeeper.cc.o"
  "CMakeFiles/sec63_zookeeper.dir/sec63_zookeeper.cc.o.d"
  "sec63_zookeeper"
  "sec63_zookeeper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec63_zookeeper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
