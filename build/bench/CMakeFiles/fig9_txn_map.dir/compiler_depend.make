# Empty compiler generated dependencies file for fig9_txn_map.
# This may be replaced when dependencies are built.
