file(REMOVE_RECURSE
  "CMakeFiles/fig9_txn_map.dir/fig9_txn_map.cc.o"
  "CMakeFiles/fig9_txn_map.dir/fig9_txn_map.cc.o.d"
  "fig9_txn_map"
  "fig9_txn_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_txn_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
