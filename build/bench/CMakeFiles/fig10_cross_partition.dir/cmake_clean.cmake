file(REMOVE_RECURSE
  "CMakeFiles/fig10_cross_partition.dir/fig10_cross_partition.cc.o"
  "CMakeFiles/fig10_cross_partition.dir/fig10_cross_partition.cc.o.d"
  "fig10_cross_partition"
  "fig10_cross_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cross_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
