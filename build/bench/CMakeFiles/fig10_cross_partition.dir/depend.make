# Empty dependencies file for fig10_cross_partition.
# This may be replaced when dependencies are built.
