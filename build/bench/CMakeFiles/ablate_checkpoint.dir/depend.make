# Empty dependencies file for ablate_checkpoint.
# This may be replaced when dependencies are built.
