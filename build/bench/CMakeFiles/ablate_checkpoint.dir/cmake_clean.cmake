file(REMOVE_RECURSE
  "CMakeFiles/ablate_checkpoint.dir/ablate_checkpoint.cc.o"
  "CMakeFiles/ablate_checkpoint.dir/ablate_checkpoint.cc.o.d"
  "ablate_checkpoint"
  "ablate_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
