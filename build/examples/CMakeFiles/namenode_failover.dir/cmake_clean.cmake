file(REMOVE_RECURSE
  "CMakeFiles/namenode_failover.dir/namenode_failover.cpp.o"
  "CMakeFiles/namenode_failover.dir/namenode_failover.cpp.o.d"
  "namenode_failover"
  "namenode_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namenode_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
