# Empty compiler generated dependencies file for namenode_failover.
# This may be replaced when dependencies are built.
