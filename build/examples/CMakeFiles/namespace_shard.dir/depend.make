# Empty dependencies file for namespace_shard.
# This may be replaced when dependencies are built.
