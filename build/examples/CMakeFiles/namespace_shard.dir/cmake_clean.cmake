file(REMOVE_RECURSE
  "CMakeFiles/namespace_shard.dir/namespace_shard.cpp.o"
  "CMakeFiles/namespace_shard.dir/namespace_shard.cpp.o.d"
  "namespace_shard"
  "namespace_shard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namespace_shard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
