file(REMOVE_RECURSE
  "CMakeFiles/tango_c.dir/tango_c.cc.o"
  "CMakeFiles/tango_c.dir/tango_c.cc.o.d"
  "libtango_c.a"
  "libtango_c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
