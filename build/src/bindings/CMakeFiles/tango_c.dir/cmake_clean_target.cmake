file(REMOVE_RECURSE
  "libtango_c.a"
)
