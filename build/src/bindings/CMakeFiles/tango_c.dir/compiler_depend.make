# Empty compiler generated dependencies file for tango_c.
# This may be replaced when dependencies are built.
