file(REMOVE_RECURSE
  "libtango_baseline.a"
)
