# Empty dependencies file for tango_baseline.
# This may be replaced when dependencies are built.
