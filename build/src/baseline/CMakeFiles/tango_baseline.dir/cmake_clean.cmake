file(REMOVE_RECURSE
  "CMakeFiles/tango_baseline.dir/two_phase_locking.cc.o"
  "CMakeFiles/tango_baseline.dir/two_phase_locking.cc.o.d"
  "libtango_baseline.a"
  "libtango_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
