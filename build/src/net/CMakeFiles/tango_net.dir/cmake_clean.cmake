file(REMOVE_RECURSE
  "CMakeFiles/tango_net.dir/inproc_transport.cc.o"
  "CMakeFiles/tango_net.dir/inproc_transport.cc.o.d"
  "CMakeFiles/tango_net.dir/tcp_transport.cc.o"
  "CMakeFiles/tango_net.dir/tcp_transport.cc.o.d"
  "libtango_net.a"
  "libtango_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
