file(REMOVE_RECURSE
  "libtango_net.a"
)
