file(REMOVE_RECURSE
  "libtango_util.a"
)
