# Empty compiler generated dependencies file for tango_util.
# This may be replaced when dependencies are built.
