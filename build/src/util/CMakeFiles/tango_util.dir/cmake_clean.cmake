file(REMOVE_RECURSE
  "CMakeFiles/tango_util.dir/histogram.cc.o"
  "CMakeFiles/tango_util.dir/histogram.cc.o.d"
  "CMakeFiles/tango_util.dir/logging.cc.o"
  "CMakeFiles/tango_util.dir/logging.cc.o.d"
  "CMakeFiles/tango_util.dir/random.cc.o"
  "CMakeFiles/tango_util.dir/random.cc.o.d"
  "CMakeFiles/tango_util.dir/status.cc.o"
  "CMakeFiles/tango_util.dir/status.cc.o.d"
  "CMakeFiles/tango_util.dir/threading.cc.o"
  "CMakeFiles/tango_util.dir/threading.cc.o.d"
  "libtango_util.a"
  "libtango_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
