file(REMOVE_RECURSE
  "CMakeFiles/tango_runtime.dir/batcher.cc.o"
  "CMakeFiles/tango_runtime.dir/batcher.cc.o.d"
  "CMakeFiles/tango_runtime.dir/directory.cc.o"
  "CMakeFiles/tango_runtime.dir/directory.cc.o.d"
  "CMakeFiles/tango_runtime.dir/mirror.cc.o"
  "CMakeFiles/tango_runtime.dir/mirror.cc.o.d"
  "CMakeFiles/tango_runtime.dir/record.cc.o"
  "CMakeFiles/tango_runtime.dir/record.cc.o.d"
  "CMakeFiles/tango_runtime.dir/runtime.cc.o"
  "CMakeFiles/tango_runtime.dir/runtime.cc.o.d"
  "libtango_runtime.a"
  "libtango_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
