
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/batcher.cc" "src/runtime/CMakeFiles/tango_runtime.dir/batcher.cc.o" "gcc" "src/runtime/CMakeFiles/tango_runtime.dir/batcher.cc.o.d"
  "/root/repo/src/runtime/directory.cc" "src/runtime/CMakeFiles/tango_runtime.dir/directory.cc.o" "gcc" "src/runtime/CMakeFiles/tango_runtime.dir/directory.cc.o.d"
  "/root/repo/src/runtime/mirror.cc" "src/runtime/CMakeFiles/tango_runtime.dir/mirror.cc.o" "gcc" "src/runtime/CMakeFiles/tango_runtime.dir/mirror.cc.o.d"
  "/root/repo/src/runtime/record.cc" "src/runtime/CMakeFiles/tango_runtime.dir/record.cc.o" "gcc" "src/runtime/CMakeFiles/tango_runtime.dir/record.cc.o.d"
  "/root/repo/src/runtime/runtime.cc" "src/runtime/CMakeFiles/tango_runtime.dir/runtime.cc.o" "gcc" "src/runtime/CMakeFiles/tango_runtime.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corfu/CMakeFiles/tango_corfu.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tango_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tango_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
