file(REMOVE_RECURSE
  "libtango_runtime.a"
)
