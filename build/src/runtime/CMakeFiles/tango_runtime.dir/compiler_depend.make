# Empty compiler generated dependencies file for tango_runtime.
# This may be replaced when dependencies are built.
