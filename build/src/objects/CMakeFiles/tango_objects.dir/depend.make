# Empty dependencies file for tango_objects.
# This may be replaced when dependencies are built.
