file(REMOVE_RECURSE
  "CMakeFiles/tango_objects.dir/tango_bookkeeper.cc.o"
  "CMakeFiles/tango_objects.dir/tango_bookkeeper.cc.o.d"
  "CMakeFiles/tango_objects.dir/tango_counter.cc.o"
  "CMakeFiles/tango_objects.dir/tango_counter.cc.o.d"
  "CMakeFiles/tango_objects.dir/tango_graph.cc.o"
  "CMakeFiles/tango_objects.dir/tango_graph.cc.o.d"
  "CMakeFiles/tango_objects.dir/tango_list.cc.o"
  "CMakeFiles/tango_objects.dir/tango_list.cc.o.d"
  "CMakeFiles/tango_objects.dir/tango_map.cc.o"
  "CMakeFiles/tango_objects.dir/tango_map.cc.o.d"
  "CMakeFiles/tango_objects.dir/tango_queue.cc.o"
  "CMakeFiles/tango_objects.dir/tango_queue.cc.o.d"
  "CMakeFiles/tango_objects.dir/tango_register.cc.o"
  "CMakeFiles/tango_objects.dir/tango_register.cc.o.d"
  "CMakeFiles/tango_objects.dir/tango_set.cc.o"
  "CMakeFiles/tango_objects.dir/tango_set.cc.o.d"
  "CMakeFiles/tango_objects.dir/tango_treemap.cc.o"
  "CMakeFiles/tango_objects.dir/tango_treemap.cc.o.d"
  "CMakeFiles/tango_objects.dir/tango_zookeeper.cc.o"
  "CMakeFiles/tango_objects.dir/tango_zookeeper.cc.o.d"
  "libtango_objects.a"
  "libtango_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
