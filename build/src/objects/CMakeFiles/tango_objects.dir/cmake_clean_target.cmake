file(REMOVE_RECURSE
  "libtango_objects.a"
)
