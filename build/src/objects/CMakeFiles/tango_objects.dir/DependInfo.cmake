
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objects/tango_bookkeeper.cc" "src/objects/CMakeFiles/tango_objects.dir/tango_bookkeeper.cc.o" "gcc" "src/objects/CMakeFiles/tango_objects.dir/tango_bookkeeper.cc.o.d"
  "/root/repo/src/objects/tango_counter.cc" "src/objects/CMakeFiles/tango_objects.dir/tango_counter.cc.o" "gcc" "src/objects/CMakeFiles/tango_objects.dir/tango_counter.cc.o.d"
  "/root/repo/src/objects/tango_graph.cc" "src/objects/CMakeFiles/tango_objects.dir/tango_graph.cc.o" "gcc" "src/objects/CMakeFiles/tango_objects.dir/tango_graph.cc.o.d"
  "/root/repo/src/objects/tango_list.cc" "src/objects/CMakeFiles/tango_objects.dir/tango_list.cc.o" "gcc" "src/objects/CMakeFiles/tango_objects.dir/tango_list.cc.o.d"
  "/root/repo/src/objects/tango_map.cc" "src/objects/CMakeFiles/tango_objects.dir/tango_map.cc.o" "gcc" "src/objects/CMakeFiles/tango_objects.dir/tango_map.cc.o.d"
  "/root/repo/src/objects/tango_queue.cc" "src/objects/CMakeFiles/tango_objects.dir/tango_queue.cc.o" "gcc" "src/objects/CMakeFiles/tango_objects.dir/tango_queue.cc.o.d"
  "/root/repo/src/objects/tango_register.cc" "src/objects/CMakeFiles/tango_objects.dir/tango_register.cc.o" "gcc" "src/objects/CMakeFiles/tango_objects.dir/tango_register.cc.o.d"
  "/root/repo/src/objects/tango_set.cc" "src/objects/CMakeFiles/tango_objects.dir/tango_set.cc.o" "gcc" "src/objects/CMakeFiles/tango_objects.dir/tango_set.cc.o.d"
  "/root/repo/src/objects/tango_treemap.cc" "src/objects/CMakeFiles/tango_objects.dir/tango_treemap.cc.o" "gcc" "src/objects/CMakeFiles/tango_objects.dir/tango_treemap.cc.o.d"
  "/root/repo/src/objects/tango_zookeeper.cc" "src/objects/CMakeFiles/tango_objects.dir/tango_zookeeper.cc.o" "gcc" "src/objects/CMakeFiles/tango_objects.dir/tango_zookeeper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/tango_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/corfu/CMakeFiles/tango_corfu.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tango_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tango_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
