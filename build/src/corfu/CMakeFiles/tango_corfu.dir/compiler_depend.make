# Empty compiler generated dependencies file for tango_corfu.
# This may be replaced when dependencies are built.
