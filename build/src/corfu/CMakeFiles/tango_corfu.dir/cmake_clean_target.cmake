file(REMOVE_RECURSE
  "libtango_corfu.a"
)
