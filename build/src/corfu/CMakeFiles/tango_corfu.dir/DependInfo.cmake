
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corfu/cluster.cc" "src/corfu/CMakeFiles/tango_corfu.dir/cluster.cc.o" "gcc" "src/corfu/CMakeFiles/tango_corfu.dir/cluster.cc.o.d"
  "/root/repo/src/corfu/entry.cc" "src/corfu/CMakeFiles/tango_corfu.dir/entry.cc.o" "gcc" "src/corfu/CMakeFiles/tango_corfu.dir/entry.cc.o.d"
  "/root/repo/src/corfu/log_client.cc" "src/corfu/CMakeFiles/tango_corfu.dir/log_client.cc.o" "gcc" "src/corfu/CMakeFiles/tango_corfu.dir/log_client.cc.o.d"
  "/root/repo/src/corfu/projection.cc" "src/corfu/CMakeFiles/tango_corfu.dir/projection.cc.o" "gcc" "src/corfu/CMakeFiles/tango_corfu.dir/projection.cc.o.d"
  "/root/repo/src/corfu/sequencer.cc" "src/corfu/CMakeFiles/tango_corfu.dir/sequencer.cc.o" "gcc" "src/corfu/CMakeFiles/tango_corfu.dir/sequencer.cc.o.d"
  "/root/repo/src/corfu/storage_node.cc" "src/corfu/CMakeFiles/tango_corfu.dir/storage_node.cc.o" "gcc" "src/corfu/CMakeFiles/tango_corfu.dir/storage_node.cc.o.d"
  "/root/repo/src/corfu/stream.cc" "src/corfu/CMakeFiles/tango_corfu.dir/stream.cc.o" "gcc" "src/corfu/CMakeFiles/tango_corfu.dir/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tango_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tango_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
