file(REMOVE_RECURSE
  "CMakeFiles/tango_corfu.dir/cluster.cc.o"
  "CMakeFiles/tango_corfu.dir/cluster.cc.o.d"
  "CMakeFiles/tango_corfu.dir/entry.cc.o"
  "CMakeFiles/tango_corfu.dir/entry.cc.o.d"
  "CMakeFiles/tango_corfu.dir/log_client.cc.o"
  "CMakeFiles/tango_corfu.dir/log_client.cc.o.d"
  "CMakeFiles/tango_corfu.dir/projection.cc.o"
  "CMakeFiles/tango_corfu.dir/projection.cc.o.d"
  "CMakeFiles/tango_corfu.dir/sequencer.cc.o"
  "CMakeFiles/tango_corfu.dir/sequencer.cc.o.d"
  "CMakeFiles/tango_corfu.dir/storage_node.cc.o"
  "CMakeFiles/tango_corfu.dir/storage_node.cc.o.d"
  "CMakeFiles/tango_corfu.dir/stream.cc.o"
  "CMakeFiles/tango_corfu.dir/stream.cc.o.d"
  "libtango_corfu.a"
  "libtango_corfu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_corfu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
