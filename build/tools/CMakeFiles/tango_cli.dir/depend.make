# Empty dependencies file for tango_cli.
# This may be replaced when dependencies are built.
