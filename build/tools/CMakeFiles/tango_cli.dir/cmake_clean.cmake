file(REMOVE_RECURSE
  "CMakeFiles/tango_cli.dir/tango_cli.cc.o"
  "CMakeFiles/tango_cli.dir/tango_cli.cc.o.d"
  "tango_cli"
  "tango_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
