file(REMOVE_RECURSE
  "CMakeFiles/tango_logd.dir/tango_logd.cc.o"
  "CMakeFiles/tango_logd.dir/tango_logd.cc.o.d"
  "tango_logd"
  "tango_logd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_logd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
