# Empty compiler generated dependencies file for tango_logd.
# This may be replaced when dependencies are built.
