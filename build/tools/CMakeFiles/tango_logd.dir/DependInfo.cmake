
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/tango_logd.cc" "tools/CMakeFiles/tango_logd.dir/tango_logd.cc.o" "gcc" "tools/CMakeFiles/tango_logd.dir/tango_logd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corfu/CMakeFiles/tango_corfu.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tango_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tango_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
