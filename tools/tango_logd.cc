// tango_logd: a standalone CORFU shared-log deployment served over TCP.
//
// Hosts the storage nodes, the sequencer and the projection store of one
// log deployment in a single process (one process per machine is the
// expected production layout; this tool also supports running the whole
// cluster on one box for development).  Clients — tango_cli or any program
// using TcpTransport + NodeLayout routes — speak the same protocol the
// in-process tests and benches use.
//
// Usage:
//   tango_logd [--base-port=19700] [--nodes=6] [--repl=2]
//              [--journal-dir=/var/lib/tango] [--data-dir=/var/lib/tango]
//              [--fsync-batch=64] [--listen=127.0.0.1]
//              [--http-port=N] [--trace-sample-every=1024]
//              [--trace-slow-us=10000]
//
// Observability: an embedded HTTP server (default port base_port + 3 +
// nodes; --http-port=0 disables) serves /metrics (Prometheus), /traces
// (Chrome JSON), /vars, /slo, /flight and /healthz.  Tracing runs always-on
// with 1-in-N head sampling plus retention of any request slower than
// --trace-slow-us.  On a fatal signal the flight recorder's last control-
// plane events (seals, reconfigurations, GC, recovery, stalls) are written
// to stderr before the process dies.
//
// With --journal-dir, storage nodes persist their pages and survive daemon
// restarts (restart with the same flags, then run `tango_cli recover` once
// to rebuild the fresh sequencer's state from the log).  --data-dir selects
// the crash-consistent segment store instead (checksummed segment files
// under <data-dir>/node-<id>, kill -9 safe); --fsync-batch tunes its group
// commit (1 = fsync every append).

#include <csignal>
#include <cstdio>

#include "src/corfu/cluster.h"
#include "src/net/tcp_transport.h"
#include "src/obs/flight.h"
#include "src/obs/http.h"
#include "src/obs/stats_service.h"
#include "src/obs/trace.h"
#include "src/util/threading.h"
#include "tools/node_layout.h"

namespace {

tango::Notification* g_shutdown = nullptr;

void HandleSignal(int /*sig*/) {
  if (g_shutdown != nullptr) {
    g_shutdown->Notify();
  }
}

}  // namespace

int main(int argc, char** argv) {
  tangotools::ToolArgs args(argc, argv);
  tangotools::NodeLayout layout{
      static_cast<int>(args.GetInt("nodes", 6)),
      static_cast<uint16_t>(args.GetInt("base-port", 19700))};
  int replication = static_cast<int>(args.GetInt("repl", 2));
  std::string journal_dir = args.Get("journal-dir", "");
  std::string data_dir = args.Get("data-dir", "");
  uint32_t fsync_batch = static_cast<uint32_t>(args.GetInt("fsync-batch", 64));
  std::string listen = args.Get("listen", "127.0.0.1");
  uint16_t http_port = static_cast<uint16_t>(
      args.GetInt("http-port", layout.HttpPort()));
  uint64_t sample_every =
      static_cast<uint64_t>(args.GetInt("trace-sample-every", 1024));
  uint64_t slow_us = static_cast<uint64_t>(args.GetInt("trace-slow-us", 10000));

  // The black box first: anything that crashes from here on dumps the
  // flight recorder to stderr before dying.
  tango::obs::FlightRecorder::InstallFatalSignalHandler();

  // Always-on sampled tracing: cheap enough to leave running (see
  // BENCH_obs.json), and the slow outliers are retained regardless of the
  // sampling rate.
  tango::obs::Tracer::Default().SetSampling({sample_every, slow_us, 0});
  tango::obs::Tracer::Default().SetEnabled(true);

  tango::TcpTransport transport;
  transport.SetListenAddress(listen);
  layout.AssignListenPorts(transport);

  corfu::CorfuCluster::Options options = layout.ClusterOptions(replication);
  options.journal_dir = journal_dir;
  if (!data_dir.empty()) {
    // Each node roots its segment store under here; create the parent now.
    (void)corfu::storage::PosixFileSystem()->CreateDir(data_dir);
    options.data_dir = data_dir;
    options.storage.fsync_batch = fsync_batch;
  }
  corfu::CorfuCluster cluster(&transport, options);

  // Metrics/trace inspector endpoint: `tango_stat --connect=HOST` attaches
  // here (same flags as the daemon) and dumps this process's registry.
  tango::obs::StatsService stats(&transport, tangotools::NodeLayout::kStatsNode);

  // HTTP observability endpoint: curl :port/metrics, /traces, /slo, ...
  tango::obs::ObsHttpServer http;
  if (http_port != 0) {
    http.Handle("/flight",
                [] { return tango::obs::FlightRecorder::Default().Dump(); });
    tango::obs::ObsHttpServer::Options http_options;
    http_options.address = listen;
    http_options.port = http_port;
    tango::Status http_st = http.Start(http_options);
    if (!http_st.ok()) {
      std::fprintf(stderr, "tango_logd: obs http disabled: %s\n",
                   http_st.ToString().c_str());
    }
  }

  std::printf(
      "tango_logd: serving %d storage nodes (x%d replication) on %s ports "
      "%u-%u%s\n",
      layout.num_storage_nodes, replication, listen.c_str(),
      layout.ProjectionStorePort(),
      layout.StoragePort(layout.num_storage_nodes - 1),
      !data_dir.empty()
          ? (", durable segment store in " + data_dir).c_str()
          : (journal_dir.empty()
                 ? ""
                 : (", journaling to " + journal_dir).c_str()));
  std::printf("tango_logd: stats endpoint (tango_stat --connect) on port %u\n",
              layout.StatsPort());
  if (http.running()) {
    std::printf("tango_logd: obs http (/metrics /traces /vars /slo /flight) "
                "on port %u\n",
                http.port());
  }
  std::printf("tango_logd: ready\n");
  std::fflush(stdout);

  tango::Notification shutdown;
  g_shutdown = &shutdown;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  shutdown.WaitForNotification();
  std::printf("tango_logd: shutting down\n");
  return 0;
}
