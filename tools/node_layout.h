// Shared node-id / port layout for the TCP deployment tools.
//
// tango_logd and tango_cli agree on a deterministic mapping from the cluster
// shape (storage node count, base port) to node ids and TCP ports, so the
// CLI can route to a daemon started with the same flags:
//
//   projection store : node 11,  base_port
//   sequencer        : node 10,  base_port + 1
//   storage node i   : node 100+i, base_port + 2 + i
//   stats service    : node 12,  base_port + 2 + num_storage_nodes
//   obs http server  : (plain HTTP), base_port + 3 + num_storage_nodes

#ifndef TOOLS_NODE_LAYOUT_H_
#define TOOLS_NODE_LAYOUT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/corfu/cluster.h"
#include "src/net/tcp_transport.h"

namespace tangotools {

struct NodeLayout {
  // The daemon's StatsService (tools/tango_stat --connect) listens as this
  // node id, one past the storage ports.
  static constexpr tango::NodeId kStatsNode = 12;

  int num_storage_nodes;
  uint16_t base_port;

  uint16_t ProjectionStorePort() const { return base_port; }
  uint16_t SequencerPort() const { return static_cast<uint16_t>(base_port + 1); }
  uint16_t StoragePort(int i) const {
    return static_cast<uint16_t>(base_port + 2 + i);
  }
  uint16_t StatsPort() const {
    return static_cast<uint16_t>(base_port + 2 + num_storage_nodes);
  }
  // The daemon's embedded observability HTTP server (/metrics, /traces,
  // /vars, /slo, /flight, /healthz), one past the stats RPC port.
  uint16_t HttpPort() const {
    return static_cast<uint16_t>(base_port + 3 + num_storage_nodes);
  }

  corfu::CorfuCluster::Options ClusterOptions(int replication) const {
    corfu::CorfuCluster::Options options;
    options.num_storage_nodes = num_storage_nodes;
    options.replication_factor = replication;
    return options;
  }

  // Daemon side: pin every service to its well-known port.
  void AssignListenPorts(tango::TcpTransport& transport) const {
    corfu::CorfuCluster::Options defaults;
    transport.SetListenPort(defaults.projection_store_node,
                            ProjectionStorePort());
    transport.SetListenPort(defaults.sequencer_node, SequencerPort());
    for (int i = 0; i < num_storage_nodes; ++i) {
      transport.SetListenPort(defaults.storage_base + i, StoragePort(i));
    }
    transport.SetListenPort(kStatsNode, StatsPort());
  }

  // Client side: route every service id to host's well-known port.
  void AddRoutes(tango::TcpTransport& transport,
                 const std::string& host) const {
    corfu::CorfuCluster::Options defaults;
    transport.AddRoute(defaults.projection_store_node, host,
                       ProjectionStorePort());
    transport.AddRoute(defaults.sequencer_node, host, SequencerPort());
    for (int i = 0; i < num_storage_nodes; ++i) {
      transport.AddRoute(defaults.storage_base + i, host, StoragePort(i));
    }
    transport.AddRoute(kStatsNode, host, StatsPort());
  }

  tango::NodeId projection_store_node() const {
    return corfu::CorfuCluster::Options{}.projection_store_node;
  }
};

// Minimal --flag=value parsing shared by the tools (positional args pass
// through into `positional`).
struct ToolArgs {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;

  ToolArgs(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        size_t eq = arg.find('=');
        if (eq == std::string::npos) {
          flags.emplace_back(arg.substr(2), "true");
        } else {
          flags.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
        }
      } else {
        positional.push_back(arg);
      }
    }
  }

  std::string Get(const std::string& name, const std::string& fallback) const {
    for (const auto& [k, v] : flags) {
      if (k == name) {
        return v;
      }
    }
    return fallback;
  }

  int64_t GetInt(const std::string& name, int64_t fallback) const {
    for (const auto& [k, v] : flags) {
      if (k == name) {
        return std::stoll(v);
      }
    }
    return fallback;
  }
};

}  // namespace tangotools

#endif  // TOOLS_NODE_LAYOUT_H_
